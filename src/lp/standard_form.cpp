#include "lp/standard_form.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pigp::lp::detail {

std::vector<double> StandardForm::recover(const std::vector<double>& y) const {
  PIGP_CHECK(y.size() == cost.size(), "canonical solution size mismatch");
  std::vector<double> x(static_cast<std::size_t>(num_original_vars), 0.0);
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const ColumnOrigin& col = columns[j];
    auto& target = x[static_cast<std::size_t>(col.original_var)];
    switch (col.kind) {
      case ColumnOrigin::Kind::shifted:
        target = col.shift + y[j];
        break;
      case ColumnOrigin::Kind::mirrored:
        target = col.shift - y[j];
        break;
      case ColumnOrigin::Kind::split_pos:
        target += y[j];
        break;
      case ColumnOrigin::Kind::split_neg:
        target -= y[j];
        break;
    }
  }
  return x;
}

StandardForm make_standard_form(const LinearProgram& lp, bool bounds_as_rows) {
  StandardForm sf;
  sf.num_original_vars = lp.num_variables();
  sf.negated_objective = lp.sense() == Sense::maximize;
  const double sign = sf.negated_objective ? -1.0 : 1.0;

  // Per original variable: canonical column(s) and the affine substitution
  // x = a + s*y (s = +1 shifted, -1 mirrored) or x = y_pos - y_neg.
  struct Substitution {
    int column = -1;      // primary canonical column
    int column2 = -1;     // split_neg column if split
    double shift = 0.0;
    double scale = 1.0;   // +1 shifted, -1 mirrored
  };
  std::vector<Substitution> subs(
      static_cast<std::size_t>(lp.num_variables()));

  for (int v = 0; v < lp.num_variables(); ++v) {
    const Variable& var = lp.variables()[static_cast<std::size_t>(v)];
    Substitution& sub = subs[static_cast<std::size_t>(v)];
    const double cost = sign * var.objective;
    if (var.lower > -kInfinity) {
      // x = lower + y, 0 <= y <= upper - lower.
      sub.column = sf.num_columns();
      sub.shift = var.lower;
      sub.scale = 1.0;
      sf.cost.push_back(cost);
      sf.upper.push_back(var.upper == kInfinity ? kInfinity
                                                : var.upper - var.lower);
      sf.columns.push_back({ColumnOrigin::Kind::shifted, v, var.lower, -1});
    } else if (var.upper < kInfinity) {
      // x = upper - y, y >= 0.
      sub.column = sf.num_columns();
      sub.shift = var.upper;
      sub.scale = -1.0;
      sf.cost.push_back(-cost);
      sf.upper.push_back(kInfinity);
      sf.columns.push_back({ColumnOrigin::Kind::mirrored, v, var.upper, -1});
    } else {
      // Free variable: x = y_pos - y_neg.
      sub.column = sf.num_columns();
      sub.column2 = sub.column + 1;
      sub.shift = 0.0;
      sub.scale = 1.0;
      sf.cost.push_back(cost);
      sf.cost.push_back(-cost);
      sf.upper.push_back(kInfinity);
      sf.upper.push_back(kInfinity);
      sf.columns.push_back(
          {ColumnOrigin::Kind::split_pos, v, 0.0, sub.column + 1});
      sf.columns.push_back(
          {ColumnOrigin::Kind::split_neg, v, 0.0, sub.column});
    }
  }

  // Substitute into every model row.
  for (const Row& row : lp.rows()) {
    CanonicalRow out;
    out.type = row.type;
    out.rhs = row.rhs;
    // Accumulate coefficients per canonical column (duplicates summed).
    std::vector<std::pair<int, double>> acc;
    for (const auto& [var, coeff] : row.coeffs) {
      const Substitution& sub = subs[static_cast<std::size_t>(var)];
      out.rhs -= coeff * sub.shift;
      acc.emplace_back(sub.column, coeff * sub.scale);
      if (sub.column2 >= 0) acc.emplace_back(sub.column2, -coeff);
    }
    std::sort(acc.begin(), acc.end());
    for (const auto& [col, coeff] : acc) {
      if (!out.coeffs.empty() && out.coeffs.back().first == col) {
        out.coeffs.back().second += coeff;
      } else {
        out.coeffs.emplace_back(col, coeff);
      }
    }
    sf.rows.push_back(std::move(out));
  }

  if (bounds_as_rows) {
    for (int j = 0; j < sf.num_columns(); ++j) {
      double& u = sf.upper[static_cast<std::size_t>(j)];
      if (u < kInfinity) {
        sf.rows.push_back({RowType::less_equal, {{j, 1.0}}, u});
        u = kInfinity;
      }
    }
  }
  return sf;
}

}  // namespace pigp::lp::detail
