#include "lp/bounded_simplex.hpp"

#include <cmath>

#include "lp/standard_form.hpp"
#include "lp/tableau.hpp"
#include "support/check.hpp"

namespace pigp::lp {
namespace {

using detail::Tableau;

enum class IterateStatus { optimal, unbounded, iteration_limit };

/// Flip nonbasic column j (y' = u - y): negate the column everywhere and
/// record the parity.  The variable is then at zero in current coordinates.
void flip_column(Tableau& tab, std::vector<char>& flipped, int col) {
  for (int i = 0; i <= tab.nrows; ++i) {
    tab.t(i, col) = -tab.t(i, col);
  }
  flipped[static_cast<std::size_t>(col)] ^= 1;
}

IterateStatus iterate(Tableau& tab, std::vector<char>& flipped,
                      const std::vector<char>& allowed,
                      const SimplexOptions& opt, std::int64_t& iterations) {
  std::vector<char> in_basis(static_cast<std::size_t>(tab.ncols), 0);
  for (int b : tab.basis) in_basis[static_cast<std::size_t>(b)] = 1;

  std::int64_t stall = 0;
  bool bland = opt.always_bland;
  double last_objective = tab.objective();

  for (;;) {
    // --- pricing: any nonbasic column at zero with negative reduced cost ---
    int entering = -1;
    double best = -opt.eps;
    for (int j = 0; j < tab.ncols; ++j) {
      if (!allowed[static_cast<std::size_t>(j)] ||
          in_basis[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double d = tab.reduced_cost(j);
      if (d < best) {
        entering = j;
        best = d;
        if (bland) break;
      }
    }
    if (entering < 0) return IterateStatus::optimal;

    // --- ratio test: entering increases from 0 by t ---
    const double t_bound = tab.upper[static_cast<std::size_t>(entering)];
    int leave_row = -1;
    bool leave_at_upper = false;
    double best_ratio = t_bound;
    for (int i = 0; i < tab.nrows; ++i) {
      const double a = tab.t(i, entering);
      const int b = tab.basis[static_cast<std::size_t>(i)];
      double ratio = kInfinity;
      bool at_upper = false;
      if (a > opt.eps) {
        ratio = tab.rhs(i) / a;  // basic variable hits zero
      } else if (a < -opt.eps &&
                 tab.upper[static_cast<std::size_t>(b)] < kInfinity) {
        ratio = (tab.upper[static_cast<std::size_t>(b)] - tab.rhs(i)) / (-a);
        at_upper = true;
      } else {
        continue;
      }
      if (ratio < best_ratio - opt.eps ||
          (leave_row >= 0 && ratio < best_ratio + opt.eps &&
           b < tab.basis[static_cast<std::size_t>(leave_row)])) {
        leave_row = i;
        best_ratio = ratio;
        leave_at_upper = at_upper;
      }
    }

    if (leave_row < 0) {
      if (t_bound == kInfinity) return IterateStatus::unbounded;
      // Bound flip: entering runs all the way to its upper bound.
      for (int i = 0; i <= tab.nrows; ++i) {
        tab.t(i, tab.ncols) -= t_bound * tab.t(i, entering);
      }
      flip_column(tab, flipped, entering);
    } else {
      if (leave_at_upper) {
        // Re-express the leaving basic variable as its complement so it
        // leaves at zero like in the plain simplex.
        const int lcol = tab.basis[static_cast<std::size_t>(leave_row)];
        const double u = tab.upper[static_cast<std::size_t>(lcol)];
        for (int j = 0; j < tab.ncols; ++j) {
          tab.t(leave_row, j) = -tab.t(leave_row, j);
        }
        tab.t(leave_row, lcol) = 1.0;
        tab.t(leave_row, tab.ncols) = u - tab.t(leave_row, tab.ncols);
        flipped[static_cast<std::size_t>(lcol)] ^= 1;
      }
      const int leaving = tab.basis[static_cast<std::size_t>(leave_row)];
      detail::pivot(tab, leave_row, entering, opt.num_threads);
      in_basis[static_cast<std::size_t>(leaving)] = 0;
      in_basis[static_cast<std::size_t>(entering)] = 1;
    }

    if (++iterations > opt.max_iterations) {
      return IterateStatus::iteration_limit;
    }
    const double objective = tab.objective();
    if (objective < last_objective - opt.eps) {
      stall = 0;
      last_objective = objective;
    } else if (!bland && ++stall > opt.stall_limit) {
      bland = true;
    }
  }
}

/// Costs in current coordinates: a flipped column's contribution
/// c·y = c·u − c·y′ carries cost −c (constants cancel in reduced costs).
std::vector<double> flipped_costs(const std::vector<double>& cost,
                                  const std::vector<char>& flipped,
                                  int ncols) {
  std::vector<double> out(static_cast<std::size_t>(ncols), 0.0);
  for (std::size_t j = 0; j < out.size(); ++j) {
    const double c = j < cost.size() ? cost[j] : 0.0;
    out[j] = flipped[j] ? -c : c;
  }
  return out;
}

}  // namespace

Solution BoundedSimplex::solve(const LinearProgram& lp) const {
  const detail::StandardForm sf =
      detail::make_standard_form(lp, /*bounds_as_rows=*/false);
  Tableau tab = detail::build_tableau(sf);

  Solution solution;
  std::vector<char> flipped(static_cast<std::size_t>(tab.ncols), 0);
  std::vector<char> allowed(static_cast<std::size_t>(tab.ncols), 1);
  // Fixed columns (upper bound ~0) and artificials may never enter.
  for (int j = 0; j < tab.ncols; ++j) {
    if (tab.is_artificial(j) ||
        tab.upper[static_cast<std::size_t>(j)] < options_.eps) {
      allowed[static_cast<std::size_t>(j)] = 0;
    }
  }

  // ---------------------------------------------------------- phase 1
  if (tab.first_artificial < tab.ncols) {
    std::vector<double> phase1_cost(static_cast<std::size_t>(tab.ncols), 0.0);
    for (int j = tab.first_artificial; j < tab.ncols; ++j) {
      phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    }
    detail::rebuild_objective(tab, phase1_cost);
    const IterateStatus st = iterate(tab, flipped, allowed, options_,
                                     solution.phase1_iterations);
    solution.iterations = solution.phase1_iterations;
    if (st == IterateStatus::iteration_limit) {
      solution.status = SolveStatus::iteration_limit;
      return solution;
    }
    PIGP_CHECK(st != IterateStatus::unbounded,
               "phase-1 objective is bounded below by zero");
    double rhs_scale = 1.0;
    for (int i = 0; i < tab.nrows; ++i) {
      rhs_scale = std::max(rhs_scale, std::abs(tab.rhs(i)));
    }
    if (tab.objective() > options_.feasibility_tol * rhs_scale) {
      solution.status = SolveStatus::infeasible;
      return solution;
    }
    for (int r = 0; r < tab.nrows; ++r) {
      if (!tab.is_artificial(tab.basis[static_cast<std::size_t>(r)])) continue;
      for (int j = 0; j < tab.first_artificial; ++j) {
        if (std::abs(tab.t(r, j)) > 1e-7) {
          detail::pivot(tab, r, j, options_.num_threads);
          break;
        }
      }
    }
  }

  // ---------------------------------------------------------- phase 2
  detail::rebuild_objective(tab,
                            flipped_costs(sf.cost, flipped, tab.ncols));
  std::int64_t phase2_iterations = 0;
  const IterateStatus st =
      iterate(tab, flipped, allowed, options_, phase2_iterations);
  solution.iterations += phase2_iterations;
  if (st == IterateStatus::iteration_limit) {
    solution.status = SolveStatus::iteration_limit;
    return solution;
  }
  if (st == IterateStatus::unbounded) {
    solution.status = SolveStatus::unbounded;
    return solution;
  }

  // Extract in current coordinates, then undo flips.
  std::vector<double> y = detail::extract_structural(tab);
  for (int j = 0; j < tab.num_structural; ++j) {
    if (flipped[static_cast<std::size_t>(j)]) {
      y[static_cast<std::size_t>(j)] =
          tab.upper[static_cast<std::size_t>(j)] - y[static_cast<std::size_t>(j)];
    }
  }
  solution.status = SolveStatus::optimal;
  solution.x = sf.recover(y);
  solution.objective = lp.objective_value(solution.x);
  return solution;
}

}  // namespace pigp::lp
