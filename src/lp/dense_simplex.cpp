#include "lp/dense_simplex.hpp"

#include <cmath>

#include "lp/standard_form.hpp"
#include "lp/tableau.hpp"
#include "support/check.hpp"

namespace pigp::lp {
namespace {

using detail::Tableau;

enum class IterateStatus { optimal, unbounded, iteration_limit };

/// Run primal simplex iterations until the current objective is optimal over
/// the columns enabled in \p allowed.  Dantzig pricing with an automatic
/// switch to Bland's rule after `stall_limit` non-improving pivots.
IterateStatus iterate(Tableau& tab, const std::vector<char>& allowed,
                      const SimplexOptions& opt, std::int64_t& iterations) {
  std::int64_t stall = 0;
  bool bland = opt.always_bland;
  double last_objective = tab.objective();

  for (;;) {
    // --- pricing ---
    int entering = -1;
    double best = -opt.eps;
    for (int j = 0; j < tab.ncols; ++j) {
      if (!allowed[static_cast<std::size_t>(j)]) continue;
      const double d = tab.reduced_cost(j);
      if (d < best) {
        entering = j;
        best = d;
        if (bland) break;  // first improving index
      }
    }
    if (entering < 0) return IterateStatus::optimal;

    // --- ratio test ---
    int leave_row = -1;
    double best_ratio = 0.0;
    for (int i = 0; i < tab.nrows; ++i) {
      const double a = tab.t(i, entering);
      if (a <= opt.eps) continue;
      const double ratio = tab.rhs(i) / a;
      if (leave_row < 0 || ratio < best_ratio - opt.eps ||
          (ratio < best_ratio + opt.eps &&
           tab.basis[static_cast<std::size_t>(i)] <
               tab.basis[static_cast<std::size_t>(leave_row)])) {
        leave_row = i;
        best_ratio = ratio;
      }
    }
    if (leave_row < 0) return IterateStatus::unbounded;

    detail::pivot(tab, leave_row, entering, opt.num_threads);
    if (++iterations > opt.max_iterations) {
      return IterateStatus::iteration_limit;
    }

    // --- stall detection (anti-cycling) ---
    const double objective = tab.objective();
    if (objective < last_objective - opt.eps) {
      stall = 0;
      last_objective = objective;
    } else if (!bland && ++stall > opt.stall_limit) {
      bland = true;
    }
  }
}

}  // namespace

Solution DenseSimplex::solve(const LinearProgram& lp) const {
  const detail::StandardForm sf =
      detail::make_standard_form(lp, /*bounds_as_rows=*/true);
  Tableau tab = detail::build_tableau(sf);

  Solution solution;
  std::vector<char> allowed(static_cast<std::size_t>(tab.ncols), 1);

  // ---------------------------------------------------------- phase 1
  if (tab.first_artificial < tab.ncols) {
    std::vector<double> phase1_cost(static_cast<std::size_t>(tab.ncols), 0.0);
    for (int j = tab.first_artificial; j < tab.ncols; ++j) {
      phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    }
    detail::rebuild_objective(tab, phase1_cost);
    const IterateStatus st =
        iterate(tab, allowed, options_, solution.phase1_iterations);
    solution.iterations = solution.phase1_iterations;
    if (st == IterateStatus::iteration_limit) {
      solution.status = SolveStatus::iteration_limit;
      return solution;
    }
    PIGP_CHECK(st != IterateStatus::unbounded,
               "phase-1 objective is bounded below by zero");
    // Scale feasibility tolerance with problem magnitude.
    double rhs_scale = 1.0;
    for (int i = 0; i < tab.nrows; ++i) {
      rhs_scale = std::max(rhs_scale, std::abs(tab.rhs(i)));
    }
    if (tab.objective() > options_.feasibility_tol * rhs_scale) {
      solution.status = SolveStatus::infeasible;
      return solution;
    }

    // Drive remaining basic artificials out of the basis (degenerate pivots);
    // rows where no structural/slack pivot exists are redundant and harmless.
    for (int r = 0; r < tab.nrows; ++r) {
      if (!tab.is_artificial(tab.basis[static_cast<std::size_t>(r)])) continue;
      for (int j = 0; j < tab.first_artificial; ++j) {
        if (std::abs(tab.t(r, j)) > 1e-7) {
          detail::pivot(tab, r, j, options_.num_threads);
          break;
        }
      }
    }
  }

  // ---------------------------------------------------------- phase 2
  for (int j = tab.first_artificial; j < tab.ncols; ++j) {
    allowed[static_cast<std::size_t>(j)] = 0;
  }
  detail::rebuild_objective(tab, sf.cost);
  std::int64_t phase2_iterations = 0;
  const IterateStatus st = iterate(tab, allowed, options_, phase2_iterations);
  solution.iterations += phase2_iterations;
  if (st == IterateStatus::iteration_limit) {
    solution.status = SolveStatus::iteration_limit;
    return solution;
  }
  if (st == IterateStatus::unbounded) {
    solution.status = SolveStatus::unbounded;
    return solution;
  }

  solution.status = SolveStatus::optimal;
  solution.x = sf.recover(detail::extract_structural(tab));
  solution.objective = lp.objective_value(solution.x);
  return solution;
}

}  // namespace pigp::lp
