#include "lp/program.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace pigp::lp {

int LinearProgram::add_variable(double objective, double lower, double upper,
                                std::string name) {
  PIGP_CHECK(!(std::isnan(lower) || std::isnan(upper)), "NaN bound");
  PIGP_CHECK(lower <= upper, "variable lower bound exceeds upper bound");
  PIGP_CHECK(lower < kInfinity && upper > -kInfinity,
             "bounds exclude all values");
  variables_.push_back({objective, lower, upper, std::move(name)});
  return static_cast<int>(variables_.size() - 1);
}

void LinearProgram::add_row(RowType type,
                            std::vector<std::pair<int, double>> coeffs,
                            double rhs, std::string name) {
  for (const auto& [var, coeff] : coeffs) {
    PIGP_CHECK(var >= 0 && var < num_variables(),
               "row references unknown variable");
    PIGP_CHECK(!std::isnan(coeff), "NaN coefficient");
  }
  PIGP_CHECK(!std::isnan(rhs), "NaN rhs");
  rows_.push_back({type, std::move(coeffs), rhs, std::move(name)});
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  PIGP_CHECK(x.size() == variables_.size(), "assignment size mismatch");
  double value = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    value += variables_[j].objective * x[j];
  }
  return value;
}

bool LinearProgram::is_feasible(const std::vector<double>& x,
                                double tol) const {
  PIGP_CHECK(x.size() == variables_.size(), "assignment size mismatch");
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    if (x[j] < variables_[j].lower - tol) return false;
    if (x[j] > variables_[j].upper + tol) return false;
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) {
      lhs += coeff * x[static_cast<std::size_t>(var)];
    }
    switch (row.type) {
      case RowType::less_equal:
        if (lhs > row.rhs + tol) return false;
        break;
      case RowType::greater_equal:
        if (lhs < row.rhs - tol) return false;
        break;
      case RowType::equal:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string LinearProgram::debug_string() const {
  std::ostringstream os;
  os << (sense_ == Sense::minimize ? "minimize" : "maximize") << '\n';
  const auto var_name = [this](int j) {
    const auto& v = variables_[static_cast<std::size_t>(j)];
    if (!v.name.empty()) return v.name;
    return "x" + std::to_string(j);
  };
  os << "  obj:";
  for (int j = 0; j < num_variables(); ++j) {
    const double c = variables_[static_cast<std::size_t>(j)].objective;
    if (c != 0.0) os << ' ' << (c >= 0 ? "+" : "") << c << '*' << var_name(j);
  }
  os << '\n';
  for (const Row& row : rows_) {
    os << "  " << (row.name.empty() ? "row" : row.name) << ':';
    for (const auto& [var, coeff] : row.coeffs) {
      os << ' ' << (coeff >= 0 ? "+" : "") << coeff << '*' << var_name(var);
    }
    switch (row.type) {
      case RowType::less_equal: os << " <= "; break;
      case RowType::greater_equal: os << " >= "; break;
      case RowType::equal: os << " == "; break;
    }
    os << row.rhs << '\n';
  }
  for (int j = 0; j < num_variables(); ++j) {
    const auto& v = variables_[static_cast<std::size_t>(j)];
    os << "  " << v.lower << " <= " << var_name(j) << " <= " << v.upper
       << '\n';
  }
  return os.str();
}

}  // namespace pigp::lp
