#pragma once

/// \file dense_simplex.hpp
/// Two-phase primal simplex on a dense tableau — the solver the paper's
/// implementation used ("We have used a dense version of simplex algorithm",
/// Ou & Ranka §2.3, footnote 1).  Row eliminations are OpenMP-parallel,
/// mirroring the paper's parallelization of the simplex step across CM-5
/// nodes.

#include <cstdint>

#include "lp/program.hpp"
#include "lp/solution.hpp"

namespace pigp::lp {

/// Tuning knobs shared by both simplex implementations.
struct SimplexOptions {
  double eps = 1e-9;             ///< pivot / reduced-cost tolerance
  double feasibility_tol = 1e-7; ///< phase-1 objective threshold
  std::int64_t max_iterations = 200000;
  bool always_bland = false;     ///< Bland's rule from the first pivot
  std::int64_t stall_limit = 128;  ///< non-improving pivots before Bland kicks in
  int num_threads = 1;           ///< OpenMP threads for tableau updates
};

/// Dense two-phase tableau simplex.  Upper bounds are handled as explicit
/// constraint rows; free variables are split.  Robust against degenerate and
/// redundant constraint systems (Bland fallback + artificial-driving).
class DenseSimplex {
 public:
  explicit DenseSimplex(SimplexOptions options = {}) : options_(options) {}

  [[nodiscard]] Solution solve(const LinearProgram& lp) const;

  [[nodiscard]] const SimplexOptions& options() const noexcept {
    return options_;
  }

 private:
  SimplexOptions options_;
};

}  // namespace pigp::lp
