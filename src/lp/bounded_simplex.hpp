#pragma once

/// \file bounded_simplex.hpp
/// Primal simplex with native upper-bound handling (the classic
/// bounded-variable technique, Chvátal ch. 8).
///
/// The paper's load-balancing LP has a box constraint 0 ≤ l_ij ≤ ε_ij on
/// every variable; the dense solver materializes each as an extra tableau
/// row, roughly doubling the row count.  This solver keeps bounds implicit:
/// a nonbasic variable may sit at either bound, represented via column flips
/// (y' = u − y) so that every nonbasic variable is at zero in current
/// coordinates.  The paper lists exactly this kind of representation
/// improvement as future work; bench_ablation quantifies the win.

#include "lp/dense_simplex.hpp"
#include "lp/program.hpp"
#include "lp/solution.hpp"

namespace pigp::lp {

/// Two-phase bounded-variable tableau simplex.  Accepts the same model
/// class as DenseSimplex and returns bit-identical Solution semantics.
class BoundedSimplex {
 public:
  explicit BoundedSimplex(SimplexOptions options = {}) : options_(options) {}

  [[nodiscard]] Solution solve(const LinearProgram& lp) const;

  [[nodiscard]] const SimplexOptions& options() const noexcept {
    return options_;
  }

 private:
  SimplexOptions options_;
};

}  // namespace pigp::lp
