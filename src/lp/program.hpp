#pragma once

/// \file program.hpp
/// Linear-program model shared by every solver in pigp::lp.
///
/// The incremental partitioner builds two kinds of LPs (Ou & Ranka §2.3 and
/// §2.4): the load-balancing program
///     minimize   Σ l_ij
///     subject to 0 ≤ l_ij ≤ ε_ij,   Σ_k (l_jk − l_kj) = |B'(j)| − μ,
/// and the refinement program
///     maximize   Σ l_ij
///     subject to 0 ≤ l_ij ≤ b_ij,   Σ_k (l_jk − l_kj) = 0.
/// Both are expressed through this class and handed to a simplex solver.

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace pigp::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { minimize, maximize };

enum class RowType { less_equal, greater_equal, equal };

/// One linear constraint Σ coeff_k · x_{var_k}  (≤ | ≥ | =)  rhs.
struct Row {
  RowType type = RowType::equal;
  std::vector<std::pair<int, double>> coeffs;  ///< (variable index, coeff)
  double rhs = 0.0;
  std::string name;
};

/// Decision variable with box bounds.
struct Variable {
  double objective = 0.0;
  double lower = 0.0;
  double upper = kInfinity;
  std::string name;
};

/// In-memory LP model.  Variables are referenced by the dense index returned
/// from add_variable().
class LinearProgram {
 public:
  explicit LinearProgram(Sense sense = Sense::minimize) : sense_(sense) {}

  /// Add a variable; returns its index.  \p lower may be -inf (free below),
  /// \p upper may be +inf; lower must not exceed upper.
  int add_variable(double objective, double lower = 0.0,
                   double upper = kInfinity, std::string name = {});

  /// Add a constraint row.  Coefficients may repeat a variable; they are
  /// summed.  Variable indices must already exist.
  void add_row(RowType type, std::vector<std::pair<int, double>> coeffs,
               double rhs, std::string name = {});

  [[nodiscard]] Sense sense() const noexcept { return sense_; }
  [[nodiscard]] int num_variables() const noexcept {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int num_rows() const noexcept {
    return static_cast<int>(rows_.size());
  }
  [[nodiscard]] const std::vector<Variable>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept {
    return rows_;
  }

  /// Objective value c'x for a full assignment.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True when \p x satisfies all bounds and rows within \p tol.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const;

  /// Human-readable dump for debugging and golden tests.
  [[nodiscard]] std::string debug_string() const;

 private:
  Sense sense_;
  std::vector<Variable> variables_;
  std::vector<Row> rows_;
};

}  // namespace pigp::lp
