#pragma once

/// \file tableau.hpp
/// Dense simplex tableau shared by DenseSimplex and BoundedSimplex: initial
/// basis construction (slack / surplus / artificial columns), objective-row
/// maintenance, and the OpenMP-parallel pivot kernel.
///
/// Layout: rows 0..m-1 are constraints, row m is the reduced-cost row; the
/// last column holds the basic-variable values (constraints) and the negated
/// objective (cost row).

#include <vector>

#include "lp/standard_form.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::lp::detail {

struct Tableau {
  DenseMatrix<double> t;       ///< (m+1) x (ncols+1)
  std::vector<int> basis;      ///< basic column per constraint row
  std::vector<double> upper;   ///< per column; kInfinity when unbounded above
  int num_structural = 0;      ///< structural columns come first
  int first_artificial = 0;    ///< columns >= this are artificial
  int ncols = 0;
  int nrows = 0;

  [[nodiscard]] bool is_artificial(int col) const noexcept {
    return col >= first_artificial;
  }
  [[nodiscard]] double rhs(int row) const { return t(row, ncols); }
  [[nodiscard]] double reduced_cost(int col) const { return t(nrows, col); }
  /// Current objective value (the cost row stores its negation).
  [[nodiscard]] double objective() const { return -t(nrows, ncols); }
};

/// Build the initial tableau: normalize row signs so rhs >= 0, append slack
/// columns for <=, surplus + artificial for >=, artificial for =.  The
/// initial basis (slacks and artificials) is feasible with all structural
/// columns nonbasic at zero.
[[nodiscard]] Tableau build_tableau(const StandardForm& sf);

/// Recompute the reduced-cost row for \p cost (size ncols, zero-extended if
/// shorter), given the current basis.
void rebuild_objective(Tableau& tab, const std::vector<double>& cost);

/// Gaussian pivot on (row, col): scales the pivot row and eliminates the
/// column from every other row including the cost row.  Uses OpenMP when
/// \p num_threads > 1 and the tableau is large enough to amortize it.
void pivot(Tableau& tab, int row, int col, int num_threads);

/// Extract the canonical solution (structural columns only, zero for
/// nonbasic) — bound flips must already be undone by the caller.
[[nodiscard]] std::vector<double> extract_structural(const Tableau& tab);

}  // namespace pigp::lp::detail
