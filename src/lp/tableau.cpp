#include "lp/tableau.hpp"

#include <cmath>

#include "support/check.hpp"

namespace pigp::lp::detail {

Tableau build_tableau(const StandardForm& sf) {
  const int m = static_cast<int>(sf.rows.size());
  const int ns = sf.num_columns();

  // Count helper columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const CanonicalRow& row : sf.rows) {
    // Sign normalization may flip <= to >= and vice versa.
    const bool negate = row.rhs < 0.0;
    RowType type = row.type;
    if (negate) {
      if (type == RowType::less_equal) {
        type = RowType::greater_equal;
      } else if (type == RowType::greater_equal) {
        type = RowType::less_equal;
      }
    }
    if (type == RowType::less_equal) {
      ++num_slack;
    } else if (type == RowType::greater_equal) {
      ++num_slack;  // surplus
      ++num_artificial;
    } else {
      ++num_artificial;
    }
  }

  Tableau tab;
  tab.num_structural = ns;
  tab.first_artificial = ns + num_slack;
  tab.ncols = ns + num_slack + num_artificial;
  tab.nrows = m;
  tab.t = DenseMatrix<double>(static_cast<std::size_t>(m + 1),
                              static_cast<std::size_t>(tab.ncols + 1), 0.0);
  tab.basis.assign(static_cast<std::size_t>(m), -1);
  tab.upper = sf.upper;
  tab.upper.resize(static_cast<std::size_t>(tab.ncols), kInfinity);

  int next_slack = ns;
  int next_artificial = ns + num_slack;
  for (int r = 0; r < m; ++r) {
    const CanonicalRow& row = sf.rows[static_cast<std::size_t>(r)];
    const bool negate = row.rhs < 0.0;
    const double sign = negate ? -1.0 : 1.0;
    RowType type = row.type;
    if (negate) {
      if (type == RowType::less_equal) {
        type = RowType::greater_equal;
      } else if (type == RowType::greater_equal) {
        type = RowType::less_equal;
      }
    }
    for (const auto& [col, coeff] : row.coeffs) {
      tab.t(r, col) = sign * coeff;
    }
    tab.t(r, tab.ncols) = sign * row.rhs;

    if (type == RowType::less_equal) {
      tab.t(r, next_slack) = 1.0;
      tab.basis[static_cast<std::size_t>(r)] = next_slack++;
    } else if (type == RowType::greater_equal) {
      tab.t(r, next_slack) = -1.0;  // surplus
      ++next_slack;
      tab.t(r, next_artificial) = 1.0;
      tab.basis[static_cast<std::size_t>(r)] = next_artificial++;
    } else {
      tab.t(r, next_artificial) = 1.0;
      tab.basis[static_cast<std::size_t>(r)] = next_artificial++;
    }
  }
  PIGP_ASSERT(next_slack == ns + num_slack);
  PIGP_ASSERT(next_artificial == tab.ncols);
  return tab;
}

void rebuild_objective(Tableau& tab, const std::vector<double>& cost) {
  const auto cost_of = [&cost](int col) {
    return static_cast<std::size_t>(col) < cost.size()
               ? cost[static_cast<std::size_t>(col)]
               : 0.0;
  };
  for (int j = 0; j <= tab.ncols; ++j) {
    tab.t(tab.nrows, j) = j < tab.ncols ? cost_of(j) : 0.0;
  }
  for (int r = 0; r < tab.nrows; ++r) {
    const double cb = cost_of(tab.basis[static_cast<std::size_t>(r)]);
    if (cb == 0.0) continue;
    for (int j = 0; j <= tab.ncols; ++j) {
      tab.t(tab.nrows, j) -= cb * tab.t(r, j);
    }
  }
}

void pivot(Tableau& tab, int row, int col, int num_threads) {
  const double piv = tab.t(row, col);
  PIGP_CHECK(std::abs(piv) > 1e-12, "pivot element too small");
  const double inv = 1.0 / piv;
  double* prow = tab.t.row(static_cast<std::size_t>(row)).data();
  const int width = tab.ncols + 1;
  for (int j = 0; j < width; ++j) prow[j] *= inv;
  prow[col] = 1.0;  // exact

  const bool parallel =
      num_threads > 1 &&
      static_cast<std::int64_t>(tab.nrows) * width > 1 << 16;
#pragma omp parallel for schedule(static) if (parallel) \
    num_threads(num_threads)
  for (int i = 0; i <= tab.nrows; ++i) {
    if (i == row) continue;
    double* irow = tab.t.row(static_cast<std::size_t>(i)).data();
    const double factor = irow[col];
    if (factor == 0.0) continue;
    for (int j = 0; j < width; ++j) irow[j] -= factor * prow[j];
    irow[col] = 0.0;  // exact
  }
  tab.basis[static_cast<std::size_t>(row)] = col;
}

std::vector<double> extract_structural(const Tableau& tab) {
  std::vector<double> y(static_cast<std::size_t>(tab.num_structural), 0.0);
  for (int r = 0; r < tab.nrows; ++r) {
    const int col = tab.basis[static_cast<std::size_t>(r)];
    if (col < tab.num_structural) {
      y[static_cast<std::size_t>(col)] = tab.rhs(r);
    }
  }
  return y;
}

}  // namespace pigp::lp::detail
