#pragma once

/// \file standard_form.hpp
/// Conversion of a LinearProgram into the canonical form the simplex
/// tableaus operate on:
///     minimize c'y   subject to  R y (≤|≥|=) r,   0 ≤ y_j ≤ u_j
/// with every y_j having lower bound zero.  Shifted, mirrored, and split
/// variables record how to map a canonical solution back to the original
/// variable space.

#include <vector>

#include "lp/program.hpp"

namespace pigp::lp::detail {

/// How one canonical column maps back to an original variable.
struct ColumnOrigin {
  enum class Kind {
    shifted,    ///< x = shift + y
    mirrored,   ///< x = shift - y  (variable had only an upper bound)
    split_pos,  ///< x = y_pos - y_neg; this is y_pos
    split_neg,  ///< the matching y_neg column
  };
  Kind kind = Kind::shifted;
  int original_var = -1;
  double shift = 0.0;
  int partner = -1;  ///< for split columns, index of the sibling column
};

/// Canonical-form row (same RowType vocabulary as the model).
struct CanonicalRow {
  RowType type = RowType::equal;
  std::vector<std::pair<int, double>> coeffs;  ///< (canonical column, coeff)
  double rhs = 0.0;
};

/// Canonical LP plus the recovery mapping.
struct StandardForm {
  std::vector<double> cost;           ///< per canonical column (minimize)
  std::vector<double> upper;          ///< per canonical column; kInfinity allowed
  std::vector<ColumnOrigin> columns;  ///< per canonical column
  std::vector<CanonicalRow> rows;
  int num_original_vars = 0;
  bool negated_objective = false;  ///< true when the model was a maximize

  [[nodiscard]] int num_columns() const noexcept {
    return static_cast<int>(cost.size());
  }

  /// Map canonical values back to the original variable space.
  [[nodiscard]] std::vector<double> recover(
      const std::vector<double>& y) const;
};

/// Build the canonical form.  When \p bounds_as_rows is true, finite upper
/// bounds are emitted as explicit `y_j <= u_j` rows and the columns carry
/// upper = +inf (the dense solver has no native bound handling); otherwise
/// bounds stay on the columns for the bounded-variable solver.
[[nodiscard]] StandardForm make_standard_form(const LinearProgram& lp,
                                              bool bounds_as_rows);

}  // namespace pigp::lp::detail
