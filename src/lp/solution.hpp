#pragma once

/// \file solution.hpp
/// Solver result type shared by DenseSimplex and BoundedSimplex.

#include <cstdint>
#include <string>
#include <vector>

namespace pigp::lp {

enum class SolveStatus {
  optimal,
  infeasible,
  unbounded,
  iteration_limit,
};

[[nodiscard]] inline const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::optimal: return "optimal";
    case SolveStatus::infeasible: return "infeasible";
    case SolveStatus::unbounded: return "unbounded";
    case SolveStatus::iteration_limit: return "iteration_limit";
  }
  return "unknown";
}

/// Outcome of a simplex solve.  \c x is meaningful only when status is
/// optimal; \c objective is in the original sense (max problems report the
/// maximum).
struct Solution {
  SolveStatus status = SolveStatus::infeasible;
  double objective = 0.0;
  std::vector<double> x;
  std::int64_t iterations = 0;      ///< total pivots across both phases
  std::int64_t phase1_iterations = 0;
};

}  // namespace pigp::lp
