#include "graph/subgraph.hpp"

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace pigp::graph {

Subgraph induced_subgraph(const Graph& g,
                          std::span<const VertexId> vertices) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> to_local(static_cast<std::size_t>(n),
                                 kInvalidVertex);
  Subgraph sub;
  sub.to_global.assign(vertices.begin(), vertices.end());

  GraphBuilder builder;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    PIGP_CHECK(v >= 0 && v < n, "subgraph vertex out of range");
    PIGP_CHECK(to_local[static_cast<std::size_t>(v)] == kInvalidVertex,
               "duplicate vertex in subgraph selection");
    to_local[static_cast<std::size_t>(v)] =
        builder.add_vertex(g.vertex_weight(v));
  }
  for (const VertexId v : vertices) {
    const VertexId lv = to_local[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId lu = to_local[static_cast<std::size_t>(nbrs[i])];
      if (lu == kInvalidVertex || nbrs[i] <= v) continue;
      builder.add_edge(lv, lu, weights[i]);
    }
  }
  sub.graph = builder.build();
  return sub;
}

}  // namespace pigp::graph
