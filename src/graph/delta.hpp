#pragma once

/// \file delta.hpp
/// Incremental graph modification — the G(V,E) → G'(V',E') step of §1.1.
///
/// The paper defines V' = V ∪ V1 − V2 and E' = E ∪ E1 − E2: a small number of
/// vertices and edges are added or deleted at each adaptation step.
/// GraphDelta captures one such step; apply_delta() materializes the new
/// graph and reports the id remapping (deletions compact vertex ids).

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

/// One vertex being added, together with the edges that attach it.  Edge
/// endpoints may name existing vertices (id < n_old) or previously listed new
/// vertices (id >= n_old, in order of appearance in added_vertices).
struct VertexAddition {
  double weight = 1.0;
  std::vector<std::pair<VertexId, double>> edges;  ///< (endpoint, weight)
};

/// Canonical (min, max) key of the undirected edge {u, v} — the one
/// representation used for removed-edge lookups and dedup everywhere
/// (apply_delta and the Session counter accounting must agree on it).
[[nodiscard]] inline std::pair<VertexId, VertexId> canonical_edge(
    VertexId u, VertexId v) noexcept {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

/// A batch of incremental modifications to a graph.
struct GraphDelta {
  std::vector<VertexAddition> added_vertices;  ///< V1 with incident edges
  /// E1 edges between vertices that both survive the delta (old or new ids).
  std::vector<std::pair<VertexId, VertexId>> added_edges;
  std::vector<double> added_edge_weights;  ///< parallel to added_edges
  std::vector<VertexId> removed_vertices;  ///< V2 (old ids); incident edges go too
  std::vector<std::pair<VertexId, VertexId>> removed_edges;  ///< E2 (old ids)

  [[nodiscard]] bool has_removals() const noexcept {
    return !removed_vertices.empty() || !removed_edges.empty();
  }
};

/// Result of applying a delta.
struct DeltaResult {
  Graph graph;  ///< G'(V', E')
  /// old_to_new[v] is v's id in the new graph, or kInvalidVertex if deleted.
  std::vector<VertexId> old_to_new;
  /// Ids of the added vertices in the new graph, in addition order.
  std::vector<VertexId> new_vertex_ids;
  /// All surviving old vertices keep ids < first_new_vertex when there are no
  /// removals; with removals, ids are compacted in old order.
  VertexId first_new_vertex = 0;
};

/// Check \p delta against \p g without modifying anything; throws
/// pigp::CheckError on the first violation.  O(Δ log Δ) — independent of
/// graph size.  Rejected: out-of-range, dead, or removed-in-this-delta
/// vertex references, self-loops, negative vertex/edge weights, removed
/// edges that do not exist, vertex additions referencing later additions,
/// and an added_edge_weights array that is neither empty nor parallel to
/// added_edges.  Both apply_delta and the in-place Session::apply run this
/// up front, so a rejected delta leaves the graph untouched (strong
/// guarantee) and the two paths agree on what a malformed delta is.
void validate_delta(const Graph& g, const GraphDelta& delta);

/// Apply \p delta to \p g, producing a new graph (the from-scratch
/// reference path; Session::apply mutates in place instead).  Validates via
/// validate_delta() and additionally requires \p g to have no dead
/// (tombstoned) vertices — compact first.  Adding an edge that already
/// exists merges the weights (sum), mirroring GraphBuilder semantics.
///
/// Append-only deltas (no removals — the paper's refinement-front case)
/// take a fast path that merges the O(Δ) new half-edges into the existing
/// sorted adjacency in one linear copy, instead of re-sorting the whole
/// graph through GraphBuilder; the resulting graph is identical.
[[nodiscard]] DeltaResult apply_delta(const Graph& g, const GraphDelta& delta);

// Forward declaration (partition.hpp includes graph.hpp only).
struct Partitioning;

/// Carry surviving vertices' partition assignments through the id remap of
/// \p applied.  The result covers exactly the surviving old vertices
/// (ids [0, applied.first_new_vertex)), ready for core::extend_assignment
/// to place the added vertices.
[[nodiscard]] Partitioning carry_partitioning(const Partitioning& old,
                                              const DeltaResult& applied);

}  // namespace pigp::graph
