#pragma once

/// \file subgraph.hpp
/// Induced subgraph extraction with id mappings — recursive bisection
/// operates on progressively smaller vertex subsets.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

/// Induced subgraph plus the mapping between local and global ids.
struct Subgraph {
  Graph graph;
  std::vector<VertexId> to_global;  ///< local id -> original id
};

/// Extract the subgraph induced by \p vertices (must be unique and in
/// range; order defines local ids).  Vertex and edge weights carry over.
[[nodiscard]] Subgraph induced_subgraph(const Graph& g,
                                        std::span<const VertexId> vertices);

}  // namespace pigp::graph
