#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace pigp::graph {

Graph::Graph(std::vector<EdgeIndex> xadj, std::vector<VertexId> adjncy,
             std::vector<double> vertex_weights,
             std::vector<double> edge_weights)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      vertex_weights_(std::move(vertex_weights)),
      edge_weights_(std::move(edge_weights)) {
  PIGP_CHECK(!xadj_.empty(), "xadj must have at least one entry");
  PIGP_CHECK(xadj_.size() == vertex_weights_.size() + 1,
             "vertex weight array size mismatch");
  PIGP_CHECK(adjncy_.size() == edge_weights_.size(),
             "edge weight array size mismatch");
  PIGP_CHECK(xadj_.back() == static_cast<EdgeIndex>(adjncy_.size()),
             "xadj terminator must equal adjncy size");
  total_vertex_weight_ =
      std::accumulate(vertex_weights_.begin(), vertex_weights_.end(), 0.0);
}

std::span<const VertexId> Graph::neighbors(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  const auto begin = static_cast<std::size_t>(xadj_[v]);
  const auto end = static_cast<std::size_t>(xadj_[v + 1]);
  return {adjncy_.data() + begin, end - begin};
}

std::span<const double> Graph::incident_edge_weights(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  const auto begin = static_cast<std::size_t>(xadj_[v]);
  const auto end = static_cast<std::size_t>(xadj_[v + 1]);
  return {edge_weights_.data() + begin, end - begin};
}

EdgeIndex Graph::degree(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  return xadj_[v + 1] - xadj_[v];
}

double Graph::vertex_weight(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  return vertex_weights_[v];
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::edge_weight(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0;
  const auto offset = static_cast<std::size_t>(
      xadj_[u] + std::distance(nbrs.begin(), it));
  return edge_weights_[offset];
}

bool Graph::has_unit_weights() const {
  const auto is_one = [](double w) { return w == 1.0; };
  return std::all_of(vertex_weights_.begin(), vertex_weights_.end(), is_one) &&
         std::all_of(edge_weights_.begin(), edge_weights_.end(), is_one);
}

void Graph::validate() const {
  const VertexId n = num_vertices();
  PIGP_CHECK(xadj_.front() == 0, "xadj must start at 0");
  for (VertexId v = 0; v < n; ++v) {
    PIGP_CHECK(xadj_[v] <= xadj_[v + 1], "xadj must be non-decreasing");
    const auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      PIGP_CHECK(u >= 0 && u < n, "neighbor id out of range");
      PIGP_CHECK(u != v, "self-loop");
      if (i > 0) {
        PIGP_CHECK(nbrs[i - 1] < u, "adjacency must be sorted and unique");
      }
      PIGP_CHECK(has_edge(u, v), "edge must be symmetric");
      PIGP_CHECK(edge_weight(u, v) == edge_weight(v, u),
                 "edge weights must be symmetric");
    }
  }
}

}  // namespace pigp::graph
