#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/check.hpp"

namespace pigp::graph {

Graph::Graph(std::vector<EdgeIndex> xadj, std::vector<VertexId> adjncy,
             std::vector<double> vertex_weights,
             std::vector<double> edge_weights)
    : adj_(std::move(adjncy)),
      ew_(std::move(edge_weights)),
      vertex_weights_(std::move(vertex_weights)) {
  PIGP_CHECK(!xadj.empty(), "xadj must have at least one entry");
  PIGP_CHECK(xadj.size() == vertex_weights_.size() + 1,
             "vertex weight array size mismatch");
  PIGP_CHECK(adj_.size() == ew_.size(), "edge weight array size mismatch");
  PIGP_CHECK(xadj.back() == static_cast<EdgeIndex>(adj_.size()),
             "xadj terminator must equal adjncy size");
  const auto n = vertex_weights_.size();
  row_begin_.resize(n);
  row_len_.resize(n);
  row_cap_.resize(n);
  live_.assign(n, 1);
  for (std::size_t v = 0; v < n; ++v) {
    PIGP_CHECK(xadj[v] <= xadj[v + 1], "xadj must be non-decreasing");
    row_begin_[v] = xadj[v];
    row_len_[v] = xadj[v + 1] - xadj[v];
    row_cap_[v] = row_len_[v];
    total_vertex_weight_ += vertex_weights_[v];
  }
  num_half_edges_ = static_cast<EdgeIndex>(adj_.size());
}

std::span<const VertexId> Graph::neighbors(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  return {adj_.data() + row_begin_[v], static_cast<std::size_t>(row_len_[v])};
}

std::span<const double> Graph::incident_edge_weights(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  return {ew_.data() + row_begin_[v], static_cast<std::size_t>(row_len_[v])};
}

EdgeIndex Graph::degree(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  return row_len_[v];
}

double Graph::vertex_weight(VertexId v) const {
  PIGP_ASSERT(v >= 0 && v < num_vertices());
  return vertex_weights_[v];
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::edge_weight(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0;
  return ew_[static_cast<std::size_t>(
      row_begin_[u] + std::distance(nbrs.begin(), it))];
}

bool Graph::has_unit_weights() const {
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (!is_live(v)) continue;
    if (vertex_weights_[static_cast<std::size_t>(v)] != 1.0) return false;
    for (const double w : incident_edge_weights(v)) {
      if (w != 1.0) return false;
    }
  }
  return true;
}

VertexId Graph::add_vertex(double weight) {
  PIGP_CHECK(weight >= 0.0, "vertex weight must be non-negative");
  const VertexId v = num_vertices();
  row_begin_.push_back(static_cast<EdgeIndex>(adj_.size()));
  row_len_.push_back(0);
  row_cap_.push_back(0);
  vertex_weights_.push_back(weight);
  live_.push_back(1);
  total_vertex_weight_ += weight;
  return v;
}

void Graph::relocate_row(VertexId u, EdgeIndex new_cap) {
  const auto len = static_cast<std::size_t>(row_len_[u]);
  const auto old_begin = static_cast<std::size_t>(row_begin_[u]);
  const auto new_begin = adj_.size();
  adj_.resize(new_begin + static_cast<std::size_t>(new_cap));
  ew_.resize(new_begin + static_cast<std::size_t>(new_cap));
  std::copy_n(adj_.begin() + static_cast<std::ptrdiff_t>(old_begin), len,
              adj_.begin() + static_cast<std::ptrdiff_t>(new_begin));
  std::copy_n(ew_.begin() + static_cast<std::ptrdiff_t>(old_begin), len,
              ew_.begin() + static_cast<std::ptrdiff_t>(new_begin));
  row_begin_[u] = static_cast<EdgeIndex>(new_begin);
  row_cap_[u] = new_cap;
}

bool Graph::half_insert(VertexId u, VertexId v, double w) {
  const auto begin = adj_.begin() + row_begin_[u];
  const auto end = begin + row_len_[u];
  const auto it = std::lower_bound(begin, end, v);
  if (it != end && *it == v) {
    ew_[static_cast<std::size_t>(row_begin_[u] + (it - begin))] += w;
    return true;
  }
  EdgeIndex pos = it - begin;
  if (row_len_[u] == row_cap_[u]) {
    relocate_row(u, std::max<EdgeIndex>(4, row_cap_[u] * 2));
  }
  const auto base = static_cast<std::ptrdiff_t>(row_begin_[u]);
  std::copy_backward(adj_.begin() + base + pos,
                     adj_.begin() + base + row_len_[u],
                     adj_.begin() + base + row_len_[u] + 1);
  std::copy_backward(ew_.begin() + base + pos, ew_.begin() + base + row_len_[u],
                     ew_.begin() + base + row_len_[u] + 1);
  adj_[static_cast<std::size_t>(base + pos)] = v;
  ew_[static_cast<std::size_t>(base + pos)] = w;
  ++row_len_[u];
  return false;
}

bool Graph::insert_edge(VertexId u, VertexId v, double w) {
  PIGP_CHECK(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices(),
             "edge endpoint out of range");
  PIGP_CHECK(u != v, "self-loop");
  PIGP_CHECK(is_live(u) && is_live(v), "edge endpoint is a dead vertex");
  PIGP_CHECK(w >= 0.0, "edge weight must be non-negative");
  const bool existed = half_insert(u, v, w);
  const bool existed_back = half_insert(v, u, w);
  PIGP_CHECK(existed == existed_back, "asymmetric adjacency detected");
  if (!existed) num_half_edges_ += 2;
  return !existed;
}

double Graph::half_remove(VertexId u, VertexId v) {
  const auto begin = adj_.begin() + row_begin_[u];
  const auto end = begin + row_len_[u];
  const auto it = std::lower_bound(begin, end, v);
  PIGP_CHECK(it != end && *it == v, "edge to remove does not exist");
  const auto base = static_cast<std::ptrdiff_t>(row_begin_[u]);
  const auto pos = it - begin;
  const double w = ew_[static_cast<std::size_t>(base + pos)];
  std::copy(adj_.begin() + base + pos + 1, adj_.begin() + base + row_len_[u],
            adj_.begin() + base + pos);
  std::copy(ew_.begin() + base + pos + 1, ew_.begin() + base + row_len_[u],
            ew_.begin() + base + pos);
  --row_len_[u];
  return w;
}

double Graph::remove_edge(VertexId u, VertexId v) {
  PIGP_CHECK(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices(),
             "edge endpoint out of range");
  PIGP_CHECK(is_live(u) && is_live(v), "edge endpoint is a dead vertex");
  const double w = half_remove(u, v);
  const double w_back = half_remove(v, u);
  PIGP_CHECK(w == w_back, "asymmetric edge weights detected");
  num_half_edges_ -= 2;
  return w;
}

void Graph::remove_vertex(VertexId v) {
  PIGP_CHECK(v >= 0 && v < num_vertices(), "vertex id out of range");
  PIGP_CHECK(is_live(v), "vertex already removed");
  // Remove the back half-edges first; v's own row is dropped wholesale.
  const auto nbrs = neighbors(v);
  for (const VertexId u : nbrs) {
    half_remove(u, v);
  }
  num_half_edges_ -= 2 * row_len_[v];
  row_len_[v] = 0;
  row_cap_[v] = 0;
  total_vertex_weight_ -= vertex_weights_[static_cast<std::size_t>(v)];
  vertex_weights_[static_cast<std::size_t>(v)] = 0.0;
  live_[static_cast<std::size_t>(v)] = 0;
  ++num_dead_;
}

VertexId Graph::compact(std::vector<VertexId>& old_to_new) {
  const VertexId n = num_vertices();
  old_to_new.assign(static_cast<std::size_t>(n), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (is_live(v)) old_to_new[static_cast<std::size_t>(v)] = next++;
  }
  const VertexId new_n = next;

  std::vector<VertexId> adj;
  std::vector<double> ew;
  adj.reserve(static_cast<std::size_t>(num_half_edges_));
  ew.reserve(static_cast<std::size_t>(num_half_edges_));
  std::vector<EdgeIndex> begin(static_cast<std::size_t>(new_n));
  std::vector<EdgeIndex> len(static_cast<std::size_t>(new_n));
  std::vector<double> vw(static_cast<std::size_t>(new_n));
  for (VertexId v = 0; v < n; ++v) {
    if (!is_live(v)) continue;
    const VertexId nv = old_to_new[static_cast<std::size_t>(v)];
    begin[static_cast<std::size_t>(nv)] = static_cast<EdgeIndex>(adj.size());
    len[static_cast<std::size_t>(nv)] = row_len_[v];
    vw[static_cast<std::size_t>(nv)] = vertex_weights_[static_cast<std::size_t>(v)];
    const auto nbrs = neighbors(v);
    const auto ws = incident_edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      // Order-preserving mapping keeps rows sorted after renumbering.
      adj.push_back(old_to_new[static_cast<std::size_t>(nbrs[i])]);
      ew.push_back(ws[i]);
    }
  }

  row_begin_ = std::move(begin);
  row_len_ = std::move(len);
  row_cap_ = row_len_;
  adj_ = std::move(adj);
  ew_ = std::move(ew);
  vertex_weights_ = std::move(vw);
  live_.assign(static_cast<std::size_t>(new_n), 1);
  num_dead_ = 0;
  return new_n;
}

void Graph::validate() const {
  const VertexId n = num_vertices();
  PIGP_CHECK(row_len_.size() == static_cast<std::size_t>(n) &&
                 row_cap_.size() == static_cast<std::size_t>(n) &&
                 vertex_weights_.size() == static_cast<std::size_t>(n) &&
                 live_.size() == static_cast<std::size_t>(n),
             "per-vertex array size mismatch");
  PIGP_CHECK(adj_.size() == ew_.size(), "slab size mismatch");
  EdgeIndex half_edges = 0;
  VertexId dead = 0;
  double total_weight = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    PIGP_CHECK(row_len_[v] >= 0 && row_len_[v] <= row_cap_[v],
               "row length exceeds capacity");
    PIGP_CHECK(row_begin_[v] >= 0 &&
                   row_begin_[v] + row_cap_[v] <=
                       static_cast<EdgeIndex>(adj_.size()),
               "row escapes the adjacency slab");
    if (!is_live(v)) {
      PIGP_CHECK(row_len_[v] == 0, "dead vertex has a non-empty row");
      PIGP_CHECK(vertex_weights_[static_cast<std::size_t>(v)] == 0.0,
                 "dead vertex has non-zero weight");
      ++dead;
      continue;
    }
    half_edges += row_len_[v];
    total_weight += vertex_weights_[static_cast<std::size_t>(v)];
    const auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      PIGP_CHECK(u >= 0 && u < n, "neighbor id out of range");
      PIGP_CHECK(u != v, "self-loop");
      PIGP_CHECK(is_live(u), "live vertex adjacent to a dead vertex");
      if (i > 0) {
        PIGP_CHECK(nbrs[i - 1] < u, "adjacency must be sorted and unique");
      }
      PIGP_CHECK(has_edge(u, v), "edge must be symmetric");
      PIGP_CHECK(edge_weight(u, v) == edge_weight(v, u),
                 "edge weights must be symmetric");
    }
  }
  PIGP_CHECK(half_edges == num_half_edges_, "half-edge counter out of sync");
  PIGP_CHECK(dead == num_dead_, "dead-vertex counter out of sync");
  PIGP_CHECK(total_weight == total_vertex_weight_ ||
                 std::abs(total_weight - total_vertex_weight_) <=
                     1e-9 * (1.0 + std::abs(total_weight)),
             "total vertex weight out of sync");
}

bool operator==(const Graph& a, const Graph& b) {
  const VertexId n = a.num_vertices();
  if (n != b.num_vertices() || a.num_half_edges_ != b.num_half_edges_) {
    return false;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (a.is_live(v) != b.is_live(v)) return false;
    if (!a.is_live(v)) continue;
    if (a.vertex_weight(v) != b.vertex_weight(v)) return false;
    const auto an = a.neighbors(v);
    const auto bn = b.neighbors(v);
    if (!std::equal(an.begin(), an.end(), bn.begin(), bn.end())) return false;
    const auto aw = a.incident_edge_weights(v);
    const auto bw = b.incident_edge_weights(v);
    if (!std::equal(aw.begin(), aw.end(), bw.begin(), bw.end())) return false;
  }
  return true;
}

}  // namespace pigp::graph
