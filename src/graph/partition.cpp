#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace pigp::graph {

void Partitioning::validate(const Graph& g) const {
  PIGP_CHECK(static_cast<VertexId>(part.size()) == g.num_vertices(),
             "partitioning size does not match graph");
  PIGP_CHECK(num_parts >= 1, "need at least one partition");
  for (PartId q : part) {
    PIGP_CHECK(q >= 0 && q < num_parts, "partition id out of range");
  }
}

PartitionMetrics compute_metrics(const Graph& g, const Partitioning& p) {
  p.validate(g);
  PartitionMetrics m;
  m.boundary_cost.assign(static_cast<std::size_t>(p.num_parts), 0.0);
  m.weight.assign(static_cast<std::size_t>(p.num_parts), 0.0);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId pv = p.part[static_cast<std::size_t>(v)];
    m.weight[static_cast<std::size_t>(pv)] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId pu = p.part[static_cast<std::size_t>(nbrs[i])];
      if (pu == pv) continue;
      m.boundary_cost[static_cast<std::size_t>(pv)] += weights[i];
      if (nbrs[i] > v) m.cut_total += weights[i];  // count each edge once
    }
  }

  m.cut_max = *std::max_element(m.boundary_cost.begin(),
                                m.boundary_cost.end());
  m.cut_min = *std::min_element(m.boundary_cost.begin(),
                                m.boundary_cost.end());
  m.max_weight = *std::max_element(m.weight.begin(), m.weight.end());
  m.min_weight = *std::min_element(m.weight.begin(), m.weight.end());
  m.avg_weight = std::accumulate(m.weight.begin(), m.weight.end(), 0.0) /
                 static_cast<double>(p.num_parts);
  m.imbalance = m.avg_weight > 0.0 ? m.max_weight / m.avg_weight : 1.0;
  return m;
}

std::vector<double> balance_targets(double total_weight, PartId num_parts) {
  PIGP_CHECK(num_parts >= 1, "need at least one partition");
  std::vector<double> targets(static_cast<std::size_t>(num_parts));
  // Largest-remainder apportionment on the integer part; exact for unit
  // weights and a sane default otherwise.
  const double base = std::floor(total_weight / num_parts);
  double assigned = base * num_parts;
  for (double& t : targets) t = base;
  std::int64_t leftover =
      static_cast<std::int64_t>(std::llround(total_weight - assigned));
  for (std::size_t q = 0; leftover > 0;
       q = (q + 1) % targets.size(), --leftover) {
    targets[q] += 1.0;
  }
  return targets;
}

bool is_balanced(const Graph& g, const Partitioning& p, double tolerance) {
  const PartitionMetrics m = compute_metrics(g, p);
  const auto targets = balance_targets(g.total_vertex_weight(), p.num_parts);
  for (std::size_t q = 0; q < targets.size(); ++q) {
    if (std::abs(m.weight[q] - targets[q]) > tolerance) return false;
  }
  return true;
}

}  // namespace pigp::graph
