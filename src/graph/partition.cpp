#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>

#include "graph/partition_state.hpp"
#include "support/check.hpp"

namespace pigp::graph {

void Partitioning::validate(const Graph& g) const {
  PIGP_CHECK(static_cast<VertexId>(part.size()) == g.num_vertices(),
             "partitioning size does not match graph");
  PIGP_CHECK(num_parts >= 1, "need at least one partition");
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId q = part[static_cast<std::size_t>(v)];
    if (g.is_live(v)) {
      PIGP_CHECK(q >= 0 && q < num_parts, "partition id out of range");
    } else {
      // Dead (tombstoned) ids carry no assignment until compaction drops
      // them.
      PIGP_CHECK(q == kUnassigned, "dead vertex must be unassigned");
    }
  }
}

PartitionMetrics compute_metrics(const Graph& g, const Partitioning& p) {
  // One definition of every metric: the batch path is the incremental
  // state's rebuild + snapshot, so the two can never disagree silently.
  return PartitionState(g, p).snapshot();
}

std::vector<double> balance_targets(double total_weight, PartId num_parts) {
  std::vector<double> targets;
  balance_targets_into(total_weight, num_parts, targets);
  return targets;
}

void balance_targets_into(double total_weight, PartId num_parts,
                          std::vector<double>& out) {
  PIGP_CHECK(num_parts >= 1, "need at least one partition");
  out.assign(static_cast<std::size_t>(num_parts), 0.0);
  // Largest-remainder apportionment on the integer part; exact for unit
  // weights and a sane default otherwise.
  const double base = std::floor(total_weight / num_parts);
  const double assigned = base * num_parts;
  for (double& t : out) t = base;
  std::int64_t leftover =
      static_cast<std::int64_t>(std::llround(total_weight - assigned));
  for (std::size_t q = 0; leftover > 0; --leftover) {
    out[q] += 1.0;
    q = (q + 1) % out.size();
  }
}

bool is_balanced(const Graph& g, const Partitioning& p, double tolerance) {
  const PartitionMetrics m = compute_metrics(g, p);
  const auto targets = balance_targets(g.total_vertex_weight(), p.num_parts);
  for (std::size_t q = 0; q < targets.size(); ++q) {
    if (std::abs(m.weight[q] - targets[q]) > tolerance) return false;
  }
  return true;
}

}  // namespace pigp::graph
