#pragma once

/// \file builder.hpp
/// Mutable accumulator that produces an immutable CSR Graph.

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

/// Collects vertices and undirected edges, then finalizes into a Graph.
/// Duplicate edges are merged by summing their weights; self-loops are
/// rejected at insertion time.
class GraphBuilder {
 public:
  /// Start with \p num_vertices unit-weight vertices.
  explicit GraphBuilder(VertexId num_vertices = 0);

  /// Append one vertex; returns its id.
  VertexId add_vertex(double weight = 1.0);

  /// Ensure at least \p n vertices exist (new ones get unit weight).
  void reserve_vertices(VertexId n);

  void set_vertex_weight(VertexId v, double weight);

  /// Record the undirected edge {u, v}.  Both endpoints must already exist.
  void add_edge(VertexId u, VertexId v, double weight = 1.0);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(vertex_weights_.size());
  }

  /// Finalize: sort adjacency, merge duplicate edges (summing weights), and
  /// return the CSR graph.  The builder may be reused afterwards.
  [[nodiscard]] Graph build() const;

 private:
  struct HalfEdge {
    VertexId from;
    VertexId to;
    double weight;
  };

  std::vector<double> vertex_weights_;
  std::vector<HalfEdge> half_edges_;
};

}  // namespace pigp::graph
