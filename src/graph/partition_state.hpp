#pragma once

/// \file partition_state.hpp
/// Incrementally maintained partition quality state — the O(Δ) companion
/// to compute_metrics().
///
/// The paper's premise is that absorbing an incremental modification must
/// cost proportional to the *change*, not the graph.  PartitionState makes
/// the quality metrics follow the same rule: it owns the per-partition
/// weights W(q) (eq. 1), the per-partition boundary costs C(q) (eq. 2) and
/// the total weighted cut, and keeps them exact under O(deg(v)) updates
/// instead of the O(V+E) rescan compute_metrics() performs.  snapshot()
/// then assembles a full PartitionMetrics in O(P).
///
/// compute_metrics() itself is implemented as rebuild() + snapshot(), so
/// there is exactly one definition of every metric — the incremental and
/// batch paths cannot disagree silently.  Edge-case contract (shared by
/// both paths):
///   * zero total weight => avg_weight == 0 and imbalance falls back to
///     1.0 ("perfectly balanced nothing");
///   * self-loops contribute nothing to any metric.  Graph forbids them
///     structurally (validate() rejects them), and every update method
///     additionally skips u == v so even a hand-built malformed adjacency
///     cannot make the two paths drift apart;
///   * vertices assigned kUnassigned contribute nothing at all (no weight,
///     no edges).  This is how a partitioning mid-update — new vertices not
///     yet placed, removed vertices retired — is represented.
///
/// All bookkeeping is plain addition/subtraction, so with integer-valued
/// weights (the paper's unit-weight default) the state stays bit-identical
/// to a fresh compute_metrics() forever; with arbitrary floating-point
/// weights it is exact up to summation-order rounding.
///
/// The Partitioning remains the source of truth for assignments: mutating
/// methods take it by reference and update it in lock-step with the
/// aggregates, so state and assignment can never be out of sync.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::graph {

class PartitionState {
 public:
  /// Empty state; rebuild() before use.
  PartitionState() = default;

  /// Equivalent to rebuild(g, p).
  PartitionState(const Graph& g, const Partitioning& p);

  /// Recompute everything from scratch in O(V+E).  Validates \p p (every
  /// vertex assigned).  This is the one full-rescan entry point; the
  /// methods below are the O(Δ) ones.
  void rebuild(const Graph& g, const Partitioning& p);

  /// Reassign \p v to \p to (which may be kUnassigned to retire the
  /// vertex; v may currently be kUnassigned to place it).  Updates
  /// p.part[v] and all aggregates in O(deg(v)).  Neighbors assigned
  /// kUnassigned are invisible: their edges start counting when they are
  /// placed, so placing a set of vertices one at a time counts every edge
  /// exactly once.
  void move_vertex(const Graph& g, Partitioning& p, VertexId v, PartId to);

  /// Account for the undirected edge {u, v} of weight \p weight being
  /// added (weight merges add the weight delta, matching GraphBuilder's
  /// duplicate-merge semantics).  No-op contribution-wise unless both
  /// endpoints are assigned to different partitions.  O(1).
  void add_edge(const Partitioning& p, VertexId u, VertexId v, double weight);

  /// Inverse of add_edge. O(1).
  void remove_edge(const Partitioning& p, VertexId u, VertexId v,
                   double weight);

  /// Fold the placements of the appended vertices [first_new,
  /// g.num_vertices()) into the state: \p p currently covers only
  /// [0, first_new) (the state's view), \p placed covers every vertex with
  /// old assignments unchanged.  Grows p to match placed and applies one
  /// move_vertex per new vertex — O(Σ deg(new)).
  void extend(const Graph& g, Partitioning& p, VertexId first_new,
              const Partitioning& placed);

  /// Bring the state from \p p to \p target by moving exactly the vertices
  /// whose assignment differs: O(V) id compares + O(deg) per changed
  /// vertex — far below a rebuild when a repartition only moved a few
  /// boundary layers.  \p p may be shorter than target (missing tail =
  /// kUnassigned, i.e. freshly appended vertices) and becomes equal to
  /// target.
  void transition(const Graph& g, Partitioning& p, const Partitioning& target);

  /// Reconcile an apply_extended()-style graph swap where edges *between
  /// old vertices* may also have changed (mesh retriangulation destroys
  /// and creates old-old edges): one merge-walk over the old-vertex
  /// adjacencies applies the exact edge diff, including weight changes.
  /// Appended vertices stay invisible until extend()/move_vertex() places
  /// them.  Returns the number of distinct edges *between old vertices*
  /// {added, removed}; edges attached to the appended vertices are NOT in
  /// `added` — callers accounting totals must derive those from the edge
  /// counts (as Session::apply_extended does).
  struct EdgeDiff {
    std::int64_t added = 0;
    std::int64_t removed = 0;
  };
  EdgeDiff reconcile_extension(const Graph& g_old, const Graph& g_new,
                               const Partitioning& p, VertexId n_old);

  /// Full PartitionMetrics in O(P): copies W/C, derives max/min/avg/
  /// imbalance with exactly compute_metrics()'s formulas.
  [[nodiscard]] PartitionMetrics snapshot() const;

  [[nodiscard]] double cut_total() const noexcept { return cut_total_; }
  [[nodiscard]] PartId num_parts() const noexcept { return num_parts_; }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weight_;
  }
  [[nodiscard]] const std::vector<double>& boundary_costs() const noexcept {
    return boundary_cost_;
  }
  /// max W(q) / avg W, 1.0 when the total weight is zero — the *single*
  /// definition of imbalance (Session batch triggers and reports both read
  /// it from here).  O(P).
  [[nodiscard]] double imbalance() const noexcept;

 private:
  std::vector<double> weight_;         ///< W(q)
  std::vector<double> boundary_cost_;  ///< C(q)
  double cut_total_ = 0.0;
  PartId num_parts_ = 0;
};

}  // namespace pigp::graph
