#pragma once

/// \file partition_state.hpp
/// Incrementally maintained partition quality state — the O(Δ) companion
/// to compute_metrics().
///
/// The paper's premise is that absorbing an incremental modification must
/// cost proportional to the *change*, not the graph.  PartitionState makes
/// the quality metrics follow the same rule: it owns the per-partition
/// weights W(q) (eq. 1), the per-partition boundary costs C(q) (eq. 2) and
/// the total weighted cut, and keeps them exact under O(deg(v)) updates
/// instead of the O(V+E) rescan compute_metrics() performs.  snapshot()
/// then assembles a full PartitionMetrics in O(P).
///
/// compute_metrics() itself is implemented as rebuild() + snapshot(), so
/// there is exactly one definition of every metric — the incremental and
/// batch paths cannot disagree silently.  Edge-case contract (shared by
/// both paths):
///   * zero total weight => avg_weight == 0 and imbalance falls back to
///     1.0 ("perfectly balanced nothing");
///   * self-loops contribute nothing to any metric.  Graph forbids them
///     structurally (validate() rejects them), and every update method
///     additionally skips u == v so even a hand-built malformed adjacency
///     cannot make the two paths drift apart;
///   * vertices assigned kUnassigned contribute nothing at all (no weight,
///     no edges).  This is how a partitioning mid-update — new vertices not
///     yet placed, removed vertices retired — is represented.
///
/// All bookkeeping is plain addition/subtraction, so with integer-valued
/// weights (the paper's unit-weight default) the state stays bit-identical
/// to a fresh compute_metrics() forever; with arbitrary floating-point
/// weights it is exact up to summation-order rounding.
///
/// The Partitioning remains the source of truth for assignments: mutating
/// methods take it by reference and update it in lock-step with the
/// aggregates, so state and assignment can never be out of sync.
///
/// Besides the aggregates, the state maintains a per-partition *boundary
/// vertex index*: for every assigned vertex an external-edge count (number
/// of distinct edges to assigned neighbors in other partitions), and per
/// partition the bucket of vertices with a positive count.  This is what
/// makes the repartition pipeline boundary-local — layering seeds and
/// refinement candidates come straight from the buckets instead of a full
/// vertex scan.  Invariant: v ∈ boundary_vertices(p.part[v]) iff
/// external_degree(v) > 0 iff v is assigned and has an assigned neighbor
/// in a different partition.  Bucket *order* is unspecified (swap-remove);
/// consumers that need determinism must sort — every in-tree consumer
/// does.  Because the index counts edges (integers), it is exact for any
/// edge weights; the structural add_edge/remove_edge vs weight-only
/// adjust_edge_weight split below exists so weight merges cannot
/// double-count an edge.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::graph {

class PartitionState {
 public:
  /// Empty state; rebuild() before use.
  PartitionState() = default;

  /// Equivalent to rebuild(g, p).
  PartitionState(const Graph& g, const Partitioning& p);

  /// Recompute everything from scratch in O(V+E).  kUnassigned entries
  /// (retired or not-yet-placed ids) are tolerated and contribute nothing;
  /// every other entry must be in [0, num_parts).  Callers that require
  /// every live vertex to be assigned validate the Partitioning
  /// separately.  This is the one full-rescan entry point; the methods
  /// below are the O(Δ) ones.
  void rebuild(const Graph& g, const Partitioning& p);

  /// Reassign \p v to \p to (which may be kUnassigned to retire the
  /// vertex; v may currently be kUnassigned to place it).  Updates
  /// p.part[v] and all aggregates in O(deg(v)).  Neighbors assigned
  /// kUnassigned are invisible: their edges start counting when they are
  /// placed, so placing a set of vertices one at a time counts every edge
  /// exactly once.
  void move_vertex(const Graph& g, Partitioning& p, VertexId v, PartId to);

  /// Account for a *new* undirected edge {u, v} of weight \p weight — one
  /// that did not exist before (the boundary index counts it).  For a
  /// duplicate add that merges into an existing edge use
  /// adjust_edge_weight.  No-op contribution-wise unless both endpoints
  /// are assigned to different partitions.  O(1).
  void add_edge(const Partitioning& p, VertexId u, VertexId v, double weight);

  /// Inverse of add_edge: the edge disappears entirely and \p weight is
  /// its full weight. O(1).
  void remove_edge(const Partitioning& p, VertexId u, VertexId v,
                   double weight);

  /// The weight of an *existing* edge {u, v} changed by \p delta_weight
  /// (GraphBuilder / apply_delta duplicate-merge semantics).  Updates the
  /// costs only — the edge count, and therefore the boundary index, is
  /// unchanged.  O(1).
  void adjust_edge_weight(const Partitioning& p, VertexId u, VertexId v,
                          double delta_weight);

  /// Grow the per-vertex arrays to cover \p n vertices (the appended ids
  /// start unassigned with no boundary presence) without touching any
  /// aggregate.  The in-place assignment path resizes once and then
  /// places each appended vertex through move_vertex — the same protocol
  /// extend() follows internally.
  void grow_vertices(VertexId n);

  /// Fold the placements of the appended vertices [first_new,
  /// g.num_vertices()) into the state: \p p currently covers only
  /// [0, first_new) (the state's view), \p placed covers every vertex with
  /// old assignments unchanged.  Grows p to match placed and applies one
  /// move_vertex per new vertex — O(Σ deg(new)).
  void extend(const Graph& g, Partitioning& p, VertexId first_new,
              const Partitioning& placed);

  /// Bring the state from \p p to \p target by moving exactly the vertices
  /// whose assignment differs: O(V) id compares + O(deg) per changed
  /// vertex — far below a rebuild when a repartition only moved a few
  /// boundary layers.  \p p may be shorter than target (missing tail =
  /// kUnassigned, i.e. freshly appended vertices) and becomes equal to
  /// target.
  void transition(const Graph& g, Partitioning& p, const Partitioning& target);

  /// Reconcile an apply_extended()-style graph swap where edges *between
  /// old vertices* may also have changed (mesh retriangulation destroys
  /// and creates old-old edges): one merge-walk over the old-vertex
  /// adjacencies applies the exact edge diff, including weight changes.
  /// Appended vertices stay invisible until extend()/move_vertex() places
  /// them.  Returns the number of distinct edges *between old vertices*
  /// {added, removed}; edges attached to the appended vertices are NOT in
  /// `added` — callers accounting totals must derive those from the edge
  /// counts (as Session::apply_extended does).
  struct EdgeDiff {
    std::int64_t added = 0;
    std::int64_t removed = 0;
  };
  EdgeDiff reconcile_extension(const Graph& g_old, const Graph& g_new,
                               const Partitioning& p, VertexId n_old);

  /// Rewrite every per-vertex entry of the boundary index through the id
  /// compaction of a delta with removals: surviving old vertex v becomes
  /// old_to_new[v] (kInvalidVertex entries must already be retired via
  /// move_vertex(…, kUnassigned)).  \p new_num_vertices is the vertex
  /// count of the new graph; appended vertices start unassigned.  The
  /// aggregates are id-free and unaffected.  O(V + boundary).
  void remap_vertices(const std::vector<VertexId>& old_to_new,
                      VertexId new_num_vertices);

  /// Full PartitionMetrics in O(P): copies W/C, derives max/min/avg/
  /// imbalance with exactly compute_metrics()'s formulas.
  [[nodiscard]] PartitionMetrics snapshot() const;

  /// The scalar fields of snapshot() without the per-partition vector
  /// copies — O(P) arithmetic, zero allocations.  This is what every
  /// SessionReport carries.
  [[nodiscard]] PartitionSummary summary() const;

  // --- boundary index ---

  /// Vertices of partition \p q with at least one external edge, in
  /// unspecified order.  O(1).
  [[nodiscard]] const std::vector<VertexId>& boundary_vertices(
      PartId q) const {
    return boundary_[static_cast<std::size_t>(q)];
  }
  /// Number of distinct edges from \p v to assigned neighbors in other
  /// partitions (0 for unassigned vertices).  O(1).
  [[nodiscard]] std::int32_t external_degree(VertexId v) const {
    return ext_degree_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool is_boundary(VertexId v) const {
    return external_degree(v) > 0;
  }

  /// O(P) copy of just the aggregates (weights, boundary costs, cut) — the
  /// cheap undo unit for speculative move batches: apply the inverse moves
  /// to restore the partitioning and the (integer) boundary index exactly,
  /// then restore_aggregates() to erase any floating-point drift.
  struct AggregateSnapshot {
    std::vector<double> weight;
    std::vector<double> boundary_cost;
    double cut_total = 0.0;
  };
  [[nodiscard]] AggregateSnapshot save_aggregates() const {
    return {weight_, boundary_cost_, cut_total_};
  }
  /// save_aggregates() into a pooled snapshot (vector assignment reuses
  /// its capacity — zero steady-state allocations).
  void save_aggregates_into(AggregateSnapshot& out) const {
    out.weight = weight_;
    out.boundary_cost = boundary_cost_;
    out.cut_total = cut_total_;
  }
  void restore_aggregates(const AggregateSnapshot& saved) {
    weight_ = saved.weight;
    boundary_cost_ = saved.boundary_cost;
    cut_total_ = saved.cut_total;
  }

  // --- O(Δ) undo journal ---
  //
  // The O(Δ) replacement for snapshotting the whole assignment vector
  // before a speculative phase.  Open a window with begin_rollback_mark();
  // until the matching end_rollback_mark() every assignment change that
  // flows through move_vertex is recorded as {vertex, previous part}.
  // undo_to_mark() replays the tail in LIFO order through move_vertex
  // itself, restoring the Partitioning and the (integer) boundary index
  // *exactly*; the float aggregates are restored up to summation drift —
  // pair the window with save/restore_aggregates (O(P)) to erase even
  // that.  Windows nest: Session wraps a whole backend run, SpmdBackend
  // opens an inner window around its retry loop.  Recording is active
  // while any window is open; the journal is freed when the outermost
  // window closes.

  /// Open a rollback window and return the journal position to pass to
  /// undo_to_mark()/end_rollback_mark().  O(1).
  [[nodiscard]] std::size_t begin_rollback_mark();
  /// Undo every move recorded after \p mark (LIFO).  O(Σ deg(moved)).
  /// Throws pigp::CheckError if the journal was invalidated by a
  /// rebuild/remap inside the window — check journal_rebased() first.
  void undo_to_mark(const Graph& g, Partitioning& p, std::size_t mark);
  /// Close the window opened at \p mark, committing (or having undone) its
  /// tail.  Closing the outermost window clears the journal.  O(1).
  void end_rollback_mark(std::size_t mark);
  /// True when rebuild() or remap_vertices() ran inside an open window:
  /// the recorded vertex ids no longer match the state, so undo_to_mark()
  /// would be wrong and refuses to run.
  [[nodiscard]] bool journal_rebased() const noexcept {
    return journal_rebased_;
  }
  /// Recorded (not yet undone) moves across all open windows.
  [[nodiscard]] std::size_t journal_size() const noexcept {
    return journal_.size();
  }

  [[nodiscard]] double cut_total() const noexcept { return cut_total_; }
  [[nodiscard]] PartId num_parts() const noexcept { return num_parts_; }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weight_;
  }
  [[nodiscard]] const std::vector<double>& boundary_costs() const noexcept {
    return boundary_cost_;
  }
  /// max W(q) / avg W, 1.0 when the total weight is zero — the *single*
  /// definition of imbalance (Session batch triggers and reports both read
  /// it from here).  O(P).
  [[nodiscard]] double imbalance() const noexcept;

 private:
  /// Transition v's bucket membership after ext_degree_[v] changed while v
  /// is assigned to \p q.
  void update_bucket(PartId q, VertexId v);
  /// Remove v from partition q's bucket if present (swap-remove).
  void bucket_erase(PartId q, VertexId v);

  std::vector<double> weight_;         ///< W(q)
  std::vector<double> boundary_cost_;  ///< C(q)
  double cut_total_ = 0.0;
  PartId num_parts_ = 0;

  /// Distinct external edges per vertex (0 when unassigned).
  std::vector<std::int32_t> ext_degree_;
  /// Per-partition bucket of boundary vertices, unordered.
  std::vector<std::vector<VertexId>> boundary_;
  /// Index of v inside its bucket, or -1.
  std::vector<std::int32_t> boundary_pos_;

  /// One undoable assignment change: v moved away from `from`.
  struct JournalEntry {
    VertexId v;
    PartId from;
  };
  std::vector<JournalEntry> journal_;
  std::int32_t journal_windows_ = 0;  ///< open rollback windows
  bool journal_replaying_ = false;    ///< suppress recording during undo
  bool journal_rebased_ = false;      ///< rebuild/remap inside a window
};

}  // namespace pigp::graph
