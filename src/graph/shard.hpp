#pragma once

/// \file shard.hpp
/// Key-range sharded graph loading for multi-process SPMD workers.
///
/// The distributed worker (core/spmd_worker) keeps the *adjacency payload*
/// — the O(E) term that dominates graph memory — sharded: rank r holds the
/// full adjacency rows only of the vertices in the partitions it owns
/// (partition q belongs to rank q % num_ranks, matching the SPMD engine's
/// round-robin ownership), plus the reverse "halo" edges pointing back at
/// them from non-resident neighbors.  The O(V) scalar vectors (partition
/// ids, vertex weights) stay replicated — the paper's CM-5 implementation
/// replicated exactly those small arrays too — so the per-rank footprint
/// is O(V + E/ranks + boundary) with the E term sharded.
///
/// Sharding is *by key range* in the intended deployment: the initial
/// partitioning handed to the loader is contiguous
/// (contiguous_partitioning below), so each worker streams the METIS file
/// and keeps a contiguous slice of adjacency rows.  The structures are
/// partitioning-agnostic, though: any replicated initial partitioning
/// works, and the worker protocol migrates adjacency rows as the balancer
/// moves vertices between ranks.
///
/// Parity invariants (the reason the shard keeps GLOBAL vertex ids and
/// whole rows rather than compacting):
///   * resident rows are byte-identical to the full graph's rows — the
///     layering's floating tally sums follow stored row order, and its
///     tie-breaks hash the global vertex id;
///   * a vertex in an owned partition always has its full row resident
///     (the worker maintains this across migrations);
///   * halo rows keep only edges into resident vertices, which preserves
///     CSR symmetry so the freshly loaded shard passes Graph::validate().

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::graph {

/// Rank that owns partition \p q — must match the SPMD engine's
/// round-robin ownership (core/spmd_igp) or parity dies.
[[nodiscard]] inline int shard_owner(PartId q, int num_ranks) {
  return static_cast<int>(q) % num_ranks;
}

/// Contiguous key-range partitioning of [0, n): partition q covers one
/// consecutive id range.  \p skew = 0 splits evenly; \p skew > 0 makes
/// range sizes proportional to 1 + skew * q, so the demo starts visibly
/// imbalanced and the LP balancer has real work to show.
[[nodiscard]] Partitioning contiguous_partitioning(VertexId n, PartId parts,
                                                   double skew = 0.0);

/// One worker's resident slice of a graph; see the file comment for the
/// residency and parity invariants.
struct GraphShard {
  int rank = 0;
  int num_ranks = 1;
  /// Partitions this rank owns (q % num_ranks == rank), ascending.
  std::vector<PartId> owned_parts;
  /// Full-vertex-count CSR: resident vertices carry their complete rows,
  /// non-resident vertices only their halo edges (and most carry none).
  Graph graph;
  /// Replicated initial partitioning the shard was cut against.
  Partitioning partitioning;
  /// resident[v] != 0 iff v's full adjacency row is present.
  std::vector<std::uint8_t> resident;
  /// Directed edge counts: resident rows, halo rows, and the full graph
  /// (the O(V/ranks + boundary) memory claim made measurable).
  std::int64_t resident_half_edges = 0;
  std::int64_t halo_half_edges = 0;
  std::int64_t total_half_edges = 0;

  [[nodiscard]] bool owns(PartId q) const {
    return shard_owner(q, num_ranks) == rank;
  }
};

/// Stream a METIS graph, keeping only rank \p rank's slice under \p p
/// (replicated; p.part.size() must equal the header's vertex count).
/// Non-resident lines are parsed and dropped save for halo edges and the
/// vertex weight, so peak memory tracks the shard, not the graph.
[[nodiscard]] GraphShard load_shard(std::istream& is, const Partitioning& p,
                                    int rank, int num_ranks);

[[nodiscard]] GraphShard load_shard_file(const std::string& path,
                                         const Partitioning& p, int rank,
                                         int num_ranks);

/// Cut a shard from an in-memory graph — the single-process path used by
/// tests and the in-process oracle (bit-identical to load_shard of the
/// same graph's METIS serialization).
[[nodiscard]] GraphShard make_shard(const Graph& g, const Partitioning& p,
                                    int rank, int num_ranks);

}  // namespace pigp::graph
