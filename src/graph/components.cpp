#include "graph/components.hpp"

namespace pigp::graph {

std::vector<std::vector<VertexId>> Components::members() const {
  std::vector<std::vector<VertexId>> groups(static_cast<std::size_t>(count));
  for (std::size_t v = 0; v < comp.size(); ++v) {
    groups[static_cast<std::size_t>(comp[v])].push_back(
        static_cast<VertexId>(v));
  }
  return groups;
}

Components connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  Components result;
  result.comp.assign(static_cast<std::size_t>(n), -1);

  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (result.comp[static_cast<std::size_t>(root)] >= 0) continue;
    const std::int32_t id = result.count++;
    result.comp[static_cast<std::size_t>(root)] = id;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : g.neighbors(u)) {
        if (result.comp[static_cast<std::size_t>(v)] < 0) {
          result.comp[static_cast<std::size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

}  // namespace pigp::graph
