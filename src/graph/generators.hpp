#pragma once

/// \file generators.hpp
/// Synthetic graph families used by tests, examples, and benchmarks.
/// Grid/torus/path graphs have analytically known cuts and Fiedler values,
/// which the spectral tests rely on; random geometric graphs approximate the
/// irregular-mesh workloads of the paper when a full Delaunay mesh is not
/// needed.

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

/// rows x cols 4-neighbor grid; vertex (r, c) has id r * cols + c.
[[nodiscard]] Graph grid_graph(int rows, int cols);

/// rows x cols torus (grid with wraparound); rows, cols >= 3.
[[nodiscard]] Graph torus_graph(int rows, int cols);

/// Path 0 - 1 - ... - (n-1).
[[nodiscard]] Graph path_graph(int n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle_graph(int n);

/// Complete graph K_n.
[[nodiscard]] Graph complete_graph(int n);

/// Star: vertex 0 connected to 1..n-1.
[[nodiscard]] Graph star_graph(int n);

/// n points uniform in the unit square, edges between pairs closer than
/// \p radius.  Coordinates are returned through \p coords_out when non-null
/// (recursive coordinate bisection needs them).
[[nodiscard]] Graph random_geometric_graph(
    int n, double radius, std::uint64_t seed,
    std::vector<std::array<double, 2>>* coords_out = nullptr);

/// G(n, p) Erdős–Rényi graph.
[[nodiscard]] Graph erdos_renyi_graph(int n, double p, std::uint64_t seed);

/// Random connected graph: a random spanning tree plus
/// floor(extra_edge_factor * n) random extra edges.  Useful for property
/// tests that require connectivity.
[[nodiscard]] Graph random_connected_graph(int n, double extra_edge_factor,
                                           std::uint64_t seed);

}  // namespace pigp::graph
