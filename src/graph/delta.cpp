#include "graph/delta.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

/// Sorted (u, v) pair for removed-edge lookups.
std::pair<VertexId, VertexId> canonical(VertexId u, VertexId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

}  // namespace

DeltaResult apply_delta(const Graph& g, const GraphDelta& delta) {
  const VertexId n_old = g.num_vertices();

  std::vector<bool> removed(static_cast<std::size_t>(n_old), false);
  for (VertexId v : delta.removed_vertices) {
    PIGP_CHECK(v >= 0 && v < n_old, "removed vertex out of range");
    removed[static_cast<std::size_t>(v)] = true;
  }

  std::vector<std::pair<VertexId, VertexId>> removed_edges;
  removed_edges.reserve(delta.removed_edges.size());
  for (const auto& [u, v] : delta.removed_edges) {
    PIGP_CHECK(u >= 0 && u < n_old && v >= 0 && v < n_old,
               "removed edge endpoint out of range");
    PIGP_CHECK(g.has_edge(u, v), "removed edge does not exist");
    removed_edges.push_back(canonical(u, v));
  }
  std::sort(removed_edges.begin(), removed_edges.end());
  const auto edge_removed = [&removed_edges](VertexId u, VertexId v) {
    return std::binary_search(removed_edges.begin(), removed_edges.end(),
                              canonical(u, v));
  };

  // Compact surviving old vertices, then append the new ones.
  DeltaResult result;
  result.old_to_new.assign(static_cast<std::size_t>(n_old), kInvalidVertex);
  GraphBuilder builder;
  for (VertexId v = 0; v < n_old; ++v) {
    if (!removed[static_cast<std::size_t>(v)]) {
      result.old_to_new[static_cast<std::size_t>(v)] =
          builder.add_vertex(g.vertex_weight(v));
    }
  }
  result.first_new_vertex = builder.num_vertices();
  result.new_vertex_ids.reserve(delta.added_vertices.size());
  for (const VertexAddition& add : delta.added_vertices) {
    result.new_vertex_ids.push_back(builder.add_vertex(add.weight));
  }

  // Resolve a delta-space id (old id or n_old + index-of-added-vertex) to a
  // new-graph id.
  const auto total_ids =
      n_old + static_cast<VertexId>(delta.added_vertices.size());
  const auto resolve = [&](VertexId id) -> VertexId {
    PIGP_CHECK(id >= 0 && id < total_ids, "delta vertex id out of range");
    if (id < n_old) {
      const VertexId mapped = result.old_to_new[static_cast<std::size_t>(id)];
      PIGP_CHECK(mapped != kInvalidVertex, "edge references removed vertex");
      return mapped;
    }
    return result.new_vertex_ids[static_cast<std::size_t>(id - n_old)];
  };

  // Surviving old edges.
  for (VertexId u = 0; u < n_old; ++u) {
    if (removed[static_cast<std::size_t>(u)]) continue;
    const auto nbrs = g.neighbors(u);
    const auto weights = g.incident_edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v <= u) continue;  // each undirected edge once
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (edge_removed(u, v)) continue;
      builder.add_edge(result.old_to_new[static_cast<std::size_t>(u)],
                       result.old_to_new[static_cast<std::size_t>(v)],
                       weights[i]);
    }
  }

  // Edges attached to new vertices.
  for (std::size_t i = 0; i < delta.added_vertices.size(); ++i) {
    const VertexId self = result.new_vertex_ids[i];
    for (const auto& [endpoint, weight] : delta.added_vertices[i].edges) {
      // Only ids introduced at or before this addition may be referenced, so
      // each undirected edge appears exactly once.
      PIGP_CHECK(endpoint < n_old + static_cast<VertexId>(i) + 1,
                 "vertex addition references a later vertex");
      const VertexId other = resolve(endpoint);
      PIGP_CHECK(other != self, "self-loop in vertex addition");
      builder.add_edge(self, other, weight);
    }
  }

  // Standalone added edges.
  PIGP_CHECK(delta.added_edges.size() == delta.added_edge_weights.size() ||
                 delta.added_edge_weights.empty(),
             "added edge weights must be empty or parallel to added_edges");
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    const auto [u, v] = delta.added_edges[i];
    const double w =
        delta.added_edge_weights.empty() ? 1.0 : delta.added_edge_weights[i];
    builder.add_edge(resolve(u), resolve(v), w);
  }

  result.graph = builder.build();
  return result;
}

Partitioning carry_partitioning(const Partitioning& old,
                                const DeltaResult& applied) {
  Partitioning carried;
  carried.num_parts = old.num_parts;
  // Surviving old vertices occupy ids [0, first_new_vertex); the added
  // vertices come after and are left for extend_assignment to place.
  carried.part.assign(static_cast<std::size_t>(applied.first_new_vertex),
                      kUnassigned);
  for (std::size_t v = 0; v < applied.old_to_new.size(); ++v) {
    const VertexId mapped = applied.old_to_new[v];
    if (mapped != kInvalidVertex) {
      carried.part[static_cast<std::size_t>(mapped)] = old.part[v];
    }
  }
  return carried;
}

}  // namespace pigp::graph
