#include "graph/delta.hpp"

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

/// Append-only fast path: with no removals the old CSR survives verbatim,
/// so instead of rebuilding (and re-sorting) the whole graph through
/// GraphBuilder — O(E log E), the dominant cost of absorbing a small delta
/// into a large graph — merge the delta's O(Δ) new half-edges into the
/// existing sorted adjacency in one linear copy pass.  Output, validation
/// semantics and duplicate-merge (weight-sum) behavior are identical to
/// the general path.
DeltaResult apply_append_only(const Graph& g, const GraphDelta& delta) {
  const VertexId n_old = g.num_vertices();
  const auto added = static_cast<VertexId>(delta.added_vertices.size());
  const VertexId n_new = n_old + added;

  DeltaResult result;
  result.old_to_new.resize(static_cast<std::size_t>(n_old));
  std::iota(result.old_to_new.begin(), result.old_to_new.end(), 0);
  result.new_vertex_ids.resize(static_cast<std::size_t>(added));
  std::iota(result.new_vertex_ids.begin(), result.new_vertex_ids.end(),
            n_old);
  result.first_new_vertex = n_old;

  // Collect and validate the new half-edges (both directions), exactly as
  // GraphBuilder would.
  struct Half {
    VertexId from;
    VertexId to;
    double weight;
  };
  std::vector<Half> extra;
  for (std::size_t i = 0; i < delta.added_vertices.size(); ++i) {
    const VertexAddition& add = delta.added_vertices[i];
    PIGP_CHECK(add.weight >= 0.0, "vertex weight must be non-negative");
    const VertexId self = n_old + static_cast<VertexId>(i);
    for (const auto& [endpoint, weight] : add.edges) {
      PIGP_CHECK(endpoint < self + 1,
                 "vertex addition references a later vertex");
      PIGP_CHECK(endpoint >= 0, "delta vertex id out of range");
      PIGP_CHECK(endpoint != self, "self-loop in vertex addition");
      PIGP_CHECK(weight >= 0.0, "edge weight must be non-negative");
      extra.push_back({self, endpoint, weight});
      extra.push_back({endpoint, self, weight});
    }
  }
  PIGP_CHECK(delta.added_edges.size() == delta.added_edge_weights.size() ||
                 delta.added_edge_weights.empty(),
             "added edge weights must be empty or parallel to added_edges");
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    const auto [u, v] = delta.added_edges[i];
    PIGP_CHECK(u >= 0 && u < n_new && v >= 0 && v < n_new,
               "delta vertex id out of range");
    PIGP_CHECK(u != v, "self-loops are not allowed");
    const double w =
        delta.added_edge_weights.empty() ? 1.0 : delta.added_edge_weights[i];
    PIGP_CHECK(w >= 0.0, "edge weight must be non-negative");
    extra.push_back({u, v, w});
    extra.push_back({v, u, w});
  }
  std::stable_sort(extra.begin(), extra.end(),
                   [](const Half& a, const Half& b) {
                     return a.from != b.from ? a.from < b.from : a.to < b.to;
                   });

  std::vector<double> vertex_weights = g.vertex_weights();
  vertex_weights.reserve(static_cast<std::size_t>(n_new));
  for (const VertexAddition& add : delta.added_vertices) {
    vertex_weights.push_back(add.weight);
  }

  std::vector<EdgeIndex> xadj;
  std::vector<VertexId> adjncy;
  std::vector<double> edge_weights;
  xadj.reserve(static_cast<std::size_t>(n_new) + 1);
  adjncy.reserve(static_cast<std::size_t>(g.num_half_edges()) + extra.size());
  edge_weights.reserve(adjncy.capacity());
  xadj.push_back(0);

  std::size_t e = 0;
  const auto extra_for = [&](VertexId v) {
    return e < extra.size() && extra[e].from == v;
  };
  for (VertexId v = 0; v < n_new; ++v) {
    const auto nbrs = v < n_old ? g.neighbors(v) : std::span<const VertexId>{};
    const auto ws =
        v < n_old ? g.incident_edge_weights(v) : std::span<const double>{};
    std::size_t i = 0;
    while (i < nbrs.size() || extra_for(v)) {
      if (!extra_for(v) || (i < nbrs.size() && nbrs[i] < extra[e].to)) {
        adjncy.push_back(nbrs[i]);
        edge_weights.push_back(ws[i]);
        ++i;
      } else {
        // One or more new half-edges toward extra[e].to; duplicates merge
        // by weight sum, onto the existing edge if there is one.
        const VertexId to = extra[e].to;
        double w = 0.0;
        if (i < nbrs.size() && nbrs[i] == to) {
          w = ws[i];
          ++i;
        }
        while (extra_for(v) && extra[e].to == to) {
          w += extra[e].weight;
          ++e;
        }
        adjncy.push_back(to);
        edge_weights.push_back(w);
      }
    }
    xadj.push_back(static_cast<EdgeIndex>(adjncy.size()));
  }

  result.graph = Graph(std::move(xadj), std::move(adjncy),
                       std::move(vertex_weights), std::move(edge_weights));
  return result;
}

}  // namespace

void validate_delta(const Graph& g, const GraphDelta& delta) {
  const VertexId n_old = g.num_vertices();
  std::vector<VertexId> removed = delta.removed_vertices;
  for (const VertexId v : removed) {
    PIGP_CHECK(v >= 0 && v < n_old, "removed vertex out of range");
    PIGP_CHECK(g.is_live(v), "removed vertex is already dead");
  }
  std::sort(removed.begin(), removed.end());
  const auto is_removed = [&removed](VertexId v) {
    return std::binary_search(removed.begin(), removed.end(), v);
  };
  for (const auto& [u, v] : delta.removed_edges) {
    PIGP_CHECK(u >= 0 && u < n_old && v >= 0 && v < n_old,
               "removed edge endpoint out of range");
    PIGP_CHECK(g.has_edge(u, v), "removed edge does not exist");
  }
  // An old-graph endpoint must survive the delta; a >= n_old endpoint names
  // an added vertex.
  const auto check_endpoint = [&](VertexId id) {
    if (id < n_old) {
      PIGP_CHECK(g.is_live(id), "edge references a dead vertex");
      PIGP_CHECK(!is_removed(id), "edge references removed vertex");
    }
  };
  for (std::size_t i = 0; i < delta.added_vertices.size(); ++i) {
    const VertexAddition& add = delta.added_vertices[i];
    PIGP_CHECK(add.weight >= 0.0, "vertex weight must be non-negative");
    const VertexId self = n_old + static_cast<VertexId>(i);
    for (const auto& [endpoint, weight] : add.edges) {
      PIGP_CHECK(endpoint >= 0, "delta vertex id out of range");
      PIGP_CHECK(endpoint < self + 1,
                 "vertex addition references a later vertex");
      PIGP_CHECK(endpoint != self, "self-loop in vertex addition");
      PIGP_CHECK(weight >= 0.0, "edge weight must be non-negative");
      check_endpoint(endpoint);
    }
  }
  PIGP_CHECK(delta.added_edges.size() == delta.added_edge_weights.size() ||
                 delta.added_edge_weights.empty(),
             "added edge weights must be empty or parallel to added_edges");
  const auto total_ids =
      n_old + static_cast<VertexId>(delta.added_vertices.size());
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    const auto [u, v] = delta.added_edges[i];
    PIGP_CHECK(u >= 0 && u < total_ids && v >= 0 && v < total_ids,
               "delta vertex id out of range");
    PIGP_CHECK(u != v, "self-loops are not allowed");
    const double w =
        delta.added_edge_weights.empty() ? 1.0 : delta.added_edge_weights[i];
    PIGP_CHECK(w >= 0.0, "edge weight must be non-negative");
    check_endpoint(u);
    check_endpoint(v);
  }
}

DeltaResult apply_delta(const Graph& g, const GraphDelta& delta) {
  PIGP_CHECK(g.num_dead_vertices() == 0,
             "apply_delta requires a compacted graph (no dead vertices)");
  validate_delta(g, delta);
  if (!delta.has_removals()) return apply_append_only(g, delta);
  const VertexId n_old = g.num_vertices();

  std::vector<bool> removed(static_cast<std::size_t>(n_old), false);
  for (VertexId v : delta.removed_vertices) {
    PIGP_CHECK(v >= 0 && v < n_old, "removed vertex out of range");
    removed[static_cast<std::size_t>(v)] = true;
  }

  std::vector<std::pair<VertexId, VertexId>> removed_edges;
  removed_edges.reserve(delta.removed_edges.size());
  for (const auto& [u, v] : delta.removed_edges) {
    PIGP_CHECK(u >= 0 && u < n_old && v >= 0 && v < n_old,
               "removed edge endpoint out of range");
    PIGP_CHECK(g.has_edge(u, v), "removed edge does not exist");
    removed_edges.push_back(canonical_edge(u, v));
  }
  std::sort(removed_edges.begin(), removed_edges.end());
  const auto edge_removed = [&removed_edges](VertexId u, VertexId v) {
    return std::binary_search(removed_edges.begin(), removed_edges.end(),
                              canonical_edge(u, v));
  };

  // Compact surviving old vertices, then append the new ones.
  DeltaResult result;
  result.old_to_new.assign(static_cast<std::size_t>(n_old), kInvalidVertex);
  GraphBuilder builder;
  for (VertexId v = 0; v < n_old; ++v) {
    if (!removed[static_cast<std::size_t>(v)]) {
      result.old_to_new[static_cast<std::size_t>(v)] =
          builder.add_vertex(g.vertex_weight(v));
    }
  }
  result.first_new_vertex = builder.num_vertices();
  result.new_vertex_ids.reserve(delta.added_vertices.size());
  for (const VertexAddition& add : delta.added_vertices) {
    result.new_vertex_ids.push_back(builder.add_vertex(add.weight));
  }

  // Resolve a delta-space id (old id or n_old + index-of-added-vertex) to a
  // new-graph id.
  const auto total_ids =
      n_old + static_cast<VertexId>(delta.added_vertices.size());
  const auto resolve = [&](VertexId id) -> VertexId {
    PIGP_CHECK(id >= 0 && id < total_ids, "delta vertex id out of range");
    if (id < n_old) {
      const VertexId mapped = result.old_to_new[static_cast<std::size_t>(id)];
      PIGP_CHECK(mapped != kInvalidVertex, "edge references removed vertex");
      return mapped;
    }
    return result.new_vertex_ids[static_cast<std::size_t>(id - n_old)];
  };

  // Surviving old edges.
  for (VertexId u = 0; u < n_old; ++u) {
    if (removed[static_cast<std::size_t>(u)]) continue;
    const auto nbrs = g.neighbors(u);
    const auto weights = g.incident_edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v <= u) continue;  // each undirected edge once
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (edge_removed(u, v)) continue;
      builder.add_edge(result.old_to_new[static_cast<std::size_t>(u)],
                       result.old_to_new[static_cast<std::size_t>(v)],
                       weights[i]);
    }
  }

  // Edges attached to new vertices.
  for (std::size_t i = 0; i < delta.added_vertices.size(); ++i) {
    const VertexId self = result.new_vertex_ids[i];
    for (const auto& [endpoint, weight] : delta.added_vertices[i].edges) {
      // Only ids introduced at or before this addition may be referenced, so
      // each undirected edge appears exactly once.
      PIGP_CHECK(endpoint < n_old + static_cast<VertexId>(i) + 1,
                 "vertex addition references a later vertex");
      const VertexId other = resolve(endpoint);
      PIGP_CHECK(other != self, "self-loop in vertex addition");
      builder.add_edge(self, other, weight);
    }
  }

  // Standalone added edges.
  PIGP_CHECK(delta.added_edges.size() == delta.added_edge_weights.size() ||
                 delta.added_edge_weights.empty(),
             "added edge weights must be empty or parallel to added_edges");
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    const auto [u, v] = delta.added_edges[i];
    const double w =
        delta.added_edge_weights.empty() ? 1.0 : delta.added_edge_weights[i];
    builder.add_edge(resolve(u), resolve(v), w);
  }

  result.graph = builder.build();
  return result;
}

Partitioning carry_partitioning(const Partitioning& old,
                                const DeltaResult& applied) {
  Partitioning carried;
  carried.num_parts = old.num_parts;
  // Surviving old vertices occupy ids [0, first_new_vertex); the added
  // vertices come after and are left for extend_assignment to place.
  carried.part.assign(static_cast<std::size_t>(applied.first_new_vertex),
                      kUnassigned);
  for (std::size_t v = 0; v < applied.old_to_new.size(); ++v) {
    const VertexId mapped = applied.old_to_new[v];
    if (mapped != kInvalidVertex) {
      carried.part[static_cast<std::size_t>(mapped)] = old.part[v];
    }
  }
  return carried;
}

}  // namespace pigp::graph
