#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace pigp::graph {

void write_metis(const Graph& g, std::ostream& os) {
  const bool vwgt = !std::all_of(g.vertex_weights().begin(),
                                 g.vertex_weights().end(),
                                 [](double w) { return w == 1.0; });
  bool ewgt = false;
  for (VertexId v = 0; v < g.num_vertices() && !ewgt; ++v) {
    const auto ws = g.incident_edge_weights(v);
    ewgt = !std::all_of(ws.begin(), ws.end(), [](double w) { return w == 1.0; });
  }
  os << g.num_vertices() << ' ' << g.num_edges();
  if (vwgt || ewgt) {
    os << ' ' << (vwgt ? '1' : '0') << (ewgt ? '1' : '0');
  }
  os << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    if (vwgt) {
      os << g.vertex_weight(v);
      first = false;
    }
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!first) os << ' ';
      first = false;
      os << (nbrs[i] + 1);  // METIS is 1-based
      if (ewgt) os << ' ' << weights[i];
    }
    os << '\n';
  }
}

Graph read_metis(std::istream& is) {
  std::string line;
  const auto next_line = [&is, &line]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '%') return true;
    }
    return false;
  };

  PIGP_CHECK(next_line(), "METIS stream missing header");
  std::istringstream header(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::string fmt = "0";
  header >> n >> m;
  PIGP_CHECK(!header.fail(), "malformed METIS header");
  header >> fmt;  // optional
  const bool vwgt = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';
  const bool ewgt = !fmt.empty() && fmt.back() == '1' && fmt != "0";

  GraphBuilder b(static_cast<VertexId>(n));
  std::int64_t half_edges = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    PIGP_CHECK(next_line(), "METIS stream truncated");
    std::istringstream row(line);
    if (vwgt) {
      double w = 1.0;
      row >> w;
      PIGP_CHECK(!row.fail(), "missing vertex weight");
      b.set_vertex_weight(static_cast<VertexId>(v), w);
    }
    std::int64_t u = 0;
    while (row >> u) {
      PIGP_CHECK(u >= 1 && u <= n, "neighbor id out of range");
      double w = 1.0;
      if (ewgt) {
        row >> w;
        PIGP_CHECK(!row.fail(), "missing edge weight");
      }
      ++half_edges;
      if (u - 1 > v) {  // add each undirected edge once
        b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(u - 1), w);
      }
    }
  }
  PIGP_CHECK(half_edges == 2 * m, "edge count does not match header");
  return b.build();
}

void save_metis_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  PIGP_CHECK(os.good(), "cannot open file for writing: " + path);
  write_metis(g, os);
}

Graph load_metis_file(const std::string& path) {
  std::ifstream is(path);
  PIGP_CHECK(is.good(), "cannot open file for reading: " + path);
  return read_metis(is);
}

void write_partition(const Partitioning& p, std::ostream& os) {
  for (const PartId q : p.part) os << q << '\n';
}

Partitioning read_partition(std::istream& is) {
  Partitioning p;
  std::int64_t q = 0;
  while (is >> q) {
    PIGP_CHECK(q >= 0, "negative partition id");
    p.part.push_back(static_cast<PartId>(q));
    p.num_parts = std::max(p.num_parts, static_cast<PartId>(q + 1));
  }
  PIGP_CHECK(!p.part.empty(), "empty partition file");
  return p;
}

void save_partition_file(const Partitioning& p, const std::string& path) {
  std::ofstream os(path);
  PIGP_CHECK(os.good(), "cannot open file for writing: " + path);
  write_partition(p, os);
}

Partitioning load_partition_file(const std::string& path) {
  std::ifstream is(path);
  PIGP_CHECK(is.good(), "cannot open file for reading: " + path);
  return read_partition(is);
}

}  // namespace pigp::graph
