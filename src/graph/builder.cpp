#include "graph/builder.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pigp::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : vertex_weights_(static_cast<std::size_t>(num_vertices), 1.0) {
  PIGP_CHECK(num_vertices >= 0, "vertex count must be non-negative");
}

VertexId GraphBuilder::add_vertex(double weight) {
  PIGP_CHECK(weight >= 0.0, "vertex weight must be non-negative");
  vertex_weights_.push_back(weight);
  return static_cast<VertexId>(vertex_weights_.size() - 1);
}

void GraphBuilder::reserve_vertices(VertexId n) {
  PIGP_CHECK(n >= 0, "vertex count must be non-negative");
  if (static_cast<std::size_t>(n) > vertex_weights_.size()) {
    vertex_weights_.resize(static_cast<std::size_t>(n), 1.0);
  }
}

void GraphBuilder::set_vertex_weight(VertexId v, double weight) {
  PIGP_CHECK(v >= 0 && v < num_vertices(), "vertex id out of range");
  PIGP_CHECK(weight >= 0.0, "vertex weight must be non-negative");
  vertex_weights_[static_cast<std::size_t>(v)] = weight;
}

void GraphBuilder::add_edge(VertexId u, VertexId v, double weight) {
  PIGP_CHECK(u >= 0 && u < num_vertices(), "edge endpoint u out of range");
  PIGP_CHECK(v >= 0 && v < num_vertices(), "edge endpoint v out of range");
  PIGP_CHECK(u != v, "self-loops are not allowed");
  PIGP_CHECK(weight >= 0.0, "edge weight must be non-negative");
  half_edges_.push_back({u, v, weight});
  half_edges_.push_back({v, u, weight});
}

Graph GraphBuilder::build() const {
  const auto n = static_cast<std::size_t>(num_vertices());
  std::vector<HalfEdge> edges = half_edges_;
  std::sort(edges.begin(), edges.end(),
            [](const HalfEdge& a, const HalfEdge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });

  // Merge duplicates (same from/to) by summing weights.
  std::size_t merged = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (merged > 0 && edges[merged - 1].from == edges[i].from &&
        edges[merged - 1].to == edges[i].to) {
      edges[merged - 1].weight += edges[i].weight;
    } else {
      edges[merged++] = edges[i];
    }
  }
  edges.resize(merged);

  std::vector<EdgeIndex> xadj(n + 1, 0);
  std::vector<VertexId> adjncy(edges.size());
  std::vector<double> eweights(edges.size());
  for (const HalfEdge& e : edges) {
    ++xadj[static_cast<std::size_t>(e.from) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) xadj[v + 1] += xadj[v];
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adjncy[i] = edges[i].to;
    eweights[i] = edges[i].weight;
  }

  return Graph(std::move(xadj), std::move(adjncy), vertex_weights_,
               std::move(eweights));
}

}  // namespace pigp::graph
