#pragma once

/// \file components.hpp
/// Connected components.  The incremental partitioner needs these to handle
/// new vertices that attach to no old vertex (§2.1: cluster them and assign
/// each cluster to the least-loaded partition) and recursive bisection needs
/// them to split disconnected subgraphs sensibly.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

/// Component labeling: comp[v] in [0, count), numbered by smallest contained
/// vertex id (deterministic).
struct Components {
  std::vector<std::int32_t> comp;
  std::int32_t count = 0;

  /// Vertices of every component, grouped; groups ordered by component id.
  [[nodiscard]] std::vector<std::vector<VertexId>> members() const;
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace pigp::graph
