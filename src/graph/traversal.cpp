#include "graph/traversal.hpp"

#include <algorithm>
#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "support/check.hpp"

namespace pigp::graph {

std::vector<std::int32_t> bfs_distances(const Graph& g,
                                        std::span<const VertexId> sources) {
  const VertexId n = g.num_vertices();
  std::vector<std::int32_t> dist(static_cast<std::size_t>(n), kUnreached);
  std::vector<VertexId> frontier;
  frontier.reserve(sources.size());
  for (VertexId s : sources) {
    PIGP_CHECK(s >= 0 && s < n, "BFS source out of range");
    if (dist[static_cast<std::size_t>(s)] == kUnreached) {
      dist[static_cast<std::size_t>(s)] = 0;
      frontier.push_back(s);
    }
  }

  std::vector<VertexId> next;
  std::int32_t level = 0;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.neighbors(u)) {
        auto& d = dist[static_cast<std::size_t>(v)];
        if (d == kUnreached) {
          d = level + 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return dist;
}

NearestSourceResult nearest_source_labels(
    const Graph& g, std::span<const std::int32_t> seed_labels,
    int num_threads) {
  const VertexId n = g.num_vertices();
  PIGP_CHECK(seed_labels.size() == static_cast<std::size_t>(n),
             "seed label array must have one entry per vertex");

  NearestSourceResult result;
  result.distance.assign(static_cast<std::size_t>(n), kUnreached);
  result.label.assign(static_cast<std::size_t>(n), -1);

  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (seed_labels[static_cast<std::size_t>(v)] >= 0) {
      result.distance[static_cast<std::size_t>(v)] = 0;
      result.label[static_cast<std::size_t>(v)] =
          seed_labels[static_cast<std::size_t>(v)];
      frontier.push_back(v);
    }
  }

  std::vector<VertexId> next;
  // Lock-free claim array — the only concurrency in this function, so it
  // is documented rather than capability-annotated (runtime/sync.hpp has
  // no vocabulary for phase-based ownership):
  //   * within pass 1, threads race only on claimed[v]; the relaxed CAS
  //     just elects one winner per vertex, and the winner publishes v
  //     through its thread-private `local` list, not through shared state;
  //   * result.distance/.label are read-only in pass 1 and written in
  //     pass 2 only for vertices of `next` (disjoint per iteration);
  //   * the happens-before edge between the passes — and between levels —
  //     is the implicit barrier at the end of each omp parallel region,
  //     which is why relaxed ordering on the CAS suffices.
  std::vector<std::atomic<std::uint8_t>> claimed(static_cast<std::size_t>(n));
  std::int32_t level = 0;
  const bool parallel = num_threads > 1 && n > 2048;

  while (!frontier.empty()) {
    next.clear();
    // Pass 1: discover the next frontier (order-independent set).
    if (parallel) {
      std::vector<std::vector<VertexId>> local(
          static_cast<std::size_t>(num_threads));
#pragma omp parallel num_threads(num_threads)
      {
#ifdef _OPENMP
        const int tid = omp_get_thread_num();
#else
        const int tid = 0;
#endif
        auto& mine = local[static_cast<std::size_t>(tid)];
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0;
             i < static_cast<std::int64_t>(frontier.size()); ++i) {
          const VertexId u = frontier[static_cast<std::size_t>(i)];
          for (VertexId v : g.neighbors(u)) {
            if (result.distance[static_cast<std::size_t>(v)] != kUnreached) {
              continue;
            }
            std::uint8_t expected = 0;
            if (claimed[static_cast<std::size_t>(v)].compare_exchange_strong(
                    expected, 1, std::memory_order_relaxed)) {
              mine.push_back(v);
            }
          }
        }
      }
      for (auto& mine : local) {
        next.insert(next.end(), mine.begin(), mine.end());
      }
      std::sort(next.begin(), next.end());
    } else {
      for (VertexId u : frontier) {
        for (VertexId v : g.neighbors(u)) {
          if (result.distance[static_cast<std::size_t>(v)] != kUnreached) {
            continue;
          }
          auto& flag = claimed[static_cast<std::size_t>(v)];
          if (flag.load(std::memory_order_relaxed) == 0) {
            flag.store(1, std::memory_order_relaxed);
            next.push_back(v);
          }
        }
      }
      std::sort(next.begin(), next.end());
    }

    // Pass 2: label each discovered vertex from its level-`level` neighbors.
    // The min-label rule makes the outcome independent of discovery order.
#pragma omp parallel for schedule(static) if (parallel) \
    num_threads(num_threads)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(next.size()); ++i) {
      const VertexId v = next[static_cast<std::size_t>(i)];
      std::int32_t best = -1;
      for (VertexId u : g.neighbors(v)) {
        if (result.distance[static_cast<std::size_t>(u)] == level) {
          const std::int32_t lu = result.label[static_cast<std::size_t>(u)];
          if (best < 0 || lu < best) best = lu;
        }
      }
      PIGP_ASSERT(best >= 0);
      result.distance[static_cast<std::size_t>(v)] = level + 1;
      result.label[static_cast<std::size_t>(v)] = best;
    }

    frontier.swap(next);
    ++level;
  }
  return result;
}

std::vector<VertexId> bfs_order(const Graph& g, VertexId root) {
  const VertexId n = g.num_vertices();
  PIGP_CHECK(root >= 0 && root < n, "BFS root out of range");
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<VertexId> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(root);
  seen[static_cast<std::size_t>(root)] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (VertexId v : g.neighbors(order[head])) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        order.push_back(v);
      }
    }
  }
  return order;
}

VertexId pseudo_peripheral_vertex(const Graph& g, VertexId root) {
  VertexId current = root;
  std::int32_t ecc = -1;
  for (int round = 0; round < 8; ++round) {
    const std::vector<VertexId> sources = {current};
    const auto dist = bfs_distances(g, sources);
    VertexId farthest = current;
    std::int32_t far_dist = 0;
    EdgeIndex far_degree = g.degree(current);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::int32_t d = dist[static_cast<std::size_t>(v)];
      if (d == kUnreached) continue;
      // Prefer the farthest vertex; among ties, the lowest degree (classic
      // Gibbs–Poole–Stockmeyer tie-break), then the smallest id.
      if (d > far_dist ||
          (d == far_dist && (g.degree(v) < far_degree ||
                             (g.degree(v) == far_degree && v < farthest)))) {
        farthest = v;
        far_dist = d;
        far_degree = g.degree(v);
      }
    }
    if (far_dist <= ecc) break;
    ecc = far_dist;
    current = farthest;
  }
  return current;
}

}  // namespace pigp::graph
