#include "graph/shard.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace pigp::graph {
namespace {

/// Shared assembly: row filtering + CSR build, fed one vertex row at a
/// time by both the streaming loader and the in-memory cutter so the two
/// produce byte-identical shards.
class ShardAssembler {
 public:
  ShardAssembler(const Partitioning& p, int rank, int num_ranks)
      : p_(p), rank_(rank), num_ranks_(num_ranks) {
    PIGP_CHECK(num_ranks >= 1, "shard needs at least one rank");
    PIGP_CHECK(rank >= 0 && rank < num_ranks, "shard rank out of range");
    PIGP_CHECK(p.num_parts >= 1, "shard needs a partitioned graph");
    const auto n = p.part.size();
    shard_.rank = rank;
    shard_.num_ranks = num_ranks;
    shard_.partitioning = p;
    shard_.resident.assign(n, 0);
    for (PartId q = 0; q < p.num_parts; ++q) {
      if (shard_owner(q, num_ranks) == rank) {
        shard_.owned_parts.push_back(q);
      }
    }
    xadj_.reserve(n + 1);
    xadj_.push_back(0);
    vweights_.reserve(n);
  }

  [[nodiscard]] bool is_resident(VertexId v) const {
    const PartId q = p_.part[static_cast<std::size_t>(v)];
    return q >= 0 && shard_owner(q, num_ranks_) == rank_;
  }

  /// Append vertex \p v's full row (sorted neighbor ids + weights).  Rows
  /// must arrive in ascending vertex order.
  void add_row(VertexId v, double vertex_weight,
               const std::vector<VertexId>& nbrs,
               const std::vector<double>& weights) {
    PIGP_CHECK(static_cast<std::size_t>(v) + 1 == xadj_.size(),
               "shard rows must arrive in vertex order");
    vweights_.push_back(vertex_weight);
    if (is_resident(v)) {
      // Resident: the row is kept byte-identical to the full graph's —
      // layering tally order and selection order read it as stored.
      shard_.resident[static_cast<std::size_t>(v)] = 1;
      adjncy_.insert(adjncy_.end(), nbrs.begin(), nbrs.end());
      eweights_.insert(eweights_.end(), weights.begin(), weights.end());
      shard_.resident_half_edges += static_cast<std::int64_t>(nbrs.size());
    } else {
      // Halo: keep only the reverse edges into resident vertices, which
      // preserves symmetry (validate()) and gives the boundary term of
      // the O(V/ranks + boundary) footprint.
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (!is_resident(nbrs[i])) continue;
        adjncy_.push_back(nbrs[i]);
        eweights_.push_back(weights[i]);
        ++shard_.halo_half_edges;
      }
    }
    xadj_.push_back(static_cast<EdgeIndex>(adjncy_.size()));
    shard_.total_half_edges += static_cast<std::int64_t>(nbrs.size());
  }

  [[nodiscard]] GraphShard finish() {
    PIGP_CHECK(xadj_.size() == p_.part.size() + 1,
               "shard loader saw fewer rows than the partitioning");
    shard_.graph = Graph(std::move(xadj_), std::move(adjncy_),
                         std::move(vweights_), std::move(eweights_));
    return std::move(shard_);
  }

 private:
  const Partitioning& p_;
  int rank_;
  int num_ranks_;
  GraphShard shard_;
  std::vector<EdgeIndex> xadj_;
  std::vector<VertexId> adjncy_;
  std::vector<double> vweights_;
  std::vector<double> eweights_;
};

}  // namespace

Partitioning contiguous_partitioning(VertexId n, PartId parts, double skew) {
  PIGP_CHECK(parts >= 1, "need at least one partition");
  PIGP_CHECK(n >= parts, "fewer vertices than partitions");
  PIGP_CHECK(skew >= 0.0, "skew must be non-negative");
  Partitioning p;
  p.num_parts = parts;
  p.part.resize(static_cast<std::size_t>(n));
  // Range sizes proportional to 1 + skew * q, fixed by cumulative rounding
  // so the ranges tile [0, n) exactly and deterministically.
  double total = 0.0;
  for (PartId q = 0; q < parts; ++q) total += 1.0 + skew * q;
  double prefix = 0.0;
  VertexId begin = 0;
  for (PartId q = 0; q < parts; ++q) {
    prefix += 1.0 + skew * q;
    VertexId end = q + 1 == parts
                       ? n
                       : static_cast<VertexId>(
                             static_cast<double>(n) * prefix / total);
    // Guarantee every partition at least one vertex even under rounding.
    end = std::max(end, begin + 1);
    end = std::min<VertexId>(end, n - (parts - 1 - q));
    for (VertexId v = begin; v < end; ++v) {
      p.part[static_cast<std::size_t>(v)] = q;
    }
    begin = end;
  }
  return p;
}

GraphShard load_shard(std::istream& is, const Partitioning& p, int rank,
                      int num_ranks) {
  std::string line;
  const auto next_line = [&is, &line]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '%') return true;
    }
    return false;
  };

  PIGP_CHECK(next_line(), "METIS stream missing header");
  std::istringstream header(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::string fmt = "0";
  header >> n >> m;
  PIGP_CHECK(!header.fail(), "malformed METIS header");
  header >> fmt;  // optional
  const bool vwgt = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';
  const bool ewgt = !fmt.empty() && fmt.back() == '1' && fmt != "0";
  PIGP_CHECK(static_cast<std::size_t>(n) == p.part.size(),
             "partitioning size does not match the METIS header");

  ShardAssembler assembler(p, rank, num_ranks);
  std::vector<VertexId> nbrs;
  std::vector<double> weights;
  for (std::int64_t v = 0; v < n; ++v) {
    PIGP_CHECK(next_line(), "METIS stream truncated");
    std::istringstream row(line);
    double vweight = 1.0;
    if (vwgt) {
      row >> vweight;
      PIGP_CHECK(!row.fail(), "missing vertex weight");
    }
    nbrs.clear();
    weights.clear();
    std::int64_t u = 0;
    while (row >> u) {
      PIGP_CHECK(u >= 1 && u <= n, "neighbor id out of range");
      double w = 1.0;
      if (ewgt) {
        row >> w;
        PIGP_CHECK(!row.fail(), "missing edge weight");
      }
      nbrs.push_back(static_cast<VertexId>(u - 1));
      weights.push_back(w);
    }
    assembler.add_row(static_cast<VertexId>(v), vweight, nbrs, weights);
  }
  GraphShard shard = assembler.finish();
  PIGP_CHECK(shard.total_half_edges == 2 * m,
             "edge count does not match header");
  return shard;
}

GraphShard load_shard_file(const std::string& path, const Partitioning& p,
                           int rank, int num_ranks) {
  std::ifstream is(path);
  PIGP_CHECK(is.good(), "cannot open file for reading: " + path);
  return load_shard(is, p, rank, num_ranks);
}

GraphShard make_shard(const Graph& g, const Partitioning& p, int rank,
                      int num_ranks) {
  PIGP_CHECK(static_cast<std::size_t>(g.num_vertices()) == p.part.size(),
             "partitioning size does not match the graph");
  ShardAssembler assembler(p, rank, num_ranks);
  std::vector<VertexId> nbrs;
  std::vector<double> weights;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto row_nbrs = g.neighbors(v);
    const auto row_weights = g.incident_edge_weights(v);
    nbrs.assign(row_nbrs.begin(), row_nbrs.end());
    weights.assign(row_weights.begin(), row_weights.end());
    assembler.add_row(v, g.vertex_weight(v), nbrs, weights);
  }
  GraphShard shard = assembler.finish();
  shard.graph.validate();  // freshly cut shards are symmetric by design
  return shard;
}

}  // namespace pigp::graph
