#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pigp::graph {

Graph grid_graph(int rows, int cols) {
  PIGP_CHECK(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  GraphBuilder b(rows * cols);
  const auto id = [cols](int r, int c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph torus_graph(int rows, int cols) {
  PIGP_CHECK(rows >= 3 && cols >= 3, "torus dimensions must be at least 3");
  GraphBuilder b(rows * cols);
  const auto id = [cols](int r, int c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph path_graph(int n) {
  PIGP_CHECK(n >= 1, "path needs at least one vertex");
  GraphBuilder b(n);
  for (int v = 0; v + 1 < n; ++v) {
    b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(v + 1));
  }
  return b.build();
}

Graph cycle_graph(int n) {
  PIGP_CHECK(n >= 3, "cycle needs at least three vertices");
  GraphBuilder b(n);
  for (int v = 0; v < n; ++v) {
    b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>((v + 1) % n));
  }
  return b.build();
}

Graph complete_graph(int n) {
  PIGP_CHECK(n >= 1, "complete graph needs at least one vertex");
  GraphBuilder b(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return b.build();
}

Graph star_graph(int n) {
  PIGP_CHECK(n >= 2, "star needs at least two vertices");
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.add_edge(0, static_cast<VertexId>(v));
  }
  return b.build();
}

Graph random_geometric_graph(int n, double radius, std::uint64_t seed,
                             std::vector<std::array<double, 2>>* coords_out) {
  PIGP_CHECK(n >= 1, "need at least one vertex");
  PIGP_CHECK(radius > 0.0, "radius must be positive");
  SplitMix64 rng(seed);
  std::vector<std::array<double, 2>> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p = {rng.next_double(), rng.next_double()};
  }

  // Bucket grid so construction is O(n) for fixed expected degree.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  std::vector<std::vector<VertexId>> grid(
      static_cast<std::size_t>(cells) * static_cast<std::size_t>(cells));
  const auto cell_of = [&](double x) {
    return std::min(cells - 1, static_cast<int>(x * cells));
  };
  for (int v = 0; v < n; ++v) {
    grid[static_cast<std::size_t>(cell_of(pts[static_cast<std::size_t>(v)][0]) *
                                  cells) +
         static_cast<std::size_t>(cell_of(pts[static_cast<std::size_t>(v)][1]))]
        .push_back(static_cast<VertexId>(v));
  }

  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (int v = 0; v < n; ++v) {
    const auto& p = pts[static_cast<std::size_t>(v)];
    const int cx = cell_of(p[0]);
    const int cy = cell_of(p[1]);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || nx >= cells || ny < 0 || ny >= cells) continue;
        for (VertexId u :
             grid[static_cast<std::size_t>(nx * cells + ny)]) {
          if (u <= v) continue;
          const auto& q = pts[static_cast<std::size_t>(u)];
          const double ddx = p[0] - q[0];
          const double ddy = p[1] - q[1];
          if (ddx * ddx + ddy * ddy <= r2) {
            b.add_edge(static_cast<VertexId>(v), u);
          }
        }
      }
    }
  }
  if (coords_out != nullptr) *coords_out = std::move(pts);
  return b.build();
}

Graph erdos_renyi_graph(int n, double p, std::uint64_t seed) {
  PIGP_CHECK(n >= 1, "need at least one vertex");
  PIGP_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  SplitMix64 rng(seed);
  GraphBuilder b(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < p) {
        b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      }
    }
  }
  return b.build();
}

Graph random_connected_graph(int n, double extra_edge_factor,
                             std::uint64_t seed) {
  PIGP_CHECK(n >= 1, "need at least one vertex");
  PIGP_CHECK(extra_edge_factor >= 0.0, "extra edge factor must be >= 0");
  SplitMix64 rng(seed);
  GraphBuilder b(n);
  // Random spanning tree: attach vertex v to a uniform earlier vertex.
  for (int v = 1; v < n; ++v) {
    const auto u = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(v)));
    b.add_edge(u, static_cast<VertexId>(v));
  }
  const auto extras =
      static_cast<std::int64_t>(extra_edge_factor * static_cast<double>(n));
  for (std::int64_t i = 0; i < extras && n >= 2; ++i) {
    const auto u = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<VertexId>((v + 1) % n);
    b.add_edge(u, v);  // duplicates merge in build()
  }
  return b.build();
}

}  // namespace pigp::graph
