#pragma once

/// \file partition.hpp
/// Partition assignments and the quality metrics the paper reports.
///
/// A partitioning is the mapping M : V -> P of §1.1.  The evaluation tables
/// (Figures 11 and 14) report, per partitioner, the "Cutset" columns
/// Total / Max / Min:
///   * Total — the number of distinct cross-partition edges (each counted
///     once; ~734 for mesh A at P=32),
///   * Max / Min — the largest and smallest per-partition boundary cost
///     C(q) = Σ w_e(v_i, v_j) over edges leaving partition q (eq. 2).
/// Load balance is W(q) = Σ w_i over vertices of q (eq. 1).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

/// Partition index; dense in [0, num_parts).
using PartId = std::int32_t;

inline constexpr PartId kUnassigned = -1;

/// Vertex-to-partition assignment.
struct Partitioning {
  std::vector<PartId> part;  ///< one entry per vertex
  PartId num_parts = 0;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(part.size());
  }
  /// Throws if any entry is outside [0, num_parts) or sizes mismatch \p g.
  void validate(const Graph& g) const;
};

/// Scalar quality summary of a partitioning — the per-report companion of
/// PartitionMetrics.  Field names match PartitionMetrics' scalars exactly;
/// only the O(P) per-partition vectors are dropped, so producing one (e.g.
/// per absorbed delta in a SessionReport) allocates nothing.  Callers that
/// need the per-partition breakdown ask for a full PartitionMetrics.
struct PartitionSummary {
  double cut_total = 0.0;   ///< cross edges, each counted once (weighted)
  double cut_max = 0.0;     ///< max over partitions of boundary cost C(q)
  double cut_min = 0.0;     ///< min over partitions of boundary cost C(q)
  double max_weight = 0.0;
  double min_weight = 0.0;
  double avg_weight = 0.0;
  /// max W(q) / average W — 1.0 is perfect balance.
  double imbalance = 0.0;
};

/// Quality summary of a partitioning.
struct PartitionMetrics {
  double cut_total = 0.0;   ///< cross edges, each counted once (weighted)
  double cut_max = 0.0;     ///< max over partitions of boundary cost C(q)
  double cut_min = 0.0;     ///< min over partitions of boundary cost C(q)
  std::vector<double> boundary_cost;  ///< C(q) per partition
  std::vector<double> weight;         ///< W(q) per partition
  double max_weight = 0.0;
  double min_weight = 0.0;
  double avg_weight = 0.0;
  /// max W(q) / average W — 1.0 is perfect balance.
  double imbalance = 0.0;
};

/// Full O(V+E) rescan; implemented as PartitionState::rebuild + snapshot
/// (partition_state.hpp), which is also the O(Δ)-maintained incremental
/// path — both share one definition of every metric.  Edge cases (same
/// contract on both paths): a graph whose total vertex weight is zero
/// reports avg_weight == 0 and the imbalance fallback 1.0; self-loop edges
/// contribute nothing to boundary costs or the cut (Graph::validate
/// rejects them structurally, and both metric paths skip them anyway).
[[nodiscard]] PartitionMetrics compute_metrics(const Graph& g,
                                               const Partitioning& p);

/// Load-balance targets: per-partition integral weight targets that sum to
/// the total weight, differing by at most one for unit weights (largest
/// remainder apportionment of total/num_parts).
[[nodiscard]] std::vector<double> balance_targets(double total_weight,
                                                  PartId num_parts);

/// Same, written into \p out (resized to num_parts) — the allocation-free
/// variant the steady-state balance driver calls with a pooled buffer.
void balance_targets_into(double total_weight, PartId num_parts,
                          std::vector<double>& out);

/// True when every partition weight is within \p tolerance of its target.
[[nodiscard]] bool is_balanced(const Graph& g, const Partitioning& p,
                               double tolerance = 1.0);

}  // namespace pigp::graph
