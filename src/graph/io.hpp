#pragma once

/// \file io.hpp
/// METIS-format graph serialization so meshes and partitions can be round-
/// tripped to disk and compared against external tools.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::graph {

/// Write \p g in METIS .graph format.  The fmt field is chosen from the
/// weights actually present (011 when both vertex and edge weights are
/// non-unit, etc.).
void write_metis(const Graph& g, std::ostream& os);

/// Parse a METIS .graph stream; supports fmt codes 0, 1, 10, 11 and comment
/// lines starting with '%'.  Throws pigp::CheckError on malformed input.
[[nodiscard]] Graph read_metis(std::istream& is);

/// File-path conveniences.
void save_metis_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_metis_file(const std::string& path);

/// METIS-style partition files: one partition id per line, in vertex order.
void write_partition(const Partitioning& p, std::ostream& os);
[[nodiscard]] Partitioning read_partition(std::istream& is);
void save_partition_file(const Partitioning& p, const std::string& path);
[[nodiscard]] Partitioning load_partition_file(const std::string& path);

}  // namespace pigp::graph
