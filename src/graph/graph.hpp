#pragma once

/// \file graph.hpp
/// Immutable undirected graph in compressed-sparse-row (CSR) form.
///
/// This is the substrate every other pigp module builds on: the meshes from
/// pigp::mesh are converted to Graphs, the spectral and incremental
/// partitioners consume Graphs, and GraphDelta (delta.hpp) produces new
/// Graphs from old ones.  Vertices carry computation weights w_i and edges
/// carry communication weights w_e(u,v) exactly as in §1.1 of Ou & Ranka.

#include <cstdint>
#include <span>
#include <vector>

namespace pigp::graph {

/// Vertex identifier; dense in [0, num_vertices()).
using VertexId = std::int32_t;
/// Index into the CSR adjacency array.
using EdgeIndex = std::int64_t;

inline constexpr VertexId kInvalidVertex = -1;

/// Immutable undirected graph (CSR).  Each undirected edge {u,v} is stored
/// twice, once in each endpoint's adjacency list; adjacency lists are sorted
/// by neighbor id and contain no self-loops or duplicates.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Construct from raw CSR arrays.  \p xadj has size n+1, \p adjncy size
  /// xadj[n]; \p vertex_weights size n; \p edge_weights parallel to
  /// \p adjncy.  Call validate() afterwards if the arrays come from an
  /// untrusted source.
  Graph(std::vector<EdgeIndex> xadj, std::vector<VertexId> adjncy,
        std::vector<double> vertex_weights, std::vector<double> edge_weights);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return xadj_.empty() ? 0 : static_cast<VertexId>(xadj_.size() - 1);
  }

  /// Number of undirected edges (each {u,v} counted once).
  [[nodiscard]] std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(adjncy_.size()) / 2;
  }

  /// Number of directed half-edges (== 2 * num_edges()).
  [[nodiscard]] EdgeIndex num_half_edges() const noexcept {
    return static_cast<EdgeIndex>(adjncy_.size());
  }

  /// Sorted neighbor list of \p v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const;

  /// Edge weights parallel to neighbors(v).
  [[nodiscard]] std::span<const double> incident_edge_weights(VertexId v) const;

  [[nodiscard]] EdgeIndex degree(VertexId v) const;

  [[nodiscard]] double vertex_weight(VertexId v) const;

  /// Sum of all vertex weights.
  [[nodiscard]] double total_vertex_weight() const noexcept {
    return total_vertex_weight_;
  }

  /// True iff the undirected edge {u, v} exists (binary search).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Weight of edge {u, v}, or 0.0 if the edge does not exist.
  [[nodiscard]] double edge_weight(VertexId u, VertexId v) const;

  /// True when every vertex and edge weight equals 1 (the paper's default).
  [[nodiscard]] bool has_unit_weights() const;

  [[nodiscard]] const std::vector<EdgeIndex>& xadj() const noexcept {
    return xadj_;
  }
  [[nodiscard]] const std::vector<VertexId>& adjncy() const noexcept {
    return adjncy_;
  }
  [[nodiscard]] const std::vector<double>& vertex_weights() const noexcept {
    return vertex_weights_;
  }
  [[nodiscard]] const std::vector<double>& edge_weights() const noexcept {
    return edge_weights_;
  }

  /// Throws pigp::CheckError if the CSR structure is malformed: non-monotone
  /// offsets, out-of-range neighbors, self-loops, unsorted or duplicate
  /// adjacency entries, asymmetric edges, or mismatched weight arrays.
  void validate() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<EdgeIndex> xadj_ = {0};
  std::vector<VertexId> adjncy_;
  std::vector<double> vertex_weights_;
  std::vector<double> edge_weights_;
  double total_vertex_weight_ = 0.0;
};

}  // namespace pigp::graph
