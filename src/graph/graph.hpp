#pragma once

/// \file graph.hpp
/// Undirected graph in slotted (blocked) adjacency form — mutable in O(Δ).
///
/// This is the substrate every other pigp module builds on: the meshes from
/// pigp::mesh are converted to Graphs, the spectral and incremental
/// partitioners consume Graphs, and GraphDelta (delta.hpp) mutates or
/// rebuilds them.  Vertices carry computation weights w_i and edges carry
/// communication weights w_e(u,v) exactly as in §1.1 of Ou & Ranka.
///
/// Representation.  Historically this was an immutable CSR; the streaming
/// path's O(V+E) wall was the rebuild a structural delta forced.  The graph
/// is now *slotted*: every vertex owns a row [row_begin_[v],
/// row_begin_[v] + row_len_[v]) inside shared adjacency slabs, with
/// row_cap_[v] >= row_len_[v] slots of capacity.  Construction from CSR
/// produces tight rows (cap == len, slabs == CSR arrays, no overhead); a
/// row that outgrows its capacity is relocated to the end of the slab with
/// doubled capacity (the *overflow arena*), leaving its old slots behind as
/// garbage.  Rows stay sorted by neighbor id, so every read-side guarantee
/// of the CSR era still holds: neighbors()/incident_edge_weights() return
/// contiguous sorted spans, has_edge()/edge_weight() binary-search.
///
/// Mutation contract (all bounds independent of |V| and |E|):
///   * insert_edge(u, v, w): amortized O(deg(u) + deg(v)) — a sorted
///     in-row insertion, plus an occasional relocation whose cost is
///     amortized by the doubling capacity;
///   * remove_edge(u, v): O(deg(u) + deg(v));
///   * add_vertex(w): amortized O(1);
///   * remove_vertex(v): O(Σ_{u ∈ N(v)} deg(u)) — each incident edge is
///     also removed from the neighbor's row.  A removed vertex becomes a
///     *dead* (tombstoned) id: it keeps its slot in the id space, is not
///     live(), has weight 0 and an empty row.  Dead vertices are therefore
///     completely isolated — no adjacency walk can ever reach one — which
///     is the invariant that lets every boundary-local pipeline phase run
///     unmodified over a graph with tombstones.
///   * compact(): O(V + E) — rewrites the graph tightly, dropping dead ids
///     and garbage slots.  The mapping is order-preserving (surviving
///     vertices keep their relative order), matching the id-compaction
///     convention of apply_delta since PR 1.
///
/// Aggregates (num_edges, total_vertex_weight, adjacency_slack) are
/// maintained incrementally and count live vertices/edges only.
///
/// Thread safety: const member functions are safe to call concurrently;
/// any mutation requires exclusive access (same rule as the containers it
/// is built from).

#include <cstdint>
#include <span>
#include <vector>

namespace pigp::graph {

/// Vertex identifier; dense in [0, num_vertices()).  With deferred
/// compaction some ids in that range may be dead — see is_live().
using VertexId = std::int32_t;
/// Index into the adjacency slabs.
using EdgeIndex = std::int64_t;

inline constexpr VertexId kInvalidVertex = -1;

/// Undirected graph in slotted adjacency form.  Each undirected edge {u,v}
/// is stored twice, once in each endpoint's row; rows are sorted by
/// neighbor id and contain no self-loops or duplicates.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Construct from raw CSR arrays (rows become tight slots: cap == len).
  /// \p xadj has size n+1, \p adjncy size xadj[n]; \p vertex_weights size
  /// n; \p edge_weights parallel to \p adjncy.  Call validate() afterwards
  /// if the arrays come from an untrusted source.  Every vertex is live.
  Graph(std::vector<EdgeIndex> xadj, std::vector<VertexId> adjncy,
        std::vector<double> vertex_weights, std::vector<double> edge_weights);

  /// Size of the id space, including dead (tombstoned) ids.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(row_begin_.size());
  }

  /// True when \p v has not been removed.  O(1).
  [[nodiscard]] bool is_live(VertexId v) const {
    return live_[static_cast<std::size_t>(v)] != 0;
  }
  [[nodiscard]] VertexId num_dead_vertices() const noexcept {
    return num_dead_;
  }
  [[nodiscard]] VertexId num_live_vertices() const noexcept {
    return num_vertices() - num_dead_;
  }

  /// Number of undirected edges between live vertices (each {u,v} once).
  [[nodiscard]] std::int64_t num_edges() const noexcept {
    return num_half_edges_ / 2;
  }

  /// Number of directed half-edges (== 2 * num_edges()).  Maintained, O(1).
  [[nodiscard]] EdgeIndex num_half_edges() const noexcept {
    return num_half_edges_;
  }

  /// Adjacency slots currently held but not storing a live half-edge:
  /// per-row capacity slack plus the garbage left behind by row
  /// relocations and removals.  The deferred-compaction trigger watches
  /// this against the slab size.  O(1).
  [[nodiscard]] EdgeIndex adjacency_slack() const noexcept {
    return static_cast<EdgeIndex>(adj_.size()) - num_half_edges_;
  }
  /// Total allocated adjacency slots (live + slack).  O(1).
  [[nodiscard]] EdgeIndex adjacency_capacity() const noexcept {
    return static_cast<EdgeIndex>(adj_.size());
  }

  /// Sorted neighbor list of \p v (empty for dead vertices).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const;

  /// Edge weights parallel to neighbors(v).
  [[nodiscard]] std::span<const double> incident_edge_weights(VertexId v) const;

  [[nodiscard]] EdgeIndex degree(VertexId v) const;

  /// Weight of \p v (0 for dead vertices).
  [[nodiscard]] double vertex_weight(VertexId v) const;

  /// Sum of all live vertex weights.  Maintained, O(1).
  [[nodiscard]] double total_vertex_weight() const noexcept {
    return total_vertex_weight_;
  }

  /// True iff the undirected edge {u, v} exists (binary search).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Weight of edge {u, v}, or 0.0 if the edge does not exist.
  [[nodiscard]] double edge_weight(VertexId u, VertexId v) const;

  /// True when every live vertex and edge weight equals 1 (the paper's
  /// default).  O(V + E).
  [[nodiscard]] bool has_unit_weights() const;

  /// Per-id vertex weights (dead entries are 0).  Kept for bulk consumers
  /// (io, the sharded SPMD loader); adjacency has no raw-array accessor —
  /// use the per-vertex spans.
  [[nodiscard]] const std::vector<double>& vertex_weights() const noexcept {
    return vertex_weights_;
  }

  // --- O(Δ) mutators -----------------------------------------------------

  /// Append one live vertex with no edges; returns its id.  Amortized O(1).
  VertexId add_vertex(double weight);

  /// Insert the undirected edge {u, v} (both endpoints live, u != v).
  /// Returns true when the edge is structurally new; a duplicate merges by
  /// summing \p w onto the existing weight (GraphBuilder semantics) and
  /// returns false.  Amortized O(deg(u) + deg(v)).
  bool insert_edge(VertexId u, VertexId v, double w);

  /// Remove the undirected edge {u, v} (must exist); returns its weight.
  /// O(deg(u) + deg(v)).
  double remove_edge(VertexId u, VertexId v);

  /// Remove \p v (must be live): every incident edge goes too, the id
  /// becomes dead with weight 0 and an empty row.  Ids do not shift — use
  /// compact() to reclaim them.  O(Σ_{u ∈ N(v)} deg(u)).
  void remove_vertex(VertexId v);

  /// Drop dead ids and garbage slots: surviving vertices are renumbered
  /// order-preservingly, rows become tight, and \p old_to_new receives the
  /// mapping (size = the old id space; removed ids map to kInvalidVertex).
  /// Returns the new vertex count.  O(V + E).
  VertexId compact(std::vector<VertexId>& old_to_new);

  /// Throws pigp::CheckError if the structure is malformed: out-of-range or
  /// dead neighbors, self-loops, unsorted or duplicate row entries,
  /// asymmetric edges or weights, rows escaping the slab, non-empty dead
  /// rows, or maintained counters that disagree with a recount.
  void validate() const;

  /// Semantic equality: same id space, same liveness, and identical
  /// weights and sorted adjacency per live vertex.  Slot layout (capacity
  /// slack, relocation history) is not observable.
  friend bool operator==(const Graph& a, const Graph& b);

 private:
  /// Insert \p v into \p u's sorted row; true if {u,v} already existed (the
  /// weight is merged instead).
  bool half_insert(VertexId u, VertexId v, double w);
  /// Remove \p v from \p u's sorted row (must be present).  Returns the
  /// stored weight.
  double half_remove(VertexId u, VertexId v);
  /// Move \p u's row to the end of the slab with capacity \p new_cap.
  void relocate_row(VertexId u, EdgeIndex new_cap);

  std::vector<EdgeIndex> row_begin_;
  std::vector<EdgeIndex> row_len_;
  std::vector<EdgeIndex> row_cap_;
  std::vector<VertexId> adj_;  ///< adjacency slab (rows + slack + garbage)
  std::vector<double> ew_;     ///< edge-weight slab, parallel to adj_
  std::vector<double> vertex_weights_;
  std::vector<std::uint8_t> live_;
  VertexId num_dead_ = 0;
  EdgeIndex num_half_edges_ = 0;
  double total_vertex_weight_ = 0.0;
};

}  // namespace pigp::graph
