#include "graph/partition_state.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace pigp::graph {

PartitionState::PartitionState(const Graph& g, const Partitioning& p) {
  rebuild(g, p);
}

void PartitionState::update_bucket(PartId q, VertexId v) {
  const auto vi = static_cast<std::size_t>(v);
  if (ext_degree_[vi] > 0) {
    if (boundary_pos_[vi] < 0) {
      auto& bucket = boundary_[static_cast<std::size_t>(q)];
      boundary_pos_[vi] = static_cast<std::int32_t>(bucket.size());
      bucket.push_back(v);
    }
  } else {
    bucket_erase(q, v);
  }
}

void PartitionState::bucket_erase(PartId q, VertexId v) {
  const auto vi = static_cast<std::size_t>(v);
  const std::int32_t pos = boundary_pos_[vi];
  if (pos < 0) return;
  auto& bucket = boundary_[static_cast<std::size_t>(q)];
  const VertexId last = bucket.back();
  bucket[static_cast<std::size_t>(pos)] = last;
  boundary_pos_[static_cast<std::size_t>(last)] = pos;
  bucket.pop_back();
  boundary_pos_[vi] = -1;
}

void PartitionState::rebuild(const Graph& g, const Partitioning& p) {
  PIGP_CHECK(static_cast<VertexId>(p.part.size()) == g.num_vertices(),
             "partitioning size does not match graph");
  PIGP_CHECK(p.num_parts >= 1, "need at least one partition");
  if (journal_windows_ > 0) journal_rebased_ = true;
  num_parts_ = p.num_parts;
  weight_.assign(static_cast<std::size_t>(num_parts_), 0.0);
  boundary_cost_.assign(static_cast<std::size_t>(num_parts_), 0.0);
  cut_total_ = 0.0;
  ext_degree_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  boundary_pos_.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  boundary_.assign(static_cast<std::size_t>(num_parts_), {});

  // Accumulation order matches the historical compute_metrics() loop so
  // floating-point results are bit-identical to the pre-PartitionState
  // implementation.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId pv = p.part[static_cast<std::size_t>(v)];
    // kUnassigned entries (retired or not-yet-placed ids) contribute
    // nothing — same rule as move_vertex.
    if (pv == kUnassigned) continue;
    PIGP_CHECK(pv >= 0 && pv < num_parts_, "partition id out of range");
    weight_[static_cast<std::size_t>(pv)] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    std::int32_t ext = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId pu = p.part[static_cast<std::size_t>(nbrs[i])];
      if (pu == kUnassigned) continue;  // invisible until placed
      if (pu == pv) continue;  // internal edges and self-loops: no cost
      boundary_cost_[static_cast<std::size_t>(pv)] += weights[i];
      if (nbrs[i] > v) cut_total_ += weights[i];  // count each edge once
      ++ext;
    }
    if (ext > 0) {
      ext_degree_[static_cast<std::size_t>(v)] = ext;
      boundary_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(
          boundary_[static_cast<std::size_t>(pv)].size());
      boundary_[static_cast<std::size_t>(pv)].push_back(v);
    }
  }
}

// pigp:steady-state
void PartitionState::move_vertex(const Graph& g, Partitioning& p, VertexId v,
                                 PartId to) {
  const PartId from = p.part[static_cast<std::size_t>(v)];
  if (from == to) return;
  PIGP_CHECK(to == kUnassigned || (to >= 0 && to < num_parts_),
             "move_vertex destination out of range");
  if (journal_windows_ > 0 && !journal_replaying_) {
    journal_.push_back({v, from});
  }

  const auto nbrs = g.neighbors(v);
  const auto weights = g.incident_edge_weights(v);
  std::int32_t new_ext = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == v) continue;  // self-loops contribute nothing
    const PartId q = p.part[static_cast<std::size_t>(nbrs[i])];
    if (q == kUnassigned) continue;  // counted when the neighbor is placed
    const double w = weights[i];
    const bool was_external = from != kUnassigned && q != from;
    const bool is_external = to != kUnassigned && q != to;
    if (was_external) {
      boundary_cost_[static_cast<std::size_t>(from)] -= w;
      boundary_cost_[static_cast<std::size_t>(q)] -= w;
      cut_total_ -= w;
    }
    if (is_external) {
      boundary_cost_[static_cast<std::size_t>(to)] += w;
      boundary_cost_[static_cast<std::size_t>(q)] += w;
      cut_total_ += w;
      ++new_ext;
    }
    if (was_external != is_external) {
      ext_degree_[static_cast<std::size_t>(nbrs[i])] +=
          is_external ? 1 : -1;
      update_bucket(q, nbrs[i]);
    }
  }
  if (from != kUnassigned) {
    weight_[static_cast<std::size_t>(from)] -= g.vertex_weight(v);
    bucket_erase(from, v);
  }
  if (to != kUnassigned) {
    weight_[static_cast<std::size_t>(to)] += g.vertex_weight(v);
  }
  ext_degree_[static_cast<std::size_t>(v)] =
      to == kUnassigned ? 0 : new_ext;
  if (to != kUnassigned) update_bucket(to, v);
  p.part[static_cast<std::size_t>(v)] = to;
}

void PartitionState::add_edge(const Partitioning& p, VertexId u, VertexId v,
                              double weight) {
  if (u == v) return;  // self-loops contribute nothing
  const PartId pu = p.part[static_cast<std::size_t>(u)];
  const PartId pv = p.part[static_cast<std::size_t>(v)];
  if (pu == kUnassigned || pv == kUnassigned || pu == pv) return;
  boundary_cost_[static_cast<std::size_t>(pu)] += weight;
  boundary_cost_[static_cast<std::size_t>(pv)] += weight;
  cut_total_ += weight;
  ++ext_degree_[static_cast<std::size_t>(u)];
  ++ext_degree_[static_cast<std::size_t>(v)];
  update_bucket(pu, u);
  update_bucket(pv, v);
}

void PartitionState::remove_edge(const Partitioning& p, VertexId u, VertexId v,
                                 double weight) {
  if (u == v) return;
  const PartId pu = p.part[static_cast<std::size_t>(u)];
  const PartId pv = p.part[static_cast<std::size_t>(v)];
  if (pu == kUnassigned || pv == kUnassigned || pu == pv) return;
  boundary_cost_[static_cast<std::size_t>(pu)] -= weight;
  boundary_cost_[static_cast<std::size_t>(pv)] -= weight;
  cut_total_ -= weight;
  --ext_degree_[static_cast<std::size_t>(u)];
  --ext_degree_[static_cast<std::size_t>(v)];
  update_bucket(pu, u);
  update_bucket(pv, v);
}

void PartitionState::adjust_edge_weight(const Partitioning& p, VertexId u,
                                        VertexId v, double delta_weight) {
  if (u == v) return;
  const PartId pu = p.part[static_cast<std::size_t>(u)];
  const PartId pv = p.part[static_cast<std::size_t>(v)];
  if (pu == kUnassigned || pv == kUnassigned || pu == pv) return;
  boundary_cost_[static_cast<std::size_t>(pu)] += delta_weight;
  boundary_cost_[static_cast<std::size_t>(pv)] += delta_weight;
  cut_total_ += delta_weight;
}

void PartitionState::grow_vertices(VertexId n) {
  PIGP_CHECK(static_cast<std::size_t>(n) >= ext_degree_.size(),
             "grow_vertices cannot shrink the vertex-id space");
  ext_degree_.resize(static_cast<std::size_t>(n), 0);
  boundary_pos_.resize(static_cast<std::size_t>(n), -1);
}

void PartitionState::extend(const Graph& g, Partitioning& p,
                            VertexId first_new, const Partitioning& placed) {
  PIGP_CHECK(placed.num_vertices() == g.num_vertices(),
             "placed partitioning does not cover the extended graph");
  PIGP_CHECK(static_cast<VertexId>(p.part.size()) <= placed.num_vertices(),
             "current partitioning larger than the extended one");
  p.part.resize(static_cast<std::size_t>(g.num_vertices()), kUnassigned);
  grow_vertices(g.num_vertices());
  for (VertexId v = first_new; v < g.num_vertices(); ++v) {
    move_vertex(g, p, v, placed.part[static_cast<std::size_t>(v)]);
  }
}

void PartitionState::transition(const Graph& g, Partitioning& p,
                                const Partitioning& target) {
  PIGP_CHECK(target.num_vertices() == g.num_vertices(),
             "target partitioning does not cover the graph");
  PIGP_CHECK(static_cast<VertexId>(p.part.size()) <= target.num_vertices(),
             "current partitioning larger than the target");
  p.part.resize(static_cast<std::size_t>(g.num_vertices()), kUnassigned);
  ext_degree_.resize(static_cast<std::size_t>(g.num_vertices()), 0);
  boundary_pos_.resize(static_cast<std::size_t>(g.num_vertices()), -1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId want = target.part[static_cast<std::size_t>(v)];
    if (p.part[static_cast<std::size_t>(v)] != want) {
      move_vertex(g, p, v, want);
    }
  }
}

void PartitionState::remap_vertices(const std::vector<VertexId>& old_to_new,
                                    VertexId new_num_vertices) {
  if (journal_windows_ > 0) journal_rebased_ = true;
  std::vector<std::int32_t> ext(static_cast<std::size_t>(new_num_vertices),
                                0);
  std::vector<std::int32_t> pos(static_cast<std::size_t>(new_num_vertices),
                                -1);
  // Only bucket members carry information: ext_degree > 0 iff in a bucket.
  for (auto& bucket : boundary_) {
    for (std::size_t slot = 0; slot < bucket.size(); ++slot) {
      const VertexId old_v = bucket[slot];
      PIGP_CHECK(old_v >= 0 &&
                     old_v < static_cast<VertexId>(old_to_new.size()),
                 "remap_vertices: boundary vertex out of range");
      const VertexId new_v = old_to_new[static_cast<std::size_t>(old_v)];
      PIGP_CHECK(new_v != kInvalidVertex,
                 "remap_vertices: boundary vertex was removed but not "
                 "retired first");
      bucket[slot] = new_v;
      ext[static_cast<std::size_t>(new_v)] =
          ext_degree_[static_cast<std::size_t>(old_v)];
      pos[static_cast<std::size_t>(new_v)] =
          static_cast<std::int32_t>(slot);
    }
  }
  ext_degree_ = std::move(ext);
  boundary_pos_ = std::move(pos);
}

PartitionState::EdgeDiff PartitionState::reconcile_extension(
    const Graph& g_old, const Graph& g_new, const Partitioning& p,
    VertexId n_old) {
  PIGP_CHECK(n_old == g_old.num_vertices() && g_new.num_vertices() >= n_old,
             "reconcile_extension: new graph must extend the old one");
  EdgeDiff diff;
  for (VertexId v = 0; v < n_old; ++v) {
    const double dw = g_new.vertex_weight(v) - g_old.vertex_weight(v);
    if (dw != 0.0) {
      const PartId pv = p.part[static_cast<std::size_t>(v)];
      if (pv != kUnassigned) weight_[static_cast<std::size_t>(pv)] += dw;
    }
    // Merge-walk the sorted adjacencies; only edges with the higher id on
    // the other side so each undirected old-old edge is handled once.  New
    // vertices (ids >= n_old) sort last and are skipped: they are invisible
    // until placed.
    const auto old_nbrs = g_old.neighbors(v);
    const auto old_w = g_old.incident_edge_weights(v);
    const auto new_nbrs = g_new.neighbors(v);
    const auto new_w = g_new.incident_edge_weights(v);
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < old_nbrs.size() || b < new_nbrs.size()) {
      const VertexId ua = a < old_nbrs.size() ? old_nbrs[a] : kInvalidVertex;
      const VertexId ub = (b < new_nbrs.size() && new_nbrs[b] < n_old)
                              ? new_nbrs[b]
                              : kInvalidVertex;
      if (ua == kInvalidVertex && ub == kInvalidVertex) break;
      if (ub == kInvalidVertex || (ua != kInvalidVertex && ua < ub)) {
        if (ua > v) {  // edge removed by the extension
          remove_edge(p, v, ua, old_w[a]);
          ++diff.removed;
        }
        ++a;
      } else if (ua == kInvalidVertex || ub < ua) {
        if (ub > v) {  // edge created by the extension
          add_edge(p, v, ub, new_w[b]);
          ++diff.added;
        }
        ++b;
      } else {  // same neighbor; adjust if the weight changed
        if (ua > v && new_w[b] != old_w[a]) {
          adjust_edge_weight(p, v, ua, new_w[b] - old_w[a]);
        }
        ++a;
        ++b;
      }
    }
  }
  return diff;
}

std::size_t PartitionState::begin_rollback_mark() {
  ++journal_windows_;
  return journal_.size();
}

void PartitionState::undo_to_mark(const Graph& g, Partitioning& p,
                                  std::size_t mark) {
  PIGP_CHECK(!journal_rebased_,
             "undo journal invalidated by a rebuild/remap inside the window");
  PIGP_CHECK(mark <= journal_.size(), "journal mark out of range");
  journal_replaying_ = true;
  while (journal_.size() > mark) {
    const JournalEntry e = journal_.back();
    journal_.pop_back();
    move_vertex(g, p, e.v, e.from);
  }
  journal_replaying_ = false;
}

void PartitionState::end_rollback_mark(std::size_t mark) {
  PIGP_CHECK(journal_windows_ > 0, "no open rollback window");
  PIGP_CHECK(mark <= journal_.size() || journal_rebased_,
             "journal mark out of range");
  --journal_windows_;
  if (journal_windows_ == 0) {
    journal_.clear();
    journal_rebased_ = false;
  }
}

PartitionMetrics PartitionState::snapshot() const {
  PIGP_CHECK(num_parts_ >= 1, "snapshot of an empty PartitionState");
  const PartitionSummary s = summary();
  PartitionMetrics m;
  m.boundary_cost = boundary_cost_;
  m.weight = weight_;
  m.cut_total = s.cut_total;
  m.cut_max = s.cut_max;
  m.cut_min = s.cut_min;
  m.max_weight = s.max_weight;
  m.min_weight = s.min_weight;
  m.avg_weight = s.avg_weight;
  m.imbalance = s.imbalance;
  return m;
}

// pigp:steady-state
PartitionSummary PartitionState::summary() const {
  PIGP_CHECK(num_parts_ >= 1, "summary of an empty PartitionState");
  PartitionSummary s;
  s.cut_total = cut_total_;
  s.cut_max = *std::max_element(boundary_cost_.begin(), boundary_cost_.end());
  s.cut_min = *std::min_element(boundary_cost_.begin(), boundary_cost_.end());
  s.max_weight = *std::max_element(weight_.begin(), weight_.end());
  s.min_weight = *std::min_element(weight_.begin(), weight_.end());
  s.avg_weight = std::accumulate(weight_.begin(), weight_.end(), 0.0) /
                 static_cast<double>(num_parts_);
  // Zero-weight fallback: an empty load profile is "perfectly balanced".
  s.imbalance = s.avg_weight > 0.0 ? s.max_weight / s.avg_weight : 1.0;
  return s;
}

double PartitionState::imbalance() const noexcept {
  double max_weight = 0.0;
  double total = 0.0;
  for (const double w : weight_) {
    max_weight = std::max(max_weight, w);
    total += w;
  }
  const double avg = total / static_cast<double>(num_parts_);
  return avg > 0.0 ? max_weight / avg : 1.0;
}

}  // namespace pigp::graph
