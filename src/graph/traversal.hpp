#pragma once

/// \file traversal.hpp
/// Breadth-first traversals: distances, nearest-labeled-source propagation,
/// and BFS vertex orders.  These implement the d(v, x) shortest-distance
/// machinery of §2.1/§2.2 of the paper and are the parallel building block
/// for Step 1 (initial assignment of new vertices).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::graph {

inline constexpr std::int32_t kUnreached = -1;

/// Unweighted BFS distances from a set of sources; kUnreached for vertices in
/// other components.
[[nodiscard]] std::vector<std::int32_t> bfs_distances(
    const Graph& g, std::span<const VertexId> sources);

/// Result of nearest_source_labels().
struct NearestSourceResult {
  std::vector<std::int32_t> distance;  ///< BFS distance to nearest source
  std::vector<std::int32_t> label;     ///< label of that source, or -1
};

/// Multi-source BFS label propagation.  \p seed_labels has one entry per
/// vertex: >= 0 marks a source with that label, < 0 a plain vertex.  Every
/// reachable vertex receives the label of its nearest source; equidistant
/// ties resolve to the smallest label, which makes the result independent of
/// traversal order and hence identical for the serial and parallel paths.
/// \p num_threads > 1 runs the frontier expansion with OpenMP.
[[nodiscard]] NearestSourceResult nearest_source_labels(
    const Graph& g, std::span<const std::int32_t> seed_labels,
    int num_threads = 1);

/// Vertices of \p g in BFS order from \p root (used by recursive graph
/// bisection and pseudo-peripheral vertex search).  Only the component of
/// \p root is visited.
[[nodiscard]] std::vector<VertexId> bfs_order(const Graph& g, VertexId root);

/// A vertex approximately maximizing eccentricity in root's component,
/// found by repeated BFS (standard pseudo-peripheral heuristic).
[[nodiscard]] VertexId pseudo_peripheral_vertex(const Graph& g, VertexId root);

}  // namespace pigp::graph
