#include "mesh/trimesh.hpp"

#include <algorithm>
#include <map>

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace pigp::mesh {

TriMesh::TriMesh(std::vector<Point> points, std::vector<Triangle> triangles)
    : points_(std::move(points)), triangles_(std::move(triangles)) {}

const Point& TriMesh::point(PointId p) const {
  PIGP_CHECK(p >= 0 && p < num_points(), "point id out of range");
  return points_[static_cast<std::size_t>(p)];
}

std::vector<std::pair<PointId, PointId>> TriMesh::edges() const {
  std::vector<std::pair<PointId, PointId>> all;
  all.reserve(static_cast<std::size_t>(triangles_.size()) * 3);
  for (const Triangle& t : triangles_) {
    for (int i = 0; i < 3; ++i) {
      const PointId u = t.vertices[static_cast<std::size_t>(i)];
      const PointId v = t.vertices[static_cast<std::size_t>((i + 1) % 3)];
      all.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::int64_t TriMesh::num_boundary_edges() const {
  std::int64_t count = 0;
  for (const Triangle& t : triangles_) {
    for (int i = 0; i < 3; ++i) {
      if (t.adjacent[static_cast<std::size_t>(i)] == kNoTriangle) ++count;
    }
  }
  return count;
}

graph::Graph TriMesh::to_graph() const {
  graph::GraphBuilder builder(num_points());
  for (const auto& [u, v] : edges()) {
    builder.add_edge(u, v);
  }
  return builder.build();
}

std::vector<std::array<double, 2>> TriMesh::coordinates() const {
  std::vector<std::array<double, 2>> coords;
  coords.reserve(points_.size());
  for (const Point& p : points_) coords.push_back({p.x, p.y});
  return coords;
}

void TriMesh::validate() const {
  const TriId nt = num_triangles();
  std::map<std::pair<PointId, PointId>, int> edge_uses;
  for (TriId t = 0; t < nt; ++t) {
    const Triangle& tri = triangles_[static_cast<std::size_t>(t)];
    for (PointId v : tri.vertices) {
      PIGP_CHECK(v >= 0 && v < num_points(), "triangle vertex out of range");
    }
    PIGP_CHECK(orient2d(point(tri.vertices[0]), point(tri.vertices[1]),
                        point(tri.vertices[2])) > 0.0,
               "triangle must be counter-clockwise");
    for (int i = 0; i < 3; ++i) {
      const PointId a = tri.vertices[static_cast<std::size_t>((i + 1) % 3)];
      const PointId b = tri.vertices[static_cast<std::size_t>((i + 2) % 3)];
      ++edge_uses[{std::min(a, b), std::max(a, b)}];

      const TriId n = tri.adjacent[static_cast<std::size_t>(i)];
      if (n == kNoTriangle) continue;
      PIGP_CHECK(n >= 0 && n < nt, "adjacency out of range");
      // The neighbor must reference t back across the shared edge.
      const Triangle& other = triangles_[static_cast<std::size_t>(n)];
      bool mutual = false;
      for (int j = 0; j < 3; ++j) {
        if (other.adjacent[static_cast<std::size_t>(j)] == t) mutual = true;
      }
      PIGP_CHECK(mutual, "adjacency must be mutual");
    }
  }
  for (const auto& [edge, uses] : edge_uses) {
    PIGP_CHECK(uses <= 2, "edge shared by more than two triangles");
  }
  if (nt > 0) {
    // Euler: V - E + F = 2 with the unbounded face included.
    const auto v = static_cast<std::int64_t>(num_points());
    const auto e = static_cast<std::int64_t>(edge_uses.size());
    const auto f = static_cast<std::int64_t>(nt) + 1;
    PIGP_CHECK(v - e + f == 2, "Euler characteristic violated");
  }
}

}  // namespace pigp::mesh
