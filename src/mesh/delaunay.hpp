#pragma once

/// \file delaunay.hpp
/// Incremental Bowyer–Watson Delaunay triangulation.
///
/// This is the library's stand-in for the DIME adaptive-mesh environment
/// the paper used (Williams 1990): it builds irregular planar triangulations
/// and supports *incremental* point insertion, which is exactly the
/// "refinements in a localized area" operation that produces the paper's
/// mesh sequences.  Insertions after the initial build are first-class, so
/// an adaptive-computation driver can interleave refinement and
/// repartitioning.

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/trimesh.hpp"

namespace pigp::mesh {

/// Mutable Delaunay triangulation.  Point ids are assigned in insertion
/// order starting at 0 and remain stable forever (the enclosing
/// super-triangle is internal and invisible to callers).
class DelaunayTriangulation {
 public:
  /// Start with an enclosing super-triangle sized from \p bounding_hint
  /// (all future points must fall inside the hinted box) and insert
  /// \p initial_points.
  explicit DelaunayTriangulation(std::span<const Point> initial_points);

  /// Insert one point; returns its id.  The point must lie within the
  /// original bounding hint region.  Throws pigp::CheckError if an
  /// (effectively) duplicate point is inserted.
  PointId insert(const Point& p);

  [[nodiscard]] PointId num_points() const noexcept {
    return static_cast<PointId>(points_.size()) - 3;
  }

  [[nodiscard]] const Point& point(PointId p) const;

  /// Export the current triangulation (super-triangle removed, triangles
  /// renumbered densely).
  [[nodiscard]] TriMesh snapshot() const;

  /// Smallest edge length among the edges of the triangle containing \p p
  /// (used by refinement to respect local density).  Returns +inf when the
  /// containing triangle touches the super-triangle.
  [[nodiscard]] double local_spacing(const Point& p) const;

  /// Distance from \p p to the nearest corner of its containing triangle —
  /// a cheap, locally exact proxy for nearest-vertex distance used by the
  /// refinement spacing guard.  +inf when the triangle touches the
  /// super-triangle.
  [[nodiscard]] double distance_to_nearest_vertex(const Point& p) const;

 private:
  struct Tri {
    std::array<PointId, 3> v{};  // internal ids (0..2 are super vertices)
    std::array<TriId, 3> adj{kNoTriangle, kNoTriangle, kNoTriangle};
    bool alive = false;
  };

  [[nodiscard]] bool is_super(PointId internal_id) const noexcept {
    return internal_id < 3;
  }
  [[nodiscard]] TriId locate(const Point& p) const;
  [[nodiscard]] TriId allocate();
  void free_triangle(TriId t);

  std::vector<Point> points_;  // [0..2] = super-triangle vertices
  std::vector<Tri> tris_;
  std::vector<TriId> free_list_;
  TriId last_created_ = kNoTriangle;  // locate() walk hint
  std::int64_t alive_count_ = 0;
};

}  // namespace pigp::mesh
