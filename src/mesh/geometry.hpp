#pragma once

/// \file geometry.hpp
/// 2-D geometric predicates for the Delaunay triangulator.

#include <array>
#include <cmath>

namespace pigp::mesh {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Twice the signed area of triangle (a, b, c): positive when the points
/// turn counter-clockwise, negative clockwise, ~0 collinear.
[[nodiscard]] inline double orient2d(const Point& a, const Point& b,
                                     const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// In-circumcircle test: > 0 when d lies strictly inside the circumcircle
/// of CCW triangle (a, b, c).  Standard 3x3 lifted determinant.
[[nodiscard]] inline double incircle(const Point& a, const Point& b,
                                     const Point& c, const Point& d) {
  const double adx = a.x - d.x;
  const double ady = a.y - d.y;
  const double bdx = b.x - d.x;
  const double bdy = b.y - d.y;
  const double cdx = c.x - d.x;
  const double cdy = c.y - d.y;

  const double ad2 = adx * adx + ady * ady;
  const double bd2 = bdx * bdx + bdy * bdy;
  const double cd2 = cdx * cdx + cdy * cdy;

  return adx * (bdy * cd2 - bd2 * cdy) - ady * (bdx * cd2 - bd2 * cdx) +
         ad2 * (bdx * cdy - bdy * cdx);
}

[[nodiscard]] inline double squared_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance(const Point& a, const Point& b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace pigp::mesh
