#include "mesh/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pigp::mesh {

AdaptiveMesh::AdaptiveMesh(std::span<const Point> initial_points)
    : triangulation_(initial_points) {}

AdaptiveMesh AdaptiveMesh::random(int n, std::uint64_t seed) {
  PIGP_CHECK(n >= 3, "need at least three points for a mesh");
  pigp::SplitMix64 rng(seed);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  return AdaptiveMesh(pts);
}

std::vector<PointId> AdaptiveMesh::refine_near(const RefineOptions& options) {
  PIGP_CHECK(options.count >= 0, "refinement count must be non-negative");
  PIGP_CHECK(options.radius > 0.0, "refinement radius must be positive");
  pigp::SplitMix64 rng(options.seed);

  std::vector<PointId> inserted;
  inserted.reserve(static_cast<std::size_t>(options.count));
  for (int k = 0; k < options.count; ++k) {
    bool placed = false;
    for (int attempt = 0; attempt < options.max_attempts_per_point;
         ++attempt) {
      const Point candidate{
          options.center.x + options.radius * rng.next_gaussian(),
          options.center.y + options.radius * rng.next_gaussian()};
      // Keep refinement strictly inside the original cloud so new points
      // never extend the hull (mirrors DIME refining interior elements).
      if (candidate.x <= 0.02 || candidate.x >= 0.98 ||
          candidate.y <= 0.02 || candidate.y >= 0.98) {
        continue;
      }
      const double spacing = triangulation_.local_spacing(candidate);
      if (!std::isfinite(spacing)) continue;  // hull region, skip
      // Spacing guard: stay at least a fraction of the local edge length
      // away from existing vertices so refinement densifies gradually
      // instead of producing slivers.
      const double nearest =
          triangulation_.distance_to_nearest_vertex(candidate);
      if (nearest < options.min_spacing_factor * spacing) continue;
      inserted.push_back(triangulation_.insert(candidate));
      placed = true;
      break;
    }
    PIGP_CHECK(placed, "could not place refinement point; relax options");
  }
  return inserted;
}

graph::GraphDelta graph_delta(const graph::Graph& before,
                              const graph::Graph& after) {
  const graph::VertexId n_old = before.num_vertices();
  PIGP_CHECK(after.num_vertices() >= n_old,
             "after-graph must extend the before-graph");

  graph::GraphDelta delta;

  // Removed old-old edges: in before, missing in after.
  for (graph::VertexId u = 0; u < n_old; ++u) {
    for (graph::VertexId v : before.neighbors(u)) {
      if (v <= u) continue;
      if (!after.has_edge(u, v)) {
        delta.removed_edges.push_back({u, v});
      }
    }
  }
  // Added old-old edges: in after (both endpoints old), missing in before.
  for (graph::VertexId u = 0; u < n_old; ++u) {
    for (graph::VertexId v : after.neighbors(u)) {
      if (v <= u || v >= n_old) continue;
      if (!before.has_edge(u, v)) {
        delta.added_edges.push_back({u, v});
        delta.added_edge_weights.push_back(after.edge_weight(u, v));
      }
    }
  }
  // New vertices with edges to old vertices and earlier new vertices.
  for (graph::VertexId v = n_old; v < after.num_vertices(); ++v) {
    graph::VertexAddition add;
    add.weight = after.vertex_weight(v);
    for (graph::VertexId u : after.neighbors(v)) {
      if (u < v) {  // old or earlier-new: exactly once per edge
        add.edges.emplace_back(u, after.edge_weight(u, v));
      }
    }
    delta.added_vertices.push_back(std::move(add));
  }
  return delta;
}

}  // namespace pigp::mesh
