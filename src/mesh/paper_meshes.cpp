#include "mesh/paper_meshes.hpp"

#include "support/check.hpp"

namespace pigp::mesh {
namespace {

/// Hotspot used for all localized refinements; off-center like the paper's
/// figures (the refined blob sits inside one region of the mesh).
constexpr Point kHotspot{0.31, 0.62};

RefineOptions refine_options(int count, std::uint64_t seed, double radius) {
  RefineOptions opt;
  opt.center = kHotspot;
  opt.radius = radius;
  opt.count = count;
  opt.seed = seed;
  return opt;
}

MeshSequence chained_sequence(int base_points,
                              const std::vector<int>& increments,
                              std::uint64_t seed, double radius) {
  AdaptiveMesh mesh = AdaptiveMesh::random(base_points, seed);
  MeshSequence seq;
  seq.meshes.push_back(mesh.snapshot());
  seq.graphs.push_back(seq.meshes.back().to_graph());

  std::uint64_t step_seed = seed * 2 + 1;
  for (const int inc : increments) {
    (void)mesh.refine_near(refine_options(inc, step_seed++, radius));
    seq.meshes.push_back(mesh.snapshot());
    seq.graphs.push_back(seq.meshes.back().to_graph());
    seq.deltas.push_back(
        graph_delta(seq.graphs[seq.graphs.size() - 2], seq.graphs.back()));
  }
  return seq;
}

MeshFamily independent_family(int base_points,
                              const std::vector<int>& increments,
                              std::uint64_t seed, double radius) {
  MeshFamily family;
  {
    const AdaptiveMesh base = AdaptiveMesh::random(base_points, seed);
    family.base_mesh = base.snapshot();
    family.base = family.base_mesh.to_graph();
  }
  std::uint64_t step_seed = seed * 3 + 7;
  for (const int inc : increments) {
    // Each refinement starts from a fresh copy of the base mesh.
    AdaptiveMesh mesh = AdaptiveMesh::random(base_points, seed);
    (void)mesh.refine_near(refine_options(inc, step_seed++, radius));
    family.refined.push_back(mesh.to_graph());
    family.deltas.push_back(graph_delta(family.base, family.refined.back()));
  }
  return family;
}

}  // namespace

MeshSequence make_paper_mesh_a() {
  // 1071 base nodes; +25, +25, +31, +40 gives 1096 / 1121 / 1152 / 1192.
  return chained_sequence(1071, {25, 25, 31, 40}, /*seed=*/1994,
                          /*radius=*/0.06);
}

MeshFamily make_paper_mesh_b() {
  // 10166 base nodes; independent increments from Figure 14's table.  The
  // tight radius concentrates the insertions inside one or two partitions
  // of the 32-way split, reproducing the "severe" load imbalance that
  // forces the multi-stage balancing of Figure 14(d)/(e).
  return independent_family(10166, {48, 139, 229, 672}, /*seed=*/1994,
                            /*radius=*/0.022);
}

MeshFamily make_small_mesh_family(int base_points, std::vector<int> increments,
                                  std::uint64_t seed) {
  return independent_family(base_points, increments, seed, /*radius=*/0.07);
}

MeshSequence make_small_mesh_sequence(int base_points,
                                      std::vector<int> increments,
                                      std::uint64_t seed) {
  return chained_sequence(base_points, increments, seed, /*radius=*/0.07);
}

}  // namespace pigp::mesh
