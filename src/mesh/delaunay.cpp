#include "mesh/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "support/check.hpp"

namespace pigp::mesh {

DelaunayTriangulation::DelaunayTriangulation(
    std::span<const Point> initial_points) {
  // Bounding box of everything we expect to see; refinement stays inside
  // the initial cloud's extent, so sizing from it is safe.
  double lo_x = -1.0;
  double lo_y = -1.0;
  double hi_x = 1.0;
  double hi_y = 1.0;
  for (const Point& p : initial_points) {
    lo_x = std::min(lo_x, p.x);
    lo_y = std::min(lo_y, p.y);
    hi_x = std::max(hi_x, p.x);
    hi_y = std::max(hi_y, p.y);
  }
  const double cx = 0.5 * (lo_x + hi_x);
  const double cy = 0.5 * (lo_y + hi_y);
  const double span = std::max(hi_x - lo_x, hi_y - lo_y);
  const double r = 24.0 * span;  // generous but float-friendly

  // Super-triangle (CCW) comfortably containing the bounding box.
  points_.push_back({cx - r, cy - r});
  points_.push_back({cx + r, cy - r});
  points_.push_back({cx, cy + r});
  Tri root;
  root.v = {0, 1, 2};
  root.alive = true;
  tris_.push_back(root);
  alive_count_ = 1;
  last_created_ = 0;

  for (const Point& p : initial_points) insert(p);
}

const Point& DelaunayTriangulation::point(PointId p) const {
  PIGP_CHECK(p >= 0 && p < num_points(), "point id out of range");
  return points_[static_cast<std::size_t>(p) + 3];
}

TriId DelaunayTriangulation::allocate() {
  if (!free_list_.empty()) {
    const TriId t = free_list_.back();
    free_list_.pop_back();
    tris_[static_cast<std::size_t>(t)] = Tri{};
    tris_[static_cast<std::size_t>(t)].alive = true;
    ++alive_count_;
    return t;
  }
  tris_.push_back(Tri{});
  tris_.back().alive = true;
  ++alive_count_;
  return static_cast<TriId>(tris_.size() - 1);
}

void DelaunayTriangulation::free_triangle(TriId t) {
  tris_[static_cast<std::size_t>(t)].alive = false;
  free_list_.push_back(t);
  --alive_count_;
}

TriId DelaunayTriangulation::locate(const Point& p) const {
  // Remembering walk from the last created triangle.
  TriId current = last_created_;
  if (current == kNoTriangle ||
      !tris_[static_cast<std::size_t>(current)].alive) {
    current = kNoTriangle;
    for (std::size_t t = 0; t < tris_.size(); ++t) {
      if (tris_[t].alive) {
        current = static_cast<TriId>(t);
        break;
      }
    }
  }
  PIGP_CHECK(current != kNoTriangle, "no triangles to search");

  const std::int64_t step_limit =
      4 * static_cast<std::int64_t>(tris_.size()) + 16;
  for (std::int64_t steps = 0; steps < step_limit; ++steps) {
    const Tri& tri = tris_[static_cast<std::size_t>(current)];
    bool moved = false;
    for (int i = 0; i < 3; ++i) {
      const Point& a = points_[static_cast<std::size_t>(
          tri.v[static_cast<std::size_t>((i + 1) % 3)])];
      const Point& b = points_[static_cast<std::size_t>(
          tri.v[static_cast<std::size_t>((i + 2) % 3)])];
      // p strictly on the right of directed edge a->b means it is outside
      // across that edge (triangles are CCW).
      if (orient2d(a, b, p) < 0.0) {
        const TriId next = tri.adj[static_cast<std::size_t>(i)];
        PIGP_CHECK(next != kNoTriangle,
                   "point outside the super-triangle domain");
        current = next;
        moved = true;
        break;
      }
    }
    if (!moved) return current;
  }

  // Extremely defensive fallback: exhaustive scan (degenerate walks can
  // cycle on collinear data).
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (!tris_[t].alive) continue;
    const Tri& tri = tris_[t];
    bool inside = true;
    for (int i = 0; i < 3 && inside; ++i) {
      const Point& a = points_[static_cast<std::size_t>(
          tri.v[static_cast<std::size_t>((i + 1) % 3)])];
      const Point& b = points_[static_cast<std::size_t>(
          tri.v[static_cast<std::size_t>((i + 2) % 3)])];
      inside = orient2d(a, b, p) >= 0.0;
    }
    if (inside) return static_cast<TriId>(t);
  }
  PIGP_CHECK(false, "point location failed");
  return kNoTriangle;
}

PointId DelaunayTriangulation::insert(const Point& p) {
  const TriId seed = locate(p);

  // Reject (near-)duplicates: they would create degenerate triangles.
  {
    const Tri& tri = tris_[static_cast<std::size_t>(seed)];
    for (const PointId v : tri.v) {
      PIGP_CHECK(squared_distance(points_[static_cast<std::size_t>(v)], p) >
                     1e-24,
                 "duplicate point insertion");
    }
  }

  const PointId internal_id = static_cast<PointId>(points_.size());
  points_.push_back(p);

  // Grow the cavity: all triangles whose circumcircle contains p.
  std::vector<TriId> cavity;
  std::vector<char> in_cavity(tris_.size(), 0);
  std::vector<TriId> stack = {seed};
  in_cavity[static_cast<std::size_t>(seed)] = 1;
  while (!stack.empty()) {
    const TriId t = stack.back();
    stack.pop_back();
    cavity.push_back(t);
    const Tri tri = tris_[static_cast<std::size_t>(t)];
    for (int i = 0; i < 3; ++i) {
      const TriId n = tri.adj[static_cast<std::size_t>(i)];
      if (n == kNoTriangle || in_cavity[static_cast<std::size_t>(n)]) {
        continue;
      }
      const Tri& nt = tris_[static_cast<std::size_t>(n)];
      const double det =
          incircle(points_[static_cast<std::size_t>(nt.v[0])],
                   points_[static_cast<std::size_t>(nt.v[1])],
                   points_[static_cast<std::size_t>(nt.v[2])], p);
      if (det > 0.0) {
        in_cavity[static_cast<std::size_t>(n)] = 1;
        stack.push_back(n);
      }
    }
  }

  // Boundary edges of the cavity, each with the outside neighbor.
  struct BoundaryEdge {
    PointId a;
    PointId b;  // directed so that p is to the left (CCW fan)
    TriId outside;
  };
  std::vector<BoundaryEdge> boundary;
  for (const TriId t : cavity) {
    const Tri& tri = tris_[static_cast<std::size_t>(t)];
    for (int i = 0; i < 3; ++i) {
      const TriId n = tri.adj[static_cast<std::size_t>(i)];
      if (n != kNoTriangle && in_cavity[static_cast<std::size_t>(n)]) {
        continue;
      }
      PointId a = tri.v[static_cast<std::size_t>((i + 1) % 3)];
      PointId b = tri.v[static_cast<std::size_t>((i + 2) % 3)];
      if (orient2d(points_[static_cast<std::size_t>(a)],
                   points_[static_cast<std::size_t>(b)], p) < 0.0) {
        std::swap(a, b);
      }
      boundary.push_back({a, b, n});
    }
  }
  PIGP_CHECK(boundary.size() >= 3, "cavity boundary degenerate");

  for (const TriId t : cavity) free_triangle(t);

  // Re-triangulate as a fan around p; link fan triangles to each other via
  // their shared (p, x) edges and to the outside across boundary edges.
  std::map<PointId, TriId> fan_by_first;   // edge (p, a): triangle with a as
  std::map<PointId, TriId> fan_by_second;  // ... and (b, p) side
  for (const BoundaryEdge& e : boundary) {
    const TriId t = allocate();
    Tri& tri = tris_[static_cast<std::size_t>(t)];
    tri.v = {internal_id, e.a, e.b};
    // Edge opposite vertex 0 (internal_id) is (a, b): outside neighbor.
    tri.adj[0] = e.outside;
    if (e.outside != kNoTriangle) {
      Tri& out = tris_[static_cast<std::size_t>(e.outside)];
      for (int i = 0; i < 3; ++i) {
        const PointId oa = out.v[static_cast<std::size_t>((i + 1) % 3)];
        const PointId ob = out.v[static_cast<std::size_t>((i + 2) % 3)];
        if ((oa == e.a && ob == e.b) || (oa == e.b && ob == e.a)) {
          out.adj[static_cast<std::size_t>(i)] = t;
        }
      }
    }
    fan_by_first[e.a] = t;   // this triangle owns directed edge (p -> a)
    fan_by_second[e.b] = t;  // and directed edge (b -> p)
    last_created_ = t;
  }
  // A valid (star-shaped) cavity boundary is a single closed cycle around
  // p, so every boundary vertex appears exactly once as a start and once as
  // an end.
  PIGP_CHECK(fan_by_first.size() == boundary.size() &&
                 fan_by_second.size() == boundary.size(),
             "cavity boundary is not a simple cycle");
  // Stitch fan neighbors: triangle with boundary edge (a, b) neighbors the
  // fan triangle whose boundary edge starts at b (shared edge (p, b)) and
  // the one whose boundary edge ends at a (shared edge (p, a)).
  for (const BoundaryEdge& e : boundary) {
    const TriId t = fan_by_first.at(e.a);
    Tri& tri = tris_[static_cast<std::size_t>(t)];
    // Edge opposite vertex 1 (= e.a) is (e.b, p): neighbor starts at e.b.
    tri.adj[1] = fan_by_first.at(e.b);
    // Edge opposite vertex 2 (= e.b) is (p, e.a): neighbor ends at e.a.
    tri.adj[2] = fan_by_second.at(e.a);
  }

  return internal_id - 3;
}

double DelaunayTriangulation::local_spacing(const Point& p) const {
  const TriId t = locate(p);
  const Tri& tri = tris_[static_cast<std::size_t>(t)];
  double shortest = std::numeric_limits<double>::infinity();
  bool touches_super = false;
  for (int i = 0; i < 3; ++i) {
    if (is_super(tri.v[static_cast<std::size_t>(i)])) touches_super = true;
  }
  if (touches_super) return shortest;
  for (int i = 0; i < 3; ++i) {
    const Point& a = points_[static_cast<std::size_t>(
        tri.v[static_cast<std::size_t>(i)])];
    const Point& b = points_[static_cast<std::size_t>(
        tri.v[static_cast<std::size_t>((i + 1) % 3)])];
    shortest = std::min(shortest, distance(a, b));
  }
  return shortest;
}

double DelaunayTriangulation::distance_to_nearest_vertex(
    const Point& p) const {
  const TriId t = locate(p);
  const Tri& tri = tris_[static_cast<std::size_t>(t)];
  double nearest = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 3; ++i) {
    const PointId v = tri.v[static_cast<std::size_t>(i)];
    if (is_super(v)) return std::numeric_limits<double>::infinity();
    nearest = std::min(nearest,
                       distance(points_[static_cast<std::size_t>(v)], p));
  }
  return nearest;
}

TriMesh DelaunayTriangulation::snapshot() const {
  // Keep only triangles not touching the super-triangle; renumber.
  std::vector<TriId> new_id(tris_.size(), kNoTriangle);
  std::vector<Triangle> out;
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    const Tri& tri = tris_[t];
    if (!tri.alive) continue;
    if (is_super(tri.v[0]) || is_super(tri.v[1]) || is_super(tri.v[2])) {
      continue;
    }
    new_id[t] = static_cast<TriId>(out.size());
    out.push_back(Triangle{});
  }
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (new_id[t] == kNoTriangle) continue;
    const Tri& tri = tris_[t];
    Triangle& dst = out[cursor++];
    for (int i = 0; i < 3; ++i) {
      dst.vertices[static_cast<std::size_t>(i)] =
          tri.v[static_cast<std::size_t>(i)] - 3;
      const TriId n = tri.adj[static_cast<std::size_t>(i)];
      dst.adjacent[static_cast<std::size_t>(i)] =
          (n == kNoTriangle) ? kNoTriangle : new_id[static_cast<std::size_t>(n)];
    }
  }

  std::vector<Point> pts(points_.begin() + 3, points_.end());
  return TriMesh(std::move(pts), std::move(out));
}

}  // namespace pigp::mesh
