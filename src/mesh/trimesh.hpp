#pragma once

/// \file trimesh.hpp
/// Immutable snapshot of a 2-D triangular mesh, plus conversion to the
/// nodal graph the partitioners consume (mesh points become graph vertices,
/// triangle edges become graph edges — the representation the paper's DIME
/// meshes use).

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "mesh/geometry.hpp"

namespace pigp::mesh {

using PointId = std::int32_t;
using TriId = std::int32_t;
inline constexpr TriId kNoTriangle = -1;

/// One triangle: CCW vertex ids and the neighbor across each edge
/// (adjacent[i] faces the edge opposite vertices[i]).
struct Triangle {
  std::array<PointId, 3> vertices{};
  std::array<TriId, 3> adjacent{kNoTriangle, kNoTriangle, kNoTriangle};
};

/// Triangular mesh snapshot.
class TriMesh {
 public:
  TriMesh() = default;
  TriMesh(std::vector<Point> points, std::vector<Triangle> triangles);

  [[nodiscard]] PointId num_points() const noexcept {
    return static_cast<PointId>(points_.size());
  }
  [[nodiscard]] TriId num_triangles() const noexcept {
    return static_cast<TriId>(triangles_.size());
  }
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] const std::vector<Triangle>& triangles() const noexcept {
    return triangles_;
  }
  [[nodiscard]] const Point& point(PointId p) const;

  /// Unique undirected edges (u < v), sorted.
  [[nodiscard]] std::vector<std::pair<PointId, PointId>> edges() const;

  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edges().size());
  }

  /// Number of boundary edges (edges with only one incident triangle).
  [[nodiscard]] std::int64_t num_boundary_edges() const;

  /// Nodal graph: one unit-weight vertex per mesh point, one unit-weight
  /// edge per triangle edge.
  [[nodiscard]] graph::Graph to_graph() const;

  /// Point coordinates as an array usable by recursive_coordinate_bisection.
  [[nodiscard]] std::vector<std::array<double, 2>> coordinates() const;

  /// Structural checks: CCW orientation, mutual adjacency links, every edge
  /// shared by at most two triangles, Euler's formula
  /// (V - E + F = 2 counting the outer face).  Throws pigp::CheckError.
  void validate() const;

 private:
  std::vector<Point> points_;
  std::vector<Triangle> triangles_;
};

}  // namespace pigp::mesh
