#pragma once

/// \file paper_meshes.hpp
/// Generators for the two evaluation workloads of Ou & Ranka §3.
///
/// Mesh A (Figure 10): an irregular mesh with 1071 nodes / ~3185 edges,
/// refined four times in a localized area, producing the chained sequence
/// 1071 → 1096 → 1121 → 1152 → 1192 nodes.  Each refinement's partitioning
/// seeds the next (the experiments chain IGP outputs).
///
/// Mesh B (Figures 12/13): a highly irregular mesh with 10166 nodes /
/// ~30471 edges, with four *independent* refinements of the base mesh
/// adding 48, 139, 229, and 672 nodes (the |V| values in Figure 14's
/// table; the prose says "68" for the first but 10214 − 10166 = 48).
///
/// The node counts are exact; edge counts match the paper up to the hull
/// size of the random point cloud (Delaunay: E = 3n − 3 − h).

#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "mesh/adaptive.hpp"

namespace pigp::mesh {

/// A chained refinement sequence: graphs[0] is the initial mesh graph and
/// graphs[i+1] = apply(graphs[i], deltas[i]).
struct MeshSequence {
  std::vector<graph::Graph> graphs;
  std::vector<graph::GraphDelta> deltas;
  std::vector<TriMesh> meshes;  ///< snapshots parallel to graphs
};

/// A base mesh with independent refinements of increasing size.
struct MeshFamily {
  graph::Graph base;
  TriMesh base_mesh;
  std::vector<graph::Graph> refined;        ///< one per delta
  std::vector<graph::GraphDelta> deltas;    ///< base -> refined[i]
};

/// Figure 10 sequence: 1071 → 1096 → 1121 → 1152 → 1192 nodes.
[[nodiscard]] MeshSequence make_paper_mesh_a();

/// Figures 12–14 family: 10166-node base, +48 / +139 / +229 / +672 nodes.
[[nodiscard]] MeshFamily make_paper_mesh_b();

/// Scaled-down variant of mesh B for fast tests (same structure, smaller
/// base and increments).
[[nodiscard]] MeshFamily make_small_mesh_family(int base_points,
                                                std::vector<int> increments,
                                                std::uint64_t seed);

/// Scaled-down chained sequence for fast tests.
[[nodiscard]] MeshSequence make_small_mesh_sequence(
    int base_points, std::vector<int> increments, std::uint64_t seed);

}  // namespace pigp::mesh
