#pragma once

/// \file adaptive.hpp
/// Adaptive mesh driver: localized refinement and graph deltas between
/// refinement steps — the workload generator for the incremental
/// partitioner.
///
/// The paper's meshes evolve by "making refinements in a localized area of
/// the initial mesh" (§3).  refine_near() reproduces that: it inserts a
/// given number of new points clustered around a hotspot, respecting local
/// spacing so the mesh stays well-shaped, and graph_delta() expresses the
/// resulting change as a graph::GraphDelta (new vertices V1, new edges E1,
/// and the old-old edges E2 destroyed by retriangulation).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "mesh/delaunay.hpp"
#include "mesh/trimesh.hpp"

namespace pigp::mesh {

/// Options for localized refinement.
struct RefineOptions {
  Point center{0.5, 0.5};       ///< hotspot location
  double radius = 0.08;         ///< Gaussian std-dev of the insertion cloud
  int count = 25;               ///< points to insert
  std::uint64_t seed = 1;       ///< sampling seed
  /// Reject candidates closer than this fraction of the local edge length
  /// to any existing point (keeps triangle quality bounded).
  double min_spacing_factor = 0.33;
  int max_attempts_per_point = 400;
};

/// Adaptive triangular mesh: a Delaunay triangulation plus refinement
/// bookkeeping.
class AdaptiveMesh {
 public:
  /// Triangulate \p initial_points (ids 0..n-1 in order).
  explicit AdaptiveMesh(std::span<const Point> initial_points);

  /// n uniform-random points in the unit square (deterministic in seed).
  [[nodiscard]] static AdaptiveMesh random(int n, std::uint64_t seed);

  /// Insert \p options.count new points near the hotspot; returns their
  /// point ids.  Throws pigp::CheckError if the spacing constraint makes
  /// the request unsatisfiable.
  std::vector<PointId> refine_near(const RefineOptions& options);

  [[nodiscard]] PointId num_points() const noexcept {
    return triangulation_.num_points();
  }
  [[nodiscard]] const DelaunayTriangulation& triangulation() const noexcept {
    return triangulation_;
  }
  [[nodiscard]] TriMesh snapshot() const { return triangulation_.snapshot(); }
  [[nodiscard]] graph::Graph to_graph() const {
    return triangulation_.snapshot().to_graph();
  }

 private:
  DelaunayTriangulation triangulation_;
};

/// Express the difference between two nodal graphs as an incremental
/// GraphDelta: \p before must be a prefix of \p after in vertex numbering
/// (no deletions of vertices, which is how Delaunay refinement behaves).
/// Applying the result to \p before reproduces \p after exactly.
[[nodiscard]] graph::GraphDelta graph_delta(const graph::Graph& before,
                                            const graph::Graph& after);

}  // namespace pigp::mesh
