#pragma once

/// \file backend.hpp
/// Pluggable repartitioning backends behind pigp::Session.
///
/// A Backend turns (new graph, old partitioning, n_old) into a new
/// partitioning plus telemetry.  The built-in backends wrap the library's
/// drivers — the flat IGP/IGPR pipeline, the multilevel V-cycle, the SPMD
/// message-passing engine, and the from-scratch spectral/BFS partitioners —
/// and register under the names "igp", "igpr", "multilevel", "spmd", and
/// "scratch" in a process-wide name-keyed registry, so the driver choice is
/// a runtime string instead of a compile-time entry point.  External code
/// can register additional backends through BackendRegistry::add.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/config.hpp"
#include "core/igp.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "runtime/sync.hpp"

namespace pigp {

/// Outcome of one backend run: the new partitioning plus the telemetry the
/// flat driver reports (backends without a given phase leave its stats at
/// their defaults).
struct BackendResult {
  /// The new partitioning — empty when state_maintained is true (the
  /// in-place entry point already wrote the answer into the partitioning
  /// it was handed).
  graph::Partitioning partitioning;
  bool balanced = false;
  int stages = 0;  ///< balance stages used (the paper's IGP(k))
  core::BalanceResult balance;
  core::RefineStats refine;
  core::IgpTimings timings;
  /// True when the state-threaded entry point ran in place on the
  /// session's partitioning and PartitionState: on return both already
  /// describe the result (result.partitioning stays empty), so the caller
  /// must not transition the state again.
  bool state_maintained = false;
};

/// Strategy interface implemented by every repartitioning driver.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name this backend was created under.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// False for from-scratch backends that ignore the old partitioning.
  [[nodiscard]] virtual bool incremental() const noexcept { return true; }

  /// Release any backend-owned pooled memory (Session::trim_memory
  /// forwards here after releasing the session workspace).  The SPMD
  /// backend frees its per-rank workspaces; most backends own nothing.
  virtual void trim_memory() {}

  /// Repartition \p g_new given \p old_partitioning over its first
  /// \p n_old vertices (ids preserved).
  [[nodiscard]] virtual BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) = 0;

  /// State-threaded, in-place variant — the streaming hot path.
  /// \p partitioning covers [0, n_old) on entry and \p state describes
  /// (g_new, partitioning) with the appended tail unassigned.  Boundary-
  /// local backends run the whole pipeline in place off the maintained
  /// boundary index and the session-owned \p ws buffers, leaving
  /// partitioning/state describing the result (result.state_maintained
  /// true, result.partitioning empty) with zero per-call O(V) allocations
  /// once \p ws is warm.  The default forwards to the plain overload and
  /// touches neither \p partitioning, \p state nor \p ws; the session then
  /// folds result.partitioning in via transition().  On exception
  /// partitioning/state may be mid-run; the session restores them from its
  /// rollback snapshot.
  [[nodiscard]] virtual BackendResult repartition(
      const graph::Graph& g_new, graph::Partitioning& partitioning,
      graph::VertexId n_old, graph::PartitionState& state,
      core::Workspace& ws) {
    (void)state;
    (void)ws;
    return repartition(
        g_new, static_cast<const graph::Partitioning&>(partitioning), n_old);
  }
};

using BackendFactory =
    std::function<std::unique_ptr<Backend>(const ResolvedConfig&)>;

/// Name-keyed backend factory registry.  Thread-safe.
class BackendRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in backends.
  static BackendRegistry& global();

  /// Register (or replace) a factory under \p name.
  void add(std::string name, BackendFactory factory)
      PIGP_EXCLUDES(mutex_);

  [[nodiscard]] bool contains(std::string_view name) const
      PIGP_EXCLUDES(mutex_);

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const
      PIGP_EXCLUDES(mutex_);

  /// Instantiate the backend registered under \p name.  Throws
  /// pigp::UnknownBackendError carrying the known names when \p name is
  /// unknown.  The factory itself runs outside the lock, so a factory may
  /// re-enter the registry.
  [[nodiscard]] std::unique_ptr<Backend> create(
      std::string_view name, const ResolvedConfig& config) const
      PIGP_EXCLUDES(mutex_);

 private:
  mutable sync::Mutex mutex_;
  std::map<std::string, BackendFactory, std::less<>> factories_
      PIGP_GUARDED_BY(mutex_);
};

/// Partition \p g from scratch with \p config.session.scratch_method
/// ("rsb", "rgb", or "rsb+kl") into config.session.num_parts parts.  Used
/// by the "scratch" backend and for a Session's initial partitioning.
[[nodiscard]] graph::Partitioning partition_from_scratch(
    const graph::Graph& g, const ResolvedConfig& config);

}  // namespace pigp
