#pragma once

/// \file async_session.hpp
/// pigp::AsyncSession — concurrent ingest/serve on top of the synchronous
/// Session.
///
/// The paper's pipeline is stop-the-world: while a rebalance runs, nothing
/// can answer "which part owns vertex v?".  AsyncSession splits the stream
/// into three roles so ingestion, repartitioning and lookups overlap:
///
///   * submit() (any thread) enqueues a GraphDelta into a bounded MPMC
///     queue (runtime/delta_queue.hpp).  A full queue blocks the producer —
///     backpressure instead of an unbounded backlog.
///   * The ingest thread drains the queue into a private synchronous
///     Session whose batch policy is defused: each delta is absorbed and
///     its new vertices get their step-1 nearest-partition placement
///     immediately, then a fresh PartitionView is published.  The ingest
///     thread evaluates the configured batch policy itself, and when a
///     rebalance is due it snapshots (graph, partitioning, state) and hands
///     the snapshot to the repartition thread — ingestion continues while
///     the backend runs.
///   * The repartition thread runs the configured backend on the snapshot
///     (the same in-place Workspace-pooled entry point the synchronous
///     session uses, as a pure rebalance tick) and mails the rebalanced
///     Partitioning back.  The ingest thread adopts it into the live
///     session through Session::adopt_rebalance — O(moved vertices), not a
///     rescan — and publishes the new epoch.  Snapshot buffers shuttle
///     back and forth between the two threads, so the steady state reuses
///     two generations of capacity instead of reallocating per rebalance.
///
/// Readers never touch any of this machinery: view() hands out an
/// immutable epoch-stamped PartitionView (api/view.hpp) whose part_of() is
/// a plain array load.  Every published view is a committed state of the
/// ingest session — a reader can never observe a torn assignment or a
/// half-applied rebalance.
///
/// Staleness protocol: a rebalance computed on a snapshot is only adopted
/// if the vertex id space did not change in between.  Append-only deltas
/// never invalidate a snapshot (new vertices simply keep their step-1
/// placement until the next rebalance); a graph *compaction* renumbers
/// ids (bumping Session::remap_epoch()), so a rebalance that raced with
/// one is discarded (counted in AsyncStats::commits_discarded) and the
/// pending work re-triggers.  Under GraphCompaction::eager every removal
/// delta compacts; under deferred, removal deltas below the slack
/// threshold keep ids stable and their in-flight rebalances adoptable.
///
/// flush() is the barrier: it returns once everything submitted before it
/// is absorbed, any in-flight rebalance is committed, and — if deltas are
/// pending — one final rebalance has run, so the published view is fully
/// rebalanced.  close() (also run by the destructor) drains the queue,
/// waits for the in-flight rebalance, and joins both threads without
/// forcing a final rebalance.
///
/// Errors & failure policy: an invalid delta is rejected by the ingest
/// session before any mutation, skipped, and the first such error is
/// rethrown from the next submit()/flush().  Backend failures leave the
/// live session untouched — the failed snapshot absorbed the damage — and
/// what happens next is config.failure_policy's call:
///
///   * fail_fast (default): the error is latched sticky and the next
///     submit()/flush() rethrows it.  clear_error() is the explicit way
///     back once the operator trusts the transport again.
///   * degrade: the repartition thread restores the snapshot's entry state
///     and re-runs the tick on the local config.fallback_backend, so
///     readers keep receiving fresh rebalanced epochs while the remote
///     group is down.  The failure is recorded in the health() ledger
///     (consecutive failures, fallback count, last error) instead of
///     latched; only a tick that fails *even on the fallback* latches.
///
/// Retry happens below this layer: the "spmd" backend itself re-attempts
/// retryable transport errors under SessionConfig.rebalance_retry_*, so a
/// tick that reaches the failure policy has already spent its budget.

#include <atomic>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag/call_once only; locks live in runtime/sync.hpp
#include <optional>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/session.hpp"
#include "api/view.hpp"
#include "core/workspace.hpp"
#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "runtime/delta_queue.hpp"
#include "runtime/sync.hpp"
#include "runtime/thread_pool.hpp"

namespace pigp {

/// Cumulative statistics of one AsyncSession, readable from any thread.
struct AsyncStats {
  std::int64_t deltas_submitted = 0;   ///< submit() calls accepted
  std::int64_t deltas_absorbed = 0;    ///< deltas applied by the ingest thread
  std::int64_t deltas_rejected = 0;    ///< invalid deltas skipped
  std::int64_t epochs_published = 0;   ///< PartitionViews published
  std::int64_t rebalances_started = 0; ///< snapshots handed to the backend
  std::int64_t rebalances_committed = 0;
  /// Rebalances discarded because a removal delta remapped vertex ids
  /// between snapshot and commit.
  std::int64_t commits_discarded = 0;
  std::int64_t rebalance_failures = 0;  ///< backend threw on a snapshot
  /// Committed rebalances that went through the degrade fallback backend
  /// (a subset of rebalances_committed).
  std::int64_t rebalance_fallbacks = 0;
  /// Fullest the ingest queue ever got (capacity hit => producers blocked).
  std::size_t queue_high_watermark = 0;
};

/// Failure-domain ledger of one AsyncSession, readable from any thread
/// (see AsyncSession::health).  The started == committed + discarded +
/// failures identity over AsyncStats still holds under faults; this adds
/// the recovery-side view of the same events.
struct AsyncHealth {
  /// Primary-backend failures since the last primary-backend success.
  /// A fallback commit does not reset it — the primary is still failing —
  /// so a monitor can alert on "degraded for N consecutive ticks".
  std::int64_t consecutive_failures = 0;
  /// Ticks published via config.fallback_backend (== stats().rebalance_fallbacks).
  std::int64_t fallbacks_committed = 0;
  /// Ticks lost entirely: no fallback configured, or it failed too
  /// (== stats().rebalance_failures).
  std::int64_t rebalance_failures = 0;
  /// what() of the most recent rebalance failure; empty = none yet.
  /// Not cleared by later successes — it answers "what was the last
  /// thing that went wrong", not "is something wrong now".
  std::string last_error;
  /// True while the most recently completed tick needed the fallback.
  bool degraded = false;
  /// True when an error is latched sticky (submit()/flush() will rethrow;
  /// clear_error() recovers).
  bool error_latched = false;
};

/// Concurrent ingest/serve wrapper around a synchronous Session.
///
/// Thread roles: submit()/flush() may be called from any number of
/// producer threads; view()/epoch()/channel()/stats() from any thread;
/// close() from any thread (idempotent).  The wrapped Session itself is
/// confined to the internal ingest thread.
class AsyncSession {
 public:
  /// Adopt \p g with an existing partitioning (see Session).  The
  /// constructor validates the config, builds the ingest session, creates
  /// a second backend instance for the repartition thread, publishes the
  /// initial view (epoch 1), and starts both threads.
  AsyncSession(const SessionConfig& config, graph::Graph g,
               graph::Partitioning p);

  /// Partition \p g from scratch with config.scratch_method (see Session).
  AsyncSession(const SessionConfig& config, graph::Graph g);

  /// close()s, swallowing any stored error (call flush()/close() yourself
  /// to observe it).
  ~AsyncSession();

  AsyncSession(const AsyncSession&) = delete;
  AsyncSession& operator=(const AsyncSession&) = delete;

  /// Enqueue one delta for ingestion.  Blocks while the queue is full
  /// (backpressure).  Throws DeltaError if the session is closed; rethrows
  /// the first stored ingest/backend error if one occurred.
  void submit(graph::GraphDelta delta);

  /// Barrier: returns once every previously submitted delta is absorbed,
  /// any in-flight rebalance is committed, and pending deltas (if any)
  /// have been rebalanced — the published view is then fully rebalanced.
  /// Rethrows the first stored error.  Throws DeltaError if closed.
  void flush();

  /// Drain the queue, commit or discard the in-flight rebalance, and join
  /// both threads.  Idempotent; does not force a final rebalance (use
  /// flush() first for that).
  void close();

  /// Latest published snapshot — wait-free part_of() lookups, never null.
  [[nodiscard]] std::shared_ptr<const PartitionView> view() const {
    return channel_.acquire();
  }

  /// Epoch of the latest published snapshot (one relaxed atomic load).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return channel_.epoch();
  }

  /// The publication channel itself, for readers that poll the epoch and
  /// re-acquire only on change (see view.hpp for the pattern).
  [[nodiscard]] const ViewChannel& channel() const noexcept {
    return channel_;
  }

  [[nodiscard]] const SessionConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] AsyncStats stats() const;

  /// The failure-domain ledger: consecutive primary failures, fallback
  /// commits, the last error text, and whether an error is latched.
  [[nodiscard]] AsyncHealth health() const PIGP_EXCLUDES(error_mutex_);

  /// Explicit recovery from a latched error: drop it so submit()/flush()
  /// work again.  The live session and the published view are always
  /// consistent (failed ticks never touch them), but the *caller* asserts
  /// the cause — dead peers, a rejected delta stream — has been dealt
  /// with.  Ledger counters are not reset (they are history, not state).
  /// A no-op when nothing is latched.
  void clear_error() PIGP_EXCLUDES(error_mutex_);

 private:
  /// One queue entry: a delta to absorb, or a flush barrier ticket.
  struct IngestItem {
    graph::GraphDelta delta;
    std::optional<std::promise<void>> flush_ticket;
  };

  /// Snapshot handed to the repartition thread.  The buffers shuttle:
  /// ingest copy-assigns into them (reusing capacity), the repartition
  /// thread rebalances `partitioning` in place, and the whole struct rides
  /// the commit back to the ingest thread for the next round.
  struct Job {
    graph::Graph graph;
    graph::Partitioning partitioning;
    graph::PartitionState state;
    /// Session::remap_epoch() at snapshot time; a mismatch at commit time
    /// means a compaction renumbered ids and the result must be discarded.
    std::uint64_t remap_tag = 0;
    /// Pending-work counters folded into this snapshot (restored if the
    /// commit is discarded or fails).
    std::int64_t pending_updates = 0;
    std::int64_t pending_vertex_changes = 0;
  };

  struct Commit {
    Job job;
    bool success = false;
    /// The primary backend's failure — set whenever the primary threw,
    /// including when the degrade fallback then succeeded (success true,
    /// used_fallback true): the ledger wants the cause either way.
    std::exception_ptr error;
    /// True when `job` carries the fallback backend's result.
    bool used_fallback = false;
  };

  void start();
  void ingest_loop();
  void repartition_loop();
  void absorb(graph::GraphDelta delta);
  void handle_flush(std::promise<void> ticket);
  void publish_view();
  [[nodiscard]] bool rebalance_due() const;
  void dispatch_job();
  void handle_commit(Commit commit);
  void record_error(std::exception_ptr error) PIGP_EXCLUDES(error_mutex_);
  [[nodiscard]] std::exception_ptr first_error() const
      PIGP_EXCLUDES(error_mutex_);
  void rethrow_if_error() const;
  /// Ledger writers (ingest thread, from handle_commit): a completed tick
  /// succeeded on the primary / published via the fallback / was lost.
  void note_tick_success() PIGP_EXCLUDES(error_mutex_);
  void note_tick_degraded(const std::exception_ptr& error)
      PIGP_EXCLUDES(error_mutex_);
  void note_tick_failure(const std::exception_ptr& error)
      PIGP_EXCLUDES(error_mutex_);

  SessionConfig config_;
  /// The live single-threaded core, confined to the ingest thread after
  /// construction.  optional<> only for in-place construction of a
  /// move-deleted type.
  std::optional<Session> front_;
  /// The repartition thread's own backend instance and pooled workspace
  /// (never shared with front_'s).
  std::unique_ptr<Backend> rear_backend_;
  core::Workspace rear_ws_;
  /// FailurePolicy::degrade only: the local backend re-running a failed
  /// tick, with its own pooled workspace and the entry-assignment snapshot
  /// the restore needs (the primary may die mid-run).  All three are
  /// repartition-thread-only after construction.
  std::unique_ptr<Backend> fallback_backend_;
  core::Workspace fallback_ws_;
  std::vector<graph::PartId> fallback_rollback_;

  ViewChannel channel_;
  std::uint64_t next_epoch_ = 0;

  runtime::BoundedQueue<IngestItem> ingest_queue_;
  runtime::BoundedQueue<Job> job_queue_;      ///< capacity 1
  runtime::BoundedQueue<Commit> commit_queue_;  ///< capacity 1

  // Ingest-thread-only bookkeeping.
  std::int64_t pending_updates_ = 0;
  std::int64_t pending_vertex_changes_ = 0;
  bool job_in_flight_ = false;
  Job spare_job_;  ///< recycled snapshot buffers

  mutable sync::Mutex error_mutex_;
  std::exception_ptr first_error_ PIGP_GUARDED_BY(error_mutex_);
  // Health-ledger fields (written by the ingest thread via note_tick_*,
  // read by health() from any thread).
  std::int64_t consecutive_failures_ PIGP_GUARDED_BY(error_mutex_) = 0;
  std::string last_error_ PIGP_GUARDED_BY(error_mutex_);
  bool degraded_ PIGP_GUARDED_BY(error_mutex_) = false;

  std::atomic<std::int64_t> deltas_submitted_{0};
  std::atomic<std::int64_t> deltas_absorbed_{0};
  std::atomic<std::int64_t> deltas_rejected_{0};
  std::atomic<std::int64_t> epochs_published_{0};
  std::atomic<std::int64_t> rebalances_started_{0};
  std::atomic<std::int64_t> rebalances_committed_{0};
  std::atomic<std::int64_t> commits_discarded_{0};
  std::atomic<std::int64_t> rebalance_failures_{0};
  std::atomic<std::int64_t> rebalance_fallbacks_{0};

  /// Joining must not happen under a capability (the project linter's
  /// blocking-under-lock rule); call_once still blocks concurrent closers
  /// until the winning close() finishes, which is the semantics close()
  /// documents.
  std::once_flag close_once_;
  /// Pool declared last so members outlive the threads if close() was
  /// never reached; close() joins through these futures.
  std::future<void> ingest_done_;
  std::future<void> repartition_done_;
  std::unique_ptr<runtime::ThreadPool> pool_;
};

}  // namespace pigp
