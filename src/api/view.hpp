#pragma once

/// \file view.hpp
/// Epoch-published, wait-free read view of a partitioning.
///
/// The concurrent ingest/serve split (api/async_session.hpp) needs readers
/// to answer "which part owns vertex v?" while the writer absorbs deltas
/// and a background rebalance runs.  The protocol here is
/// publish-by-replacement:
///
///   * PartitionView is an immutable snapshot — a copy of the assignment
///     array plus the epoch that produced it and an O(P) summary.  Once
///     constructed it is never written again, so any number of threads may
///     read it without synchronization; part_of() is a plain array load
///     (wait-free, no locks, no atomics).
///   * ViewChannel is the single mutable cell: a mutex-guarded shared_ptr
///     slot the writer swaps on every absorbed delta and every committed
///     rebalance, plus a monotonically increasing atomic epoch counter
///     readers poll (one relaxed load, lock-free) to detect change.  The
///     mutex guards only the pointer handoff — a shared_ptr copy, a few
///     nanoseconds — and a reader following the pattern below touches it
///     only when the epoch actually moved, never per lookup.  (An atomic
///     shared_ptr would make the handoff lock-free too, but libstdc++'s
///     std::atomic<std::shared_ptr> synchronizes through a spin-lock bit
///     ThreadSanitizer cannot see through; the mutex keeps the whole
///     subsystem TSan-verifiable without giving up anything on the lookup
///     path.)
///
/// Reader pattern for hot loops:
///
///   std::shared_ptr<const PartitionView> view = channel.acquire();
///   std::uint64_t seen = view->epoch();
///   for (;;) {
///     if (channel.epoch() != seen) {        // one relaxed atomic load
///       view = channel.acquire();           // refresh on change only
///       seen = view->epoch();
///     }
///     ... view->part_of(v) ...              // plain loads, wait-free
///   }
///
/// A reader never observes a torn assignment: it either holds the old
/// snapshot or the new one, and an old snapshot stays valid for as long as
/// the reader holds its shared_ptr, no matter how many epochs the writer
/// publishes meanwhile.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "runtime/sync.hpp"
#include "support/check.hpp"

namespace pigp {

/// Immutable snapshot of a partitioning at one published epoch.
///
/// Vertex ids are the graph's ids *as of this epoch*: a graph compaction
/// (eager — after any removal delta — or a deferred-mode threshold trip)
/// renumbers the survivors, so a reader correlating ids across epochs
/// must re-resolve them after a remap.  AsyncSession discards rebalance
/// commits that raced with a compaction for the same reason.
class PartitionView {
 public:
  PartitionView(std::uint64_t epoch, const graph::Partitioning& partitioning,
                const graph::PartitionSummary& summary)
      : epoch_(epoch),
        num_parts_(partitioning.num_parts),
        part_(partitioning.part),
        summary_(summary) {}

  /// The publication counter of this snapshot.  Strictly increasing
  /// across the views published by one channel.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  [[nodiscard]] graph::PartId num_parts() const noexcept {
    return num_parts_;
  }

  [[nodiscard]] graph::VertexId num_vertices() const noexcept {
    return static_cast<graph::VertexId>(part_.size());
  }

  /// Wait-free point lookup: a bounds check and an array load.
  // pigp:steady-state
  [[nodiscard]] graph::PartId part_of(graph::VertexId v) const {
    PIGP_CHECK(v >= 0 && static_cast<std::size_t>(v) < part_.size(),
               "PartitionView::part_of: vertex out of range");
    return part_[static_cast<std::size_t>(v)];
  }

  /// The full assignment array of the snapshot.
  [[nodiscard]] const std::vector<graph::PartId>& assignment()
      const noexcept {
    return part_;
  }

  /// O(P) balance/size summary captured with the snapshot.
  [[nodiscard]] const graph::PartitionSummary& summary() const noexcept {
    return summary_;
  }

 private:
  std::uint64_t epoch_;
  graph::PartId num_parts_;
  std::vector<graph::PartId> part_;
  graph::PartitionSummary summary_;
};

/// Single-writer publication cell for PartitionView snapshots.
///
/// publish() is called by the owning session's ingest thread only; any
/// number of reader threads call acquire()/epoch() concurrently.  The
/// separate epoch counter exists so pollers pay one lock-free relaxed
/// load per check and take the handoff mutex only when the view actually
/// changed.
class ViewChannel {
 public:
  ViewChannel() = default;
  ViewChannel(const ViewChannel&) = delete;
  ViewChannel& operator=(const ViewChannel&) = delete;

  /// Install \p view as the current snapshot and advance the epoch
  /// counter to match.  Writer thread only.
  void publish(std::shared_ptr<const PartitionView> view) {
    const std::uint64_t epoch = view->epoch();
    {
      sync::MutexLock lock(mutex_);
      view_ = std::move(view);
    }
    epoch_.store(epoch, std::memory_order_release);
  }

  /// Latest published snapshot (never null once the owning session has
  /// published its initial epoch).  Safe from any thread; the lock covers
  /// one shared_ptr copy.
  // pigp:steady-state
  [[nodiscard]] std::shared_ptr<const PartitionView> acquire() const {
    sync::MutexLock lock(mutex_);
    return view_;
  }

  /// Epoch of the latest published snapshot — one relaxed atomic load,
  /// lock-free, for cheap change polling.  May briefly lag acquire()
  /// during a publish; it never runs ahead of it.
  // pigp:steady-state
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  mutable sync::Mutex mutex_;
  std::shared_ptr<const PartitionView> view_ PIGP_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace pigp
