#pragma once

/// \file errors.hpp
/// The typed pigp error taxonomy.
///
/// Every error the API layer throws derives from pigp::Error, which itself
/// derives from pigp::CheckError (the exception PIGP_CHECK has always
/// thrown), so pre-taxonomy catch sites keep working while new code can
/// catch by cause:
///
///   * ConfigError          — an invalid SessionConfig field, an invalid
///                            backend registration, or a graph/partitioning
///                            pair that contradicts the config (wrong part
///                            count, empty graph).
///   * UnknownBackendError  — SessionConfig.backend names no registered
///                            backend; carries the registered names both in
///                            the message and programmatically through
///                            known_backends().
///   * DeltaError           — a stream operation whose arguments cannot be
///                            applied to the session's current graph
///                            (apply_extended with a non-matching n_old,
///                            adopt_rebalance with an incompatible
///                            partitioning, submissions to a closed
///                            AsyncSession).
///   * TransportError       — the SPMD wire failed (peer closed, socket
///                            timeout, malformed frame).  Defined in
///                            runtime/net/error.hpp, re-exported here.
///                            Carries a retryable-vs-fatal FaultClass: the
///                            "spmd" backend retries retryable ones under
///                            SessionConfig.rebalance_retry_*; one that
///                            still escapes leaves the Session sticky-
///                            failed (transport_failed()) until
///                            clear_error().  AsyncSession additionally
///                            consults SessionConfig.failure_policy —
///                            degrade reroutes the tick to a local
///                            fallback backend instead of latching.
///
/// Deeper layers (graph::apply_delta, the LP core) still throw CheckError
/// directly for malformed inputs; the taxonomy covers the API surface where
/// callers realistically dispatch on the cause.

#include <string>
#include <string_view>
#include <vector>

#include "runtime/net/error.hpp"
#include "support/check.hpp"

namespace pigp {

/// Re-export: the SPMD wire failure (see runtime/net/error.hpp).  Not part
/// of the Error branch — it originates below the API layer — but catchable
/// as pigp::CheckError like everything else.  FaultClass rides along for
/// callers implementing their own retry policy.
using net::FaultClass;
using net::TransportError;

/// Base of the typed error taxonomy.  Derives from CheckError so existing
/// `catch (const pigp::CheckError&)` sites see every API error too.
class Error : public CheckError {
 public:
  explicit Error(const std::string& what) : CheckError(what) {}
};

/// An invalid configuration value — SessionConfig::resolve() names the
/// offending field in the message.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// SessionConfig.backend names no registered backend.
class UnknownBackendError : public Error {
 public:
  UnknownBackendError(std::string_view name, std::vector<std::string> known)
      : Error(format(name, known)), known_backends_(std::move(known)) {}

  /// The names registered at throw time (sorted), for programmatic
  /// "did you mean" handling; the what() message lists them too.
  [[nodiscard]] const std::vector<std::string>& known_backends()
      const noexcept {
    return known_backends_;
  }

 private:
  static std::string format(std::string_view name,
                            const std::vector<std::string>& known) {
    std::string out = "unknown backend \"";
    out += name;
    out += "\"; registered backends:";
    for (const std::string& k : known) {
      out += ' ';
      out += k;
    }
    return out;
  }

  std::vector<std::string> known_backends_;
};

/// A stream operation incompatible with the session's current graph.
/// Session::apply validates the whole delta up front
/// (graph::validate_delta), so an operation rejected with this — or with
/// the CheckError the validator throws — left graph, partitioning and
/// state untouched: the strong exception guarantee, not a torn apply.
class DeltaError : public Error {
 public:
  explicit DeltaError(const std::string& what) : Error(what) {}
};

}  // namespace pigp
