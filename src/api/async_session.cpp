#include "api/async_session.hpp"

#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "api/backend.hpp"
#include "api/errors.hpp"

namespace pigp {
namespace {

/// The ingest session must never trigger its own backend — the async layer
/// evaluates the user's batch policy itself and runs rebalances on the
/// repartition thread.  A vertex_count policy with an unreachable limit
/// keeps every apply() on the deferred step-1 path.
SessionConfig defused(SessionConfig config) {
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = std::numeric_limits<int>::max();
  return config;
}

/// Validates the whole config (throws ConfigError before any thread or
/// session exists) and yields the ingest-queue bound.
std::size_t validated_queue_capacity(const SessionConfig& config) {
  return static_cast<std::size_t>(
      config.resolve().session.async_queue_capacity);
}

/// Human-readable what() of a stored exception, for the health ledger.
std::string describe(const std::exception_ptr& error) {
  if (error == nullptr) return {};
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

AsyncSession::AsyncSession(const SessionConfig& config, graph::Graph g,
                           graph::Partitioning p)
    : config_(config),
      ingest_queue_(validated_queue_capacity(config)),
      job_queue_(1),
      commit_queue_(1) {
  const ResolvedConfig resolved = config.resolve();
  rear_backend_ = BackendRegistry::global().create(config.backend, resolved);
  if (config.failure_policy == FailurePolicy::degrade) {
    fallback_backend_ = BackendRegistry::global().create(
        config.fallback_backend, resolved);
  }
  front_.emplace(defused(config), std::move(g), std::move(p));
  start();
}

AsyncSession::AsyncSession(const SessionConfig& config, graph::Graph g)
    : config_(config),
      ingest_queue_(validated_queue_capacity(config)),
      job_queue_(1),
      commit_queue_(1) {
  const ResolvedConfig resolved = config.resolve();
  rear_backend_ = BackendRegistry::global().create(config.backend, resolved);
  if (config.failure_policy == FailurePolicy::degrade) {
    fallback_backend_ = BackendRegistry::global().create(
        config.fallback_backend, resolved);
  }
  front_.emplace(defused(config), std::move(g));
  start();
}

AsyncSession::~AsyncSession() {
  try {
    close();
  } catch (...) {
    // The stored error is observable through flush()/close() before
    // destruction; a destructor must not throw.
  }
}

void AsyncSession::start() {
  publish_view();  // epoch 1: readers have a view before any delta lands
  pool_ = std::make_unique<runtime::ThreadPool>(2);
  ingest_done_ = pool_->submit([this] {
    try {
      ingest_loop();
    } catch (...) {
      record_error(std::current_exception());
    }
    // Unblock the repartition thread no matter how the loop ended: close
    // its input, and close the commit mailbox so a commit push in flight
    // cannot block on a consumer that is gone.
    job_queue_.close();
    commit_queue_.close();
  });
  repartition_done_ = pool_->submit([this] {
    try {
      repartition_loop();
    } catch (...) {
      record_error(std::current_exception());
    }
  });
}

void AsyncSession::submit(graph::GraphDelta delta) {
  rethrow_if_error();
  IngestItem item;
  item.delta = std::move(delta);
  if (!ingest_queue_.push(std::move(item))) {
    throw DeltaError("AsyncSession::submit: session is closed");
  }
  deltas_submitted_.fetch_add(1, std::memory_order_relaxed);
}

void AsyncSession::flush() {
  IngestItem item;
  item.flush_ticket.emplace();
  std::future<void> done = item.flush_ticket->get_future();
  if (!ingest_queue_.push(std::move(item))) {
    throw DeltaError("AsyncSession::flush: session is closed");
  }
  done.get();  // rethrows the stored error, if any, via the ticket
}

void AsyncSession::close() {
  std::call_once(close_once_, [this] {
    ingest_queue_.close();
    if (ingest_done_.valid()) ingest_done_.get();
    if (repartition_done_.valid()) repartition_done_.get();
    pool_.reset();
  });
}

AsyncStats AsyncSession::stats() const {
  AsyncStats out;
  out.deltas_submitted = deltas_submitted_.load(std::memory_order_relaxed);
  out.deltas_absorbed = deltas_absorbed_.load(std::memory_order_relaxed);
  out.deltas_rejected = deltas_rejected_.load(std::memory_order_relaxed);
  out.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  out.rebalances_started =
      rebalances_started_.load(std::memory_order_relaxed);
  out.rebalances_committed =
      rebalances_committed_.load(std::memory_order_relaxed);
  out.commits_discarded =
      commits_discarded_.load(std::memory_order_relaxed);
  out.rebalance_failures =
      rebalance_failures_.load(std::memory_order_relaxed);
  out.rebalance_fallbacks =
      rebalance_fallbacks_.load(std::memory_order_relaxed);
  out.queue_high_watermark = ingest_queue_.high_watermark();
  return out;
}

AsyncHealth AsyncSession::health() const {
  AsyncHealth out;
  out.fallbacks_committed =
      rebalance_fallbacks_.load(std::memory_order_relaxed);
  out.rebalance_failures =
      rebalance_failures_.load(std::memory_order_relaxed);
  const sync::MutexLock lock(error_mutex_);
  out.consecutive_failures = consecutive_failures_;
  out.last_error = last_error_;
  out.degraded = degraded_;
  out.error_latched = first_error_ != nullptr;
  return out;
}

void AsyncSession::clear_error() {
  const sync::MutexLock lock(error_mutex_);
  first_error_ = nullptr;
}

// ----------------------------------------------------------- ingest thread

void AsyncSession::ingest_loop() {
  using namespace std::chrono_literals;
  for (;;) {
    std::optional<IngestItem> item;
    if (job_in_flight_) {
      // Multiplex: prefer a finished rebalance, otherwise wait briefly for
      // the next delta so neither channel starves the other.
      if (std::optional<Commit> commit = commit_queue_.try_pop()) {
        handle_commit(std::move(*commit));
        continue;
      }
      item = ingest_queue_.pop_for(500us);
      if (!item && ingest_queue_.closed()) item = ingest_queue_.try_pop();
      if (!item) {
        if (ingest_queue_.closed()) break;  // closed AND drained
        continue;                           // timeout: poll the mailbox
      }
    } else {
      item = ingest_queue_.pop();
      if (!item) break;  // closed and drained
    }
    if (item->flush_ticket) {
      handle_flush(std::move(*item->flush_ticket));
    } else {
      absorb(std::move(item->delta));
    }
  }
  // Shutdown: settle the in-flight rebalance so close() leaves the live
  // session consistent (adopted or cleanly discarded, never abandoned).
  if (job_in_flight_) {
    if (std::optional<Commit> commit = commit_queue_.pop()) {
      handle_commit(std::move(*commit));
    }
  }
}

void AsyncSession::absorb(graph::GraphDelta delta) {
  const SessionCounters before = front_->counters();
  try {
    (void)front_->apply(delta);
  } catch (...) {
    // apply() validates before mutating, so a rejected delta leaves the
    // session untouched: skip it, surface the error on the next
    // submit()/flush().
    deltas_rejected_.fetch_add(1, std::memory_order_relaxed);
    record_error(std::current_exception());
    return;
  }
  const SessionCounters& after = front_->counters();
  deltas_absorbed_.fetch_add(1, std::memory_order_relaxed);
  pending_updates_ += 1;
  pending_vertex_changes_ +=
      (after.vertices_added - before.vertices_added) +
      (after.vertices_removed - before.vertices_removed);
  publish_view();
  if (!job_in_flight_ && rebalance_due()) dispatch_job();
}

void AsyncSession::handle_flush(std::promise<void> ticket) {
  try {
    // Everything submitted before the ticket is already absorbed (FIFO).
    // Settle the in-flight rebalance, then force rounds until nothing is
    // pending: the published view ends fully rebalanced.  The loop
    // terminates because no new deltas are absorbed while we are here —
    // a round can only be re-run when a pre-flush removal delta staled the
    // in-flight snapshot, and that happens at most once.
    while (first_error() == nullptr) {
      if (job_in_flight_) {
        std::optional<Commit> commit = commit_queue_.pop();
        if (!commit) break;  // repartition thread shut down under us
        handle_commit(std::move(*commit));
        continue;
      }
      if (pending_updates_ > 0) {
        dispatch_job();
        continue;
      }
      break;
    }
    if (std::exception_ptr error = first_error()) {
      ticket.set_exception(error);
    } else {
      ticket.set_value();
    }
  } catch (...) {
    ticket.set_exception(std::current_exception());
  }
}

void AsyncSession::publish_view() {
  ++next_epoch_;
  channel_.publish(std::make_shared<const PartitionView>(
      next_epoch_, front_->partitioning(), front_->summary()));
  epochs_published_.fetch_add(1, std::memory_order_relaxed);
}

bool AsyncSession::rebalance_due() const {
  if (pending_updates_ <= 0) return false;
  switch (config_.batch_policy) {
    case BatchPolicy::every_delta:
      return true;
    case BatchPolicy::vertex_count:
      return pending_vertex_changes_ >= config_.batch_vertex_limit;
    case BatchPolicy::imbalance:
      return front_->summary().imbalance > config_.batch_imbalance_limit;
  }
  return false;
}

void AsyncSession::dispatch_job() {
  // Recycle the previous round's buffers: copy-assignment reuses their
  // capacity, so at steady state a snapshot costs copies, not allocations.
  Job job = std::move(spare_job_);
  job.graph = front_->graph();
  job.partitioning = front_->partitioning();
  job.state = front_->partition_state();
  job.remap_tag = front_->remap_epoch();
  job.pending_updates = pending_updates_;
  job.pending_vertex_changes = pending_vertex_changes_;
  pending_updates_ = 0;
  pending_vertex_changes_ = 0;
  rebalances_started_.fetch_add(1, std::memory_order_relaxed);
  // Capacity 1 and at most one job in flight: this never blocks.
  (void)job_queue_.push(std::move(job));
  job_in_flight_ = true;
}

void AsyncSession::handle_commit(Commit commit) {
  job_in_flight_ = false;
  if (!commit.success) {
    // Tick lost: the primary failed and there was no fallback (or it
    // failed too).  The live session was never touched (the snapshot
    // absorbed the damage).  Latch the error, note it in the ledger,
    // restore the pending counters, and do NOT retry immediately — a
    // broken backend would spin; the next absorbed delta re-evaluates the
    // policy.
    rebalance_failures_.fetch_add(1, std::memory_order_relaxed);
    note_tick_failure(commit.error);
    record_error(commit.error);
    pending_updates_ += commit.job.pending_updates;
    pending_vertex_changes_ += commit.job.pending_vertex_changes;
  } else if (commit.job.remap_tag != front_->remap_epoch()) {
    // A compaction renumbered the id space after the snapshot was taken:
    // the rebalanced assignment addresses stale ids.  Discard it and
    // re-trigger on the current state.  (Under deferred compaction a
    // removal delta no longer remaps ids, so snapshots survive removals
    // until the slack threshold actually trips.)
    commits_discarded_.fetch_add(1, std::memory_order_relaxed);
    pending_updates_ += commit.job.pending_updates;
    pending_vertex_changes_ += commit.job.pending_vertex_changes;
  } else {
    // Ids are append-only since the snapshot, so the rebalanced
    // assignment is a valid prefix of the live session: adopt it (O(moved
    // vertices)); vertices absorbed after the snapshot keep their step-1
    // placement until the next round.
    front_->adopt_rebalance(commit.job.partitioning);
    rebalances_committed_.fetch_add(1, std::memory_order_relaxed);
    if (commit.used_fallback) {
      // Degraded tick: published, readers got a fresh epoch, but the
      // primary did fail — the ledger records it without latching.
      rebalance_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      note_tick_degraded(commit.error);
    } else {
      note_tick_success();
    }
    publish_view();
  }
  const bool failed = !commit.success;
  spare_job_ = std::move(commit.job);
  if (!failed && !job_in_flight_ && rebalance_due()) dispatch_job();
}

// ------------------------------------------------------ repartition thread

void AsyncSession::repartition_loop() {
  std::uint64_t seen_remap_tag = 0;
  const bool degrade = fallback_backend_ != nullptr;
  while (std::optional<Job> job = job_queue_.pop()) {
    Commit commit;
    if (job->remap_tag != seen_remap_tag) {
      // A removal delta compacted the id space since the last snapshot we
      // processed: the pooled layering/epoch buffers address stale ids.
      rear_ws_.invalidate_vertex_ids();
      fallback_ws_.invalidate_vertex_ids();
      seen_remap_tag = job->remap_tag;
    }
    // Entry-assignment snapshot for the fallback restore: a primary that
    // dies mid-run leaves the job's partitioning/state half-mutated.
    // Pooled, so at steady state this is one memcpy per tick — and only
    // under FailurePolicy::degrade.
    const graph::PartId entry_parts = job->partitioning.num_parts;
    if (degrade) {
      fallback_rollback_.assign(job->partitioning.part.begin(),
                                job->partitioning.part.end());
    }
    try {
      // Pure rebalance tick: the snapshot is fully placed (the ingest
      // session runs step 1 eagerly), so n_old == num_vertices and the
      // backend's in-place entry point rebalances off the snapshot's
      // maintained state and this thread's own pooled workspace.
      BackendResult result = rear_backend_->repartition(
          job->graph, job->partitioning, job->graph.num_vertices(),
          job->state, rear_ws_);
      if (!result.state_maintained) {
        // Backend without the in-place path: its answer replaces the
        // snapshot assignment wholesale.
        job->partitioning = std::move(result.partitioning);
      }
      commit.success = true;
    } catch (...) {
      commit.success = false;
      commit.error = std::current_exception();
      if (degrade) {
        try {
          // Graceful degradation: restore the tick's entry assignment,
          // rebuild the snapshot state over it (the error path is the one
          // place that rescan is acceptable), and re-run locally so
          // readers still get a fresh epoch.  The commit keeps the
          // primary's error for the ledger.
          job->partitioning.num_parts = entry_parts;
          job->partitioning.part.assign(fallback_rollback_.begin(),
                                        fallback_rollback_.end());
          job->state.rebuild(job->graph, job->partitioning);
          BackendResult fb = fallback_backend_->repartition(
              job->graph, job->partitioning, job->graph.num_vertices(),
              job->state, fallback_ws_);
          if (!fb.state_maintained) {
            job->partitioning = std::move(fb.partitioning);
          }
          commit.success = true;
          commit.used_fallback = true;
        } catch (...) {
          // Even the local fallback failed — the tick is lost; report the
          // primary's error (the root cause) and let fail-fast handling
          // latch it.
          commit.success = false;
        }
      }
    }
    commit.job = std::move(*job);
    // false only when the ingest thread already shut the mailbox; the
    // result is moot then.
    if (!commit_queue_.push(std::move(commit))) break;
  }
}

// ------------------------------------------------------------------ errors

void AsyncSession::record_error(std::exception_ptr error) {
  sync::MutexLock lock(error_mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

std::exception_ptr AsyncSession::first_error() const {
  sync::MutexLock lock(error_mutex_);
  return first_error_;
}

void AsyncSession::rethrow_if_error() const {
  if (std::exception_ptr error = first_error()) {
    std::rethrow_exception(error);
  }
}

void AsyncSession::note_tick_success() {
  const sync::MutexLock lock(error_mutex_);
  consecutive_failures_ = 0;
  degraded_ = false;
}

void AsyncSession::note_tick_degraded(const std::exception_ptr& error) {
  // describe() before taking the lock: rethrowing under a capability
  // would be blocking-adjacent work the lock does not need.
  std::string what = describe(error);
  const sync::MutexLock lock(error_mutex_);
  ++consecutive_failures_;
  degraded_ = true;
  last_error_ = std::move(what);
}

void AsyncSession::note_tick_failure(const std::exception_ptr& error) {
  std::string what = describe(error);
  const sync::MutexLock lock(error_mutex_);
  ++consecutive_failures_;
  degraded_ = false;
  last_error_ = std::move(what);
}

}  // namespace pigp
