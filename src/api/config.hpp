#pragma once

/// \file config.hpp
/// Declarative configuration for a pigp::Session.
///
/// SessionConfig is the single place a user states what they want — part
/// count, backend, solver, threads, balance/refine knobs, batching policy —
/// and resolve() is the single place those wishes are validated and
/// propagated into the nested option structs the core drivers consume
/// (IgpOptions, BalanceOptions, RefineOptions, SimplexOptions,
/// MultilevelOptions, AssignOptions).  Nothing else in the library derives
/// one option struct from another; config.cpp carries compile-time
/// field-count guards so adding a field to any of those structs forces an
/// update here instead of being silently skipped.

#include <string>

#include "core/assign.hpp"
#include "core/igp.hpp"
#include "core/multilevel.hpp"
#include "graph/partition.hpp"

namespace pigp {

/// When Session::apply absorbs a delta without immediately rebalancing,
/// this policy decides what finally triggers a repartition.
enum class BatchPolicy {
  every_delta,    ///< repartition after every apply() (the paper's protocol)
  imbalance,      ///< repartition once imbalance exceeds batch_imbalance_limit
  vertex_count,   ///< repartition once pending vertex changes reach
                  ///< batch_vertex_limit
};

/// What AsyncSession does when a rebalance tick fails even after the
/// retry budget (see rebalance_retry_*) is spent.
enum class FailurePolicy {
  /// Latch the error: the failed tick is counted, the error is sticky,
  /// and the next submit()/flush() rethrows it (clear_error() recovers).
  fail_fast,
  /// Re-run the failed tick's snapshot on the local fallback_backend so
  /// readers keep receiving fresh epochs; the failure is recorded in the
  /// health ledger instead of latched.
  degrade,
};

/// When Session::apply reclaims the ids of removed vertices (the graph
/// keeps removed ids as empty "dead" tombstones until a compaction
/// renumbers the survivors).
enum class GraphCompaction {
  /// Compact at the end of every delta that removed something.  Vertex ids
  /// after apply() are exactly the ids the historical rebuild path
  /// produced — the drop-in-compatible default.
  eager,
  /// Defer compaction until dead ids or adjacency-slab slack exceed
  /// compaction_slack (or Session::compact() is called).  Ids stay stable
  /// across removal deltas and apply() cost drops to O(Δ) even for the
  /// remap bookkeeping.  Requires an in-place backend ("igp", "igpr",
  /// "spmd") — batch backends rebuild from the full graph each tick and
  /// cannot see tombstones.
  deferred,
};

struct ResolvedConfig;

/// Everything a Session needs, stated once.  Call resolve() to validate and
/// derive the nested core option structs.
struct SessionConfig {
  /// Number of partitions (required, >= 1).
  graph::PartId num_parts = 0;
  /// Backend registry key: "igp", "igpr", "multilevel", "spmd", "scratch",
  /// or any name registered through BackendRegistry.
  std::string backend = "igpr";
  /// Simplex implementation for the balance and refinement LPs.
  core::LpSolverKind solver = core::LpSolverKind::dense;
  /// Worker threads for assignment, layering, and LP pivoting.
  int num_threads = 1;

  // --- balance (step 3) knobs ---
  double alpha_max = 64.0;       ///< upper bound C on the relaxation factor
  int max_balance_stages = 12;
  double balance_tolerance = 0.5;
  /// Initial depth cap for the boundary-seeded layering; deepened lazily
  /// (doubling) while the staged LP is infeasible.  0 = unlimited, i.e.
  /// always grow to exhaustion like the batch layering.
  int balance_max_layers = 4;

  // --- refinement (step 4) knobs ---
  int max_refine_rounds = 8;
  int refine_strict_after_round = 2;

  // --- multilevel backend knobs ---
  int multilevel_coarsest_size = 2000;
  int multilevel_max_levels = 6;

  // --- spmd backend knobs ---
  int spmd_ranks = 4;
  /// What carries the SPMD messages: "in_process" (Machine mailboxes, the
  /// bit-parity oracle) or "tcp" (real loopback sockets — the full wire
  /// path with framing, filters, and timeouts; decisions stay
  /// bit-identical).
  std::string spmd_transport = "in_process";
  /// Comma-separated message-filter chain applied to every TCP payload,
  /// e.g. "delta" or "delta,zlib" (see net::parse_filter_chain).  Empty =
  /// raw payloads.  Ignored by the in_process transport.
  std::string spmd_wire_filters;
  /// Socket send/recv timeout for the tcp transport, milliseconds (>= 1).
  /// A rank stuck longer than this surfaces a pigp::TransportError.
  int spmd_timeout_ms = 30000;
  /// Scripted chaos for the spmd backend (tests / fault drills): a
  /// net::parse_fault_script spec, e.g. "rank1:send@3:corrupt" or
  /// "rank0:any@12:kill".  Every rank's transport is wrapped in a
  /// net::FaultInjectingTransport sharing one script, so faults fire
  /// deterministically and one-shot faults are absorbed by the retry
  /// path.  Empty = no injection (no wrapper, zero overhead).  drop
  /// rules require spmd_transport == "tcp": only a transport with
  /// bounded recv turns a swallowed packet into a typed timeout.
  std::string spmd_fault_spec;

  // --- failure recovery (spmd backend retry + AsyncSession policy) ---
  /// How many times one rebalance tick is re-attempted after a
  /// *retryable* TransportError (see net::FaultClass); fatal errors
  /// never retry.  0 disables retry.  Applies to the "spmd" backend,
  /// which rolls the partitioning/state back to the tick's entry
  /// snapshot before each attempt, so a retried tick is bit-identical
  /// to a fault-free one.
  int rebalance_retry_limit = 2;
  /// Backoff before the first retry, milliseconds (>= 1); doubles per
  /// attempt and is clamped to the time left under the deadline.
  int rebalance_retry_backoff_ms = 50;
  /// Wall-clock budget across all attempts of one tick, milliseconds
  /// (>= 1).  When it runs out, the last error surfaces even if the
  /// retry limit was not reached.
  int rebalance_retry_deadline_ms = 10000;
  /// AsyncSession's policy when a tick still fails after retry.
  FailurePolicy failure_policy = FailurePolicy::fail_fast;
  /// Local backend re-running a failed tick under FailurePolicy::degrade
  /// (registry key; validated at AsyncSession construction).
  std::string fallback_backend = "igpr";

  // --- scratch backend / initial partitioning ---
  /// "rsb" (recursive spectral bisection), "rgb" (BFS bisection), or
  /// "rsb+kl" (RSB polished with Kernighan–Lin).
  std::string scratch_method = "rsb";

  // --- delta batching ---
  BatchPolicy batch_policy = BatchPolicy::every_delta;
  /// BatchPolicy::imbalance trigger: repartition when max W(q) / avg W
  /// exceeds this (>= 1.0).
  double batch_imbalance_limit = 1.10;
  /// BatchPolicy::vertex_count trigger: repartition when the number of
  /// vertices added + removed since the last repartition reaches this.
  int batch_vertex_limit = 256;

  // --- graph compaction (deltas with removals) ---
  GraphCompaction graph_compaction = GraphCompaction::eager;
  /// GraphCompaction::deferred trigger: compact when dead vertices exceed
  /// this fraction of the id space, or unused adjacency slots exceed this
  /// fraction of the adjacency slab.  In (0, 1].
  double compaction_slack = 0.5;

  // --- async session (AsyncSession only; ignored by Session) ---
  /// Capacity of the bounded ingest queue: how many submitted deltas may
  /// be in flight before submit() blocks (backpressure).  >= 1.
  int async_queue_capacity = 256;

  /// Validate every field (throws pigp::ConfigError naming the offending
  /// field) and propagate threads/solver/knobs into the core option
  /// structs.  The one and only derivation path.
  [[nodiscard]] ResolvedConfig resolve() const;
};

/// A validated SessionConfig plus the fully-propagated core options.
struct ResolvedConfig {
  SessionConfig session;
  core::AssignOptions assign;
  /// igp.refine is true here; backends that skip refinement clear it.
  core::IgpOptions igp;
  core::MultilevelOptions multilevel;
};

}  // namespace pigp
