#include "api/session.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/assign.hpp"
#include "support/check.hpp"

namespace pigp {

Session::Session(SessionConfig config, graph::Graph g, graph::Partitioning p)
    : resolved_(config.resolve()),
      backend_(BackendRegistry::global().create(config.backend, resolved_)),
      graph_(std::move(g)),
      partitioning_(std::move(p)) {
  PIGP_CHECK(partitioning_.num_parts == resolved_.session.num_parts,
             "adopted partitioning has " +
                 std::to_string(partitioning_.num_parts) +
                 " parts but SessionConfig.num_parts is " +
                 std::to_string(resolved_.session.num_parts));
  partitioning_.validate(graph_);
}

Session::Session(SessionConfig config, graph::Graph g)
    : resolved_(config.resolve()),
      backend_(BackendRegistry::global().create(config.backend, resolved_)),
      graph_(std::move(g)) {
  PIGP_CHECK(graph_.num_vertices() > 0,
             "cannot start a session on an empty graph");
  partitioning_ = partition_from_scratch(graph_, resolved_);
}

SessionReport Session::apply(const graph::GraphDelta& delta) {
  const runtime::WallTimer call_timer;
  runtime::WallTimer update_timer;

  graph::DeltaResult applied = graph::apply_delta(graph_, delta);
  graph::Partitioning carried =
      graph::carry_partitioning(partitioning_, applied);
  const graph::VertexId first_new = applied.first_new_vertex;
  graph_ = std::move(applied.graph);

  counters_.deltas_applied += 1;
  counters_.vertices_added +=
      static_cast<std::int64_t>(delta.added_vertices.size());
  counters_.vertices_removed +=
      static_cast<std::int64_t>(delta.removed_vertices.size());
  counters_.edges_added += static_cast<std::int64_t>(delta.added_edges.size());
  counters_.edges_removed +=
      static_cast<std::int64_t>(delta.removed_edges.size());
  counters_.update_seconds += update_timer.seconds();
  pending_updates_ += 1;
  pending_vertex_changes_ +=
      static_cast<std::int64_t>(delta.added_vertices.size()) +
      static_cast<std::int64_t>(delta.removed_vertices.size());

  return finish_update(call_timer, std::move(carried), first_new);
}

SessionReport Session::apply_extended(graph::Graph g_new,
                                      graph::VertexId n_old) {
  const runtime::WallTimer call_timer;
  runtime::WallTimer update_timer;

  PIGP_CHECK(n_old == graph_.num_vertices(),
             "apply_extended: n_old (" + std::to_string(n_old) +
                 ") must equal the session's current vertex count (" +
                 std::to_string(graph_.num_vertices()) + ")");
  PIGP_CHECK(g_new.num_vertices() >= n_old,
             "apply_extended: the new graph must extend the current graph");

  const graph::VertexId added = g_new.num_vertices() - n_old;
  graph::Partitioning old = std::move(partitioning_);  // covers [0, n_old)
  graph_ = std::move(g_new);

  counters_.extensions_applied += 1;
  counters_.vertices_added += added;
  counters_.update_seconds += update_timer.seconds();
  pending_updates_ += 1;
  pending_vertex_changes_ += added;

  return finish_update(call_timer, std::move(old), n_old);
}

SessionReport Session::repartition() {
  const runtime::WallTimer call_timer;
  SessionReport report;
  run_backend(report, partitioning_, graph_.num_vertices());
  report.pending_updates = pending_updates_;
  report.seconds = call_timer.seconds();
  report.metrics = graph::compute_metrics(graph_, partitioning_);
  report.counters = counters_;
  return report;
}

graph::PartitionMetrics Session::metrics() const {
  return graph::compute_metrics(graph_, partitioning_);
}

SessionReport Session::finish_update(const runtime::WallTimer& started,
                                     graph::Partitioning old,
                                     graph::VertexId n_old) {
  SessionReport report;
  const BatchPolicy policy = resolved_.session.batch_policy;
  const bool trigger_now =
      policy == BatchPolicy::every_delta ||
      (policy == BatchPolicy::vertex_count &&
       pending_vertex_changes_ >= resolved_.session.batch_vertex_limit);
  if (trigger_now) {
    // The backend runs step 1 (assignment of the new vertices) itself —
    // no point paying for an eager pass it would repeat.
    try {
      run_backend(report, old, n_old);
    } catch (...) {
      // Keep the graph/partitioning invariant intact for the caller: fall
      // back to the step-1 assignment before propagating the error.
      partitioning_ =
          core::extend_assignment(graph_, old, n_old, resolved_.assign);
      throw;
    }
  } else {
    // Deferred: place the new vertices now (step 1) so the session stays
    // queryable between repartitions, then check the imbalance trigger.
    runtime::WallTimer assign_timer;
    partitioning_ =
        core::extend_assignment(graph_, old, n_old, resolved_.assign);
    counters_.update_seconds += assign_timer.seconds();
    if (policy == BatchPolicy::imbalance && imbalance_exceeds_limit()) {
      run_backend(report, partitioning_, graph_.num_vertices());
    }
  }
  report.pending_updates = pending_updates_;
  report.seconds = started.seconds();
  report.metrics = graph::compute_metrics(graph_, partitioning_);
  report.counters = counters_;
  return report;
}

void Session::run_backend(SessionReport& report,
                          const graph::Partitioning& old_partitioning,
                          graph::VertexId n_old) {
  runtime::WallTimer timer;
  BackendResult result =
      backend_->repartition(graph_, old_partitioning, n_old);
  result.partitioning.validate(graph_);
  partitioning_ = std::move(result.partitioning);

  report.repartitioned = true;
  report.balanced = result.balanced;
  report.stages = result.stages;
  report.refine = result.refine;
  report.timings = result.timings;

  counters_.repartitions += 1;
  counters_.balance_stages += result.stages;
  counters_.lp_iterations += result.refine.lp_iterations;
  for (const core::BalanceStage& stage : result.balance.stages) {
    counters_.lp_iterations += stage.lp_iterations;
  }
  counters_.repartition_seconds += timer.seconds();
  report.balance = std::move(result.balance);

  pending_updates_ = 0;
  pending_vertex_changes_ = 0;
}

bool Session::imbalance_exceeds_limit() const {
  // max W(q) / avg W over the current (assignment-extended) state.
  std::vector<double> weight(
      static_cast<std::size_t>(partitioning_.num_parts), 0.0);
  for (graph::VertexId v = 0; v < graph_.num_vertices(); ++v) {
    weight[static_cast<std::size_t>(
        partitioning_.part[static_cast<std::size_t>(v)])] +=
        graph_.vertex_weight(v);
  }
  double max_weight = 0.0;
  for (const double w : weight) max_weight = std::max(max_weight, w);
  const double avg = graph_.total_vertex_weight() /
                     static_cast<double>(partitioning_.num_parts);
  return avg > 0.0 &&
         max_weight / avg > resolved_.session.batch_imbalance_limit;
}

}  // namespace pigp
