#include "api/session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "api/errors.hpp"
#include "core/assign.hpp"
#include "support/check.hpp"

namespace pigp {

Session::Session(SessionConfig config, graph::Graph g, graph::Partitioning p)
    : resolved_(config.resolve()),
      backend_(BackendRegistry::global().create(config.backend, resolved_)),
      graph_(std::move(g)),
      partitioning_(std::move(p)) {
  if (partitioning_.num_parts != resolved_.session.num_parts) {
    throw ConfigError("adopted partitioning has " +
                      std::to_string(partitioning_.num_parts) +
                      " parts but SessionConfig.num_parts is " +
                      std::to_string(resolved_.session.num_parts));
  }
  partitioning_.validate(graph_);  // every live vertex assigned, in range
  state_.rebuild(graph_, partitioning_);  // seeds the O(Δ) path
}

Session::Session(SessionConfig config, graph::Graph g)
    : resolved_(config.resolve()),
      backend_(BackendRegistry::global().create(config.backend, resolved_)) {
  if (g.num_vertices() <= 0) {
    throw ConfigError("cannot start a session on an empty graph");
  }
  graph_ = std::move(g);
  partitioning_ = partition_from_scratch(graph_, resolved_);
  state_.rebuild(graph_, partitioning_);
}

SessionReport Session::apply(const graph::GraphDelta& delta) {
  throw_if_failed();
  const runtime::WallTimer call_timer;
  runtime::WallTimer update_timer;

  // A delta that changes nothing (no additions, no removals) is a pure
  // repartition tick: skip the graph rebuild entirely, so at steady state
  // the whole call runs off the warm workspace without touching the heap.
  if (delta.added_vertices.empty() && delta.added_edges.empty() &&
      !delta.has_removals()) {
    counters_.deltas_applied += 1;
    counters_.update_seconds += update_timer.seconds();
    pending_updates_ += 1;
    return finish_update(call_timer, std::move(partitioning_),
                         graph_.num_vertices());
  }

  // Validate the whole delta up front (same rules as apply_delta), so
  // every mutation below is known good and cannot half-apply: a rejected
  // delta leaves graph/partitioning/state untouched (strong guarantee).
  graph::validate_delta(graph_, delta);

  const std::int64_t old_edges = graph_.num_edges();
  const auto added =
      static_cast<graph::VertexId>(delta.added_vertices.size());

  // Removed vertices: retire the assignment first (move_vertex pulls the
  // weight and the edges to still-present neighbors out of the state, so
  // an edge between two removed vertices leaves exactly once), then drop
  // the vertex from the graph — it becomes a dead id until compaction.
  std::int64_t removed_edge_count = 0;
  std::int64_t removed_vertex_count = 0;
  for (const graph::VertexId v : delta.removed_vertices) {
    if (!graph_.is_live(v)) continue;  // duplicate entry, already removed
    for (const graph::VertexId u : graph_.neighbors(v)) {
      if (partitioning_.part[static_cast<std::size_t>(u)] !=
          graph::kUnassigned) {
        ++removed_edge_count;
      }
    }
    state_.move_vertex(graph_, partitioning_, v, graph::kUnassigned);
    graph_.remove_vertex(v);
    ++removed_vertex_count;
  }
  // Removed edges (deduplicated; entries whose endpoint left with a
  // removed vertex are already gone).
  if (!delta.removed_edges.empty()) {
    std::vector<std::pair<graph::VertexId, graph::VertexId>> removed_old_edges;
    removed_old_edges.reserve(delta.removed_edges.size());
    for (const auto& [u, v] : delta.removed_edges) {
      removed_old_edges.push_back(graph::canonical_edge(u, v));
    }
    std::sort(removed_old_edges.begin(), removed_old_edges.end());
    removed_old_edges.erase(
        std::unique(removed_old_edges.begin(), removed_old_edges.end()),
        removed_old_edges.end());
    for (const auto& [u, v] : removed_old_edges) {
      if (partitioning_.part[static_cast<std::size_t>(u)] ==
              graph::kUnassigned ||
          partitioning_.part[static_cast<std::size_t>(v)] ==
              graph::kUnassigned) {
        continue;  // already gone with a removed endpoint
      }
      const double w = graph_.remove_edge(u, v);
      state_.remove_edge(partitioning_, u, v, w);
      ++removed_edge_count;
    }
  }

  // Added vertices: ids are appended to the current id space, so a
  // delta-space id (n_old + index) IS the graph id — no translation.  The
  // new vertices start unassigned; their edges become visible to the
  // state when step 1 places them (finish_update / the backend).
  for (const graph::VertexAddition& add : delta.added_vertices) {
    const graph::VertexId self = graph_.add_vertex(add.weight);
    partitioning_.part.push_back(graph::kUnassigned);
    for (const auto& [endpoint, weight] : add.edges) {
      graph_.insert_edge(self, endpoint, weight);
    }
  }
  state_.grow_vertices(graph_.num_vertices());

  // Added edges, in delta order (float cost accumulation stays
  // order-stable): the graph's own merge result decides structural-new
  // (boundary index counts it) vs duplicate (weights only).  An edge
  // removed above and re-added here was physically removed, so it counts
  // as structural again — the historical replace semantics.  Edges
  // touching a still-unassigned new vertex no-op through the state and
  // enter at placement time.
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    const auto [u, v] = delta.added_edges[i];
    const double w =
        delta.added_edge_weights.empty() ? 1.0 : delta.added_edge_weights[i];
    const bool structural = graph_.insert_edge(u, v, w);
    if (structural) {
      state_.add_edge(partitioning_, u, v, w);
    } else {
      state_.adjust_edge_weight(partitioning_, u, v, w);
    }
  }

  counters_.deltas_applied += 1;
  counters_.vertices_added += static_cast<std::int64_t>(added);
  counters_.vertices_removed += removed_vertex_count;
  // Count what actually changed in the graph, not what the delta listed:
  // removals include the edges implicitly dropped with removed vertices,
  // additions include new-vertex attachment edges (merged duplicates count
  // once, exactly like the graph itself).
  counters_.edges_removed += removed_edge_count;
  counters_.edges_added +=
      graph_.num_edges() - (old_edges - removed_edge_count);

  // Compaction policy.  Eager reclaims dead ids at the end of every delta
  // that removed something — ids after apply() are exactly what the
  // historical rebuild path produced.  Deferred waits until dead ids or
  // adjacency slack exceed the configured fraction, keeping ids stable and
  // the per-delta cost at O(Δ).
  bool compacted = false;
  if (resolved_.session.graph_compaction == GraphCompaction::eager) {
    if (delta.has_removals()) {
      compact_now();
      compacted = true;
    }
  } else {
    const double slack = resolved_.session.compaction_slack;
    const auto n_ids = static_cast<double>(graph_.num_vertices());
    const auto cap = static_cast<double>(graph_.adjacency_capacity());
    if (static_cast<double>(graph_.num_dead_vertices()) > slack * n_ids ||
        (cap > 0.0 &&
         static_cast<double>(graph_.adjacency_slack()) > slack * cap)) {
      compact_now();
      compacted = true;
    }
  }
  // The appended (still unassigned) vertices are the id-space tail either
  // way; hand finish_update the assignment over everything before them.
  const graph::VertexId effective_first_new = graph_.num_vertices() - added;
  graph::Partitioning carried = std::move(partitioning_);
  carried.part.resize(static_cast<std::size_t>(effective_first_new));

  counters_.update_seconds += update_timer.seconds();
  pending_updates_ += 1;
  pending_vertex_changes_ +=
      static_cast<std::int64_t>(added) + removed_vertex_count;

  SessionReport report =
      finish_update(call_timer, std::move(carried), effective_first_new);
  report.compacted = compacted;
  return report;
}

const std::vector<graph::VertexId>& Session::compact() {
  throw_if_failed();
  compact_now();
  return last_compaction_;
}

void Session::compact_now() {
  const graph::VertexId n = graph_.num_vertices();
  const graph::VertexId new_n = graph_.compact(last_compaction_);
  // Forward rewrite is safe in place: the order-preserving mapping never
  // moves an assignment to a higher id.
  for (graph::VertexId v = 0; v < n; ++v) {
    const graph::VertexId nv = last_compaction_[static_cast<std::size_t>(v)];
    if (nv != graph::kInvalidVertex) {
      partitioning_.part[static_cast<std::size_t>(nv)] =
          partitioning_.part[static_cast<std::size_t>(v)];
    }
  }
  partitioning_.part.resize(static_cast<std::size_t>(new_n));
  // The retired ids already left the boundary index (they were moved to
  // kUnassigned when removed), so every surviving entry remaps cleanly;
  // id-addressed workspace buffers are now stale.
  state_.remap_vertices(last_compaction_, new_n);
  workspace_.invalidate_vertex_ids();
}

SessionReport Session::apply_extended(graph::Graph g_new,
                                      graph::VertexId n_old) {
  throw_if_failed();
  const runtime::WallTimer call_timer;
  runtime::WallTimer update_timer;

  if (n_old != graph_.num_vertices()) {
    throw DeltaError("apply_extended: n_old (" + std::to_string(n_old) +
                     ") must equal the session's current vertex count (" +
                     std::to_string(graph_.num_vertices()) + ")");
  }
  if (g_new.num_vertices() < n_old) {
    throw DeltaError(
        "apply_extended: the new graph must extend the current graph");
  }
  if (graph_.num_dead_vertices() > 0) {
    // An extension aligns ids positionally with the current graph; dead
    // ids would silently shift that alignment.
    throw DeltaError(
        "apply_extended: the session graph has uncompacted removed "
        "vertices — call compact() first");
  }

  const graph::VertexId added = g_new.num_vertices() - n_old;
  const std::int64_t old_edges = graph_.num_edges();
  // Extensions may also rewire edges *between* old vertices (mesh
  // retriangulation destroys and creates them); reconcile the exact diff
  // into the state and the counters.  The appended vertices stay invisible
  // until finish_update places them.
  const graph::PartitionState::EdgeDiff diff =
      state_.reconcile_extension(graph_, g_new, partitioning_, n_old);
  graph::Partitioning old = std::move(partitioning_);  // covers [0, n_old)
  graph_ = std::move(g_new);

  counters_.extensions_applied += 1;
  counters_.vertices_added += added;
  counters_.edges_removed += diff.removed;
  counters_.edges_added +=
      graph_.num_edges() - (old_edges - diff.removed);
  counters_.update_seconds += update_timer.seconds();
  pending_updates_ += 1;
  pending_vertex_changes_ += added;

  return finish_update(call_timer, std::move(old), n_old);
}

SessionReport Session::repartition() {
  throw_if_failed();
  const runtime::WallTimer call_timer;
  SessionReport report;
  run_backend(report, std::move(partitioning_), graph_.num_vertices());
  report.pending_updates = pending_updates_;
  report.seconds = call_timer.seconds();
  report.metrics = state_.summary();
  report.counters = counters_;
  return report;
}

graph::PartitionMetrics Session::metrics() const { return state_.snapshot(); }

void Session::throw_if_failed() const {
  if (transport_failure_) std::rethrow_exception(transport_failure_);
}

void Session::adopt_rebalance(const graph::Partitioning& rebalanced) {
  throw_if_failed();
  if (rebalanced.num_parts != partitioning_.num_parts) {
    throw DeltaError("adopt_rebalance: rebalanced partitioning has " +
                     std::to_string(rebalanced.num_parts) +
                     " parts but the session has " +
                     std::to_string(partitioning_.num_parts));
  }
  if (rebalanced.num_vertices() > graph_.num_vertices()) {
    throw DeltaError(
        "adopt_rebalance: rebalanced partitioning covers " +
        std::to_string(rebalanced.num_vertices()) +
        " vertices but the session's graph has only " +
        std::to_string(graph_.num_vertices()));
  }
  runtime::WallTimer timer;
  const graph::VertexId covered = rebalanced.num_vertices();
  // Validate before mutating: a mid-loop throw must not leave a
  // half-adopted assignment behind.
  for (graph::VertexId v = 0; v < covered; ++v) {
    const graph::PartId target =
        rebalanced.part[static_cast<std::size_t>(v)];
    if (target == graph::kUnassigned &&
        partitioning_.part[static_cast<std::size_t>(v)] ==
            graph::kUnassigned) {
      continue;  // dead id in a deferred-compaction snapshot: stays retired
    }
    if (target < 0 || target >= partitioning_.num_parts) {
      throw DeltaError(
          "adopt_rebalance: assignment out of range for vertex " +
          std::to_string(v));
    }
  }
  for (graph::VertexId v = 0; v < covered; ++v) {
    const graph::PartId target =
        rebalanced.part[static_cast<std::size_t>(v)];
    if (target == partitioning_.part[static_cast<std::size_t>(v)]) continue;
    // move_vertex keeps the weights, cut and boundary index exact, so
    // adoption costs O(moved vertices x their degree), not a rescan.
    state_.move_vertex(graph_, partitioning_, v, target);
  }
  counters_.repartitions += 1;
  counters_.repartition_seconds += timer.seconds();
  pending_updates_ = 0;
  pending_vertex_changes_ = 0;
}

SessionReport Session::finish_update(const runtime::WallTimer& started,
                                     graph::Partitioning old,
                                     graph::VertexId n_old) {
  SessionReport report;
  const BatchPolicy policy = resolved_.session.batch_policy;
  const bool trigger_now =
      policy == BatchPolicy::every_delta ||
      (policy == BatchPolicy::vertex_count &&
       pending_vertex_changes_ >= resolved_.session.batch_vertex_limit);
  if (trigger_now) {
    // The backend runs step 1 (assignment of the new vertices) itself —
    // no point paying for an eager pass it would repeat.  run_backend
    // restores the graph/partitioning/state invariant itself if the
    // backend throws.
    run_backend(report, std::move(old), n_old);
  } else {
    // Deferred: place the new vertices now (step 1, in place through the
    // state and the workspace's seeded BFS) so the session stays
    // queryable between repartitions, then check the imbalance trigger.
    // Only the placements are folded into the state — O(Σ deg(new)).
    runtime::WallTimer assign_timer;
    core::extend_assignment_state(graph_, old, n_old, state_, workspace_,
                                  resolved_.assign);
    partitioning_ = std::move(old);
    counters_.update_seconds += assign_timer.seconds();
    if (policy == BatchPolicy::imbalance &&
        state_.imbalance() > resolved_.session.batch_imbalance_limit) {
      run_backend(report, std::move(partitioning_), graph_.num_vertices());
    }
  }
  report.pending_updates = pending_updates_;
  report.seconds = started.seconds();
  report.metrics = state_.summary();
  report.counters = counters_;
  return report;
}

void Session::run_backend(SessionReport& report, graph::Partitioning old,
                          graph::VertexId n_old) {
  runtime::WallTimer timer;
  // O(Δ) rollback protection: open a PartitionState journal window (every
  // assignment change the backend makes is recorded as an undoable move)
  // and park an O(P) aggregate snapshot in the workspace to erase float
  // drift after an undo.  This replaces the historical O(V) assignment
  // memcpy — exception rollback now costs what the failed run moved.
  const std::size_t mark = state_.begin_rollback_mark();
  state_.save_aggregates_into(workspace_.rollback_aggregates);
  partitioning_ = std::move(old);
  BackendResult result;
  try {
    result = backend_->repartition(graph_, partitioning_, n_old, state_,
                                   workspace_);
    if (!result.state_maintained) {
      // Backend without the in-place path (multilevel, scratch, external
      // registrations): fold its answer into the state by moving exactly
      // the vertices whose assignment changed; partitioning_ ends equal
      // to result.partitioning.
      state_.transition(graph_, partitioning_, result.partitioning);
    }
    check_backend_invariants(result.state_maintained, n_old);
    state_.end_rollback_mark(mark);
  } catch (...) {
    // A wire failure that reaches this frame already spent the SPMD
    // backend's retry budget (or was fatal-classified) — peer ranks may be
    // gone for good, so latch it and make every further mutating call
    // rethrow instead of hanging on a dead group (transport_failed();
    // clear_error() is the explicit way back).  Other exceptions stay
    // one-shot.
    try {
      throw;
    } catch (const TransportError&) {
      transport_failure_ = std::current_exception();
    } catch (...) {
    }
    // Keep the graph/partitioning/state invariant intact for the caller:
    // replay the journal backwards to the pre-backend assignment (the
    // appended vertices end kUnassigned again — they were placed inside
    // the window), erase float drift from the snapshot, and re-run step 1
    // so the session stays fully queryable.
    PIGP_CHECK(!state_.journal_rebased(),
               "backend rebuilt the state mid-run; rollback impossible");
    state_.undo_to_mark(graph_, partitioning_, mark);
    state_.end_rollback_mark(mark);
    state_.restore_aggregates(workspace_.rollback_aggregates);
    partitioning_.part.resize(static_cast<std::size_t>(n_old));
    core::extend_assignment_state(graph_, partitioning_, n_old, state_,
                                  workspace_, resolved_.assign);
    throw;
  }

  report.repartitioned = true;
  report.balanced = result.balanced;
  report.stages = result.stages;
  report.refine = result.refine;
  report.timings = result.timings;

  counters_.repartitions += 1;
  counters_.balance_stages += result.stages;
  counters_.lp_iterations += result.refine.lp_iterations;
  for (const core::BalanceStage& stage : result.balance.stages) {
    counters_.lp_iterations += stage.lp_iterations;
  }
  counters_.repartition_seconds += timer.seconds();
  report.balance = std::move(result.balance);

  pending_updates_ = 0;
  pending_vertex_changes_ = 0;
}

void Session::check_backend_invariants(bool state_maintained,
                                       graph::VertexId n_old) const {
#if defined(PIGP_VALIDATE) || !defined(NDEBUG)
  // Debug / PIGP_VALIDATE=ON builds keep the historical full validate —
  // an O(V) scan of every assignment.
  (void)state_maintained;
  (void)n_old;
  partitioning_.validate(graph_);
#else
  if (!state_maintained) {
    // Backends that return a fresh partitioning (multilevel, scratch,
    // external registrations) are off the streaming hot path and get the
    // full check.
    partitioning_.validate(graph_);
    return;
  }
  // Streaming path: O(Δ + boundary + P) invariant check instead of the
  // O(V) sweep.  The vertices below n_old were validated when they
  // entered; the in-place pipeline only ever rewrites assignments through
  // PartitionState::move_vertex, which rejects out-of-range destinations —
  // so checking sizes, the appended tail, the weight conservation law and
  // the boundary-index invariant covers everything a full validate would
  // catch short of memory corruption.
  const graph::VertexId n = graph_.num_vertices();
  PIGP_CHECK(partitioning_.num_vertices() == n,
             "backend left the partitioning covering the wrong vertex count");
  PIGP_CHECK(partitioning_.num_parts == resolved_.session.num_parts,
             "backend changed the partition count");
  for (graph::VertexId v = n_old; v < n; ++v) {
    const graph::PartId q = partitioning_.part[static_cast<std::size_t>(v)];
    PIGP_CHECK(q >= 0 && q < partitioning_.num_parts,
               "appended vertex left unassigned or out of range");
  }
  double total = 0.0;
  for (const double w : state_.weights()) total += w;
  const double expected = graph_.total_vertex_weight();
  PIGP_CHECK(std::abs(total - expected) <=
                 1e-6 * std::max(1.0, std::abs(expected)),
             "maintained partition weights no longer sum to the graph total");
  for (graph::PartId q = 0; q < partitioning_.num_parts; ++q) {
    for (const graph::VertexId v : state_.boundary_vertices(q)) {
      PIGP_CHECK(partitioning_.part[static_cast<std::size_t>(v)] == q &&
                     state_.external_degree(v) > 0,
                 "boundary index inconsistent with the assignment");
    }
  }
#endif
}

}  // namespace pigp
