#include "api/session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "api/errors.hpp"
#include "core/assign.hpp"
#include "support/check.hpp"

namespace pigp {

Session::Session(SessionConfig config, graph::Graph g, graph::Partitioning p)
    : resolved_(config.resolve()),
      backend_(BackendRegistry::global().create(config.backend, resolved_)),
      graph_(std::move(g)),
      partitioning_(std::move(p)) {
  if (partitioning_.num_parts != resolved_.session.num_parts) {
    throw ConfigError("adopted partitioning has " +
                      std::to_string(partitioning_.num_parts) +
                      " parts but SessionConfig.num_parts is " +
                      std::to_string(resolved_.session.num_parts));
  }
  state_.rebuild(graph_, partitioning_);  // validates, seeds the O(Δ) path
}

Session::Session(SessionConfig config, graph::Graph g)
    : resolved_(config.resolve()),
      backend_(BackendRegistry::global().create(config.backend, resolved_)) {
  if (g.num_vertices() <= 0) {
    throw ConfigError("cannot start a session on an empty graph");
  }
  graph_ = std::move(g);
  partitioning_ = partition_from_scratch(graph_, resolved_);
  state_.rebuild(graph_, partitioning_);
}

SessionReport Session::apply(const graph::GraphDelta& delta) {
  throw_if_failed();
  const runtime::WallTimer call_timer;
  runtime::WallTimer update_timer;

  // A delta that changes nothing (no additions, no removals) is a pure
  // repartition tick: skip the graph rebuild entirely, so at steady state
  // the whole call runs off the warm workspace without touching the heap.
  if (delta.added_vertices.empty() && delta.added_edges.empty() &&
      !delta.has_removals()) {
    counters_.deltas_applied += 1;
    counters_.update_seconds += update_timer.seconds();
    pending_updates_ += 1;
    return finish_update(call_timer, std::move(partitioning_),
                         graph_.num_vertices());
  }

  // apply_delta validates the whole delta up front, so every reference
  // below is known good and the state bookkeeping cannot half-apply.
  graph::DeltaResult applied = graph::apply_delta(graph_, delta);
  // Only removals remap ids; the append-only case reuses the current
  // assignment verbatim (moved out after the accounting below, which still
  // reads it).
  graph::Partitioning carried;
  if (delta.has_removals()) {
    carried = graph::carry_partitioning(partitioning_, applied);
  }
  const graph::VertexId first_new = applied.first_new_vertex;
  const graph::VertexId n_old = graph_.num_vertices();
  const std::int64_t old_edges = graph_.num_edges();

  // O(Δ) aggregate + counter accounting against the old graph, before it
  // is swapped out.  Retiring a removed vertex pulls its weight and its
  // edges to still-present neighbors out of the state, so an edge between
  // two removed vertices leaves exactly once; surviving explicit removals
  // and added old-old edges follow.  Edges that touch *new* vertices enter
  // the state when those vertices are placed (finish_update).
  std::int64_t removed_edge_count = 0;
  std::int64_t removed_vertex_count = 0;
  for (const graph::VertexId v : delta.removed_vertices) {
    if (partitioning_.part[static_cast<std::size_t>(v)] == graph::kUnassigned) {
      continue;  // duplicate entry, already retired
    }
    for (const graph::VertexId u : graph_.neighbors(v)) {
      if (partitioning_.part[static_cast<std::size_t>(u)] !=
          graph::kUnassigned) {
        ++removed_edge_count;
      }
    }
    state_.move_vertex(graph_, partitioning_, v, graph::kUnassigned);
    ++removed_vertex_count;
  }
  std::vector<std::pair<graph::VertexId, graph::VertexId>> removed_old_edges;
  if (!delta.removed_edges.empty()) {
    removed_old_edges.reserve(delta.removed_edges.size());
    for (const auto& [u, v] : delta.removed_edges) {
      removed_old_edges.push_back(graph::canonical_edge(u, v));
    }
    std::sort(removed_old_edges.begin(), removed_old_edges.end());
    removed_old_edges.erase(
        std::unique(removed_old_edges.begin(), removed_old_edges.end()),
        removed_old_edges.end());
    for (const auto& [u, v] : removed_old_edges) {
      if (partitioning_.part[static_cast<std::size_t>(u)] ==
              graph::kUnassigned ||
          partitioning_.part[static_cast<std::size_t>(v)] ==
              graph::kUnassigned) {
        continue;  // already gone with a removed endpoint
      }
      state_.remove_edge(partitioning_, u, v, graph_.edge_weight(u, v));
      ++removed_edge_count;
    }
  }
  // Old-old edge additions: a structurally new edge updates the boundary
  // index; a duplicate that merges into an existing edge (or a repeat of
  // an edge this same delta already created) only adjusts weights.  An
  // edge removed above and re-added here is a replace — apply_delta drops
  // the old weight and keeps the new — so it counts as structural again.
  // First-occurrence detection is a sort over the old-old entries
  // (O(k log k)); the main loop keeps the delta's original order so the
  // floating-point cost accumulation is order-stable.
  std::vector<bool> first_occurrence(delta.added_edges.size(), false);
  {
    std::vector<std::pair<std::pair<graph::VertexId, graph::VertexId>,
                          std::size_t>>
        old_old;
    for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
      const auto [u, v] = delta.added_edges[i];
      if (u >= n_old || v >= n_old) continue;
      old_old.emplace_back(graph::canonical_edge(u, v), i);
    }
    std::sort(old_old.begin(), old_old.end());
    for (std::size_t k = 0; k < old_old.size(); ++k) {
      first_occurrence[old_old[k].second] =
          k == 0 || old_old[k].first != old_old[k - 1].first;
    }
  }
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    const auto [u, v] = delta.added_edges[i];
    if (u >= n_old || v >= n_old) continue;  // enters at placement time
    const double w =
        delta.added_edge_weights.empty() ? 1.0 : delta.added_edge_weights[i];
    const auto canon = graph::canonical_edge(u, v);
    const bool removed_this_delta = std::binary_search(
        removed_old_edges.begin(), removed_old_edges.end(), canon);
    const bool structural = first_occurrence[i] &&
                            (removed_this_delta || !graph_.has_edge(u, v));
    if (structural) {
      state_.add_edge(partitioning_, u, v, w);
    } else {
      state_.adjust_edge_weight(partitioning_, u, v, w);
    }
  }

  if (!delta.has_removals()) carried = std::move(partitioning_);
  graph_ = std::move(applied.graph);
  if (delta.has_removals()) {
    // Deletions compacted the id space; rewrite the boundary index (the
    // retired vertices already left it above, so every entry survives)
    // and flag every id-addressed workspace buffer as stale.
    state_.remap_vertices(applied.old_to_new, graph_.num_vertices());
    workspace_.invalidate_vertex_ids();
  }

  counters_.deltas_applied += 1;
  counters_.vertices_added +=
      static_cast<std::int64_t>(delta.added_vertices.size());
  counters_.vertices_removed += removed_vertex_count;
  // Count what actually changed in the graph, not what the delta listed:
  // removals include the edges implicitly dropped with removed vertices,
  // additions include new-vertex attachment edges (merged duplicates count
  // once, exactly like the graph itself).
  counters_.edges_removed += removed_edge_count;
  counters_.edges_added +=
      graph_.num_edges() - (old_edges - removed_edge_count);
  counters_.update_seconds += update_timer.seconds();
  pending_updates_ += 1;
  pending_vertex_changes_ +=
      static_cast<std::int64_t>(delta.added_vertices.size()) +
      removed_vertex_count;

  return finish_update(call_timer, std::move(carried), first_new);
}

SessionReport Session::apply_extended(graph::Graph g_new,
                                      graph::VertexId n_old) {
  throw_if_failed();
  const runtime::WallTimer call_timer;
  runtime::WallTimer update_timer;

  if (n_old != graph_.num_vertices()) {
    throw DeltaError("apply_extended: n_old (" + std::to_string(n_old) +
                     ") must equal the session's current vertex count (" +
                     std::to_string(graph_.num_vertices()) + ")");
  }
  if (g_new.num_vertices() < n_old) {
    throw DeltaError(
        "apply_extended: the new graph must extend the current graph");
  }

  const graph::VertexId added = g_new.num_vertices() - n_old;
  const std::int64_t old_edges = graph_.num_edges();
  // Extensions may also rewire edges *between* old vertices (mesh
  // retriangulation destroys and creates them); reconcile the exact diff
  // into the state and the counters.  The appended vertices stay invisible
  // until finish_update places them.
  const graph::PartitionState::EdgeDiff diff =
      state_.reconcile_extension(graph_, g_new, partitioning_, n_old);
  graph::Partitioning old = std::move(partitioning_);  // covers [0, n_old)
  graph_ = std::move(g_new);

  counters_.extensions_applied += 1;
  counters_.vertices_added += added;
  counters_.edges_removed += diff.removed;
  counters_.edges_added +=
      graph_.num_edges() - (old_edges - diff.removed);
  counters_.update_seconds += update_timer.seconds();
  pending_updates_ += 1;
  pending_vertex_changes_ += added;

  return finish_update(call_timer, std::move(old), n_old);
}

SessionReport Session::repartition() {
  throw_if_failed();
  const runtime::WallTimer call_timer;
  SessionReport report;
  run_backend(report, std::move(partitioning_), graph_.num_vertices());
  report.pending_updates = pending_updates_;
  report.seconds = call_timer.seconds();
  report.metrics = state_.summary();
  report.counters = counters_;
  return report;
}

graph::PartitionMetrics Session::metrics() const { return state_.snapshot(); }

void Session::throw_if_failed() const {
  if (transport_failure_) std::rethrow_exception(transport_failure_);
}

void Session::adopt_rebalance(const graph::Partitioning& rebalanced) {
  throw_if_failed();
  if (rebalanced.num_parts != partitioning_.num_parts) {
    throw DeltaError("adopt_rebalance: rebalanced partitioning has " +
                     std::to_string(rebalanced.num_parts) +
                     " parts but the session has " +
                     std::to_string(partitioning_.num_parts));
  }
  if (rebalanced.num_vertices() > graph_.num_vertices()) {
    throw DeltaError(
        "adopt_rebalance: rebalanced partitioning covers " +
        std::to_string(rebalanced.num_vertices()) +
        " vertices but the session's graph has only " +
        std::to_string(graph_.num_vertices()));
  }
  runtime::WallTimer timer;
  const graph::VertexId covered = rebalanced.num_vertices();
  // Validate before mutating: a mid-loop throw must not leave a
  // half-adopted assignment behind.
  for (graph::VertexId v = 0; v < covered; ++v) {
    const graph::PartId target =
        rebalanced.part[static_cast<std::size_t>(v)];
    if (target < 0 || target >= partitioning_.num_parts) {
      throw DeltaError(
          "adopt_rebalance: assignment out of range for vertex " +
          std::to_string(v));
    }
  }
  for (graph::VertexId v = 0; v < covered; ++v) {
    const graph::PartId target =
        rebalanced.part[static_cast<std::size_t>(v)];
    if (target == partitioning_.part[static_cast<std::size_t>(v)]) continue;
    // move_vertex keeps the weights, cut and boundary index exact, so
    // adoption costs O(moved vertices x their degree), not a rescan.
    state_.move_vertex(graph_, partitioning_, v, target);
  }
  counters_.repartitions += 1;
  counters_.repartition_seconds += timer.seconds();
  pending_updates_ = 0;
  pending_vertex_changes_ = 0;
}

SessionReport Session::finish_update(const runtime::WallTimer& started,
                                     graph::Partitioning old,
                                     graph::VertexId n_old) {
  SessionReport report;
  const BatchPolicy policy = resolved_.session.batch_policy;
  const bool trigger_now =
      policy == BatchPolicy::every_delta ||
      (policy == BatchPolicy::vertex_count &&
       pending_vertex_changes_ >= resolved_.session.batch_vertex_limit);
  if (trigger_now) {
    // The backend runs step 1 (assignment of the new vertices) itself —
    // no point paying for an eager pass it would repeat.  run_backend
    // restores the graph/partitioning/state invariant itself if the
    // backend throws.
    run_backend(report, std::move(old), n_old);
  } else {
    // Deferred: place the new vertices now (step 1, in place through the
    // state and the workspace's seeded BFS) so the session stays
    // queryable between repartitions, then check the imbalance trigger.
    // Only the placements are folded into the state — O(Σ deg(new)).
    runtime::WallTimer assign_timer;
    core::extend_assignment_state(graph_, old, n_old, state_, workspace_,
                                  resolved_.assign);
    partitioning_ = std::move(old);
    counters_.update_seconds += assign_timer.seconds();
    if (policy == BatchPolicy::imbalance &&
        state_.imbalance() > resolved_.session.batch_imbalance_limit) {
      run_backend(report, std::move(partitioning_), graph_.num_vertices());
    }
  }
  report.pending_updates = pending_updates_;
  report.seconds = started.seconds();
  report.metrics = state_.summary();
  report.counters = counters_;
  return report;
}

void Session::run_backend(SessionReport& report, graph::Partitioning old,
                          graph::VertexId n_old) {
  runtime::WallTimer timer;
  // Rollback snapshot into the pooled workspace buffer: the backend works
  // in place on partitioning_, so on exception the pre-backend assignment
  // must come from somewhere.  This memcpy-speed copy is the one O(V)
  // touch the session itself still pays per repartition.
  workspace_.rollback_part.assign(old.part.begin(), old.part.end());
  const graph::PartId rollback_parts = old.num_parts;
  partitioning_ = std::move(old);
  BackendResult result;
  try {
    result = backend_->repartition(graph_, partitioning_, n_old, state_,
                                   workspace_);
    if (!result.state_maintained) {
      // Backend without the in-place path (multilevel, scratch, external
      // registrations): fold its answer into the state by moving exactly
      // the vertices whose assignment changed; partitioning_ ends equal
      // to result.partitioning.
      state_.transition(graph_, partitioning_, result.partitioning);
    }
    check_backend_invariants(result.state_maintained, n_old);
  } catch (...) {
    // A wire failure that reaches this frame already spent the SPMD
    // backend's retry budget (or was fatal-classified) — peer ranks may be
    // gone for good, so latch it and make every further mutating call
    // rethrow instead of hanging on a dead group (transport_failed();
    // clear_error() is the explicit way back).  Other exceptions stay
    // one-shot.
    try {
      throw;
    } catch (const TransportError&) {
      transport_failure_ = std::current_exception();
    } catch (...) {
    }
    // Keep the graph/partitioning/state invariant intact for the caller:
    // restore the pre-backend assignment from the rollback snapshot, run
    // step 1 on it, and rebuild the state from scratch — the error path
    // is the one place that rescan is acceptable.
    graph::Partitioning restored;
    restored.num_parts = rollback_parts;
    restored.part.assign(workspace_.rollback_part.begin(),
                         workspace_.rollback_part.end());
    partitioning_ = core::extend_assignment(graph_, restored, n_old,
                                            resolved_.assign);
    state_.rebuild(graph_, partitioning_);
    throw;
  }

  report.repartitioned = true;
  report.balanced = result.balanced;
  report.stages = result.stages;
  report.refine = result.refine;
  report.timings = result.timings;

  counters_.repartitions += 1;
  counters_.balance_stages += result.stages;
  counters_.lp_iterations += result.refine.lp_iterations;
  for (const core::BalanceStage& stage : result.balance.stages) {
    counters_.lp_iterations += stage.lp_iterations;
  }
  counters_.repartition_seconds += timer.seconds();
  report.balance = std::move(result.balance);

  pending_updates_ = 0;
  pending_vertex_changes_ = 0;
}

void Session::check_backend_invariants(bool state_maintained,
                                       graph::VertexId n_old) const {
#if defined(PIGP_VALIDATE) || !defined(NDEBUG)
  // Debug / PIGP_VALIDATE=ON builds keep the historical full validate —
  // an O(V) scan of every assignment.
  (void)state_maintained;
  (void)n_old;
  partitioning_.validate(graph_);
#else
  if (!state_maintained) {
    // Backends that return a fresh partitioning (multilevel, scratch,
    // external registrations) are off the streaming hot path and get the
    // full check.
    partitioning_.validate(graph_);
    return;
  }
  // Streaming path: O(Δ + boundary + P) invariant check instead of the
  // O(V) sweep.  The vertices below n_old were validated when they
  // entered; the in-place pipeline only ever rewrites assignments through
  // PartitionState::move_vertex, which rejects out-of-range destinations —
  // so checking sizes, the appended tail, the weight conservation law and
  // the boundary-index invariant covers everything a full validate would
  // catch short of memory corruption.
  const graph::VertexId n = graph_.num_vertices();
  PIGP_CHECK(partitioning_.num_vertices() == n,
             "backend left the partitioning covering the wrong vertex count");
  PIGP_CHECK(partitioning_.num_parts == resolved_.session.num_parts,
             "backend changed the partition count");
  for (graph::VertexId v = n_old; v < n; ++v) {
    const graph::PartId q = partitioning_.part[static_cast<std::size_t>(v)];
    PIGP_CHECK(q >= 0 && q < partitioning_.num_parts,
               "appended vertex left unassigned or out of range");
  }
  double total = 0.0;
  for (const double w : state_.weights()) total += w;
  const double expected = graph_.total_vertex_weight();
  PIGP_CHECK(std::abs(total - expected) <=
                 1e-6 * std::max(1.0, std::abs(expected)),
             "maintained partition weights no longer sum to the graph total");
  for (graph::PartId q = 0; q < partitioning_.num_parts; ++q) {
    for (const graph::VertexId v : state_.boundary_vertices(q)) {
      PIGP_CHECK(partitioning_.part[static_cast<std::size_t>(v)] == q &&
                     state_.external_degree(v) > 0,
                 "boundary index inconsistent with the assignment");
    }
  }
#endif
}

}  // namespace pigp
