#pragma once

/// \file session.hpp
/// pigp::Session — the stateful entry point of the library.
///
/// A Session owns the current graph and its partitioning and absorbs a
/// stream of incremental changes: apply() takes a graph::GraphDelta
/// (insertions and deletions), apply_extended() takes a pre-extended graph
/// whose first n_old vertices are the current graph's, and repartition()
/// forces a rebalance immediately.  Every call returns a uniform
/// SessionReport with the partition metrics, per-step timings, LP telemetry
/// and cumulative stream counters.
///
/// The repartitioning driver is a pluggable Backend selected by name in the
/// SessionConfig ("igp", "igpr", "multilevel", "spmd", "scratch"), and the
/// batch policy decides whether each absorbed delta triggers a rebalance
/// immediately (the paper's protocol) or whether several small deltas are
/// batched until an imbalance or vertex-count threshold trips.  Between
/// repartitions the session stays queryable: when a delta is batched
/// rather than rebalanced, its new vertices are attached to their nearest
/// partition (step 1 of the pipeline) immediately; when the backend runs,
/// it performs step 1 itself so the assignment BFS is never paid twice.
///
/// Quality metrics are maintained incrementally: the session owns a
/// graph::PartitionState that absorbs every change in O(Δ), so the metrics
/// in each SessionReport, the metrics() accessor and the imbalance batch
/// trigger all cost O(num_parts) instead of an O(V+E) rescan.  The same
/// state carries the maintained boundary-vertex index, and the session
/// threads it into every backend run: the igp/igpr/spmd pipelines seed
/// their layering, balance weights and refinement candidates from it, so
/// a repartition after a localized delta costs O(boundary + Δ) in its
/// layering/candidate phases rather than O(V + E) (see "The
/// boundary-local pipeline" in docs/ARCHITECTURE.md).

#include <cstdint>
#include <exception>
#include <memory>
#include <string_view>
#include <vector>

#include "api/backend.hpp"
#include "api/config.hpp"
#include "core/workspace.hpp"
#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "runtime/timer.hpp"

namespace pigp {

/// Cumulative statistics across the whole delta stream.
struct SessionCounters {
  std::int64_t deltas_applied = 0;      ///< apply() calls
  std::int64_t extensions_applied = 0;  ///< apply_extended() calls
  std::int64_t vertices_added = 0;
  /// Vertices actually deleted (duplicate V2 entries collapse).
  std::int64_t vertices_removed = 0;
  /// Every edge the stream added to the graph: explicit E1 edges, edges
  /// attached to added vertices, and edges introduced by extensions.
  /// Duplicates that merge into an existing edge count zero, exactly like
  /// the graph's own edge count.
  std::int64_t edges_added = 0;
  /// Every edge the stream removed: explicit E2 edges plus edges
  /// implicitly dropped with removed vertices (each distinct edge once)
  /// and old-old edges destroyed by extensions.
  std::int64_t edges_removed = 0;
  std::int64_t repartitions = 0;
  std::int64_t balance_stages = 0;
  std::int64_t lp_iterations = 0;     ///< balance + refinement pivots
  double update_seconds = 0.0;        ///< delta application + assignment
  double repartition_seconds = 0.0;   ///< backend time
};

/// Uniform result of every Session mutation.
struct SessionReport {
  /// True when the backend ran (false when the batch policy deferred).
  bool repartitioned = false;
  /// True when this call compacted the vertex-id space (dropped dead ids
  /// and renumbered the survivors) — consult Session::last_compaction()
  /// for the mapping.  Always true for a delta with removals under
  /// GraphCompaction::eager; under deferred only when the slack threshold
  /// tripped.
  bool compacted = false;
  /// Updates absorbed but not yet rebalanced after this call.
  int pending_updates = 0;
  /// Wall time of this call (application + assignment + backend).
  double seconds = 0.0;

  // --- backend telemetry, populated when repartitioned ---
  bool balanced = false;
  int stages = 0;  ///< balance stages used (the paper's IGP(k))
  core::BalanceResult balance;
  core::RefineStats refine;
  core::IgpTimings timings;

  /// Quality of the current partitioning after this call — the scalar
  /// summary (cut total/max/min, weight max/min/avg, imbalance), produced
  /// in O(P) with zero allocations.  The per-partition breakdown is
  /// available on demand through Session::metrics().
  graph::PartitionSummary metrics;
  /// Snapshot of the cumulative stream counters.
  SessionCounters counters;
};

/// Stateful incremental-repartitioning session over a pluggable backend.
class Session {
 public:
  /// Adopt \p g with an existing partitioning (p.num_parts must equal
  /// config.num_parts).
  Session(SessionConfig config, graph::Graph g, graph::Partitioning p);

  /// Partition \p g from scratch with config.scratch_method.
  Session(SessionConfig config, graph::Graph g);

  // A Session is address-stable: the warm workspace's persistent boundary
  // layering holds pointers into the session's graph and partitioning
  // (core::BoundaryLayering::bind), so a moved-from/moved-to pair would
  // leave the layering bound to buffers the move relocated.  bind() is
  // re-run before every use today, but that is an internal detail of the
  // igp pipeline, not a contract — rather than pin a fragile invariant,
  // moving is deleted.  Construct in place (std::optional<Session>::emplace,
  // containers of unique_ptr) where relocation is needed; factory returns
  // still work via guaranteed copy elision.
  Session(Session&&) = delete;
  Session& operator=(Session&&) = delete;

  /// Absorb one incremental modification (insertions and/or deletions) in
  /// O(Δ · deg): the slotted graph is mutated in place and the maintained
  /// PartitionState absorbs every change — no rebuild, no copy of the old
  /// graph.  The delta is validated up front (strong guarantee: a rejected
  /// delta leaves the session untouched) against the same rules as
  /// graph::validate_delta.  Removed vertices become dead ids; whether the
  /// id space is compacted immediately or deferred is governed by
  /// config.graph_compaction (see GraphCompaction).  Repartitions now or
  /// defers per config.batch_policy.  Not thread-safe — external
  /// synchronization (or AsyncSession) required for concurrent use.
  SessionReport apply(const graph::GraphDelta& delta);

  /// Absorb a pre-extended graph: \p g_new's first \p n_old vertices are
  /// the current graph's (n_old must equal graph().num_vertices()).
  /// Requires a compacted id space (no dead vertices) — under deferred
  /// compaction call compact() first; throws DeltaError otherwise.
  SessionReport apply_extended(graph::Graph g_new, graph::VertexId n_old);

  /// Run the backend now regardless of the batch policy.
  SessionReport repartition();

  /// Compact the vertex-id space now, regardless of the configured
  /// trigger: dead ids are dropped, the survivors are renumbered
  /// order-preservingly, and the graph's adjacency storage becomes tight.
  /// O(V + E).  Returns the old→new id mapping (removed ids map to
  /// graph::kInvalidVertex), also available as last_compaction().  A no-op
  /// renumbering (identity mapping) when nothing is dead.
  const std::vector<graph::VertexId>& compact();

  /// The old→new id mapping of the most recent compaction (empty if none
  /// has happened yet).  Valid until the next compaction.
  [[nodiscard]] const std::vector<graph::VertexId>& last_compaction()
      const noexcept {
    return last_compaction_;
  }

  /// Monotone counter bumped every time the vertex-id space is remapped
  /// (a compaction).  Snapshot-based consumers (AsyncSession's background
  /// rebalancer) compare epochs to detect that ids from an older snapshot
  /// no longer align with the session's.
  [[nodiscard]] std::uint64_t remap_epoch() const noexcept {
    return workspace_.remap_generation;
  }

  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const graph::Partitioning& partitioning() const noexcept {
    return partitioning_;
  }
  [[nodiscard]] const SessionConfig& config() const noexcept {
    return resolved_.session;
  }
  [[nodiscard]] const SessionCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::string_view backend_name() const noexcept {
    return backend_->name();
  }
  /// Updates absorbed since the last repartition.
  [[nodiscard]] int pending_updates() const noexcept {
    return pending_updates_;
  }
  /// Quality metrics of the current partitioning — an O(num_parts)
  /// snapshot of the incrementally maintained graph::PartitionState, not a
  /// graph rescan.
  [[nodiscard]] graph::PartitionMetrics metrics() const;
  /// Scalar quality summary (cut total/max/min, weight max/min/avg,
  /// imbalance) in O(num_parts) with zero allocations — the cheap
  /// counterpart of metrics() for reports and periodic monitoring.
  [[nodiscard]] graph::PartitionSummary summary() const {
    return state_.summary();
  }
  /// The incrementally maintained metrics/boundary state — read-only, for
  /// callers that snapshot the session (the async layer hands copies of it
  /// to its background rebalancer so the backend can seed boundary-local
  /// work without a rescan).
  [[nodiscard]] const graph::PartitionState& partition_state()
      const noexcept {
    return state_;
  }

  /// True once a backend run died on the SPMD wire (pigp::TransportError):
  /// peer ranks may be gone, so the distributed group cannot be assumed
  /// functional and every further mutating call rethrows the original
  /// error.  The session's own graph/partitioning/state stay consistent
  /// (the failed run was rolled back) — read accessors keep working.
  [[nodiscard]] bool transport_failed() const noexcept {
    return transport_failure_ != nullptr;
  }

  /// Explicit recovery from transport_failed(): drop the latched error so
  /// mutating calls work again.  Safe because the failed run was rolled
  /// back — graph/partitioning/state are consistent — but the *caller*
  /// asserts the transport is worth trusting again (peers restarted,
  /// network healed); the session cannot know that.  The next repartition
  /// builds fresh connections, so nothing else needs resetting.  A no-op
  /// when no error is latched.
  void clear_error() noexcept { transport_failure_ = nullptr; }

  /// Adopt the result of an out-of-session rebalance computed on a
  /// snapshot of this session's current graph: every vertex below
  /// \p rebalanced.num_vertices() whose assignment differs is moved (O(Δ)
  /// through the maintained state), the batch counters reset, and one
  /// repartition is counted.  \p rebalanced must have the session's part
  /// count and must not cover more vertices than the current graph —
  /// vertices the session gained after the snapshot keep their step-1
  /// placement.  This is the commit half of the AsyncSession protocol.
  void adopt_rebalance(const graph::Partitioning& rebalanced);

  /// Return every pooled buffer to the allocator — the session workspace
  /// and anything the backend owns (the SPMD backend's per-rank
  /// workspaces).  Useful for a long-lived session after a burst much
  /// larger than its steady state; the next repartition transparently
  /// re-warms the pools (and is allocation-free again from then on).
  void trim_memory() {
    workspace_.release_memory();
    backend_->trim_memory();
  }

 private:
  /// Decide per batch policy, run the backend if due (handing it \p old
  /// over [0, n_old) so step 1 runs exactly once), and assemble the
  /// uniform report.  \p started times the whole public call.
  SessionReport finish_update(const runtime::WallTimer& started,
                              graph::Partitioning old,
                              graph::VertexId n_old);
  /// Run the backend in place: \p old (covering [0, n_old)) becomes the
  /// session partitioning and the backend's in-place overload extends/
  /// rebalances it against graph_/state_ without any O(V) allocation.
  /// Exception rollback is O(Δ): the whole run executes inside a
  /// PartitionState rollback window (an undo journal of the moves) plus an
  /// O(P) aggregate snapshot, so on backend exceptions the pre-backend
  /// assignment is replayed back move-by-move, float drift is erased from
  /// the snapshot, and step 1 re-places the appended vertices — the
  /// graph/partitioning/state invariant holds for the caller either way.
  void run_backend(SessionReport& report, graph::Partitioning old,
                   graph::VertexId n_old);
  /// Compact the graph and remap partitioning/state/workspace in lock-step
  /// (the implementation behind compact() and the automatic triggers).
  void compact_now();
  /// Post-backend sanity: a full Partitioning::validate in Debug and
  /// PIGP_VALIDATE builds (and always for backends without the in-place
  /// path); in Release an O(Δ + boundary + P) incremental invariant check
  /// — appended assignments in range, maintained weights summing to the
  /// graph total, boundary buckets consistent with the assignment.
  void check_backend_invariants(bool state_maintained,
                                graph::VertexId n_old) const;
  /// Rethrow the sticky wire failure, if any (top of every mutating call).
  void throw_if_failed() const;

  ResolvedConfig resolved_;
  std::unique_ptr<Backend> backend_;
  graph::Graph graph_;
  graph::Partitioning partitioning_;
  /// O(Δ)-maintained metrics over (graph_, partitioning_): per-part
  /// weights, boundary costs and the cut, kept exact through every apply/
  /// extend/repartition so metrics() and the batch-policy imbalance
  /// trigger never rescan the graph.  The single source of truth for
  /// imbalance (PartitionState::imbalance).  Also carries the boundary-
  /// vertex index the state-threaded backends repartition from.
  graph::PartitionState state_;
  /// Session-lifetime reusable buffers for every pipeline phase (assignment
  /// BFS epoch arrays, the persistent boundary layering, refine scratch,
  /// the rollback snapshot): steady-state repartitions allocate nothing.
  /// See "Workspace & steady-state memory discipline" in ARCHITECTURE.md.
  core::Workspace workspace_;
  SessionCounters counters_;
  /// Set when a backend run threw pigp::TransportError; see
  /// transport_failed().
  std::exception_ptr transport_failure_;
  int pending_updates_ = 0;
  /// Vertices added + removed since the last repartition (vertex_count
  /// batch policy).
  std::int64_t pending_vertex_changes_ = 0;
  /// Old→new id mapping of the most recent compaction (see
  /// last_compaction()).
  std::vector<graph::VertexId> last_compaction_;
};

}  // namespace pigp
