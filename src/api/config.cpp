#include "api/config.hpp"

#include <cstddef>
#include <string>
#include <utility>

#include "api/errors.hpp"
#include "runtime/net/fault_transport.hpp"
#include "runtime/net/filters.hpp"

namespace pigp {
namespace {

/// Field-validation helper: a failed predicate throws ConfigError with the
/// message naming the offending field.
void config_check(bool ok, std::string message) {
  if (!ok) throw ConfigError(message);
}

// ------------------------------------------------------------------ guards
//
// resolve() must touch every nested option struct field that carries a
// derived value (num_threads, solver, knobs).  These field-count asserts
// fire at compile time when someone adds a field to one of the structs, so
// the new field cannot be silently skipped the way IgpOptions::set_threads
// used to skip future nested structs.

struct AnyField {
  template <typename T>
  operator T() const;  // never defined; only used in unevaluated contexts
};

template <typename T, std::size_t... I>
constexpr bool brace_constructible(std::index_sequence<I...>) {
  return requires { T{((void)I, AnyField{})...}; };
}

template <typename T, std::size_t N>
constexpr bool has_exactly_n_fields =
    brace_constructible<T>(std::make_index_sequence<N>{}) &&
    !brace_constructible<T>(std::make_index_sequence<N + 1>{});

static_assert(has_exactly_n_fields<core::AssignOptions, 1>,
              "AssignOptions changed — update SessionConfig::resolve()");
static_assert(has_exactly_n_fields<lp::SimplexOptions, 6>,
              "SimplexOptions changed — update SessionConfig::resolve()");
static_assert(has_exactly_n_fields<core::BalanceOptions, 7>,
              "BalanceOptions changed — update SessionConfig::resolve()");
static_assert(has_exactly_n_fields<core::RefineOptions, 7>,
              "RefineOptions changed — update SessionConfig::resolve()");
static_assert(has_exactly_n_fields<core::IgpOptions, 4>,
              "IgpOptions changed — update SessionConfig::resolve()");
static_assert(has_exactly_n_fields<core::MultilevelOptions, 3>,
              "MultilevelOptions changed — update SessionConfig::resolve()");
static_assert(has_exactly_n_fields<SessionConfig, 29>,
              "SessionConfig changed — update SessionConfig::resolve()");

/// Batch backends rebuild from the whole graph every tick, so they cannot
/// run against a tombstoned (deferred-compaction) graph.
bool supports_deferred_compaction(const std::string& backend) {
  return backend != "multilevel" && backend != "scratch";
}

}  // namespace

ResolvedConfig SessionConfig::resolve() const {
  config_check(num_parts >= 1,
               "SessionConfig.num_parts must be >= 1 (got " +
                   std::to_string(num_parts) + ")");
  config_check(!backend.empty(), "SessionConfig.backend must not be empty");
  config_check(num_threads >= 1,
               "SessionConfig.num_threads must be >= 1 (got " +
                   std::to_string(num_threads) + ")");
  config_check(alpha_max >= 1.0,
               "SessionConfig.alpha_max must be >= 1.0 (got " +
                   std::to_string(alpha_max) + ")");
  config_check(max_balance_stages >= 1,
               "SessionConfig.max_balance_stages must be >= 1 (got " +
                   std::to_string(max_balance_stages) + ")");
  config_check(balance_tolerance > 0.0,
               "SessionConfig.balance_tolerance must be > 0 (got " +
                   std::to_string(balance_tolerance) + ")");
  config_check(balance_max_layers >= 0,
               "SessionConfig.balance_max_layers must be >= 0 (got " +
                   std::to_string(balance_max_layers) + ")");
  config_check(max_refine_rounds >= 0,
               "SessionConfig.max_refine_rounds must be >= 0 (got " +
                   std::to_string(max_refine_rounds) + ")");
  config_check(refine_strict_after_round >= 0,
               "SessionConfig.refine_strict_after_round must be >= 0 (got " +
                   std::to_string(refine_strict_after_round) + ")");
  config_check(multilevel_coarsest_size >= 1,
               "SessionConfig.multilevel_coarsest_size must be >= 1 (got " +
                   std::to_string(multilevel_coarsest_size) + ")");
  config_check(multilevel_max_levels >= 1,
               "SessionConfig.multilevel_max_levels must be >= 1 (got " +
                   std::to_string(multilevel_max_levels) + ")");
  config_check(spmd_ranks >= 1,
               "SessionConfig.spmd_ranks must be >= 1 (got " +
                   std::to_string(spmd_ranks) + ")");
  config_check(spmd_transport == "in_process" || spmd_transport == "tcp",
               "SessionConfig.spmd_transport must be one of in_process, tcp "
               "(got \"" +
                   spmd_transport + "\")");
  try {
    (void)net::parse_filter_chain(spmd_wire_filters);
  } catch (const CheckError& e) {
    throw ConfigError("SessionConfig.spmd_wire_filters is invalid: " +
                      std::string(e.what()));
  }
  config_check(spmd_timeout_ms >= 1,
               "SessionConfig.spmd_timeout_ms must be >= 1 (got " +
                   std::to_string(spmd_timeout_ms) + ")");
  try {
    const std::shared_ptr<net::FaultScript> script =
        net::parse_fault_script(spmd_fault_spec);
    // A dropped packet only becomes a *typed* failure when recv is
    // bounded; on Machine mailboxes the starved peer would block forever.
    config_check(script == nullptr ||
                     !script->has_kind(net::FaultKind::drop) ||
                     spmd_transport == "tcp",
                 "SessionConfig.spmd_fault_spec: drop rules need "
                 "spmd_transport == \"tcp\" (in_process recv has no "
                 "timeout, so a dropped packet would hang the peer)");
  } catch (const ConfigError&) {
    throw;
  } catch (const CheckError& e) {
    throw ConfigError("SessionConfig.spmd_fault_spec is invalid: " +
                      std::string(e.what()));
  }
  config_check(rebalance_retry_limit >= 0,
               "SessionConfig.rebalance_retry_limit must be >= 0 (got " +
                   std::to_string(rebalance_retry_limit) + ")");
  config_check(
      rebalance_retry_backoff_ms >= 1,
      "SessionConfig.rebalance_retry_backoff_ms must be >= 1 (got " +
          std::to_string(rebalance_retry_backoff_ms) + ")");
  config_check(
      rebalance_retry_deadline_ms >= 1,
      "SessionConfig.rebalance_retry_deadline_ms must be >= 1 (got " +
          std::to_string(rebalance_retry_deadline_ms) + ")");
  config_check(!fallback_backend.empty(),
               "SessionConfig.fallback_backend must not be empty");
  config_check(scratch_method == "rsb" || scratch_method == "rgb" ||
                   scratch_method == "rsb+kl",
               "SessionConfig.scratch_method must be one of rsb, rgb, rsb+kl "
               "(got \"" +
                   scratch_method + "\")");
  config_check(batch_imbalance_limit >= 1.0,
               "SessionConfig.batch_imbalance_limit must be >= 1.0 (got " +
                   std::to_string(batch_imbalance_limit) + ")");
  config_check(batch_vertex_limit >= 1,
               "SessionConfig.batch_vertex_limit must be >= 1 (got " +
                   std::to_string(batch_vertex_limit) + ")");
  config_check(compaction_slack > 0.0 && compaction_slack <= 1.0,
               "SessionConfig.compaction_slack must be in (0, 1] (got " +
                   std::to_string(compaction_slack) + ")");
  if (graph_compaction == GraphCompaction::deferred) {
    config_check(supports_deferred_compaction(backend),
                 "SessionConfig.graph_compaction = deferred requires an "
                 "in-place backend (got backend \"" +
                     backend + "\")");
    config_check(failure_policy != FailurePolicy::degrade ||
                     supports_deferred_compaction(fallback_backend),
                 "SessionConfig.graph_compaction = deferred requires an "
                 "in-place fallback_backend under FailurePolicy::degrade "
                 "(got \"" +
                     fallback_backend + "\")");
  }
  config_check(async_queue_capacity >= 1,
               "SessionConfig.async_queue_capacity must be >= 1 (got " +
                   std::to_string(async_queue_capacity) + ")");

  ResolvedConfig resolved;
  resolved.session = *this;

  resolved.assign.num_threads = num_threads;

  core::IgpOptions& igp = resolved.igp;
  igp.refine = true;  // backends without a refinement pass clear this
  igp.num_threads = num_threads;

  igp.balance.alpha_max = alpha_max;
  igp.balance.max_stages = max_balance_stages;
  igp.balance.tolerance = balance_tolerance;
  igp.balance.max_layers = balance_max_layers;
  igp.balance.solver = solver;
  igp.balance.num_threads = num_threads;
  igp.balance.simplex.num_threads = num_threads;

  igp.refinement.max_rounds = max_refine_rounds;
  igp.refinement.strict_after_round = refine_strict_after_round;
  igp.refinement.solver = solver;
  igp.refinement.num_threads = num_threads;
  igp.refinement.simplex.num_threads = num_threads;

  resolved.multilevel.igp = igp;
  resolved.multilevel.coarsest_size = multilevel_coarsest_size;
  resolved.multilevel.max_levels = multilevel_max_levels;

  return resolved;
}

}  // namespace pigp
