#include "api/backend.hpp"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/errors.hpp"
#include "core/multilevel.hpp"
#include "core/spmd_igp.hpp"
#include "core/workspace.hpp"
#include "graph/partition.hpp"
#include "runtime/spmd.hpp"
#include "runtime/timer.hpp"
#include "spectral/kernighan_lin.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

BackendResult from_igp_result(core::IgpResult result) {
  BackendResult out;
  out.partitioning = std::move(result.partitioning);
  out.balanced = result.balanced;
  out.stages = result.stages;
  out.balance = std::move(result.balance_result);
  out.refine = result.refine_stats;
  out.timings = result.timings;
  return out;
}

/// "igp" / "igpr": the paper's flat four-step pipeline.
class FlatBackend final : public Backend {
 public:
  FlatBackend(const ResolvedConfig& config, bool refine)
      : refine_(refine), driver_([&] {
          core::IgpOptions options = config.igp;
          options.refine = refine;
          return core::IncrementalPartitioner(options);
        }()) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return refine_ ? "igpr" : "igp";
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    return from_igp_result(driver_.repartition(g_new, old_partitioning, n_old));
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, graph::Partitioning& partitioning,
      graph::VertexId n_old, graph::PartitionState& state,
      core::Workspace& ws) override {
    BackendResult out = from_igp_result(
        driver_.repartition_in_place(g_new, partitioning, n_old, state, ws));
    out.state_maintained = true;
    return out;
  }

 private:
  bool refine_;
  core::IncrementalPartitioner driver_;
};

/// "multilevel": coarsen, balance at the coarsest level, project + refine.
class MultilevelBackend final : public Backend {
 public:
  explicit MultilevelBackend(const ResolvedConfig& config)
      : options_(config.multilevel) {}

  using Backend::repartition;  // keep the default state-threaded overload

  [[nodiscard]] std::string_view name() const noexcept override {
    return "multilevel";
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    return from_igp_result(
        core::multilevel_repartition(g_new, old_partitioning, n_old, options_));
  }

 private:
  core::MultilevelOptions options_;
};

/// "spmd": the CM-5-style message-passing engine on a backend-owned
/// executor (one rank block of partitions per rank).  config.spmd_transport
/// picks the carrier: "in_process" is the Machine-mailbox oracle, "tcp"
/// runs the same ranks over real loopback sockets with the configured
/// filter chain and timeouts — decisions are bit-identical either way.
class SpmdBackend final : public Backend {
 public:
  explicit SpmdBackend(const ResolvedConfig& config) : options_(config.igp) {
    if (config.session.spmd_transport == "tcp") {
      net::TcpOptions tcp;
      tcp.send_timeout_ms = config.session.spmd_timeout_ms;
      tcp.recv_timeout_ms = config.session.spmd_timeout_ms;
      tcp.filters = config.session.spmd_wire_filters;
      executor_ = std::make_unique<core::TcpLoopbackExecutor>(
          config.session.spmd_ranks, std::move(tcp));
    } else {
      executor_ =
          std::make_unique<core::MachineExecutor>(config.session.spmd_ranks);
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "spmd";
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    const runtime::WallTimer timer;
    BackendResult out = from_igp_result(
        core::spmd_repartition(*executor_, g_new, old_partitioning, n_old,
                               options_));
    out.timings.total = timer.seconds();
    return out;
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, graph::Partitioning& partitioning,
      graph::VertexId n_old, graph::PartitionState& state,
      core::Workspace& ws) override {
    const runtime::WallTimer timer;
    if (ws.remap_generation != seen_remap_generation_) {
      // A delta with removals compacted the id space since our last run:
      // the per-rank persistent layerings address stale ids.
      for (core::Workspace& rank : rank_ws_) rank.invalidate_vertex_ids();
      seen_remap_generation_ = ws.remap_generation;
    }
    BackendResult out = from_igp_result(
        core::spmd_repartition_in_place(*executor_, g_new, partitioning,
                                        n_old, options_, state, ws,
                                        rank_ws_));
    out.timings.total = timer.seconds();
    out.state_maintained = true;
    return out;
  }

  void trim_memory() override {
    for (core::Workspace& rank : rank_ws_) rank.release_memory();
  }

 private:
  core::IgpOptions options_;
  std::unique_ptr<core::SpmdExecutor> executor_;
  /// Persistent per-rank workspaces (resumable layering + pack buffers).
  std::vector<core::Workspace> rank_ws_;
  std::uint64_t seen_remap_generation_ = 0;
};

/// "scratch": ignore the old partitioning and partition from scratch with
/// the configured method (RSB / RGB / RSB+KL).
class ScratchBackend final : public Backend {
 public:
  explicit ScratchBackend(const ResolvedConfig& config) : config_(config) {}

  using Backend::repartition;  // keep the default state-threaded overload

  [[nodiscard]] std::string_view name() const noexcept override {
    return "scratch";
  }

  [[nodiscard]] bool incremental() const noexcept override { return false; }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new,
      const graph::Partitioning& /*old_partitioning*/,
      graph::VertexId /*n_old*/) override {
    const runtime::WallTimer timer;
    BackendResult out;
    out.partitioning = partition_from_scratch(g_new, config_);
    out.timings.total = timer.seconds();
    out.balanced = graph::is_balanced(g_new, out.partitioning,
                                      config_.igp.balance.tolerance + 0.5);
    return out;
  }

 private:
  ResolvedConfig config_;
};

}  // namespace

graph::Partitioning partition_from_scratch(const graph::Graph& g,
                                           const ResolvedConfig& config) {
  const graph::PartId parts = config.session.num_parts;
  const std::string& method = config.session.scratch_method;
  graph::Partitioning p;
  if (method == "rgb") {
    p = spectral::recursive_graph_bisection(g, parts);
  } else {
    p = spectral::recursive_spectral_bisection(g, parts);
  }
  if (method == "rsb+kl") {
    (void)spectral::kernighan_lin_refine(g, p);
  }
  return p;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->add("igp", [](const ResolvedConfig& config) {
      return std::make_unique<FlatBackend>(config, /*refine=*/false);
    });
    r->add("igpr", [](const ResolvedConfig& config) {
      return std::make_unique<FlatBackend>(config, /*refine=*/true);
    });
    r->add("multilevel", [](const ResolvedConfig& config) {
      return std::make_unique<MultilevelBackend>(config);
    });
    r->add("spmd", [](const ResolvedConfig& config) {
      return std::make_unique<SpmdBackend>(config);
    });
    r->add("scratch", [](const ResolvedConfig& config) {
      return std::make_unique<ScratchBackend>(config);
    });
    return r;
  }();
  return *registry;
}

void BackendRegistry::add(std::string name, BackendFactory factory) {
  if (name.empty()) throw ConfigError("backend name must not be empty");
  if (factory == nullptr) {
    throw ConfigError("backend factory must not be null");
  }
  const sync::MutexLock lock(mutex_);
  factories_[std::move(name)] = std::move(factory);
}

bool BackendRegistry::contains(std::string_view name) const {
  const sync::MutexLock lock(mutex_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> BackendRegistry::names() const {
  const sync::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Backend> BackendRegistry::create(
    std::string_view name, const ResolvedConfig& config) const {
  BackendFactory factory;
  {
    const sync::MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) throw UnknownBackendError(name, names());
  return factory(config);
}

}  // namespace pigp
