#include "api/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/errors.hpp"
#include "core/multilevel.hpp"
#include "core/spmd_igp.hpp"
#include "core/workspace.hpp"
#include "graph/partition.hpp"
#include "runtime/net/fault_transport.hpp"
#include "runtime/spmd.hpp"
#include "runtime/timer.hpp"
#include "spectral/kernighan_lin.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

BackendResult from_igp_result(core::IgpResult result) {
  BackendResult out;
  out.partitioning = std::move(result.partitioning);
  out.balanced = result.balanced;
  out.stages = result.stages;
  out.balance = std::move(result.balance_result);
  out.refine = result.refine_stats;
  out.timings = result.timings;
  return out;
}

/// "igp" / "igpr": the paper's flat four-step pipeline.
class FlatBackend final : public Backend {
 public:
  FlatBackend(const ResolvedConfig& config, bool refine)
      : refine_(refine), driver_([&] {
          core::IgpOptions options = config.igp;
          options.refine = refine;
          return core::IncrementalPartitioner(options);
        }()) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return refine_ ? "igpr" : "igp";
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    return from_igp_result(driver_.repartition(g_new, old_partitioning, n_old));
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, graph::Partitioning& partitioning,
      graph::VertexId n_old, graph::PartitionState& state,
      core::Workspace& ws) override {
    BackendResult out = from_igp_result(
        driver_.repartition_in_place(g_new, partitioning, n_old, state, ws));
    out.state_maintained = true;
    return out;
  }

 private:
  bool refine_;
  core::IncrementalPartitioner driver_;
};

/// "multilevel": coarsen, balance at the coarsest level, project + refine.
class MultilevelBackend final : public Backend {
 public:
  explicit MultilevelBackend(const ResolvedConfig& config)
      : options_(config.multilevel) {}

  using Backend::repartition;  // keep the default state-threaded overload

  [[nodiscard]] std::string_view name() const noexcept override {
    return "multilevel";
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    return from_igp_result(
        core::multilevel_repartition(g_new, old_partitioning, n_old, options_));
  }

 private:
  core::MultilevelOptions options_;
};

/// "spmd": the CM-5-style message-passing engine on a backend-owned
/// executor (one rank block of partitions per rank).  config.spmd_transport
/// picks the carrier: "in_process" is the Machine-mailbox oracle, "tcp"
/// runs the same ranks over real loopback sockets with the configured
/// filter chain and timeouts — decisions are bit-identical either way.
///
/// This is the one backend that talks to a network, so it also owns the
/// failure-domain machinery: config.spmd_fault_spec wraps every rank's
/// transport in a chaos injector, and a *retryable* TransportError (see
/// net::FaultClass) is retried up to rebalance_retry_limit times with
/// exponential backoff under rebalance_retry_deadline_ms.  The in-place
/// tick runs inside its own PartitionState rollback window: each retry
/// replays the journal back to the tick's entry mark (O(moves), not
/// O(V+E)), restores the entry aggregates from an O(P) snapshot, and
/// full-resets the rank workspaces — so a retried tick starts from input
/// bit-identical to a fault-free one.  Fatal errors and exhausted budgets
/// propagate to the caller (the Session latches them, sticky) with the
/// window closed but *not* undone — the Session's outer window performs
/// the final rollback.
class SpmdBackend final : public Backend {
 public:
  explicit SpmdBackend(const ResolvedConfig& config)
      : options_(config.igp),
        retry_limit_(config.session.rebalance_retry_limit),
        retry_backoff_ms_(config.session.rebalance_retry_backoff_ms),
        retry_deadline_ms_(config.session.rebalance_retry_deadline_ms) {
    if (config.session.spmd_transport == "tcp") {
      net::TcpOptions tcp;
      tcp.send_timeout_ms = config.session.spmd_timeout_ms;
      tcp.recv_timeout_ms = config.session.spmd_timeout_ms;
      tcp.filters = config.session.spmd_wire_filters;
      executor_ = std::make_unique<core::TcpLoopbackExecutor>(
          config.session.spmd_ranks, std::move(tcp));
    } else {
      executor_ =
          std::make_unique<core::MachineExecutor>(config.session.spmd_ranks);
    }
    const std::shared_ptr<net::FaultScript> script =
        net::parse_fault_script(config.session.spmd_fault_spec);
    if (script != nullptr) {
      chaos_ = std::make_unique<core::FaultInjectingExecutor>(*executor_,
                                                              script);
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "spmd";
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    const runtime::WallTimer timer;
    RetryBudget budget = make_budget();
    for (;;) {
      try {
        // This overload mutates no caller state (the engine copies the old
        // partitioning and seeds its own state), so retry is a plain
        // re-invocation.
        BackendResult out = from_igp_result(core::spmd_repartition(
            executor(), g_new, old_partitioning, n_old, options_));
        out.timings.total = timer.seconds();
        return out;
      } catch (const net::TransportError& e) {
        if (!backoff_or_give_up(e, budget)) throw;
      }
    }
  }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new, graph::Partitioning& partitioning,
      graph::VertexId n_old, graph::PartitionState& state,
      core::Workspace& ws) override {
    const runtime::WallTimer timer;
    if (ws.remap_generation != seen_remap_generation_) {
      // A delta with removals compacted the id space since our last run:
      // the per-rank persistent layerings address stale ids.
      for (core::Workspace& rank : rank_ws_) rank.invalidate_vertex_ids();
      seen_remap_generation_ = ws.remap_generation;
    }
    RetryBudget budget = make_budget();
    // Entry mark: a failed attempt leaves partitioning/state mid-run, so
    // each retry replays the undo journal back to this mark and restores
    // the O(P) aggregate snapshot — rebuilding the exact entry conditions
    // in O(moves undone) instead of the historical O(V+E) assignment copy
    // + state rebuild.  The window nests inside the Session's outer one.
    const std::size_t mark = state.begin_rollback_mark();
    state.save_aggregates_into(aggregates_rollback_);
    for (;;) {
      try {
        BackendResult out = from_igp_result(core::spmd_repartition_in_place(
            executor(), g_new, partitioning, n_old, options_, state, ws,
            rank_ws_));
        out.timings.total = timer.seconds();
        out.state_maintained = true;
        state.end_rollback_mark(mark);
        return out;
      } catch (const net::TransportError& e) {
        // Aborted rank threads leave the persistent per-rank layerings
        // mid-stage; full-reset them whether or not we retry.
        for (core::Workspace& rank : rank_ws_) rank.invalidate_vertex_ids();
        if (!backoff_or_give_up(e, budget)) {
          // Give up: close our window without undoing — the Session's
          // outer window owns the final rollback to the pre-tick state.
          state.end_rollback_mark(mark);
          throw;
        }
        // Undo to the entry mark: the pre-tick assignment over [0, n_old)
        // returns exactly (the appended vertices end kUnassigned again —
        // they were placed inside the window), and the aggregate snapshot
        // erases float drift.  The retried engine run therefore starts
        // from bit-identical input and performs its own step 1 afresh.
        state.undo_to_mark(g_new, partitioning, mark);
        state.restore_aggregates(aggregates_rollback_);
        partitioning.part.resize(static_cast<std::size_t>(n_old));
      }
    }
  }

  void trim_memory() override {
    for (core::Workspace& rank : rank_ws_) rank.release_memory();
    std::vector<double>().swap(aggregates_rollback_.weight);
    std::vector<double>().swap(aggregates_rollback_.boundary_cost);
  }

 private:
  struct RetryBudget {
    int attempts_left = 0;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point deadline;
  };

  [[nodiscard]] RetryBudget make_budget() const {
    RetryBudget budget;
    budget.attempts_left = retry_limit_;
    budget.backoff_ms = retry_backoff_ms_;
    budget.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(retry_deadline_ms_);
    return budget;
  }

  /// True = sleep the (deadline-clamped, doubling) backoff and retry;
  /// false = the error is fatal or the budget is spent, let it surface.
  [[nodiscard]] static bool backoff_or_give_up(const net::TransportError& e,
                                               RetryBudget& budget) {
    if (!e.retryable() || budget.attempts_left <= 0) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= budget.deadline) return false;
    --budget.attempts_left;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            budget.deadline - now);
    std::this_thread::sleep_for(
        std::min(std::chrono::milliseconds(budget.backoff_ms), remaining));
    budget.backoff_ms = std::min(budget.backoff_ms * 2, 60'000);
    return true;
  }

  [[nodiscard]] core::SpmdExecutor& executor() noexcept {
    return chaos_ != nullptr ? static_cast<core::SpmdExecutor&>(*chaos_)
                             : *executor_;
  }

  core::IgpOptions options_;
  int retry_limit_;
  int retry_backoff_ms_;
  int retry_deadline_ms_;
  std::unique_ptr<core::SpmdExecutor> executor_;
  /// Present only when config.spmd_fault_spec is set; decorates executor_.
  std::unique_ptr<core::FaultInjectingExecutor> chaos_;
  /// Persistent per-rank workspaces (resumable layering + pack buffers).
  std::vector<core::Workspace> rank_ws_;
  /// Pooled pre-tick aggregate snapshot for the retry restore path (the
  /// assignment itself rolls back through the undo journal).
  graph::PartitionState::AggregateSnapshot aggregates_rollback_;
  std::uint64_t seen_remap_generation_ = 0;
};

/// "scratch": ignore the old partitioning and partition from scratch with
/// the configured method (RSB / RGB / RSB+KL).
class ScratchBackend final : public Backend {
 public:
  explicit ScratchBackend(const ResolvedConfig& config) : config_(config) {}

  using Backend::repartition;  // keep the default state-threaded overload

  [[nodiscard]] std::string_view name() const noexcept override {
    return "scratch";
  }

  [[nodiscard]] bool incremental() const noexcept override { return false; }

  [[nodiscard]] BackendResult repartition(
      const graph::Graph& g_new,
      const graph::Partitioning& /*old_partitioning*/,
      graph::VertexId /*n_old*/) override {
    const runtime::WallTimer timer;
    BackendResult out;
    out.partitioning = partition_from_scratch(g_new, config_);
    out.timings.total = timer.seconds();
    out.balanced = graph::is_balanced(g_new, out.partitioning,
                                      config_.igp.balance.tolerance + 0.5);
    return out;
  }

 private:
  ResolvedConfig config_;
};

}  // namespace

graph::Partitioning partition_from_scratch(const graph::Graph& g,
                                           const ResolvedConfig& config) {
  const graph::PartId parts = config.session.num_parts;
  const std::string& method = config.session.scratch_method;
  graph::Partitioning p;
  if (method == "rgb") {
    p = spectral::recursive_graph_bisection(g, parts);
  } else {
    p = spectral::recursive_spectral_bisection(g, parts);
  }
  if (method == "rsb+kl") {
    (void)spectral::kernighan_lin_refine(g, p);
  }
  return p;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->add("igp", [](const ResolvedConfig& config) {
      return std::make_unique<FlatBackend>(config, /*refine=*/false);
    });
    r->add("igpr", [](const ResolvedConfig& config) {
      return std::make_unique<FlatBackend>(config, /*refine=*/true);
    });
    r->add("multilevel", [](const ResolvedConfig& config) {
      return std::make_unique<MultilevelBackend>(config);
    });
    r->add("spmd", [](const ResolvedConfig& config) {
      return std::make_unique<SpmdBackend>(config);
    });
    r->add("scratch", [](const ResolvedConfig& config) {
      return std::make_unique<ScratchBackend>(config);
    });
    return r;
  }();
  return *registry;
}

void BackendRegistry::add(std::string name, BackendFactory factory) {
  if (name.empty()) throw ConfigError("backend name must not be empty");
  if (factory == nullptr) {
    throw ConfigError("backend factory must not be null");
  }
  const sync::MutexLock lock(mutex_);
  factories_[std::move(name)] = std::move(factory);
}

bool BackendRegistry::contains(std::string_view name) const {
  const sync::MutexLock lock(mutex_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> BackendRegistry::names() const {
  const sync::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Backend> BackendRegistry::create(
    std::string_view name, const ResolvedConfig& config) const {
  BackendFactory factory;
  {
    const sync::MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) throw UnknownBackendError(name, names());
  return factory(config);
}

}  // namespace pigp
