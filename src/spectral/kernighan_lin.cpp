#include "spectral/kernighan_lin.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/partition_state.hpp"
#include "support/check.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::spectral {
namespace {

using graph::Graph;
using graph::PartId;
using graph::Partitioning;
using graph::PartitionState;
using graph::VertexId;

/// D value of vertex v for the pair (own, other): external minus internal
/// edge weight, counting only edges within the pair (edges to third
/// partitions are unaffected by pair swaps).
double d_value(const Graph& g, const Partitioning& p, VertexId v,
               PartId own, PartId other) {
  double internal = 0.0;
  double external = 0.0;
  const auto nbrs = g.neighbors(v);
  const auto weights = g.incident_edge_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const PartId q = p.part[static_cast<std::size_t>(nbrs[i])];
    if (q == own) {
      internal += weights[i];
    } else if (q == other) {
      external += weights[i];
    }
  }
  return external - internal;
}

/// One KL pass over the pair (a, b).  Returns the realized (kept) gain.
/// Kept swaps go through \p state so the running cut stays exact without
/// ever rescanning the graph.
double kl_pair_pass(const Graph& g, Partitioning& p, PartitionState& state,
                    PartId a, PartId b, const KlOptions& options) {
  // Candidate sets: boundary vertices of the pair with equal weights
  // (swapping unequal weights would break balance).
  std::vector<VertexId> side_a;
  std::vector<VertexId> side_b;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId q = p.part[static_cast<std::size_t>(v)];
    if (q != a && q != b) continue;
    bool touches_other = false;
    for (const VertexId u : g.neighbors(v)) {
      const PartId uq = p.part[static_cast<std::size_t>(u)];
      if ((q == a && uq == b) || (q == b && uq == a)) {
        touches_other = true;
        break;
      }
    }
    if (!touches_other) continue;
    (q == a ? side_a : side_b).push_back(v);
  }
  if (side_a.empty() || side_b.empty()) return 0.0;

  std::vector<double> d_a(side_a.size());
  std::vector<double> d_b(side_b.size());
  for (std::size_t i = 0; i < side_a.size(); ++i) {
    d_a[i] = d_value(g, p, side_a[i], a, b);
  }
  for (std::size_t i = 0; i < side_b.size(); ++i) {
    d_b[i] = d_value(g, p, side_b[i], b, a);
  }

  std::vector<char> locked_a(side_a.size(), 0);
  std::vector<char> locked_b(side_b.size(), 0);

  // Tentative swap sequence with cumulative gains.
  struct Swap {
    std::size_t ia, ib;
    double gain;
  };
  std::vector<Swap> sequence;
  const int max_swaps = std::min<int>(
      options.max_swaps_per_pair,
      static_cast<int>(std::min(side_a.size(), side_b.size())));

  for (int s = 0; s < max_swaps; ++s) {
    double best_gain = -1e300;
    std::size_t best_ia = 0;
    std::size_t best_ib = 0;
    bool found = false;
    for (std::size_t ia = 0; ia < side_a.size(); ++ia) {
      if (locked_a[ia]) continue;
      for (std::size_t ib = 0; ib < side_b.size(); ++ib) {
        if (locked_b[ib]) continue;
        if (g.vertex_weight(side_a[ia]) != g.vertex_weight(side_b[ib])) {
          continue;  // balance-preserving swaps only
        }
        const double w = g.edge_weight(side_a[ia], side_b[ib]);
        const double gain = d_a[ia] + d_b[ib] - 2.0 * w;
        if (!found || gain > best_gain) {
          best_gain = gain;
          best_ia = ia;
          best_ib = ib;
          found = true;
        }
      }
    }
    if (!found) break;

    locked_a[best_ia] = 1;
    locked_b[best_ib] = 1;
    sequence.push_back({best_ia, best_ib, best_gain});

    // Update D values of unlocked candidates as if the swap happened.
    const VertexId va = side_a[best_ia];
    const VertexId vb = side_b[best_ib];
    const auto update = [&](std::vector<VertexId>& side,
                            std::vector<double>& d,
                            std::vector<char>& locked, VertexId moved_away,
                            VertexId moved_in) {
      for (std::size_t i = 0; i < side.size(); ++i) {
        if (locked[i]) continue;
        const double w_away = g.edge_weight(side[i], moved_away);
        const double w_in = g.edge_weight(side[i], moved_in);
        // moved_away leaves this vertex's side (internal -> external);
        // moved_in joins it (external -> internal).
        d[i] += 2.0 * w_away - 2.0 * w_in;
      }
    };
    update(side_a, d_a, locked_a, va, vb);
    update(side_b, d_b, locked_b, vb, va);
  }

  // Keep the best positive prefix.
  double best_total = 0.0;
  std::size_t best_len = 0;
  double running = 0.0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    running += sequence[i].gain;
    if (running > best_total) {
      best_total = running;
      best_len = i + 1;
    }
  }
  for (std::size_t i = 0; i < best_len; ++i) {
    state.move_vertex(g, p, side_a[sequence[i].ia], b);
    state.move_vertex(g, p, side_b[sequence[i].ib], a);
  }
  return best_total;
}

}  // namespace

KlStats kernighan_lin_refine(const Graph& g, Partitioning& partitioning,
                             const KlOptions& options) {
  KlStats stats;
  // One seeding rescan (validates); the per-swap updates keep the cut
  // exact so both reported cuts come from the same maintained state.
  PartitionState state(g, partitioning);
  stats.cut_before = state.cut_total();
  stats.cut_after = stats.cut_before;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    // Adjacent partition pairs under the current assignment.
    std::vector<std::pair<PartId, PartId>> pairs;
    {
      pigp::DenseMatrix<char> adjacent(
          static_cast<std::size_t>(partitioning.num_parts),
          static_cast<std::size_t>(partitioning.num_parts), 0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const PartId pv = partitioning.part[static_cast<std::size_t>(v)];
        for (const VertexId u : g.neighbors(v)) {
          const PartId pu = partitioning.part[static_cast<std::size_t>(u)];
          if (pu > pv) {
            adjacent(static_cast<std::size_t>(pv),
                     static_cast<std::size_t>(pu)) = 1;
          }
        }
      }
      for (PartId i = 0; i < partitioning.num_parts; ++i) {
        for (PartId j = i + 1; j < partitioning.num_parts; ++j) {
          if (adjacent(static_cast<std::size_t>(i),
                       static_cast<std::size_t>(j))) {
            pairs.emplace_back(i, j);
          }
        }
      }
    }

    double pass_gain = 0.0;
    for (const auto& [i, j] : pairs) {
      const double gain =
          kl_pair_pass(g, partitioning, state, i, j, options);
      if (gain > 0.0) {
        pass_gain += gain;
        ++stats.swaps_kept;
      }
    }
    ++stats.passes;
    if (pass_gain < options.min_pass_gain) break;
  }

  stats.cut_after = state.cut_total();
  return stats;
}

}  // namespace pigp::spectral
