#pragma once

/// \file lanczos.hpp
/// Fiedler vector computation via Lanczos iteration on the graph Laplacian.
///
/// Recursive spectral bisection (Pothen–Simon–Liou) splits a graph at the
/// median of the eigenvector for the second-smallest Laplacian eigenvalue
/// λ₂ (the Fiedler vector).  We run Lanczos on L = D − A with the constant
/// vector deflated (it spans the λ₁ = 0 eigenspace of a connected graph)
/// and full reorthogonalization, then extract the smallest Ritz pair of the
/// tridiagonal projection.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pigp::spectral {

struct LanczosOptions {
  int max_iterations = 300;      ///< Lanczos subspace dimension cap
  double tolerance = 1e-7;       ///< Ritz residual bound for convergence
  int check_interval = 5;        ///< convergence test cadence
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;  ///< start-vector seed
};

struct FiedlerResult {
  double value = 0.0;            ///< λ₂ estimate
  std::vector<double> vector;    ///< unit Fiedler vector (size n)
  int iterations = 0;
  bool converged = false;        ///< residual below tolerance at exit
};

/// y = (D - A) x for the weighted Laplacian of \p g.
void laplacian_apply(const graph::Graph& g, const std::vector<double>& x,
                     std::vector<double>& y);

/// Fiedler pair of a *connected* graph (throws on disconnected input for
/// n > 1; components must be handled by the caller).  For n == 1 returns a
/// zero vector; for n == 2 the exact pair.
[[nodiscard]] FiedlerResult fiedler_vector(const graph::Graph& g,
                                           const LanczosOptions& options = {});

}  // namespace pigp::spectral
