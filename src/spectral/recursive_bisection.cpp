#include "spectral/recursive_bisection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/subgraph.hpp"
#include "support/check.hpp"

namespace pigp::spectral {
namespace {

using graph::Graph;
using graph::PartId;
using graph::Partitioning;
using graph::VertexId;

struct Driver {
  const Graph& g;
  const ScoreFunction& score;
  const std::vector<double>& targets;
  Partitioning& out;

  void recurse(std::vector<VertexId> vertices, PartId part_begin,
               PartId part_end) const {
    if (part_end - part_begin == 1) {
      for (VertexId v : vertices) {
        out.part[static_cast<std::size_t>(v)] = part_begin;
      }
      return;
    }
    const PartId left_parts = (part_end - part_begin + 1) / 2;
    double target_left = 0.0;
    for (PartId q = part_begin; q < part_begin + left_parts; ++q) {
      target_left += targets[static_cast<std::size_t>(q)];
    }

    const graph::Subgraph sub = graph::induced_subgraph(g, vertices);
    const std::vector<double> scores = score(sub.graph, sub.to_global);
    PIGP_CHECK(scores.size() == vertices.size(),
               "score function returned wrong size");

    // Stable order: score, then global id (deterministic across runs).
    std::vector<VertexId> order(vertices.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](VertexId a, VertexId b) {
                const double sa = scores[static_cast<std::size_t>(a)];
                const double sb = scores[static_cast<std::size_t>(b)];
                if (sa != sb) return sa < sb;
                return sub.to_global[static_cast<std::size_t>(a)] <
                       sub.to_global[static_cast<std::size_t>(b)];
              });

    // Weighted prefix split: choose the cut position whose prefix weight is
    // closest to the target, keeping at least one vertex (and enough
    // vertices for the partition counts) on each side.
    const auto right_parts = static_cast<std::size_t>(
        part_end - part_begin - left_parts);
    const std::size_t min_cut = static_cast<std::size_t>(left_parts);
    const std::size_t max_cut = order.size() - right_parts;
    PIGP_CHECK(min_cut <= max_cut, "not enough vertices for partitions");

    std::size_t best_cut = min_cut;
    double best_diff = std::numeric_limits<double>::infinity();
    double acc = 0.0;
    for (std::size_t i = 0; i < max_cut; ++i) {
      acc += g.vertex_weight(
          sub.to_global[static_cast<std::size_t>(order[i])]);
      const std::size_t cut = i + 1;
      if (cut < min_cut) continue;
      const double diff = std::abs(acc - target_left);
      if (diff < best_diff) {
        best_diff = diff;
        best_cut = cut;
      }
    }

    std::vector<VertexId> left;
    std::vector<VertexId> right;
    left.reserve(best_cut);
    right.reserve(order.size() - best_cut);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const VertexId global =
          sub.to_global[static_cast<std::size_t>(order[i])];
      (i < best_cut ? left : right).push_back(global);
    }

    recurse(std::move(left), part_begin, part_begin + left_parts);
    recurse(std::move(right), part_begin + left_parts, part_end);
  }
};

}  // namespace

Partitioning recursive_partition(const Graph& g, PartId num_parts,
                                 const ScoreFunction& score) {
  PIGP_CHECK(num_parts >= 1, "need at least one partition");
  PIGP_CHECK(g.num_vertices() >= num_parts,
             "more partitions than vertices");
  Partitioning out;
  out.num_parts = num_parts;
  out.part.assign(static_cast<std::size_t>(g.num_vertices()),
                  graph::kUnassigned);

  const std::vector<double> targets =
      graph::balance_targets(g.total_vertex_weight(), num_parts);

  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  const Driver driver{g, score, targets, out};
  driver.recurse(std::move(all), 0, num_parts);
  out.validate(g);
  return out;
}

}  // namespace pigp::spectral
