#include "spectral/lanczos.hpp"

#include <cmath>

#include "graph/components.hpp"
#include "spectral/tridiagonal.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pigp::spectral {
namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

/// Remove the component along the (normalized) all-ones direction.
void deflate_constant(std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double& x : v) x -= mean;
}

void axpy(double alpha, const std::vector<double>& x,
          std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

void laplacian_apply(const graph::Graph& g, const std::vector<double>& x,
                     std::vector<double>& y) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PIGP_CHECK(x.size() == n, "Laplacian operand size mismatch");
  y.assign(n, 0.0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    double acc = 0.0;
    double degree = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      degree += weights[i];
      acc += weights[i] * x[static_cast<std::size_t>(nbrs[i])];
    }
    y[static_cast<std::size_t>(v)] =
        degree * x[static_cast<std::size_t>(v)] - acc;
  }
}

FiedlerResult fiedler_vector(const graph::Graph& g,
                             const LanczosOptions& options) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  FiedlerResult result;

  if (n == 0) return result;
  if (n == 1) {
    result.vector = {0.0};
    result.converged = true;
    return result;
  }
  if (n == 2) {
    // L = [[w, -w], [-w, w]]; λ₂ = 2w, Fiedler = (1, -1)/sqrt(2).
    const double w = g.edge_weight(0, 1);
    PIGP_CHECK(w > 0.0, "Fiedler vector of a disconnected graph");
    result.value = 2.0 * w;
    result.vector = {1.0 / std::sqrt(2.0), -1.0 / std::sqrt(2.0)};
    result.converged = true;
    return result;
  }
  PIGP_CHECK(graph::is_connected(g),
             "Fiedler vector requires a connected graph");

  const int max_k = std::min<int>(options.max_iterations,
                                  static_cast<int>(n) - 1);

  // Deterministic start vector orthogonal to ones.
  pigp::SplitMix64 rng(options.seed);
  std::vector<double> q(n);
  for (double& x : q) x = rng.next_double() - 0.5;
  deflate_constant(q);
  {
    const double nq = norm(q);
    PIGP_CHECK(nq > 0.0, "degenerate Lanczos start vector");
    for (double& x : q) x /= nq;
  }

  std::vector<std::vector<double>> basis;  // Lanczos vectors q_1 ... q_k
  basis.push_back(q);
  std::vector<double> alpha;  // tridiagonal diagonal
  std::vector<double> beta;   // tridiagonal off-diagonal

  std::vector<double> w(n);
  double last_value = 0.0;
  std::vector<double> ritz_in_basis;

  // Convergence test: the Ritz-pair residual for the smallest eigenvalue is
  // bounded by |β_{k+1}| · |s_k| where β_{k+1} is the norm of the next
  // Lanczos residual and s_k the last component of the Ritz vector.
  const auto evaluate = [&](double next_beta) -> bool {
    const TridiagonalEigen eig = tridiagonal_eigen(alpha, beta);
    last_value = eig.eigenvalues.front();
    ritz_in_basis = eig.eigenvectors.front();
    const double bound = std::abs(next_beta) * std::abs(ritz_in_basis.back());
    return bound <= options.tolerance * std::max(1.0, std::abs(last_value));
  };

  bool converged = false;
  int k = 0;
  while (k < max_k) {
    const std::vector<double>& qk = basis.back();
    laplacian_apply(g, qk, w);
    const double a = dot(w, qk);
    alpha.push_back(a);
    axpy(-a, qk, w);
    if (basis.size() >= 2) {
      axpy(-beta.back(), basis[basis.size() - 2], w);
    }
    // Full reorthogonalization (also re-deflates the ones direction) keeps
    // the basis numerically orthogonal; n is small enough to afford it.
    deflate_constant(w);
    for (const auto& qi : basis) {
      axpy(-dot(w, qi), qi, w);
    }
    ++k;

    const double b = norm(w);
    const bool check_now =
        k % options.check_interval == 0 || k == max_k || b <= 1e-12;
    if (check_now && evaluate(b)) {
      converged = true;
      break;
    }
    if (b <= 1e-12 || k == max_k) {
      // Invariant subspace found (b ~ 0, Ritz pair exact) or the subspace
      // budget is exhausted; either way alpha/beta stay consistent.
      break;
    }
    beta.push_back(b);
    std::vector<double> next = w;
    for (double& x : next) x /= b;
    basis.push_back(std::move(next));
  }
  if (ritz_in_basis.empty()) converged = evaluate(0.0);

  // Assemble the Fiedler vector from the basis.
  result.vector.assign(n, 0.0);
  for (std::size_t i = 0; i < ritz_in_basis.size(); ++i) {
    axpy(ritz_in_basis[i], basis[i], result.vector);
  }
  deflate_constant(result.vector);
  const double nv = norm(result.vector);
  if (nv > 0.0) {
    for (double& x : result.vector) x /= nv;
  }
  result.value = last_value;
  result.iterations = k;
  result.converged = converged;
  return result;
}

}  // namespace pigp::spectral
