#include "spectral/partitioners.hpp"

#include <algorithm>
#include <limits>

#include "graph/components.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "spectral/recursive_bisection.hpp"
#include "support/check.hpp"

namespace pigp::spectral {
namespace {

using graph::Graph;
using graph::VertexId;

/// Order disconnected subsets component-major (heaviest component first);
/// \p within assigns the in-component score.  Scores are offset so that
/// components never interleave.
template <typename WithinFn>
std::vector<double> component_major_scores(const Graph& sub,
                                           const WithinFn& within) {
  const graph::Components comps = graph::connected_components(sub);
  if (comps.count == 1) return within(sub);

  // Heaviest components first so the prefix split packs large pieces
  // together (fewer split components).
  std::vector<double> comp_weight(static_cast<std::size_t>(comps.count), 0.0);
  for (VertexId v = 0; v < sub.num_vertices(); ++v) {
    comp_weight[static_cast<std::size_t>(
        comps.comp[static_cast<std::size_t>(v)])] += sub.vertex_weight(v);
  }
  std::vector<std::int32_t> rank_of(static_cast<std::size_t>(comps.count));
  {
    std::vector<std::int32_t> order(static_cast<std::size_t>(comps.count));
    for (std::int32_t c = 0; c < comps.count; ++c) {
      order[static_cast<std::size_t>(c)] = c;
    }
    std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
      const double wa = comp_weight[static_cast<std::size_t>(a)];
      const double wb = comp_weight[static_cast<std::size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    for (std::int32_t r = 0; r < comps.count; ++r) {
      rank_of[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] =
          r;
    }
  }

  std::vector<double> scores(static_cast<std::size_t>(sub.num_vertices()),
                             0.0);
  const auto groups = comps.members();
  for (std::int32_t c = 0; c < comps.count; ++c) {
    const auto& members = groups[static_cast<std::size_t>(c)];
    const graph::Subgraph piece = graph::induced_subgraph(sub, members);
    const std::vector<double> inner = within(piece.graph);
    // Normalize inner scores into (0, 1) then shift by component rank.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double s : inner) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    const double base =
        2.0 * static_cast<double>(rank_of[static_cast<std::size_t>(c)]);
    for (std::size_t i = 0; i < members.size(); ++i) {
      scores[static_cast<std::size_t>(members[i])] =
          base + (inner[i] - lo) / span;
    }
  }
  return scores;
}

}  // namespace

graph::Partitioning recursive_spectral_bisection(const Graph& g,
                                                 graph::PartId num_parts,
                                                 const RsbOptions& options) {
  const auto fiedler_scores = [&options](const Graph& sub) {
    if (sub.num_vertices() <= 2) {
      std::vector<double> s(static_cast<std::size_t>(sub.num_vertices()));
      for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = static_cast<double>(i);
      }
      return s;
    }
    return fiedler_vector(sub, options.lanczos).vector;
  };
  const ScoreFunction score =
      [&fiedler_scores](const Graph& sub,
                        const std::vector<VertexId>& /*to_global*/) {
        return component_major_scores(sub, fiedler_scores);
      };
  return recursive_partition(g, num_parts, score);
}

graph::Partitioning recursive_coordinate_bisection(
    const Graph& g, graph::PartId num_parts,
    const std::vector<std::array<double, 2>>& coords) {
  PIGP_CHECK(coords.size() == static_cast<std::size_t>(g.num_vertices()),
             "one coordinate pair per vertex required");
  const ScoreFunction score =
      [&coords](const Graph& sub, const std::vector<VertexId>& to_global) {
        // Pick the axis with the largest spread over this subset.
        double lo[2] = {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
        double hi[2] = {-std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
        for (VertexId global : to_global) {
          for (int axis = 0; axis < 2; ++axis) {
            const double c =
                coords[static_cast<std::size_t>(global)][static_cast<std::size_t>(axis)];
            lo[axis] = std::min(lo[axis], c);
            hi[axis] = std::max(hi[axis], c);
          }
        }
        const int axis = (hi[0] - lo[0] >= hi[1] - lo[1]) ? 0 : 1;
        std::vector<double> scores(
            static_cast<std::size_t>(sub.num_vertices()));
        for (std::size_t i = 0; i < scores.size(); ++i) {
          scores[i] =
              coords[static_cast<std::size_t>(to_global[i])][static_cast<std::size_t>(axis)];
        }
        return scores;
      };
  return recursive_partition(g, num_parts, score);
}

graph::Partitioning recursive_graph_bisection(const Graph& g,
                                              graph::PartId num_parts) {
  const auto bfs_scores = [](const Graph& sub) {
    std::vector<double> scores(static_cast<std::size_t>(sub.num_vertices()),
                               0.0);
    if (sub.num_vertices() == 0) return scores;
    const VertexId root = graph::pseudo_peripheral_vertex(sub, 0);
    const std::vector<VertexId> order = graph::bfs_order(sub, root);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      scores[static_cast<std::size_t>(order[rank])] =
          static_cast<double>(rank);
    }
    return scores;
  };
  const ScoreFunction score =
      [&bfs_scores](const Graph& sub,
                    const std::vector<VertexId>& /*to_global*/) {
        return component_major_scores(sub, bfs_scores);
      };
  return recursive_partition(g, num_parts, score);
}

}  // namespace pigp::spectral
