#pragma once

/// \file recursive_bisection.hpp
/// Generic recursive bisection driver.
///
/// All three from-scratch partitioners in this library (spectral, coordinate,
/// graph/BFS) share the same skeleton: recursively order the current vertex
/// subset by a scalar score, split the ordering at a weight target derived
/// from the final per-partition targets, and recurse on both sides.  Only
/// the score function differs.

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::spectral {

/// Produces one scalar score per local vertex of the induced subgraph;
/// \p to_global maps local ids back to the original graph (for coordinate
/// lookups).  Lower scores go to the left side of the split.
using ScoreFunction = std::function<std::vector<double>(
    const graph::Graph& sub, const std::vector<graph::VertexId>& to_global)>;

/// Recursively partition \p g into \p num_parts parts (any value >= 1, not
/// just powers of two) using \p score to order each subset.  Weight targets
/// come from graph::balance_targets, so unit-weight graphs end up balanced
/// to within one vertex per partition.
[[nodiscard]] graph::Partitioning recursive_partition(
    const graph::Graph& g, graph::PartId num_parts,
    const ScoreFunction& score);

}  // namespace pigp::spectral
