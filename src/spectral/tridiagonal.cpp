#include "spectral/tridiagonal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::spectral {
namespace {

/// sqrt(a^2 + b^2) without destructive underflow or overflow.
double pythag(double a, double b) {
  const double absa = std::abs(a);
  const double absb = std::abs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

}  // namespace

TridiagonalEigen tridiagonal_eigen(const std::vector<double>& diag,
                                   const std::vector<double>& offdiag) {
  const std::size_t k = diag.size();
  PIGP_CHECK(k >= 1, "empty tridiagonal matrix");
  PIGP_CHECK(offdiag.size() + 1 == k, "off-diagonal size must be k-1");

  // Work arrays: d = diagonal (becomes eigenvalues), e = subdiagonal padded
  // with a leading slot as in the classic tqli formulation.
  std::vector<double> d = diag;
  std::vector<double> e(k, 0.0);
  for (std::size_t i = 1; i < k; ++i) e[i - 1] = offdiag[i - 1];
  e[k - 1] = 0.0;

  // z accumulates the orthogonal transformations; starts as identity.
  pigp::DenseMatrix<double> z(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) z(i, i) = 1.0;

  for (std::size_t l = 0; l < k; ++l) {
    int iterations = 0;
    std::size_t m = l;
    do {
      // Find the end of the unreduced block starting at l.
      for (m = l; m + 1 < k; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 ||
            std::abs(e[m]) <= 1e-15 * dd) {
          break;
        }
      }
      if (m != l) {
        PIGP_CHECK(++iterations <= 64,
                   "tridiagonal QL failed to converge");
        // Implicit shift from the 2x2 trailing block.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = pythag(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          // Accumulate the rotation into the eigenvector matrix.
          for (std::size_t row = 0; row < k; ++row) {
            f = z(row, i + 1);
            z(row, i + 1) = s * z(row, i) + c * f;
            z(row, i) = c * z(row, i) - s * f;
          }
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, carrying eigenvectors along.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&d](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagonalEigen result;
  result.eigenvalues.resize(k);
  result.eigenvectors.assign(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    result.eigenvalues[i] = d[order[i]];
    for (std::size_t row = 0; row < k; ++row) {
      result.eigenvectors[i][row] = z(row, order[i]);
    }
  }
  return result;
}

}  // namespace pigp::spectral
