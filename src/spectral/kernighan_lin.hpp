#pragma once

/// \file kernighan_lin.hpp
/// Kernighan–Lin pairwise refinement for P-way partitionings.
///
/// The paper's introduction cites "mincut-based methods" among the
/// established partitioning heuristics; KL is their canonical
/// representative and the natural non-LP comparison for the refinement
/// step of §2.4 (bench_ablation and the shootout example use it that way).
/// This implementation runs classic swap-based KL passes on every adjacent
/// partition pair: swaps preserve load balance exactly (one vertex each
/// way), and a pass keeps the best positive prefix of its tentative swap
/// sequence.

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::spectral {

struct KlOptions {
  int max_passes = 4;            ///< full sweeps over all adjacent pairs
  int max_swaps_per_pair = 64;   ///< tentative swap sequence length cap
  double min_pass_gain = 1.0;    ///< stop when a sweep gains less than this
};

struct KlStats {
  int passes = 0;
  std::int64_t swaps_kept = 0;
  double cut_before = 0.0;
  double cut_after = 0.0;
};

/// Refine \p partitioning in place; cut never increases, per-partition
/// weights are unchanged (unit-weight swaps; for weighted graphs the swap
/// exchanges weight exactly when vertex weights match, so this pass is
/// restricted to equal-weight swaps).
[[nodiscard]] KlStats kernighan_lin_refine(const graph::Graph& g,
                                           graph::Partitioning& partitioning,
                                           const KlOptions& options = {});

}  // namespace pigp::spectral
