#pragma once

/// \file tridiagonal.hpp
/// Symmetric tridiagonal eigensolver (implicit-shift QL), the inner kernel
/// of the Lanczos Fiedler computation.

#include <vector>

namespace pigp::spectral {

/// Full eigendecomposition of the symmetric tridiagonal matrix with
/// diagonal \p diag (size k) and off-diagonal \p offdiag (size k-1).
/// Eigenvalues ascend; eigenvectors[i] is the unit eigenvector for
/// eigenvalues[i] expressed in the input basis.
struct TridiagonalEigen {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
};

/// Implicit-shift QL with eigenvector accumulation.  Throws
/// pigp::CheckError if the iteration fails to converge (pathological
/// input); k up to a few thousand is fine.
[[nodiscard]] TridiagonalEigen tridiagonal_eigen(
    const std::vector<double>& diag, const std::vector<double>& offdiag);

}  // namespace pigp::spectral
