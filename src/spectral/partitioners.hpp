#pragma once

/// \file partitioners.hpp
/// From-scratch graph partitioners built on recursive bisection:
///
///  * recursive_spectral_bisection (RSB) — the paper's baseline and the
///    provider of the initial partition for the incremental algorithm
///    ("SB" rows of Figures 11/14),
///  * recursive_coordinate_bisection (RCB) — geometric baseline for graphs
///    with vertex coordinates,
///  * recursive_graph_bisection (RGB) — BFS-order baseline needing no
///    geometry.
///
/// All three return balanced partitions for any number of parts >= 1.

#include <array>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "spectral/lanczos.hpp"

namespace pigp::spectral {

struct RsbOptions {
  LanczosOptions lanczos;
};

/// Recursive spectral bisection: split each subset at the weighted median
/// of its Fiedler vector.  Disconnected subsets are ordered component-major
/// (largest component first) with the Fiedler order inside each component.
[[nodiscard]] graph::Partitioning recursive_spectral_bisection(
    const graph::Graph& g, graph::PartId num_parts,
    const RsbOptions& options = {});

/// Recursive coordinate bisection along the axis of largest spread.
/// \p coords has one point per vertex.
[[nodiscard]] graph::Partitioning recursive_coordinate_bisection(
    const graph::Graph& g, graph::PartId num_parts,
    const std::vector<std::array<double, 2>>& coords);

/// Recursive graph bisection: order each subset by BFS level from a
/// pseudo-peripheral vertex and split the order at the weight target.
[[nodiscard]] graph::Partitioning recursive_graph_bisection(
    const graph::Graph& g, graph::PartId num_parts);

}  // namespace pigp::spectral
