#pragma once

/// \file pigp.hpp
/// Umbrella header: the public surface of the pigp library.
///
/// External consumers include only this header:
///
///     #include <pigp.hpp>
///
///     pigp::SessionConfig config;
///     config.num_parts = 32;
///     config.backend = "igpr";
///     pigp::Session session(config, graph);   // partitions from scratch
///     pigp::SessionReport report = session.apply(delta);
///
/// CI compiles a standalone consumer against the installed tree with only
/// this include, so everything a user needs must be reachable (and
/// installed) from here — the install tree can never go self-insufficient.

#include "api/backend.hpp"
#include "api/config.hpp"
#include "api/session.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
