#pragma once

/// \file pigp.hpp
/// Umbrella header: the public surface of the pigp library.
///
/// External consumers include only this header:
///
///     #include <pigp.hpp>
///
///     pigp::SessionConfig config;
///     config.num_parts = 32;
///     config.backend = "igpr";
///     pigp::Session session(config, graph);   // partitions from scratch
///     pigp::SessionReport report = session.apply(delta);
///
/// CI compiles a standalone consumer against the installed tree with only
/// this include, so everything a user needs must be reachable (and
/// installed) from here — the install tree can never go self-insufficient.
///
/// Concurrent serving: pigp::AsyncSession (api/async_session.hpp) wraps the
/// synchronous Session with a bounded ingest queue, a background
/// repartition thread, and an epoch-published pigp::PartitionView
/// (api/view.hpp) whose part_of() lookups are wait-free for any number of
/// reader threads.
///
/// Errors: everything the API layer throws derives from pigp::Error
/// (api/errors.hpp) — ConfigError for invalid SessionConfig fields and
/// backend registrations, UnknownBackendError (carrying the registered
/// names) for an unknown backend string, DeltaError for stream operations
/// incompatible with the current graph.  pigp::Error derives from
/// pigp::CheckError, the exception the library's internal invariant checks
/// throw, so `catch (const pigp::CheckError&)` catches everything.

#include "api/async_session.hpp"
#include "api/backend.hpp"
#include "api/config.hpp"
#include "api/errors.hpp"
#include "api/session.hpp"
#include "api/view.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
