#include "core/spmd_igp.hpp"

#include <algorithm>
#include <cmath>

#include "core/layering.hpp"
#include "core/transfer.hpp"
#include "support/check.hpp"

namespace pigp::core {
namespace {

using graph::PartId;
using graph::VertexId;
using runtime::Packet;
using runtime::RankContext;

/// Rank that owns partition q.
int owner_of(PartId q, int num_ranks) {
  return static_cast<int>(q) % num_ranks;
}

}  // namespace

IgpResult spmd_repartition(runtime::Machine& machine,
                           const graph::Graph& g_new,
                           const graph::Partitioning& old_partitioning,
                           VertexId n_old, const IgpOptions& options) {
  // Step 1 runs once up front (multi-source BFS is a global operation; the
  // CM-5 version distributes the frontier, which the OpenMP path models).
  AssignOptions assign_options;
  assign_options.num_threads = 1;
  graph::Partitioning shared =
      extend_assignment(g_new, old_partitioning, n_old, assign_options);

  const auto parts = static_cast<std::size_t>(shared.num_parts);
  const std::vector<double> targets =
      graph::balance_targets(g_new.total_vertex_weight(), shared.num_parts);

  IgpResult result;

  // ---------------------------------------------------- balance stages
  machine.run([&](RankContext& ctx) {
    for (int stage = 0; stage < options.balance.max_stages; ++stage) {
      // Every rank can evaluate the excess locally (shared partitioning).
      std::vector<double> weight(parts, 0.0);
      for (VertexId v = 0; v < g_new.num_vertices(); ++v) {
        weight[static_cast<std::size_t>(
            shared.part[static_cast<std::size_t>(v)])] +=
            g_new.vertex_weight(v);
      }
      std::vector<double> excess(parts, 0.0);
      double max_dev = 0.0;
      for (std::size_t q = 0; q < parts; ++q) {
        excess[q] = weight[q] - targets[q];
        max_dev = std::max(max_dev, std::abs(excess[q]));
      }
      if (max_dev <= options.balance.tolerance) {
        if (ctx.rank() == 0) result.balance_result.balanced = true;
        break;
      }

      // Layer owned partitions only (the parallel step).
      const auto members = partition_members(shared);
      std::vector<PartId> label(
          static_cast<std::size_t>(g_new.num_vertices()), -1);
      std::vector<std::int32_t> layer(
          static_cast<std::size_t>(g_new.num_vertices()), -1);
      std::vector<std::int64_t> eps_rows(parts * parts, 0);
      for (PartId q = 0; q < shared.num_parts; ++q) {
        if (owner_of(q, ctx.num_ranks()) != ctx.rank()) continue;
        layer_one_partition(g_new, shared, q,
                            members[static_cast<std::size_t>(q)], label,
                            layer,
                            eps_rows.data() + static_cast<std::size_t>(q) *
                                                  parts);
      }

      // Allgather the eps rows (each rank contributes its owned rows).
      Packet mine;
      mine.pack_vector(eps_rows);
      const std::vector<Packet> gathered = ctx.allgather(std::move(mine));
      pigp::DenseMatrix<std::int64_t> eps(parts, parts, 0);
      for (int r = 0; r < ctx.num_ranks(); ++r) {
        Packet p = gathered[static_cast<std::size_t>(r)];
        const std::vector<std::int64_t> rows =
            p.unpack_vector<std::int64_t>();
        for (PartId q = 0; q < shared.num_parts; ++q) {
          if (owner_of(q, ctx.num_ranks()) != r) continue;
          for (std::size_t j = 0; j < parts; ++j) {
            eps(static_cast<std::size_t>(q), j) =
                rows[static_cast<std::size_t>(q) * parts + j];
          }
        }
      }

      // Rank 0 makes the stage decision (same shared logic as the serial
      // driver: alpha doubling, then best-effort) and broadcasts the moves.
      std::vector<std::int64_t> moves_flat(parts * parts, 0);
      bool progress = false;
      Packet decision_packet;
      if (ctx.rank() == 0) {
        const StageDecision decision =
            decide_stage_moves(eps, excess, options.balance);
        progress = decision.progress;
        if (progress) {
          result.balance_result.stages.push_back(decision.stats);
          for (std::size_t i = 0; i < parts; ++i) {
            for (std::size_t j = 0; j < parts; ++j) {
              moves_flat[i * parts + j] = decision.moves(i, j);
            }
          }
        }
        decision_packet.pack(progress ? 1 : 0);
        decision_packet.pack_vector(moves_flat);
      }
      Packet received = ctx.broadcast(0, std::move(decision_packet));
      progress = received.unpack<int>() != 0;
      if (!progress) break;
      moves_flat = received.unpack_vector<std::int64_t>();

      // Each rank selects the transfers out of its owned partitions using
      // the same ordering as the shared-memory driver (selection reads the
      // pre-move `shared` state), then all ranks synchronize before the
      // disjoint writes — no rank reads an entry another rank writes.
      std::vector<std::vector<std::vector<VertexId>>> selections;
      std::vector<std::size_t> owned;
      for (std::size_t i = 0; i < parts; ++i) {
        if (owner_of(static_cast<PartId>(i), ctx.num_ranks()) != ctx.rank()) {
          continue;
        }
        owned.push_back(i);
        selections.push_back(select_partition_transfers(
            g_new, shared, label, layer, members[i],
            static_cast<PartId>(i), moves_flat.data() + i * parts));
      }
      ctx.barrier();  // selection (reads) completed everywhere
      for (std::size_t k = 0; k < owned.size(); ++k) {
        for (std::size_t j = 0; j < parts; ++j) {
          for (const VertexId v : selections[k][j]) {
            shared.part[static_cast<std::size_t>(v)] =
                static_cast<PartId>(j);
          }
        }
      }
      ctx.barrier();  // all transfers visible before the next stage
    }
  });

  result.stages = static_cast<int>(result.balance_result.stages.size());
  result.balanced = result.balance_result.balanced;
  if (!result.balanced) {
    // Recompute the final deviation for reporting.
    std::vector<double> weight(parts, 0.0);
    for (VertexId v = 0; v < g_new.num_vertices(); ++v) {
      weight[static_cast<std::size_t>(
          shared.part[static_cast<std::size_t>(v)])] +=
          g_new.vertex_weight(v);
    }
    double max_dev = 0.0;
    for (std::size_t q = 0; q < parts; ++q) {
      max_dev = std::max(max_dev, std::abs(weight[q] - targets[q]));
    }
    result.balance_result.final_max_deviation = max_dev;
    result.balanced = max_dev <= options.balance.tolerance;
    result.balance_result.balanced = result.balanced;
  }

  // ---------------------------------------------------- refinement
  // The refinement LP is identical to the shared-memory path; candidate
  // gathering is the parallel part and reuses the OpenMP implementation.
  result.partitioning = std::move(shared);
  if (options.refine) {
    result.refine_stats =
        refine_partitioning(g_new, result.partitioning, options.refinement);
  }
  return result;
}

}  // namespace pigp::core
