#include "core/spmd_igp.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/layering.hpp"
#include "core/transfer.hpp"
#include "core/workspace.hpp"
#include "support/check.hpp"

namespace pigp::core {
namespace {

using graph::PartId;
using graph::VertexId;
using net::Packet;

/// Rank that owns partition q.
int owner_of(PartId q, int num_ranks) {
  return static_cast<int>(q) % num_ranks;
}

/// Balance stages + refinement on an already-extended (g_new, shared,
/// state) triple — the SPMD engine shared by the compat and in-place entry
/// points.  \p rank_ws holds one persistent Workspace per rank (resumable
/// layering + gather/pack staging); \p refine_ws is the caller's workspace
/// for the refinement pass (null = call-local buffers).
IgpResult run_spmd_engine(SpmdExecutor& executor, const graph::Graph& g_new,
                          graph::Partitioning& shared,
                          const IgpOptions& options,
                          graph::PartitionState& state,
                          std::vector<Workspace>& rank_ws,
                          Workspace* refine_ws) {
  rank_ws.resize(static_cast<std::size_t>(executor.num_ranks()));
  const auto parts = static_cast<std::size_t>(shared.num_parts);
  const std::vector<double> targets =
      graph::balance_targets(g_new.total_vertex_weight(), shared.num_parts);

  IgpResult result;

  // ---------------------------------------------------- balance stages
  executor.run([&](net::Transport& ctx) {
    // Rank-local ownership and resumable layering.  The per-vertex arrays
    // live in this rank's persistent Workspace: bind() refreshes the
    // graph/partitioning pointers and only pays a full reset after an
    // id remap or a shrink, so steady-state stages reset in O(labeled).
    Workspace& mine_ws = rank_ws[static_cast<std::size_t>(ctx.rank())];
    std::vector<PartId> owned;
    for (PartId q = 0; q < shared.num_parts; ++q) {
      if (owner_of(q, ctx.num_ranks()) == ctx.rank()) owned.push_back(q);
    }
    bool layering_bound = false;
    std::vector<double> excess(parts, 0.0);
    std::vector<std::int64_t>& moves_flat = mine_ws.spmd_moves_flat;
    moves_flat.assign(parts * parts, 0);

    for (int stage = 0; stage < options.balance.max_stages; ++stage) {
      // Every rank reads the excess off the shared state's maintained
      // weights — O(P), identical on all ranks (rank 0 is the only writer
      // and the stage ends in a barrier).
      double max_dev = 0.0;
      for (std::size_t q = 0; q < parts; ++q) {
        excess[q] = state.weights()[q] - targets[q];
        max_dev = std::max(max_dev, std::abs(excess[q]));
      }
      if (max_dev <= options.balance.tolerance) {
        if (ctx.rank() == 0) result.balance_result.balanced = true;
        break;
      }

      // Boundary-seeded, depth-capped layering of the owned partitions.
      BoundaryLayering& layering = mine_ws.layering;
      if (!layering_bound) {
        layering.bind(g_new, shared);
        layering_bound = true;
      }
      layering.reseed(state, 1, &owned);
      const int cap = options.balance.max_layers;
      int depth_budget = cap == 0 ? -1 : cap;
      layering.grow(depth_budget, 1);
      int grow_step = cap;

      // Deepen-vs-decide handshake: allgather (exhausted flag, owned eps
      // rows); rank 0 runs the α ladder on the assembled capacities and
      // broadcasts either "deepen" (everyone grows and the loop repeats)
      // or the final move matrix — exactly the lazy-deepening loop of the
      // shared-memory driver, with communication in the middle.
      StageDecision decision;
      bool progress = false;
      while (true) {
        Packet mine;
        mine.pack(layering.exhausted() ? 1 : 0);
        std::vector<std::int64_t>& eps_rows = mine_ws.spmd_eps_rows;
        eps_rows.assign(owned.size() * parts, 0);
        for (std::size_t k = 0; k < owned.size(); ++k) {
          const auto row =
              layering.eps().row(static_cast<std::size_t>(owned[k]));
          std::copy(row.begin(), row.end(), eps_rows.begin() + k * parts);
        }
        mine.pack_vector(eps_rows);
        const std::vector<Packet> gathered = ctx.allgather(std::move(mine));

        int action = 0;  // 0 = moves ready, 1 = deepen
        Packet decision_packet;
        if (ctx.rank() == 0) {
          bool all_exhausted = true;
          pigp::DenseMatrix<std::int64_t> eps(parts, parts, 0);
          for (int r = 0; r < ctx.num_ranks(); ++r) {
            Packet p = gathered[static_cast<std::size_t>(r)];
            const bool rank_exhausted = p.unpack<int>() != 0;
            all_exhausted = all_exhausted && rank_exhausted;
            const std::vector<std::int64_t> rows =
                p.unpack_vector<std::int64_t>();
            std::size_t k = 0;
            for (PartId q = 0; q < shared.num_parts; ++q) {
              if (owner_of(q, ctx.num_ranks()) != r) continue;
              for (std::size_t j = 0; j < parts; ++j) {
                eps(static_cast<std::size_t>(q), j) = rows[k * parts + j];
              }
              ++k;
            }
          }
          // Same acceptance rule as the shared-memory driver: take α = 1
          // at any depth, anything else only at exhaustion — so before
          // exhaustion only the α = 1 rung of the ladder is solved.
          BalanceOptions ladder = options.balance;
          if (!all_exhausted) ladder.alpha_max = 1.0;
          decision = decide_stage_moves_alpha(eps, excess, ladder);
          if (!all_exhausted && !decision.lp_feasible) {
            action = 1;
          } else {
            if (!decision.lp_feasible) {
              decision =
                  best_effort_stage_moves(eps, excess, options.balance);
            }
            decision.stats.layer_depth = all_exhausted ? -1 : depth_budget;
          }
          decision_packet.pack(action);
          if (action == 0) {
            decision_packet.pack(decision.progress ? 1 : 0);
            for (std::size_t i = 0; i < parts; ++i) {
              for (std::size_t j = 0; j < parts; ++j) {
                moves_flat[i * parts + j] = decision.moves(i, j);
              }
            }
            decision_packet.pack_vector(moves_flat);
          }
        }
        Packet received = ctx.broadcast(0, std::move(decision_packet));
        action = received.unpack<int>();
        if (action == 1) {
          layering.grow(grow_step, 1);
          depth_budget += grow_step;
          grow_step *= 2;  // double the total depth per retry
          continue;
        }
        progress = received.unpack<int>() != 0;
        if (progress) moves_flat = received.unpack_vector<std::int64_t>();
        break;
      }
      if (!progress) break;
      if (ctx.rank() == 0) {
        result.balance_result.stages.push_back(decision.stats);
      }

      // Each rank selects the transfers out of its owned partitions with
      // the same ordering as the shared-memory driver (selection reads the
      // pre-move `shared` state).  The selections are then gathered and
      // rank 0 applies every move through the state in the flat driver's
      // order (source asc, dest asc, selection order) so the aggregates
      // and the boundary index evolve bit-identically.
      Packet sel_packet;
      for (const PartId q : owned) {
        const auto selections = select_partition_transfers(
            g_new, shared, layering.label(), layering.layer(),
            layering.labeled(q), q,
            moves_flat.data() + static_cast<std::size_t>(q) * parts);
        for (std::size_t j = 0; j < parts; ++j) {
          sel_packet.pack_vector(selections[j]);
        }
      }
      const std::vector<Packet> all_selections =
          ctx.allgather(std::move(sel_packet));
      if (ctx.rank() == 0) {
        std::vector<std::vector<std::vector<VertexId>>> by_source(parts);
        for (int r = 0; r < ctx.num_ranks(); ++r) {
          Packet p = all_selections[static_cast<std::size_t>(r)];
          for (PartId q = 0; q < shared.num_parts; ++q) {
            if (owner_of(q, ctx.num_ranks()) != r) continue;
            auto& rows = by_source[static_cast<std::size_t>(q)];
            rows.resize(parts);
            for (std::size_t j = 0; j < parts; ++j) {
              rows[j] = p.unpack_vector<VertexId>();
            }
          }
        }
        for (std::size_t i = 0; i < parts; ++i) {
          if (by_source[i].empty()) continue;
          for (std::size_t j = 0; j < parts; ++j) {
            for (const VertexId v : by_source[i][j]) {
              state.move_vertex(g_new, shared, v,
                                static_cast<PartId>(j));
            }
          }
        }
      }
      ctx.barrier();  // all transfers + state updates visible everywhere
    }
  });

  result.stages = static_cast<int>(result.balance_result.stages.size());
  result.balanced = result.balance_result.balanced;
  if (!result.balanced) {
    // Final deviation for reporting — O(P) off the maintained weights.
    double max_dev = 0.0;
    for (std::size_t q = 0; q < parts; ++q) {
      max_dev = std::max(max_dev, std::abs(state.weights()[q] - targets[q]));
    }
    result.balance_result.final_max_deviation = max_dev;
    result.balanced = max_dev <= options.balance.tolerance;
    result.balance_result.balanced = result.balanced;
  }

  // ---------------------------------------------------- refinement
  // The refinement LP is identical to the shared-memory path; candidate
  // gathering is the parallel part and reuses the OpenMP implementation.
  if (options.refine) {
    result.refine_stats = refine_partitioning(g_new, shared, state,
                                              options.refinement, refine_ws);
  }
  return result;
}

}  // namespace

IgpResult spmd_repartition(SpmdExecutor& executor,
                           const graph::Graph& g_new,
                           const graph::Partitioning& old_partitioning,
                           VertexId n_old, const IgpOptions& options,
                           graph::PartitionState* state) {
  std::vector<Workspace> rank_ws;
  if (state != nullptr) {
    Workspace ws;
    graph::Partitioning working = old_partitioning;
    IgpResult result = spmd_repartition_in_place(
        executor, g_new, working, n_old, options, *state, ws, rank_ws);
    result.partitioning = std::move(working);
    return result;
  }

  // Step 1 runs once up front (multi-source BFS is a global operation; the
  // CM-5 version distributes the frontier, which the OpenMP path models).
  AssignOptions assign_options;
  assign_options.num_threads = 1;
  graph::Partitioning working =
      extend_assignment(g_new, old_partitioning, n_old, assign_options);
  graph::PartitionState local_state;
  local_state.rebuild(g_new, working);
  IgpResult result = run_spmd_engine(executor, g_new, working, options,
                                     local_state, rank_ws, nullptr);
  result.partitioning = std::move(working);
  return result;
}

IgpResult spmd_repartition(runtime::Machine& machine,
                           const graph::Graph& g_new,
                           const graph::Partitioning& old_partitioning,
                           VertexId n_old, const IgpOptions& options,
                           graph::PartitionState* state) {
  MachineExecutor executor(machine);
  return spmd_repartition(executor, g_new, old_partitioning, n_old, options,
                          state);
}

IgpResult spmd_repartition_in_place(SpmdExecutor& executor,
                                    const graph::Graph& g_new,
                                    graph::Partitioning& partitioning,
                                    VertexId n_old, const IgpOptions& options,
                                    graph::PartitionState& state,
                                    Workspace& ws,
                                    std::vector<Workspace>& rank_ws) {
  // Step 1: seeded in-place assignment through the maintained state (the
  // SPMD engine replicates the graph, so step 1 is a single global pass).
  AssignOptions assign_options;
  assign_options.num_threads = 1;
  extend_assignment_state(g_new, partitioning, n_old, state, ws,
                          assign_options);
  return run_spmd_engine(executor, g_new, partitioning, options, state,
                         rank_ws, &ws);
}

IgpResult spmd_repartition_in_place(runtime::Machine& machine,
                                    const graph::Graph& g_new,
                                    graph::Partitioning& partitioning,
                                    VertexId n_old, const IgpOptions& options,
                                    graph::PartitionState& state,
                                    Workspace& ws,
                                    std::vector<Workspace>& rank_ws) {
  MachineExecutor executor(machine);
  return spmd_repartition_in_place(executor, g_new, partitioning, n_old,
                                   options, state, ws, rank_ws);
}

}  // namespace pigp::core
