#pragma once

/// \file layering.hpp
/// Step 2 of the incremental partitioner: the layering algorithm of
/// Figure 3 (Ou & Ranka §2.2).
///
/// Every vertex of partition i is labeled with the "closest outside
/// partition" L'(v): boundary vertices take the neighboring partition they
/// share the most edges with (layer 0), then layers grow inward level by
/// level, each vertex adopting the majority label among its already-labeled
/// neighbors in the previous layer.  The counts
///     ε_ij = |{v in partition i : L'(v) = j}|
/// upper-bound how many vertices partition i can cede to partition j in the
/// load-balancing LP (constraint 11), and the layer number orders vertices
/// so transfers peel from the boundary inward.
///
/// Layering is embarrassingly parallel across partitions — this is the
/// heart of the paper's parallelization — so the entry point can run each
/// partition's BFS on its own OpenMP thread (or on its owning SPMD rank via
/// layer_one_partition).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::core {

/// Result of layering all partitions.
struct LayeringResult {
  /// L'(v): closest outside partition, or -1 when the vertex's component
  /// never touches another partition (only possible in disconnected graphs).
  std::vector<graph::PartId> label;
  /// BFS depth from the partition boundary (0 = boundary vertex), or -1.
  std::vector<std::int32_t> layer;
  /// eps(i, j): movable-vertex counts per ordered partition pair.
  pigp::DenseMatrix<std::int64_t> eps;
};

/// Layer every partition; \p num_threads > 1 processes partitions in
/// parallel (results are identical to the serial run).
[[nodiscard]] LayeringResult layer_partitions(const graph::Graph& g,
                                              const graph::Partitioning& p,
                                              int num_threads = 1);

/// Layer a single partition, writing only entries of \p label / \p layer
/// belonging to partition \p target and the eps row \p eps_row (size
/// num_parts).  Used by the SPMD driver where each rank owns a subset of
/// partitions.  \p members lists the vertices of the partition.
void layer_one_partition(const graph::Graph& g, const graph::Partitioning& p,
                         graph::PartId target,
                         const std::vector<graph::VertexId>& members,
                         std::vector<graph::PartId>& label,
                         std::vector<std::int32_t>& layer,
                         std::int64_t* eps_row);

/// Vertices grouped by partition (index [q] lists partition q's vertices in
/// ascending id order).
[[nodiscard]] std::vector<std::vector<graph::VertexId>> partition_members(
    const graph::Partitioning& p);

}  // namespace pigp::core
