#pragma once

/// \file layering.hpp
/// Step 2 of the incremental partitioner: the layering algorithm of
/// Figure 3 (Ou & Ranka §2.2).
///
/// Every vertex of partition i is labeled with the "closest outside
/// partition" L'(v): boundary vertices take the neighboring partition they
/// share the most edges with (layer 0), then layers grow inward level by
/// level, each vertex adopting the majority label among its already-labeled
/// neighbors in the previous layer.  The counts
///     ε_ij = |{v in partition i : L'(v) = j}|
/// upper-bound how many vertices partition i can cede to partition j in the
/// load-balancing LP (constraint 11), and the layer number orders vertices
/// so transfers peel from the boundary inward.
///
/// Layering is embarrassingly parallel across partitions — this is the
/// heart of the paper's parallelization — so the entry point can run each
/// partition's BFS on its own OpenMP thread (or on its owning SPMD rank via
/// layer_one_partition).
///
/// Two entry points share one BFS:
///   * layer_partitions() — the batch oracle: seeds layer 0 by scanning
///     every member of every partition, O(V+E) always.
///   * BoundaryLayering / layer_partitions_from() — the boundary-local
///     path: seeds layer 0 straight from the PartitionState's maintained
///     boundary index (O(boundary) + one per-vertex array reset) and grows
///     *resumably* — a depth-capped grow() labels a thin shell, and the
///     balance driver requests deeper layers only when the staged LP turns
///     out infeasible at the current depth.  Grown to exhaustion it is
///     bit-identical to layer_partitions (the parity suite pins this).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::core {

/// Result of layering all partitions.
struct LayeringResult {
  /// L'(v): closest outside partition, or -1 when the vertex's component
  /// never touches another partition (only possible in disconnected graphs).
  std::vector<graph::PartId> label;
  /// BFS depth from the partition boundary (0 = boundary vertex), or -1.
  std::vector<std::int32_t> layer;
  /// eps(i, j): movable-vertex counts per ordered partition pair.
  pigp::DenseMatrix<std::int64_t> eps;
};

/// Layer every partition; \p num_threads > 1 processes partitions in
/// parallel (results are identical to the serial run).
[[nodiscard]] LayeringResult layer_partitions(const graph::Graph& g,
                                              const graph::Partitioning& p,
                                              int num_threads = 1);

/// Reusable per-thread working buffers for the layering BFS — one
/// partition's BFS allocates nothing when handed a scratch that has been
/// used before (the per-partition OpenMP loop used to churn a tally/next
/// allocation per partition).
struct LayerScratch {
  std::vector<double> tally;
  std::vector<graph::VertexId> frontier;
  std::vector<graph::VertexId> next;
};

/// Layer a single partition, writing only entries of \p label / \p layer
/// belonging to partition \p target and the eps row \p eps_row (size
/// num_parts).  Used by the SPMD driver where each rank owns a subset of
/// partitions.  \p members lists the vertices of the partition.
void layer_one_partition(const graph::Graph& g, const graph::Partitioning& p,
                         graph::PartId target,
                         const std::vector<graph::VertexId>& members,
                         std::vector<graph::PartId>& label,
                         std::vector<std::int32_t>& layer,
                         std::int64_t* eps_row);

/// Same, with caller-owned scratch buffers (hot path).
void layer_one_partition(const graph::Graph& g, const graph::Partitioning& p,
                         graph::PartId target,
                         const std::vector<graph::VertexId>& members,
                         std::vector<graph::PartId>& label,
                         std::vector<std::int32_t>& layer,
                         std::int64_t* eps_row, LayerScratch& scratch);

/// Vertices grouped by partition (index [q] lists partition q's vertices in
/// ascending id order).
[[nodiscard]] std::vector<std::vector<graph::VertexId>> partition_members(
    const graph::Partitioning& p);

/// Boundary-seeded, depth-capped, *resumable* layering over a maintained
/// graph::PartitionState.  One object is constructed per balance call
/// (allocating the per-vertex label/layer arrays once), reseed() starts a
/// stage by pulling layer-0 seeds from the state's boundary index, and
/// grow() advances every partition's BFS a bounded number of levels —
/// eps() always reflects exactly the vertices labeled so far, so the
/// balance LP can run on a thin shell and lazily request deeper layers.
///
/// Contract: \p p must be fully assigned and \p state consistent with it
/// at reseed() time; p must not change between reseed() and the last
/// grow() of a stage.  Grown to exhaustion the labels, layers and eps are
/// bit-identical to layer_partitions(g, p).
class BoundaryLayering {
 public:
  /// Empty; bind() before use.  A default-constructed instance living in a
  /// core::Workspace persists across repartitions — that is the hot path.
  BoundaryLayering() = default;

  /// Equivalent to default construction + bind(g, p).
  BoundaryLayering(const graph::Graph& g, const graph::Partitioning& p);

  /// Point the layering at (g, p) and make the arrays consistent: after
  /// invalidate(), take_result(), or a vertex-count change this performs
  /// one full O(V) reset; otherwise it only refreshes the pointers and
  /// grows the per-vertex arrays for appended ids (amortized), so a
  /// steady-state rebind costs O(1) and allocates nothing.  Must be called
  /// before the first reseed() of every balance run — the graph and
  /// partitioning may have moved since the last one.
  void bind(const graph::Graph& g, const graph::Partitioning& p);

  /// The vertex-id space was remapped (a delta with removals compacts
  /// ids): the labeled-vertex lists no longer address the entries they
  /// labeled, so the next bind() must fall back to a full reset.
  void invalidate() { dirty_ = true; }

  /// Deallocate everything (Workspace::release_memory); the next bind()
  /// re-creates the arrays with a full reset.
  void release();

  /// Reset the previous stage (O(labeled)) and seed layer 0 of every
  /// partition — or only of \p owned_parts when non-null (the SPMD driver
  /// owns a subset per rank) — from \p state's boundary buckets.
  void reseed(const graph::PartitionState& state, int num_threads = 1,
              const std::vector<graph::PartId>* owned_parts = nullptr);

  /// Same stage reset + seeding, but from caller-maintained boundary
  /// buckets instead of a PartitionState: buckets[k] holds candidate
  /// layer-0 vertices of partition owned_parts[k] (any order; they are
  /// sorted here).  Non-boundary candidates are skipped, so a slightly
  /// stale bucket degrades to extra work, not a wrong seeding.  Used by
  /// the sharded SPMD worker (core/spmd_worker), which tracks boundaries
  /// itself — seeded with exact buckets this is bit-identical to reseed()
  /// over a consistent PartitionState.
  void reseed_from_buckets(
      const std::vector<std::vector<graph::VertexId>>& buckets,
      const std::vector<graph::PartId>& owned_parts, int num_threads = 1);

  /// Grow every non-exhausted seeded partition by up to \p levels more BFS
  /// levels (\p levels < 0: to exhaustion).  Parallel across partitions.
  void grow(int levels, int num_threads = 1);

  /// True when every seeded partition's BFS has run out of vertices —
  /// eps() equals the batch layering's eps.
  [[nodiscard]] bool exhausted() const;

  [[nodiscard]] const std::vector<graph::PartId>& label() const {
    return label_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& layer() const {
    return layer_;
  }
  [[nodiscard]] const pigp::DenseMatrix<std::int64_t>& eps() const {
    return eps_;
  }
  /// Vertices of partition \p q labeled so far, in BFS discovery order
  /// (ascending within each level).
  [[nodiscard]] const std::vector<graph::VertexId>& labeled(
      graph::PartId q) const {
    return labeled_[static_cast<std::size_t>(q)];
  }
  /// Levels grown so far for partition \p q (0 = seeds only).
  [[nodiscard]] std::int32_t depth(graph::PartId q) const {
    return depth_[static_cast<std::size_t>(q)];
  }

  /// Move the arrays out as a batch-shaped LayeringResult.  Any further
  /// reseed() throws until bind() restores the arrays (with a full reset).
  [[nodiscard]] LayeringResult take_result();

 private:
  /// Undo the previous stage (O(labeled)) and install the new seeded set —
  /// the shared front half of both reseed flavors.
  void begin_stage(const std::vector<graph::PartId>* owned_parts);

  const graph::Graph* g_ = nullptr;
  const graph::Partitioning* p_ = nullptr;
  bool dirty_ = false;
  std::vector<graph::PartId> label_;
  std::vector<std::int32_t> layer_;
  pigp::DenseMatrix<std::int64_t> eps_;
  std::vector<std::vector<graph::VertexId>> frontier_;  ///< deepest level
  std::vector<std::vector<graph::VertexId>> labeled_;
  std::vector<std::int32_t> depth_;
  std::vector<graph::PartId> seeded_;  ///< partitions seeded this stage
  std::vector<LayerScratch> scratch_;  ///< per OpenMP thread
};

/// Boundary-seeded layering of every partition to exhaustion — the
/// drop-in replacement for layer_partitions when a maintained
/// PartitionState is at hand: same result, O(boundary)-seeded instead of
/// an O(V) member scan per partition.
[[nodiscard]] LayeringResult layer_partitions_from(
    const graph::Graph& g, const graph::Partitioning& p,
    const graph::PartitionState& state, int num_threads = 1);

}  // namespace pigp::core
