#pragma once

/// \file spmd_igp.hpp
/// Distributed-memory (SPMD) incremental partitioner.
///
/// The paper ran on a 32-node CM-5 where each node owned a partition,
/// layered it locally, and cooperated on the LP solve.  This driver
/// reproduces that structure on the thread-backed message-passing Machine:
/// every rank owns a block of partitions, layers them independently, the
/// ε matrix is allgathered, rank 0 solves the (tiny) LP and broadcasts the
/// movement matrix, and each rank applies the transfers out of its owned
/// partitions.  Results are bit-identical to the shared-memory driver —
/// test_spmd_igp asserts it — so the communication structure is exercised
/// without changing semantics.

#include <vector>

#include "core/igp.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "runtime/spmd.hpp"

namespace pigp::core {

struct Workspace;

/// Run the full IGP/IGPR pipeline on \p machine.  The graph is replicated
/// (the CM-5 implementation also kept the small meshes resident per node);
/// partition ownership is round-robin: rank r owns partitions q with
/// q % num_ranks == r.
///
/// Boundary-local like the flat driver: each rank seeds its owned
/// partitions' layering from the shared PartitionState's boundary index
/// and grows it depth-capped; the deepen-vs-decide handshake is a
/// broadcast from rank 0, so every rank retries the α ladder on the same
/// lazily-deepened ε capacities and the decisions stay bit-identical to
/// the shared-memory pipeline.  Selected transfers are gathered and
/// applied by rank 0 through the state (the writes were always trivial —
/// layering and selection are the parallel work).  \p state follows the
/// IncrementalPartitioner::repartition contract: non-null = maintained by
/// the caller and left describing the result; null = seeded internally
/// with one O(V+E) rescan.
[[nodiscard]] IgpResult spmd_repartition(
    runtime::Machine& machine, const graph::Graph& g_new,
    const graph::Partitioning& old_partitioning, graph::VertexId n_old,
    const IgpOptions& options = {}, graph::PartitionState* state = nullptr);

/// The streaming hot path, mirroring
/// IncrementalPartitioner::repartition_in_place: the pipeline runs in
/// place on \p partitioning / \p state with the session's \p ws for the
/// assignment step and one persistent Workspace per rank (\p rank_ws,
/// resized to the machine's rank count) for the per-rank resumable
/// layering and the gather/pack staging buffers — so a steady-state SPMD
/// repartition reuses all per-vertex storage instead of reallocating it
/// every call.  Decisions stay bit-identical to the flat driver.
/// result.partitioning is left empty — the answer IS \p partitioning.
[[nodiscard]] IgpResult spmd_repartition_in_place(
    runtime::Machine& machine, const graph::Graph& g_new,
    graph::Partitioning& partitioning, graph::VertexId n_old,
    const IgpOptions& options, graph::PartitionState& state, Workspace& ws,
    std::vector<Workspace>& rank_ws);

}  // namespace pigp::core
