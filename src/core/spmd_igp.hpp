#pragma once

/// \file spmd_igp.hpp
/// Distributed-memory (SPMD) incremental partitioner.
///
/// The paper ran on a 32-node CM-5 where each node owned a partition,
/// layered it locally, and cooperated on the LP solve.  This driver
/// reproduces that structure against the pluggable net::Transport
/// interface: every rank owns a block of partitions, layers them
/// independently, the ε matrix is allgathered, rank 0 solves the (tiny) LP
/// and broadcasts the movement matrix, and each rank applies the transfers
/// out of its owned partitions.  Results are bit-identical to the
/// shared-memory driver — test_spmd_igp asserts it — so the communication
/// structure is exercised without changing semantics.
///
/// An SpmdExecutor decides what carries the messages: MachineExecutor runs
/// the ranks as threads over the runtime::Machine mailboxes (the original
/// and fastest shape), TcpLoopbackExecutor runs them as threads speaking
/// real TCP over loopback sockets (the full wire path — framing, filters,
/// timeouts — without managing processes).  The fully distributed
/// one-process-per-rank shape lives in core/spmd_worker.hpp, which shards
/// the graph instead of replicating it.

#include <functional>
#include <memory>
#include <vector>

#include "core/igp.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "runtime/net/fault_transport.hpp"
#include "runtime/net/tcp_transport.hpp"
#include "runtime/net/transport.hpp"
#include "runtime/spmd.hpp"

namespace pigp::core {

struct Workspace;

/// How the SPMD ranks run and talk: an executor owns the rank threads and
/// hands each one a net::Transport.  The engine is written against this
/// seam only, so swapping mailboxes for sockets changes no engine code.
class SpmdExecutor {
 public:
  virtual ~SpmdExecutor() = default;
  [[nodiscard]] virtual int num_ranks() const noexcept = 0;
  /// Execute \p body once per rank; returns when all ranks finish.  A
  /// rank's exception aborts the group and is rethrown (first by arrival).
  virtual void run(const std::function<void(net::Transport&)>& body) = 0;
};

/// Ranks as threads over the runtime::Machine mailboxes — the bit-parity
/// oracle and the default backend shape.
class MachineExecutor final : public SpmdExecutor {
 public:
  explicit MachineExecutor(int num_ranks)
      : owned_(std::make_unique<runtime::Machine>(num_ranks)),
        machine_(owned_.get()) {}
  /// Borrow an existing machine (the Machine& compatibility entry points).
  explicit MachineExecutor(runtime::Machine& machine) : machine_(&machine) {}

  [[nodiscard]] int num_ranks() const noexcept override {
    return machine_->num_ranks();
  }
  void run(const std::function<void(net::Transport&)>& body) override {
    machine_->run([&body](runtime::RankContext& ctx) {
      net::InProcessTransport transport(ctx);
      body(transport);
    });
  }

 private:
  std::unique_ptr<runtime::Machine> owned_;
  runtime::Machine* machine_;
};

/// Ranks as threads speaking real TCP over loopback sockets — the whole
/// wire path (framing, filter chain, socket timeouts) under one process.
class TcpLoopbackExecutor final : public SpmdExecutor {
 public:
  explicit TcpLoopbackExecutor(int num_ranks, net::TcpOptions options = {})
      : num_ranks_(num_ranks), options_(std::move(options)) {}

  [[nodiscard]] int num_ranks() const noexcept override {
    return num_ranks_;
  }
  void run(const std::function<void(net::Transport&)>& body) override {
    net::run_tcp_loopback(num_ranks_, options_, body);
  }

 private:
  int num_ranks_;
  net::TcpOptions options_;
};

/// Decorator: wraps every rank's transport of an inner executor in a
/// net::FaultInjectingTransport, all sharing one FaultScript (see
/// runtime/net/fault_transport.hpp).  The script's fire budget persists
/// across run() calls while the wrappers — and their per-attempt operation
/// counters — are fresh per call, so a one-shot scripted fault poisons
/// exactly one attempt and the retry that follows runs clean.  The inner
/// executor must outlive this decorator.
class FaultInjectingExecutor final : public SpmdExecutor {
 public:
  FaultInjectingExecutor(SpmdExecutor& inner,
                         std::shared_ptr<net::FaultScript> script)
      : inner_(inner), script_(std::move(script)) {}

  [[nodiscard]] int num_ranks() const noexcept override {
    return inner_.num_ranks();
  }
  void run(const std::function<void(net::Transport&)>& body) override {
    inner_.run([&body, this](net::Transport& transport) {
      net::FaultInjectingTransport chaos(transport, script_);
      body(chaos);
    });
  }

 private:
  SpmdExecutor& inner_;
  std::shared_ptr<net::FaultScript> script_;
};

/// Run the full IGP/IGPR pipeline on \p executor's ranks.  The graph is
/// replicated (the CM-5 implementation also kept the small meshes resident
/// per node); partition ownership is round-robin: rank r owns partitions q
/// with q % num_ranks == r.
///
/// Boundary-local like the flat driver: each rank seeds its owned
/// partitions' layering from the shared PartitionState's boundary index
/// and grows it depth-capped; the deepen-vs-decide handshake is a
/// broadcast from rank 0, so every rank retries the α ladder on the same
/// lazily-deepened ε capacities and the decisions stay bit-identical to
/// the shared-memory pipeline.  Selected transfers are gathered and
/// applied by rank 0 through the state (the writes were always trivial —
/// layering and selection are the parallel work).  \p state follows the
/// IncrementalPartitioner::repartition contract: non-null = maintained by
/// the caller and left describing the result; null = seeded internally
/// with one O(V+E) rescan.
[[nodiscard]] IgpResult spmd_repartition(
    SpmdExecutor& executor, const graph::Graph& g_new,
    const graph::Partitioning& old_partitioning, graph::VertexId n_old,
    const IgpOptions& options = {}, graph::PartitionState* state = nullptr);

/// Compatibility: run on a caller-owned Machine (wrapped in a
/// MachineExecutor).
[[nodiscard]] IgpResult spmd_repartition(
    runtime::Machine& machine, const graph::Graph& g_new,
    const graph::Partitioning& old_partitioning, graph::VertexId n_old,
    const IgpOptions& options = {}, graph::PartitionState* state = nullptr);

/// The streaming hot path, mirroring
/// IncrementalPartitioner::repartition_in_place: the pipeline runs in
/// place on \p partitioning / \p state with the session's \p ws for the
/// assignment step and one persistent Workspace per rank (\p rank_ws,
/// resized to the executor's rank count) for the per-rank resumable
/// layering and the gather/pack staging buffers — so a steady-state SPMD
/// repartition reuses all per-vertex storage instead of reallocating it
/// every call.  Decisions stay bit-identical to the flat driver.
/// result.partitioning is left empty — the answer IS \p partitioning.
[[nodiscard]] IgpResult spmd_repartition_in_place(
    SpmdExecutor& executor, const graph::Graph& g_new,
    graph::Partitioning& partitioning, graph::VertexId n_old,
    const IgpOptions& options, graph::PartitionState& state, Workspace& ws,
    std::vector<Workspace>& rank_ws);

/// Compatibility: the in-place hot path on a caller-owned Machine.
[[nodiscard]] IgpResult spmd_repartition_in_place(
    runtime::Machine& machine, const graph::Graph& g_new,
    graph::Partitioning& partitioning, graph::VertexId n_old,
    const IgpOptions& options, graph::PartitionState& state, Workspace& ws,
    std::vector<Workspace>& rank_ws);

}  // namespace pigp::core
