#pragma once

/// \file workspace.hpp
/// Session-lifetime reusable buffers — the steady-state memory discipline
/// of the streaming path.
///
/// PR 4 made the *work* of a repartition proportional to the boundary; the
/// remaining per-repartition O(V) costs were pure memory churn: the
/// multi-source BFS arrays of the assignment step, the partitioning copy
/// in the driver, and the per-call label/layer allocation of the
/// boundary-seeded layering.  A Workspace owns all of that storage for the
/// lifetime of a pigp::Session and hands it to every phase of the
/// pipeline, so a steady-state repartition (warm buffers, no vertex-count
/// growth) performs zero heap allocations — a property pinned by the
/// smoke-labeled allocation-count test in tests/api/test_session_alloc.cpp
/// and documented in docs/ARCHITECTURE.md ("Workspace & steady-state
/// memory discipline").
///
/// Clearing discipline: per-vertex BFS arrays are epoch-versioned
/// (EpochArray) so "reset everything" is a generation bump, not an O(V)
/// memset; the persistent BoundaryLayering resets itself in O(labeled) via
/// its labeled-vertex lists.  Vertex-id *remaps* (a delta with removals
/// compacts ids) invalidate id-addressed persistent state — callers must
/// announce them through invalidate_vertex_ids(), which schedules the one
/// full reset the layering then performs on its next bind.
///
/// Phases that may still allocate (all proportional to actual work, never
/// to |V|): LP model construction and simplex solves (only built when a
/// stage has movable excess or refinement candidates), vector growth when
/// the graph grows (amortized), the orphan-component fallback of the
/// assignment step, and everything on error paths.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/layering.hpp"
#include "core/transfer.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::core {

/// Per-vertex array with O(1) logical clear: every slot carries a
/// generation stamp, and clear() bumps the current generation so all slots
/// become stale at once.  Growth only ever extends the arrays (new slots
/// are stale); there is no O(V) reset anywhere on the steady-state path.
template <typename T>
class EpochArray {
 public:
  /// Grow to at least \p n slots (never shrinks — ids may be reused after
  /// a remap, and stale stamps make old values invisible automatically).
  void ensure(std::size_t n) {
    if (value_.size() < n) {
      value_.resize(n);
      stamp_.resize(n, 0);
    }
  }

  /// Logically clear every slot.  O(1) except once every 2^32 clears.
  void clear() {
    if (++epoch_ == 0) {  // wrapped: make the stale stamps really stale
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool contains(std::size_t i) const {
    return stamp_[i] == epoch_;
  }
  [[nodiscard]] T get(std::size_t i) const { return value_[i]; }
  [[nodiscard]] T get_or(std::size_t i, T fallback) const {
    return contains(i) ? value_[i] : fallback;
  }
  void set(std::size_t i, T v) {
    value_[i] = v;
    stamp_[i] = epoch_;  // marks the slot live in the current generation
  }

  /// Deallocate the backing storage (Workspace::release_memory); the
  /// array re-grows on the next ensure(), with all slots stale.
  void release() {
    std::vector<T>().swap(value_);
    std::vector<std::uint32_t>().swap(stamp_);
  }

 private:
  std::vector<T> value_;
  std::vector<std::uint32_t> stamp_;
  /// Starts at 1 so default-initialized stamps (0) are always stale.
  std::uint32_t epoch_ = 1;
};

/// Reusable buffers for one pigp::Session (or one SPMD rank).  Plain data
/// plus sizing helpers; each pipeline phase documents which members it
/// owns while it runs.  Default-constructed it holds nothing — every
/// buffer grows on first use and is then reused forever.
struct Workspace {
  // --- step 1: seeded assignment BFS (core/assign.cpp) ---
  EpochArray<std::int32_t> assign_distance;  ///< BFS level per vertex
  EpochArray<graph::PartId> assign_label;    ///< nearest-old-vertex label
  std::vector<graph::VertexId> assign_frontier;
  std::vector<graph::VertexId> assign_next;

  // --- steps 2-3: balance driver (core/balance.cpp) ---
  std::vector<double> balance_targets;  ///< per-part weight targets
  std::vector<double> balance_excess;   ///< W(q) - target_q
  /// Persistent boundary-seeded layering: label/layer arrays survive
  /// across repartitions (reseed() undoes the previous stage in
  /// O(labeled)); bind() refreshes the graph/partitioning pointers and
  /// performs a full reset only after invalidate_vertex_ids() or a size
  /// change.
  BoundaryLayering layering;

  // --- step 4: refinement (core/refine.cpp) ---
  std::vector<graph::VertexId> refine_boundary;  ///< sorted boundary union
  pigp::DenseMatrix<std::vector<GainCandidate>> refine_candidates;
  /// Per-OpenMP-thread candidate scan scratch.
  struct RefineThreadScratch {
    std::vector<double> out;  ///< out(v, j) tallies, one slot per part
    std::vector<std::pair<std::size_t, GainCandidate>> found;
  };
  std::vector<RefineThreadScratch> refine_scratch;
  /// Move journal of the current refinement round (undo unit).
  std::vector<std::pair<graph::VertexId, graph::PartId>> refine_journal;

  // --- session plumbing (api/session.cpp) ---
  /// Pre-backend aggregate snapshot (O(P)) paired with the PartitionState
  /// undo journal for exception rollback: the journal replays the O(Δ)
  /// inverse moves, this snapshot erases their floating-point drift.
  /// Replaces the historical O(V) rollback_part assignment copy.
  graph::PartitionState::AggregateSnapshot rollback_aggregates;

  // --- SPMD driver gather/pack staging (core/spmd_igp.cpp) ---
  std::vector<std::int64_t> spmd_eps_rows;    ///< owned eps rows, packed
  std::vector<std::int64_t> spmd_moves_flat;  ///< broadcast move matrix

  /// Bumped by invalidate_vertex_ids(); secondary workspace owners (the
  /// SPMD backend's per-rank set) compare it against their own record to
  /// learn that a remap happened since their last run.
  std::uint64_t remap_generation = 0;

  /// A delta with removals compacted the vertex-id space: every
  /// id-addressed persistent buffer is now stale.  Epoch arrays handle
  /// this for free (they are cleared before every use); the layering
  /// schedules a full reset on its next bind().
  void invalidate_vertex_ids();

  /// Give every pooled buffer back to the allocator (deallocating, not
  /// just clearing).  An escape hatch for long-lived sessions after a
  /// burst much larger than their steady state — the next repartition
  /// simply re-warms the pools.
  void release_memory();
};

}  // namespace pigp::core
