#include "core/balance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "core/transfer.hpp"
#include "core/workspace.hpp"
#include "lp/bounded_simplex.hpp"
#include "support/check.hpp"

namespace pigp::core {

lp::Solution solve_lp(const lp::LinearProgram& program, LpSolverKind kind,
                      const lp::SimplexOptions& options) {
  if (kind == LpSolverKind::bounded) {
    return lp::BoundedSimplex(options).solve(program);
  }
  return lp::DenseSimplex(options).solve(program);
}

std::vector<double> staged_requirements(const std::vector<double>& excess,
                                        double alpha) {
  PIGP_CHECK(alpha >= 1.0, "alpha must be at least 1");
  const std::size_t parts = excess.size();
  std::vector<double> rhs(parts, 0.0);
  std::vector<double> remainder(parts, 0.0);
  double base_sum = 0.0;
  for (std::size_t q = 0; q < parts; ++q) {
    const double raw = excess[q] / alpha;
    rhs[q] = std::floor(raw);
    remainder[q] = raw - rhs[q];
    base_sum += rhs[q];
  }
  // Σ raw = 0 (targets sum to the total weight), so the remainders sum to
  // -base_sum, a non-negative integer; bump that many largest remainders.
  auto bumps = static_cast<std::int64_t>(std::llround(-base_sum));
  std::vector<std::size_t> order(parts);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&remainder](std::size_t a,
                                                     std::size_t b) {
    if (remainder[a] != remainder[b]) return remainder[a] > remainder[b];
    return a < b;
  });
  for (std::size_t i = 0; bumps > 0 && i < parts; ++i, --bumps) {
    rhs[order[i]] += 1.0;
  }
  return rhs;
}

lp::LinearProgram build_balance_lp(
    const pigp::DenseMatrix<std::int64_t>& eps, const std::vector<double>& rhs,
    pigp::DenseMatrix<int>* pair_vars) {
  const std::size_t parts = eps.rows();
  PIGP_CHECK(eps.cols() == parts, "eps must be square");
  PIGP_CHECK(rhs.size() == parts, "rhs size mismatch");

  lp::LinearProgram program(lp::Sense::minimize);
  pigp::DenseMatrix<int> vars(parts, parts, -1);
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      if (i == j || eps(i, j) <= 0) continue;
      vars(i, j) = program.add_variable(
          1.0, 0.0, static_cast<double>(eps(i, j)),
          "l" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  for (std::size_t q = 0; q < parts; ++q) {
    std::vector<std::pair<int, double>> coeffs;
    for (std::size_t k = 0; k < parts; ++k) {
      if (vars(q, k) >= 0) coeffs.emplace_back(vars(q, k), 1.0);
      if (vars(k, q) >= 0) coeffs.emplace_back(vars(k, q), -1.0);
    }
    program.add_row(lp::RowType::equal, std::move(coeffs), rhs[q],
                    "balance" + std::to_string(q));
  }
  if (pair_vars != nullptr) *pair_vars = std::move(vars);
  return program;
}

namespace {

/// Read the LP solution back into a move matrix.
void harvest_moves(const lp::Solution& solution,
                   const pigp::DenseMatrix<int>& pair_vars,
                   StageDecision& decision) {
  const std::size_t parts = decision.moves.rows();
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      if (pair_vars(i, j) < 0) continue;
      const double value =
          solution.x[static_cast<std::size_t>(pair_vars(i, j))];
      decision.moves(i, j) = std::llround(value);
      decision.stats.vertices_moved += static_cast<double>(
          decision.moves(i, j));
    }
  }
}

}  // namespace

StageDecision decide_stage_moves_alpha(
    const pigp::DenseMatrix<std::int64_t>& eps,
    const std::vector<double>& excess, const BalanceOptions& options) {
  const std::size_t parts = eps.rows();
  StageDecision decision;
  decision.moves = pigp::DenseMatrix<std::int64_t>(parts, parts, 0);

  // Paper staging: smallest feasible alpha in {1, 2, 4, ...}.
  pigp::DenseMatrix<int> pair_vars;
  for (double alpha = 1.0; alpha <= options.alpha_max; alpha *= 2.0) {
    const std::vector<double> rhs = staged_requirements(excess, alpha);
    if (std::all_of(rhs.begin(), rhs.end(),
                    [](double r) { return r == 0.0; })) {
      break;  // excess too small relative to alpha; nothing to request
    }
    const lp::LinearProgram program = build_balance_lp(eps, rhs, &pair_vars);
    const lp::Solution solution =
        solve_lp(program, options.solver, options.simplex);
    if (solution.status == lp::SolveStatus::optimal) {
      decision.lp_feasible = true;
      decision.stats.alpha = alpha;
      decision.stats.lp_variables = program.num_variables();
      decision.stats.lp_rows = program.num_rows();
      decision.stats.lp_iterations = solution.iterations;
      harvest_moves(solution, pair_vars, decision);
      decision.progress = decision.stats.vertices_moved > 0.5;
      return decision;
    }
  }
  return decision;
}

StageDecision best_effort_stage_moves(
    const pigp::DenseMatrix<std::int64_t>& eps,
    const std::vector<double>& excess, const BalanceOptions& options) {
  const std::size_t parts = eps.rows();
  StageDecision decision;
  decision.moves = pigp::DenseMatrix<std::int64_t>(parts, parts, 0);

  // Relax the balance rows with penalized slack and move whatever the
  // epsilon capacities admit this stage; the next stage re-layers and
  // continues.
  const std::vector<double> rhs = staged_requirements(excess, 1.0);
  lp::LinearProgram program(lp::Sense::minimize);
  pigp::DenseMatrix<int> vars(parts, parts, -1);
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      if (i == j || eps(i, j) <= 0) continue;
      // Light penalty keeps total movement minimal among max-progress
      // solutions while leaving slack reduction dominant.
      vars(i, j) = program.add_variable(
          1e-3, 0.0, static_cast<double>(eps(i, j)));
    }
  }
  for (std::size_t q = 0; q < parts; ++q) {
    std::vector<std::pair<int, double>> coeffs;
    for (std::size_t k = 0; k < parts; ++k) {
      if (vars(q, k) >= 0) coeffs.emplace_back(vars(q, k), 1.0);
      if (vars(k, q) >= 0) coeffs.emplace_back(vars(k, q), -1.0);
    }
    const int slack_pos = program.add_variable(1.0);
    const int slack_neg = program.add_variable(1.0);
    coeffs.emplace_back(slack_pos, 1.0);
    coeffs.emplace_back(slack_neg, -1.0);
    program.add_row(lp::RowType::equal, std::move(coeffs), rhs[q]);
  }
  const lp::Solution solution =
      solve_lp(program, options.solver, options.simplex);
  PIGP_CHECK(solution.status == lp::SolveStatus::optimal,
             "relaxed balance LP is always feasible");
  decision.stats.alpha = 0.0;  // flags the best-effort path
  decision.stats.lp_variables = program.num_variables();
  decision.stats.lp_rows = program.num_rows();
  decision.stats.lp_iterations = solution.iterations;
  harvest_moves(solution, vars, decision);
  decision.progress = decision.stats.vertices_moved > 0.5;
  return decision;
}

namespace {

/// W(q) − target_q per partition; returns the max |excess|.
double compute_excess(const std::vector<double>& weight,
                      const std::vector<double>& targets,
                      std::vector<double>& excess) {
  double max_dev = 0.0;
  for (std::size_t q = 0; q < weight.size(); ++q) {
    excess[q] = weight[q] - targets[q];
    max_dev = std::max(max_dev, std::abs(excess[q]));
  }
  return max_dev;
}

}  // namespace

BalanceResult balance_load(const graph::Graph& g,
                           graph::Partitioning& partitioning,
                           const BalanceOptions& options) {
  // One O(V+E) rescan to seed the maintained state (it also validates),
  // then the single state-driven driver below.
  graph::PartitionState state(g, partitioning);
  return balance_load(g, partitioning, state, options);
}

BalanceResult balance_load(const graph::Graph& g,
                           graph::Partitioning& partitioning,
                           graph::PartitionState& state,
                           const BalanceOptions& options, Workspace* ws) {
  BalanceResult result;
  const auto parts = static_cast<std::size_t>(partitioning.num_parts);
  std::vector<double> local_targets;
  std::vector<double> local_excess;
  std::vector<double>& targets = ws ? ws->balance_targets : local_targets;
  std::vector<double>& excess = ws ? ws->balance_excess : local_excess;
  graph::balance_targets_into(g.total_vertex_weight(), partitioning.num_parts,
                              targets);
  excess.assign(parts, 0.0);
  // Bound on first use: an already-balanced call (the common case on a
  // well-behaved stream) never pays any per-vertex array setup.  With a
  // workspace the layering is the session-persistent one — its bind() is
  // O(1) at steady state; without one, a call-local instance.
  std::optional<BoundaryLayering> layering_storage;

  for (int stage = 0; stage < options.max_stages; ++stage) {
    // Current excess per partition from the maintained weights — O(P).
    result.final_max_deviation =
        compute_excess(state.weights(), targets, excess);
    if (result.final_max_deviation <= options.tolerance) {
      result.balanced = true;
      return result;
    }
    if (ws == nullptr && !layering_storage) {
      layering_storage.emplace(g, partitioning);
    }
    BoundaryLayering& layering = ws ? ws->layering : *layering_storage;
    if (ws != nullptr && stage == 0) ws->layering.bind(g, partitioning);

    // Boundary-seeded layering, depth-capped with lazy deepening: a mildly
    // imbalanced stream labels a thin shell and stops as soon as the
    // one-shot (α = 1) LP fits in it.  A relaxed α is only ever accepted
    // at exhaustion — where the capacities equal the batch layering's — so
    // the α this stage settles on is always exactly the α the batch
    // pipeline would have picked, and the best-effort fallback likewise
    // runs only on batch-equivalent capacities.
    layering.reseed(state, options.num_threads);
    const int cap = options.max_layers;
    int depth_budget = cap == 0 ? -1 : cap;
    layering.grow(depth_budget, options.num_threads);
    int grow_step = cap;
    // Before exhaustion only an α = 1 result can be accepted, so don't
    // waste α ≥ 2 LP solves on shells that would be deepened anyway.
    BalanceOptions one_shot = options;
    one_shot.alpha_max = 1.0;
    StageDecision decision;
    while (true) {
      const bool full = layering.exhausted();
      decision = decide_stage_moves_alpha(layering.eps(), excess,
                                          full ? options : one_shot);
      if (full || decision.lp_feasible) break;
      layering.grow(grow_step, options.num_threads);
      depth_budget += grow_step;
      grow_step *= 2;  // double the total depth per retry
    }
    if (!decision.lp_feasible) {
      decision = best_effort_stage_moves(layering.eps(), excess, options);
    }
    decision.stats.layer_depth = layering.exhausted() ? -1 : depth_budget;

    if (!decision.progress) {
      // Nothing can move at all (e.g. a partition with no boundary);
      // report imbalance to the caller, who may fall back to
      // repartitioning from scratch (§2.3).
      return result;
    }
    result.stages.push_back(decision.stats);
    apply_balance_transfers(g, partitioning, layering, decision.moves,
                            state);
  }

  // Stage budget exhausted; report the residual deviation — O(P).
  result.final_max_deviation =
      compute_excess(state.weights(), targets, excess);
  result.balanced = result.final_max_deviation <= options.tolerance;
  return result;
}

}  // namespace pigp::core
