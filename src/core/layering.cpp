#include "core/layering.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "support/check.hpp"

namespace pigp::core {
namespace {

/// Deterministic integer mixer (murmur3 finalizer).  Raw vertex ids are
/// heavily correlated with mesh structure (e.g. a grid column shares its id
/// parity), so ties must be spread by a hash, not by the id itself.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Pick the label with the largest tally; the paper breaks ties
/// "arbitrarily" — we spread tied vertices across the tied partitions by
/// hashed vertex id, which is deterministic but avoids piling all tied
/// capacity onto one partition (that can make the balance LP structurally
/// infeasible, e.g. on striped partitionings).
graph::PartId majority_label(const std::vector<double>& tally,
                             graph::VertexId v) {
  double best = 0.0;
  for (const double t : tally) best = std::max(best, t);
  if (best <= 0.0) return -1;
  int tied_count = 0;
  graph::PartId only = -1;
  for (std::size_t q = 0; q < tally.size(); ++q) {
    if (tally[q] == best) {
      only = static_cast<graph::PartId>(q);
      ++tied_count;
    }
  }
  if (tied_count == 1) return only;
  const int pick = static_cast<int>(
      mix(static_cast<std::uint64_t>(v)) %
      static_cast<std::uint64_t>(tied_count));
  int seen = 0;
  for (std::size_t q = 0; q < tally.size(); ++q) {
    if (tally[q] == best) {
      if (seen == pick) return static_cast<graph::PartId>(q);
      ++seen;
    }
  }
  return only;
}

/// Expand partition \p target's BFS one level past \p frontier (whose
/// vertices sit at \p level): discover, sort, and label the next layer
/// into \p out (also recorded in label/layer/eps_row).  The shared level
/// step of the batch and resumable layerings — their bit-identical results
/// come from sharing this code.
void advance_one_level(const graph::Graph& g, const graph::Partitioning& p,
                       graph::PartId target,
                       const std::vector<graph::VertexId>& frontier,
                       std::int32_t level,
                       std::vector<graph::PartId>& label,
                       std::vector<std::int32_t>& layer,
                       std::int64_t* eps_row, std::vector<double>& tally,
                       std::vector<graph::VertexId>& out) {
  out.clear();
  for (const graph::VertexId u : frontier) {
    for (const graph::VertexId w : g.neighbors(u)) {
      if (p.part[static_cast<std::size_t>(w)] != target) continue;
      if (layer[static_cast<std::size_t>(w)] >= 0) continue;  // seen
      layer[static_cast<std::size_t>(w)] = level + 1;  // enqueue marker
      out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  for (const graph::VertexId w : out) {
    std::fill(tally.begin(), tally.end(), 0.0);
    const auto nbrs = g.neighbors(w);
    const auto weights = g.incident_edge_weights(w);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId u = nbrs[i];
      if (p.part[static_cast<std::size_t>(u)] == target &&
          layer[static_cast<std::size_t>(u)] == level &&
          label[static_cast<std::size_t>(u)] >= 0) {
        // label == -1 (a vertex whose edges into the boundary all have
        // weight zero) carries no label to propagate.
        tally[static_cast<std::size_t>(
            label[static_cast<std::size_t>(u)])] += weights[i];
      }
    }
    const graph::PartId best = majority_label(tally, w);
    // best == -1 is only reachable when every edge into the previous
    // layer has weight zero; such a vertex stays unlabeled (and counts
    // toward no eps entry), exactly like the batch member sweep did.
    label[static_cast<std::size_t>(w)] = best;  // layer set at enqueue
    if (eps_row != nullptr && best >= 0) {
      ++eps_row[static_cast<std::size_t>(best)];
    }
  }
}

/// Label \p v as a layer-0 seed of \p target: closest outside partition by
/// edge weight.  Returns false when v has no external edge at all.
bool seed_vertex(const graph::Graph& g, const graph::Partitioning& p,
                 graph::PartId target, graph::VertexId v,
                 std::vector<double>& tally,
                 std::vector<graph::PartId>& label,
                 std::vector<std::int32_t>& layer, std::int64_t* eps_row) {
  std::fill(tally.begin(), tally.end(), 0.0);
  const auto nbrs = g.neighbors(v);
  const auto weights = g.incident_edge_weights(v);
  bool boundary = false;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const graph::PartId q = p.part[static_cast<std::size_t>(nbrs[i])];
    if (q != target) {
      tally[static_cast<std::size_t>(q)] += weights[i];
      boundary = true;
    }
  }
  if (!boundary) return false;
  const graph::PartId best = majority_label(tally, v);
  label[static_cast<std::size_t>(v)] = best;
  layer[static_cast<std::size_t>(v)] = 0;
  if (eps_row != nullptr && best >= 0) {
    ++eps_row[static_cast<std::size_t>(best)];
  }
  return true;
}

int scratch_slot(bool parallel) {
#ifdef _OPENMP
  return parallel ? omp_get_thread_num() : 0;
#else
  (void)parallel;
  return 0;
#endif
}

}  // namespace

std::vector<std::vector<graph::VertexId>> partition_members(
    const graph::Partitioning& p) {
  std::vector<std::vector<graph::VertexId>> members(
      static_cast<std::size_t>(p.num_parts));
  for (std::size_t v = 0; v < p.part.size(); ++v) {
    members[static_cast<std::size_t>(p.part[v])].push_back(
        static_cast<graph::VertexId>(v));
  }
  return members;
}

void layer_one_partition(const graph::Graph& g, const graph::Partitioning& p,
                         graph::PartId target,
                         const std::vector<graph::VertexId>& members,
                         std::vector<graph::PartId>& label,
                         std::vector<std::int32_t>& layer,
                         std::int64_t* eps_row, LayerScratch& scratch) {
  scratch.tally.assign(static_cast<std::size_t>(p.num_parts), 0.0);
  scratch.frontier.clear();

  // Seed layer 0: boundary vertices labeled with the outside partition they
  // share the largest edge weight with.  eps is tallied per labeled vertex
  // (identical to a final member sweep — integer counts are order-free).
  for (const graph::VertexId v : members) {
    if (seed_vertex(g, p, target, v, scratch.tally, label, layer, eps_row)) {
      scratch.frontier.push_back(v);
    }
  }

  // Grow layers inward.  Each candidate adopts the label carried by the
  // largest edge weight into the previous layer.
  std::int32_t level = 0;
  while (!scratch.frontier.empty()) {
    advance_one_level(g, p, target, scratch.frontier, level, label, layer,
                      eps_row, scratch.tally, scratch.next);
    scratch.frontier.swap(scratch.next);
    ++level;
  }
}

void layer_one_partition(const graph::Graph& g, const graph::Partitioning& p,
                         graph::PartId target,
                         const std::vector<graph::VertexId>& members,
                         std::vector<graph::PartId>& label,
                         std::vector<std::int32_t>& layer,
                         std::int64_t* eps_row) {
  LayerScratch scratch;
  layer_one_partition(g, p, target, members, label, layer, eps_row, scratch);
}

LayeringResult layer_partitions(const graph::Graph& g,
                                const graph::Partitioning& p,
                                int num_threads) {
  p.validate(g);
  LayeringResult result;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  result.label.assign(n, -1);
  result.layer.assign(n, -1);
  result.eps = pigp::DenseMatrix<std::int64_t>(
      static_cast<std::size_t>(p.num_parts),
      static_cast<std::size_t>(p.num_parts), 0);

  const auto members = partition_members(p);
  const bool parallel = num_threads > 1 && p.num_parts > 1;
  std::vector<LayerScratch> scratch(
      static_cast<std::size_t>(std::max(1, parallel ? num_threads : 1)));
#pragma omp parallel num_threads(num_threads) if (parallel)
  {
    const auto tid = static_cast<std::size_t>(scratch_slot(parallel));
#pragma omp for schedule(dynamic, 1)
    for (graph::PartId q = 0; q < p.num_parts; ++q) {
      // Partitions are vertex-disjoint, so the shared label/layer/eps
      // arrays are written without races.
      layer_one_partition(g, p, q, members[static_cast<std::size_t>(q)],
                          result.label, result.layer,
                          result.eps.row(static_cast<std::size_t>(q)).data(),
                          scratch[tid]);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// BoundaryLayering

BoundaryLayering::BoundaryLayering(const graph::Graph& g,
                                   const graph::Partitioning& p) {
  bind(g, p);
}

void BoundaryLayering::bind(const graph::Graph& g,
                            const graph::Partitioning& p) {
  g_ = &g;
  p_ = &p;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto parts = static_cast<std::size_t>(p.num_parts);
  if (dirty_ || label_.size() > n || eps_.rows() != parts) {
    // Remapped ids / shrunk graph / changed part count / fresh or
    // taken-from object: the labeled lists can no longer undo the previous
    // stage, so reset everything once.  (This path is only reached after
    // a delta with removals — itself an O(V) operation — or on first use.)
    label_.assign(n, -1);
    layer_.assign(n, -1);
    eps_ = pigp::DenseMatrix<std::int64_t>(parts, parts, 0);
    frontier_.assign(parts, {});
    labeled_.assign(parts, {});
    depth_.assign(parts, 0);
    seeded_.clear();
    dirty_ = false;
  } else if (label_.size() < n) {
    // Appended vertices: grow with unlabeled tails (amortized, and only
    // when the graph actually grew).  Existing entries still match the
    // labeled lists, so the O(labeled) reseed undo stays valid.
    label_.resize(n, -1);
    layer_.resize(n, -1);
  }
}

void BoundaryLayering::begin_stage(
    const std::vector<graph::PartId>* owned_parts) {
  PIGP_CHECK(label_.size() ==
                 static_cast<std::size_t>(g_->num_vertices()),
             "BoundaryLayering reused after take_result()");
  // Undo the previous stage in O(labeled), not O(V).
  for (const graph::PartId q : seeded_) {
    const auto qi = static_cast<std::size_t>(q);
    for (const graph::VertexId v : labeled_[qi]) {
      label_[static_cast<std::size_t>(v)] = -1;
      layer_[static_cast<std::size_t>(v)] = -1;
    }
    labeled_[qi].clear();
    frontier_[qi].clear();
    depth_[qi] = 0;
  }
  eps_.fill(0);

  if (owned_parts != nullptr) {
    seeded_ = *owned_parts;
  } else {
    seeded_.resize(static_cast<std::size_t>(p_->num_parts));
    for (graph::PartId q = 0; q < p_->num_parts; ++q) {
      seeded_[static_cast<std::size_t>(q)] = q;
    }
  }
}

void BoundaryLayering::reseed(const graph::PartitionState& state,
                              int num_threads,
                              const std::vector<graph::PartId>* owned_parts) {
  begin_stage(owned_parts);

  const bool parallel = num_threads > 1 && seeded_.size() > 1;
  scratch_.resize(static_cast<std::size_t>(
      std::max(1, parallel ? num_threads : 1)));
#pragma omp parallel num_threads(num_threads) if (parallel)
  {
    const auto tid = static_cast<std::size_t>(scratch_slot(parallel));
    LayerScratch& scratch = scratch_[tid];
#pragma omp for schedule(dynamic, 1)
    for (std::size_t k = 0; k < seeded_.size(); ++k) {
      const graph::PartId q = seeded_[k];
      const auto qi = static_cast<std::size_t>(q);
      scratch.tally.assign(static_cast<std::size_t>(p_->num_parts), 0.0);
      // Bucket order is unspecified (swap-remove); sort so seeds match the
      // batch member scan and stay deterministic.
      auto& seeds = labeled_[qi];
      seeds.assign(state.boundary_vertices(q).begin(),
                   state.boundary_vertices(q).end());
      std::sort(seeds.begin(), seeds.end());
      for (const graph::VertexId v : seeds) {
        const bool boundary =
            seed_vertex(*g_, *p_, q, v, scratch.tally, label_, layer_,
                        eps_.row(qi).data());
        PIGP_ASSERT(boundary);  // the index only holds boundary vertices
        (void)boundary;
      }
      frontier_[qi] = seeds;
    }
  }
}

void BoundaryLayering::reseed_from_buckets(
    const std::vector<std::vector<graph::VertexId>>& buckets,
    const std::vector<graph::PartId>& owned_parts, int num_threads) {
  PIGP_CHECK(buckets.size() == owned_parts.size(),
             "one boundary bucket per owned partition");
  begin_stage(&owned_parts);

  const bool parallel = num_threads > 1 && seeded_.size() > 1;
  scratch_.resize(static_cast<std::size_t>(
      std::max(1, parallel ? num_threads : 1)));
#pragma omp parallel num_threads(num_threads) if (parallel)
  {
    const auto tid = static_cast<std::size_t>(scratch_slot(parallel));
    LayerScratch& scratch = scratch_[tid];
#pragma omp for schedule(dynamic, 1)
    for (std::size_t k = 0; k < seeded_.size(); ++k) {
      const graph::PartId q = seeded_[k];
      const auto qi = static_cast<std::size_t>(q);
      scratch.tally.assign(static_cast<std::size_t>(p_->num_parts), 0.0);
      scratch.next = buckets[k];
      std::sort(scratch.next.begin(), scratch.next.end());
      auto& seeds = labeled_[qi];
      seeds.clear();
      for (const graph::VertexId v : scratch.next) {
        // Unlike the PartitionState index, caller buckets may overstate
        // the boundary; skip anything that turns out interior.
        if (seed_vertex(*g_, *p_, q, v, scratch.tally, label_, layer_,
                        eps_.row(qi).data())) {
          seeds.push_back(v);
        }
      }
      frontier_[qi] = seeds;
    }
  }
}

void BoundaryLayering::release() {
  std::vector<graph::PartId>().swap(label_);
  std::vector<std::int32_t>().swap(layer_);
  eps_ = pigp::DenseMatrix<std::int64_t>();
  std::vector<std::vector<graph::VertexId>>().swap(frontier_);
  std::vector<std::vector<graph::VertexId>>().swap(labeled_);
  std::vector<std::int32_t>().swap(depth_);
  std::vector<graph::PartId>().swap(seeded_);
  std::vector<LayerScratch>().swap(scratch_);
  dirty_ = true;
}

void BoundaryLayering::grow(int levels, int num_threads) {
  if (levels == 0) return;
  const bool parallel = num_threads > 1 && seeded_.size() > 1;
  scratch_.resize(static_cast<std::size_t>(
      std::max(1, parallel ? num_threads : 1)));
#pragma omp parallel num_threads(num_threads) if (parallel)
  {
    const auto tid = static_cast<std::size_t>(scratch_slot(parallel));
    LayerScratch& scratch = scratch_[tid];
#pragma omp for schedule(dynamic, 1)
    for (std::size_t k = 0; k < seeded_.size(); ++k) {
      const graph::PartId q = seeded_[k];
      const auto qi = static_cast<std::size_t>(q);
      scratch.tally.assign(static_cast<std::size_t>(p_->num_parts), 0.0);
      int remaining = levels;
      while (!frontier_[qi].empty() && remaining != 0) {
        advance_one_level(*g_, *p_, q, frontier_[qi], depth_[qi], label_,
                          layer_, eps_.row(qi).data(), scratch.tally,
                          scratch.next);
        labeled_[qi].insert(labeled_[qi].end(), scratch.next.begin(),
                            scratch.next.end());
        frontier_[qi].swap(scratch.next);
        ++depth_[qi];
        if (remaining > 0) --remaining;
      }
    }
  }
}

bool BoundaryLayering::exhausted() const {
  for (const graph::PartId q : seeded_) {
    if (!frontier_[static_cast<std::size_t>(q)].empty()) return false;
  }
  return true;
}

LayeringResult BoundaryLayering::take_result() {
  LayeringResult result;
  result.label = std::move(label_);
  result.layer = std::move(layer_);
  result.eps = std::move(eps_);
  seeded_.clear();
  // The moved-from eps_ may keep its shape (only the storage moved), which
  // bind()'s cheap checks cannot distinguish from a live matrix — force
  // the next bind() onto the full-reset path.
  dirty_ = true;
  return result;
}

LayeringResult layer_partitions_from(const graph::Graph& g,
                                     const graph::Partitioning& p,
                                     const graph::PartitionState& state,
                                     int num_threads) {
  BoundaryLayering layering(g, p);
  layering.reseed(state, num_threads);
  layering.grow(-1, num_threads);
  return layering.take_result();
}

}  // namespace pigp::core
