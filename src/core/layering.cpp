#include "core/layering.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pigp::core {
namespace {

/// Deterministic integer mixer (murmur3 finalizer).  Raw vertex ids are
/// heavily correlated with mesh structure (e.g. a grid column shares its id
/// parity), so ties must be spread by a hash, not by the id itself.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Pick the label with the largest tally; the paper breaks ties
/// "arbitrarily" — we spread tied vertices across the tied partitions by
/// hashed vertex id, which is deterministic but avoids piling all tied
/// capacity onto one partition (that can make the balance LP structurally
/// infeasible, e.g. on striped partitionings).
graph::PartId majority_label(const std::vector<double>& tally,
                             graph::VertexId v) {
  double best = 0.0;
  for (const double t : tally) best = std::max(best, t);
  if (best <= 0.0) return -1;
  int tied_count = 0;
  graph::PartId only = -1;
  for (std::size_t q = 0; q < tally.size(); ++q) {
    if (tally[q] == best) {
      only = static_cast<graph::PartId>(q);
      ++tied_count;
    }
  }
  if (tied_count == 1) return only;
  const int pick = static_cast<int>(
      mix(static_cast<std::uint64_t>(v)) %
      static_cast<std::uint64_t>(tied_count));
  int seen = 0;
  for (std::size_t q = 0; q < tally.size(); ++q) {
    if (tally[q] == best) {
      if (seen == pick) return static_cast<graph::PartId>(q);
      ++seen;
    }
  }
  return only;
}

}  // namespace

std::vector<std::vector<graph::VertexId>> partition_members(
    const graph::Partitioning& p) {
  std::vector<std::vector<graph::VertexId>> members(
      static_cast<std::size_t>(p.num_parts));
  for (std::size_t v = 0; v < p.part.size(); ++v) {
    members[static_cast<std::size_t>(p.part[v])].push_back(
        static_cast<graph::VertexId>(v));
  }
  return members;
}

void layer_one_partition(const graph::Graph& g, const graph::Partitioning& p,
                         graph::PartId target,
                         const std::vector<graph::VertexId>& members,
                         std::vector<graph::PartId>& label,
                         std::vector<std::int32_t>& layer,
                         std::int64_t* eps_row) {
  const auto num_parts = static_cast<std::size_t>(p.num_parts);
  std::vector<double> tally(num_parts, 0.0);

  // Seed layer 0: boundary vertices labeled with the outside partition they
  // share the largest edge weight with (ties -> smallest partition id).
  std::vector<graph::VertexId> frontier;
  for (const graph::VertexId v : members) {
    std::fill(tally.begin(), tally.end(), 0.0);
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    bool boundary = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::PartId q = p.part[static_cast<std::size_t>(nbrs[i])];
      if (q != target) {
        tally[static_cast<std::size_t>(q)] += weights[i];
        boundary = true;
      }
    }
    if (!boundary) continue;
    label[static_cast<std::size_t>(v)] = majority_label(tally, v);
    layer[static_cast<std::size_t>(v)] = 0;
    frontier.push_back(v);
  }

  // Grow layers inward.  Each candidate adopts the label carried by the
  // largest edge weight into the previous layer (ties -> smallest label).
  std::int32_t level = 0;
  std::vector<graph::VertexId> next;
  while (!frontier.empty()) {
    next.clear();
    for (const graph::VertexId u : frontier) {
      for (const graph::VertexId w : g.neighbors(u)) {
        if (p.part[static_cast<std::size_t>(w)] != target) continue;
        if (layer[static_cast<std::size_t>(w)] >= 0) continue;  // seen
        layer[static_cast<std::size_t>(w)] = level + 1;  // enqueue marker
        next.push_back(w);
      }
    }
    std::sort(next.begin(), next.end());
    for (const graph::VertexId w : next) {
      std::fill(tally.begin(), tally.end(), 0.0);
      const auto nbrs = g.neighbors(w);
      const auto weights = g.incident_edge_weights(w);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const graph::VertexId u = nbrs[i];
        if (p.part[static_cast<std::size_t>(u)] == target &&
            layer[static_cast<std::size_t>(u)] == level) {
          tally[static_cast<std::size_t>(
              label[static_cast<std::size_t>(u)])] += weights[i];
        }
      }
      const graph::PartId best = majority_label(tally, w);
      PIGP_ASSERT(best >= 0);
      label[static_cast<std::size_t>(w)] = best;  // layer set at enqueue
    }
    frontier = next;
    ++level;
  }

  if (eps_row != nullptr) {
    for (const graph::VertexId v : members) {
      const graph::PartId l = label[static_cast<std::size_t>(v)];
      if (l >= 0) ++eps_row[static_cast<std::size_t>(l)];
    }
  }
}

LayeringResult layer_partitions(const graph::Graph& g,
                                const graph::Partitioning& p,
                                int num_threads) {
  p.validate(g);
  LayeringResult result;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  result.label.assign(n, -1);
  result.layer.assign(n, -1);
  result.eps = pigp::DenseMatrix<std::int64_t>(
      static_cast<std::size_t>(p.num_parts),
      static_cast<std::size_t>(p.num_parts), 0);

  const auto members = partition_members(p);
  const bool parallel = num_threads > 1 && p.num_parts > 1;
#pragma omp parallel for schedule(dynamic, 1) if (parallel) \
    num_threads(num_threads)
  for (graph::PartId q = 0; q < p.num_parts; ++q) {
    // Partitions are vertex-disjoint, so the shared label/layer/eps arrays
    // are written without races.
    layer_one_partition(g, p, q, members[static_cast<std::size_t>(q)],
                        result.label, result.layer,
                        result.eps.row(static_cast<std::size_t>(q)).data());
  }
  return result;
}

}  // namespace pigp::core
