#pragma once

/// \file multilevel.hpp
/// Multilevel incremental partitioning — the extension the paper names as
/// work in progress (§3: "Another option is to use a multilevel approach
/// and apply incremental partitioning recursively.  We are currently
/// exploring this approach.").
///
/// The cost of the flat algorithm is dominated by the simplex solve and the
/// per-partition BFS over all vertices.  The multilevel variant coarsens
/// the graph by heavy-edge matching, runs the balance stage on the coarse
/// graph (same LP, far fewer vertices to layer and transfer), then projects
/// the assignment back level by level, polishing each level with the LP
/// refinement pass and finishing with an exact fine-level balance.

#include <vector>

#include "core/igp.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::core {

/// One coarsening step: the coarse graph plus the fine-to-coarse map.
struct Coarsening {
  graph::Graph coarse;
  /// fine vertex -> coarse vertex (surjective onto [0, coarse.n)).
  std::vector<graph::VertexId> fine_to_coarse;
};

/// Heavy-edge-matching coarsening: greedily match each unmatched vertex
/// with its heaviest-edge unmatched neighbor (ties to the smaller id);
/// matched pairs merge into one coarse vertex with summed weight, parallel
/// edges aggregate their weights.  Deterministic.
[[nodiscard]] Coarsening coarsen_heavy_edge(const graph::Graph& g);

/// Project a fine partitioning to the coarse graph: each coarse vertex
/// takes the assignment of its (weight-)dominant fine constituent.
[[nodiscard]] graph::Partitioning project_to_coarse(
    const Coarsening& c, const graph::Partitioning& fine);

/// Project a coarse partitioning back to the fine graph.
[[nodiscard]] graph::Partitioning project_to_fine(
    const Coarsening& c, const graph::Partitioning& coarse,
    graph::VertexId fine_vertices);

struct MultilevelOptions {
  IgpOptions igp;                ///< options for the per-level passes
  int coarsest_size = 2000;      ///< stop coarsening below this many vertices
  int max_levels = 6;
};

/// Multilevel IGP/IGPR: step-1 assignment on the fine graph, V-cycle of
/// coarsen → balance-at-coarsest → project+refine → exact fine balance.
[[nodiscard]] IgpResult multilevel_repartition(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, const MultilevelOptions& options = {});

}  // namespace pigp::core
