#include "core/transfer.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pigp::core {

std::vector<std::vector<graph::VertexId>> select_partition_transfers(
    const graph::Graph& g, const graph::Partitioning& partitioning,
    const std::vector<graph::PartId>& label,
    const std::vector<std::int32_t>& layer,
    const std::vector<graph::VertexId>& members, graph::PartId source,
    const std::int64_t* move_row) {
  const auto parts = static_cast<std::size_t>(partitioning.num_parts);
  std::vector<std::vector<graph::VertexId>> chosen(parts);

  // Bucket this partition's movable vertices by destination label.
  std::vector<std::vector<graph::VertexId>> buckets(parts);
  for (const graph::VertexId v : members) {
    const graph::PartId to = label[static_cast<std::size_t>(v)];
    if (to >= 0 && move_row[static_cast<std::size_t>(to)] > 0) {
      buckets[static_cast<std::size_t>(to)].push_back(v);
    }
  }

  for (std::size_t j = 0; j < parts; ++j) {
    const std::int64_t count = move_row[j];
    if (count <= 0) continue;
    auto& bucket = buckets[j];
    PIGP_CHECK(static_cast<std::int64_t>(bucket.size()) >= count,
               "LP requested more transfers than labeled vertices");

    // Attraction to the destination: edge weight into j minus half the edge
    // weight kept inside the source — within a layer, peel the vertices
    // that most belong to the receiving boundary.
    std::vector<double> attraction(bucket.size(), 0.0);
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      const graph::VertexId v = bucket[k];
      const auto nbrs = g.neighbors(v);
      const auto weights = g.incident_edge_weights(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const graph::PartId q =
            partitioning.part[static_cast<std::size_t>(nbrs[e])];
        if (q == static_cast<graph::PartId>(j)) {
          attraction[k] += weights[e];
        } else if (q == source) {
          attraction[k] -= 0.5 * weights[e];
        }
      }
    }
    std::vector<std::size_t> order(bucket.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto la = layer[static_cast<std::size_t>(bucket[a])];
      const auto lb = layer[static_cast<std::size_t>(bucket[b])];
      if (la != lb) return la < lb;
      if (attraction[a] != attraction[b]) return attraction[a] > attraction[b];
      return bucket[a] < bucket[b];
    });
    chosen[j].reserve(static_cast<std::size_t>(count));
    for (std::int64_t k = 0; k < count; ++k) {
      chosen[j].push_back(bucket[order[static_cast<std::size_t>(k)]]);
    }
  }
  return chosen;
}

void apply_balance_transfers(const graph::Graph& g,
                             graph::Partitioning& partitioning,
                             const LayeringResult& layering,
                             const pigp::DenseMatrix<std::int64_t>& moves) {
  const auto parts = static_cast<std::size_t>(partitioning.num_parts);
  PIGP_CHECK(moves.rows() == parts && moves.cols() == parts,
             "move matrix shape mismatch");

  const auto members = partition_members(partitioning);
  // Select everything first against the pre-move state, then write.
  std::vector<std::vector<std::vector<graph::VertexId>>> selections(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    selections[i] = select_partition_transfers(
        g, partitioning, layering.label, layering.layer, members[i],
        static_cast<graph::PartId>(i), moves.row(i).data());
  }
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      for (const graph::VertexId v : selections[i][j]) {
        partitioning.part[static_cast<std::size_t>(v)] =
            static_cast<graph::PartId>(j);
      }
    }
  }
}

void apply_balance_transfers(const graph::Graph& g,
                             graph::Partitioning& partitioning,
                             const BoundaryLayering& layering,
                             const pigp::DenseMatrix<std::int64_t>& moves,
                             graph::PartitionState& state) {
  const auto parts = static_cast<std::size_t>(partitioning.num_parts);
  PIGP_CHECK(moves.rows() == parts && moves.cols() == parts,
             "move matrix shape mismatch");

  // Select everything first against the pre-move state, then write.  Only
  // labeled vertices can be selected, so the labeled lists stand in for
  // the full member lists of the batch variant.
  std::vector<std::vector<std::vector<graph::VertexId>>> selections(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    selections[i] = select_partition_transfers(
        g, partitioning, layering.label(), layering.layer(),
        layering.labeled(static_cast<graph::PartId>(i)),
        static_cast<graph::PartId>(i), moves.row(i).data());
  }
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      for (const graph::VertexId v : selections[i][j]) {
        state.move_vertex(g, partitioning, v,
                          static_cast<graph::PartId>(j));
      }
    }
  }
}

void apply_gain_transfers(
    const graph::Graph& g, graph::Partitioning& partitioning,
    const pigp::DenseMatrix<std::vector<GainCandidate>>& candidates,
    const pigp::DenseMatrix<std::int64_t>& moves,
    graph::PartitionState& state,
    std::vector<std::pair<graph::VertexId, graph::PartId>>* journal) {
  const auto parts = static_cast<std::size_t>(partitioning.num_parts);
  PIGP_CHECK(moves.rows() == parts && moves.cols() == parts,
             "move matrix shape mismatch");
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      const std::int64_t count = moves(i, j);
      if (count <= 0) continue;
      std::vector<GainCandidate> list = candidates(i, j);
      PIGP_CHECK(static_cast<std::int64_t>(list.size()) >= count,
                 "LP requested more transfers than candidates");
      std::sort(list.begin(), list.end(),
                [](const GainCandidate& a, const GainCandidate& b) {
                  if (a.gain != b.gain) return a.gain > b.gain;
                  return a.vertex < b.vertex;
                });
      for (std::int64_t k = 0; k < count; ++k) {
        const graph::VertexId v = list[static_cast<std::size_t>(k)].vertex;
        if (journal != nullptr) {
          journal->emplace_back(
              v, partitioning.part[static_cast<std::size_t>(v)]);
        }
        state.move_vertex(g, partitioning, v, static_cast<graph::PartId>(j));
      }
    }
  }
}

}  // namespace pigp::core
