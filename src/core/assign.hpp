#pragma once

/// \file assign.hpp
/// Step 1 of the incremental partitioner (Ou & Ranka §2.1): give every new
/// vertex the partition of its nearest old vertex.
///
/// M'(v) = M(x) where x minimizes d(v, x) over old vertices (eq. 7),
/// computed with one multi-source BFS from all old vertices at once — the
/// inherently parallel formulation the paper relies on.  New vertices in
/// components containing no old vertex are clustered and each cluster is
/// assigned to the least-loaded partition (§2.1's fallback strategy).

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::graph {
class PartitionState;
}  // namespace pigp::graph

namespace pigp::core {

struct Workspace;

struct AssignOptions {
  int num_threads = 1;
};

/// Extend \p old_partitioning (covering vertices [0, n_old) of \p g_new) to
/// all vertices of \p g_new.  Vertices below n_old keep their partitions.
[[nodiscard]] graph::Partitioning extend_assignment(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, const AssignOptions& options = {});

/// In-place, state-maintained variant of extend_assignment for the
/// streaming hot path: \p p covers [0, n_old) and grows to cover \p g_new,
/// every placement goes through \p state (move_vertex) so the aggregates
/// and the boundary index stay exact, and all per-vertex BFS storage comes
/// from \p ws (epoch-cleared — zero allocations once warm).
///
/// The BFS is seeded only with the old vertices adjacent to the appended
/// tail instead of all n_old of them.  Expansion can only ever enter
/// appended vertices (old ones have distance 0 in the full formulation),
/// and an appended vertex's old neighbors are seeds by construction, so
/// distances and the min-label tie-break — hence every placement — are
/// bit-identical to extend_assignment; tests/core/test_assign.cpp pins
/// the parity.  Cost: O(Σ deg(appended) + labeled shell), not O(V + E).
/// The orphan-cluster fallback (appended components with no old vertex)
/// is the one sub-path that may allocate.
void extend_assignment_state(const graph::Graph& g_new, graph::Partitioning& p,
                             graph::VertexId n_old,
                             graph::PartitionState& state, Workspace& ws,
                             const AssignOptions& options = {});

}  // namespace pigp::core
