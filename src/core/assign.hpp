#pragma once

/// \file assign.hpp
/// Step 1 of the incremental partitioner (Ou & Ranka §2.1): give every new
/// vertex the partition of its nearest old vertex.
///
/// M'(v) = M(x) where x minimizes d(v, x) over old vertices (eq. 7),
/// computed with one multi-source BFS from all old vertices at once — the
/// inherently parallel formulation the paper relies on.  New vertices in
/// components containing no old vertex are clustered and each cluster is
/// assigned to the least-loaded partition (§2.1's fallback strategy).

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::core {

struct AssignOptions {
  int num_threads = 1;
};

/// Extend \p old_partitioning (covering vertices [0, n_old) of \p g_new) to
/// all vertices of \p g_new.  Vertices below n_old keep their partitions.
[[nodiscard]] graph::Partitioning extend_assignment(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, const AssignOptions& options = {});

}  // namespace pigp::core
