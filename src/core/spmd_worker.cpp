#include "core/spmd_worker.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/balance.hpp"
#include "core/layering.hpp"
#include "core/transfer.hpp"
#include "support/check.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::core {
namespace {

using graph::PartId;
using graph::VertexId;
using net::Packet;

/// Full adjacency row received for a vertex migrating into one of our
/// owned partitions; folded into the CSR at the next stage boundary.
struct OverlayRow {
  std::vector<VertexId> nbrs;
  std::vector<double> weights;
};

/// Rebuild the shard CSR with the pending overlay rows swapped in.  The
/// Graph constructor does not validate symmetry — rows of vertices that
/// migrated *away* keep their stale full rows (harmless: the BFS and the
/// selection only ever read rows of current owned-partition members, and a
/// stale row equals the vertex's true full row anyway).
void fold_overlays(graph::GraphShard& shard,
                   std::unordered_map<VertexId, OverlayRow>& overlays) {
  const graph::Graph& g = shard.graph;
  const VertexId n = g.num_vertices();
  std::int64_t extra = 0;
  for (const auto& entry : overlays) {
    extra += static_cast<std::int64_t>(entry.second.nbrs.size());
  }
  std::vector<graph::EdgeIndex> xadj;
  xadj.reserve(static_cast<std::size_t>(n) + 1);
  xadj.push_back(0);
  std::vector<VertexId> adjncy;
  adjncy.reserve(static_cast<std::size_t>(g.num_half_edges() + extra));
  std::vector<double> eweights;
  eweights.reserve(adjncy.capacity());
  for (VertexId v = 0; v < n; ++v) {
    const auto it = overlays.find(v);
    if (it != overlays.end()) {
      const OverlayRow& row = it->second;
      shard.resident_half_edges +=
          static_cast<std::int64_t>(row.nbrs.size());
      shard.halo_half_edges -=
          static_cast<std::int64_t>(g.neighbors(v).size());
      adjncy.insert(adjncy.end(), row.nbrs.begin(), row.nbrs.end());
      eweights.insert(eweights.end(), row.weights.begin(),
                      row.weights.end());
    } else {
      const auto nbrs = g.neighbors(v);
      const auto ws = g.incident_edge_weights(v);
      adjncy.insert(adjncy.end(), nbrs.begin(), nbrs.end());
      eweights.insert(eweights.end(), ws.begin(), ws.end());
    }
    xadj.push_back(static_cast<graph::EdgeIndex>(adjncy.size()));
  }
  shard.graph = graph::Graph(std::move(xadj), std::move(adjncy),
                             g.vertex_weights(), std::move(eweights));
  overlays.clear();
}

}  // namespace

SpmdWorkerStats spmd_worker_rebalance(net::Transport& transport,
                                      graph::GraphShard& shard,
                                      const IgpOptions& options) {
  PIGP_CHECK(!options.refine,
             "spmd_worker_rebalance: the refinement pass needs the full "
             "graph and is not supported on sharded workers; set "
             "options.refine = false");
  PIGP_CHECK(shard.rank == transport.rank() &&
                 shard.num_ranks == transport.num_ranks(),
             "shard rank/num_ranks do not match the transport");
  graph::Partitioning& p = shard.partitioning;
  const auto parts = static_cast<std::size_t>(p.num_parts);
  const VertexId n = shard.graph.num_vertices();
  PIGP_CHECK(p.part.size() == static_cast<std::size_t>(n),
             "shard partitioning does not cover the graph");
  for (VertexId v = 0; v < n; ++v) {
    PIGP_CHECK(p.part[static_cast<std::size_t>(v)] >= 0 &&
                   p.part[static_cast<std::size_t>(v)] < p.num_parts,
               "spmd_worker_rebalance needs a fully assigned partitioning");
  }

  // Vertex weights are replicated, so every rank derives identical targets
  // (total_vertex_weight accumulates in vertex order, like the oracle's).
  const std::vector<double> targets = graph::balance_targets(
      shard.graph.total_vertex_weight(), p.num_parts);

  // Replicated partition weights, accumulated in vertex order — the exact
  // float-op order of PartitionState::rebuild, so excess values match the
  // in-process engine bit for bit.
  std::vector<double> W(parts, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    W[static_cast<std::size_t>(p.part[static_cast<std::size_t>(v)])] +=
        shard.graph.vertex_weight(v);
  }

  SpmdWorkerStats stats;
  const std::vector<PartId>& owned = shard.owned_parts;
  std::vector<int> owned_index(parts, -1);
  for (std::size_t k = 0; k < owned.size(); ++k) {
    owned_index[static_cast<std::size_t>(owned[k])] = static_cast<int>(k);
  }

  BoundaryLayering layering;
  std::vector<double> excess(parts, 0.0);
  std::vector<std::int64_t> moves_flat(parts * parts, 0);
  std::vector<std::int64_t> eps_rows;
  std::vector<std::vector<VertexId>> buckets(owned.size());
  std::unordered_map<VertexId, OverlayRow> overlays;
  bool graph_dirty = false;

  for (int stage = 0; stage < options.balance.max_stages; ++stage) {
    // Excess off the replicated weights — identical on every rank.
    double max_dev = 0.0;
    for (std::size_t q = 0; q < parts; ++q) {
      excess[q] = W[q] - targets[q];
      max_dev = std::max(max_dev, std::abs(excess[q]));
    }
    if (max_dev <= options.balance.tolerance) {
      stats.balanced = true;
      break;
    }

    // Fold last stage's migrated rows in before the BFS reads them, then
    // (re)bind — the graph object may have moved.
    if (graph_dirty) {
      fold_overlays(shard, overlays);
      graph_dirty = false;
    }
    layering.bind(shard.graph, p);

    // Seed layer 0 from a full scan for owned-partition boundary members.
    // The membership predicate (any neighbor in a different partition)
    // matches PartitionState's boundary index, and reseed_from_buckets
    // sorts candidates like reseed() sorts the state's buckets — so the
    // seeding is bit-identical to the in-process engine's.
    for (auto& bucket : buckets) bucket.clear();
    for (VertexId v = 0; v < n; ++v) {
      const PartId q = p.part[static_cast<std::size_t>(v)];
      const int k = owned_index[static_cast<std::size_t>(q)];
      if (k < 0) continue;
      PIGP_CHECK(shard.resident[static_cast<std::size_t>(v)] != 0,
                 "residency invariant broken: owned vertex without its "
                 "adjacency row");
      for (const VertexId w : shard.graph.neighbors(v)) {
        if (p.part[static_cast<std::size_t>(w)] != q) {
          buckets[static_cast<std::size_t>(k)].push_back(v);
          break;
        }
      }
    }
    layering.reseed_from_buckets(buckets, owned, 1);
    const int cap = options.balance.max_layers;
    int depth_budget = cap == 0 ? -1 : cap;
    layering.grow(depth_budget, 1);
    int grow_step = cap;

    // Deepen-vs-decide handshake — the exact protocol of run_spmd_engine:
    // allgather (exhausted flag, owned eps rows); rank 0 runs the α ladder
    // and broadcasts deepen or the move matrix.
    bool progress = false;
    while (true) {
      Packet mine;
      mine.pack(layering.exhausted() ? 1 : 0);
      eps_rows.assign(owned.size() * parts, 0);
      for (std::size_t k = 0; k < owned.size(); ++k) {
        const auto row =
            layering.eps().row(static_cast<std::size_t>(owned[k]));
        std::copy(row.begin(), row.end(), eps_rows.begin() + k * parts);
      }
      mine.pack_vector(eps_rows);
      const std::vector<Packet> gathered =
          transport.allgather(std::move(mine));

      int action = 0;  // 0 = moves ready, 1 = deepen
      Packet decision_packet;
      if (transport.rank() == 0) {
        bool all_exhausted = true;
        pigp::DenseMatrix<std::int64_t> eps(parts, parts, 0);
        for (int r = 0; r < transport.num_ranks(); ++r) {
          Packet pk = gathered[static_cast<std::size_t>(r)];
          const bool rank_exhausted = pk.unpack<int>() != 0;
          all_exhausted = all_exhausted && rank_exhausted;
          const std::vector<std::int64_t> rows =
              pk.unpack_vector<std::int64_t>();
          std::size_t k = 0;
          for (PartId q = 0; q < p.num_parts; ++q) {
            if (graph::shard_owner(q, transport.num_ranks()) != r) continue;
            for (std::size_t j = 0; j < parts; ++j) {
              eps(static_cast<std::size_t>(q), j) = rows[k * parts + j];
            }
            ++k;
          }
        }
        BalanceOptions ladder = options.balance;
        if (!all_exhausted) ladder.alpha_max = 1.0;
        StageDecision decision =
            decide_stage_moves_alpha(eps, excess, ladder);
        if (!all_exhausted && !decision.lp_feasible) {
          action = 1;
        } else if (!decision.lp_feasible) {
          decision = best_effort_stage_moves(eps, excess, options.balance);
        }
        decision_packet.pack(action);
        if (action == 0) {
          decision_packet.pack(decision.progress ? 1 : 0);
          for (std::size_t i = 0; i < parts; ++i) {
            for (std::size_t j = 0; j < parts; ++j) {
              moves_flat[i * parts + j] = decision.moves(i, j);
            }
          }
          decision_packet.pack_vector(moves_flat);
        }
      }
      Packet received = transport.broadcast(0, std::move(decision_packet));
      action = received.unpack<int>();
      if (action == 1) {
        layering.grow(grow_step, 1);
        depth_budget += grow_step;
        grow_step *= 2;
        continue;
      }
      progress = received.unpack<int>() != 0;
      if (progress) moves_flat = received.unpack_vector<std::int64_t>();
      break;
    }
    if (!progress) break;
    ++stats.stages;

    // Select the transfers out of our owned partitions (same ordering as
    // the oracle) and ship, per selected vertex, its full adjacency row so
    // the receiving owner can install it.
    Packet sel_packet;
    for (const PartId q : owned) {
      const auto selections = select_partition_transfers(
          shard.graph, p, layering.label(), layering.layer(),
          layering.labeled(q), q,
          moves_flat.data() + static_cast<std::size_t>(q) * parts);
      for (std::size_t j = 0; j < parts; ++j) {
        sel_packet.pack_vector(selections[j]);
        for (const VertexId v : selections[j]) {
          const auto nbrs = shard.graph.neighbors(v);
          const auto ws = shard.graph.incident_edge_weights(v);
          sel_packet.pack_vector(
              std::vector<VertexId>(nbrs.begin(), nbrs.end()));
          sel_packet.pack_vector(
              std::vector<double>(ws.begin(), ws.end()));
        }
      }
    }
    const std::vector<Packet> all_selections =
        transport.allgather(std::move(sel_packet));

    // Parse everyone's selections; stash rows for vertices entering our
    // owned partitions whose full row we lack (each vertex moves at most
    // once per stage, so the parse-time residency test is the apply-time
    // one).
    std::vector<std::vector<std::vector<VertexId>>> by_source(parts);
    for (int r = 0; r < transport.num_ranks(); ++r) {
      Packet pk = all_selections[static_cast<std::size_t>(r)];
      for (PartId q = 0; q < p.num_parts; ++q) {
        if (graph::shard_owner(q, transport.num_ranks()) != r) continue;
        auto& rows = by_source[static_cast<std::size_t>(q)];
        rows.resize(parts);
        for (std::size_t j = 0; j < parts; ++j) {
          rows[j] = pk.unpack_vector<VertexId>();
          for (const VertexId v : rows[j]) {
            OverlayRow row;
            row.nbrs = pk.unpack_vector<VertexId>();
            row.weights = pk.unpack_vector<double>();
            if (shard.owns(static_cast<PartId>(j)) &&
                shard.resident[static_cast<std::size_t>(v)] == 0) {
              shard.resident[static_cast<std::size_t>(v)] = 1;
              overlays[v] = std::move(row);
              graph_dirty = true;
              ++stats.rows_migrated;
            }
          }
        }
      }
    }

    // Every rank applies every move to its replica in the oracle's global
    // order (source asc, dest asc, selection order), with the exact
    // subtract-then-add float-op order of PartitionState::move_vertex —
    // replicated W and part stay bit-identical across ranks and to the
    // in-process engine.
    for (std::size_t i = 0; i < parts; ++i) {
      if (by_source[i].empty()) continue;
      for (std::size_t j = 0; j < parts; ++j) {
        for (const VertexId v : by_source[i][j]) {
          const PartId from = p.part[static_cast<std::size_t>(v)];
          if (from == static_cast<PartId>(j)) continue;
          const double vw = shard.graph.vertex_weight(v);
          W[static_cast<std::size_t>(from)] -= vw;
          W[j] += vw;
          p.part[static_cast<std::size_t>(v)] = static_cast<PartId>(j);
          ++stats.vertices_moved;
        }
      }
    }
    transport.barrier();  // stage complete everywhere before the next scan
  }

  if (!stats.balanced) {
    double max_dev = 0.0;
    for (std::size_t q = 0; q < parts; ++q) {
      max_dev = std::max(max_dev, std::abs(W[q] - targets[q]));
    }
    stats.final_max_deviation = max_dev;
    stats.balanced = max_dev <= options.balance.tolerance;
  }

  // Leave the shard consistent: fold any rows migrated in the last stage.
  if (graph_dirty) fold_overlays(shard, overlays);

  // Distributed weighted cut: each rank sums the directed cross edges of
  // its owned partitions' members (their rows are resident), the
  // rank-ordered allreduce makes the sum deterministic, and every
  // undirected cross edge was counted from both endpoints — halve it.
  double local_cut = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const PartId q = p.part[static_cast<std::size_t>(v)];
    if (!shard.owns(q)) continue;
    const auto nbrs = shard.graph.neighbors(v);
    const auto ws = shard.graph.incident_edge_weights(v);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (p.part[static_cast<std::size_t>(nbrs[e])] != q) {
        local_cut += ws[e];
      }
    }
  }
  stats.cut = transport.allreduce(
                  local_cut, [](double a, double b) { return a + b; }) /
              2.0;
  return stats;
}

}  // namespace pigp::core
