#pragma once

/// \file spmd_worker.hpp
/// The fully distributed SPMD worker: one process per rank, sharded graph.
///
/// core/spmd_igp runs the paper's protocol with the graph replicated and a
/// shared PartitionState — fine for threads, impossible across processes.
/// This engine runs the SAME per-stage protocol (boundary-seeded
/// depth-capped layering of owned partitions, allgathered ε capacities,
/// rank-0 α-ladder LP, broadcast deepen-vs-decide, per-rank selection)
/// against a graph::GraphShard: each rank holds full adjacency rows only
/// for vertices in its owned partitions (plus halo), the partition-id and
/// vertex-weight vectors are replicated, and every rank applies the
/// decided moves to its replica in the same global order so the replicas
/// never diverge.
///
/// When the balancer moves a vertex into a partition owned by another
/// rank, the selection message carries the vertex's full adjacency row and
/// the new owner installs it (a per-stage CSR rebuild folds the received
/// rows in), maintaining the residency invariant the next stage's BFS
/// needs: part[v] owned by r  ⟹  v's full row is resident on r.
///
/// Parity: with the same seed/config, the final partitioning is
/// bit-identical to spmd_repartition (and therefore to the shared-memory
/// driver) on the full graph — every floating-point accumulation follows
/// the same operand order (weights in vertex order, moves in (source asc,
/// dest asc, selection order) global order, reductions in rank order),
/// layering reads resident rows byte-identical to the full graph's, and
/// the LP runs on rank 0 from identical inputs.  tests/core/
/// test_spmd_worker pins this against the in-process oracle.
///
/// Scope: pure rebalancing of an existing assignment (the launcher's
/// steady-state job).  Vertex insertion (step 1) and the refinement pass
/// are global operations the sharded worker does not implement — the
/// engine checks and refuses rather than silently diverging.

#include <cstdint>

#include "core/igp.hpp"
#include "graph/shard.hpp"
#include "runtime/net/transport.hpp"

namespace pigp::core {

/// Per-rank outcome of a distributed rebalance; identical on every rank
/// except rows_migrated/resident counters, which are rank-local.
struct SpmdWorkerStats {
  bool balanced = false;
  int stages = 0;
  double final_max_deviation = 0.0;
  /// Weighted cut of the final partitioning (each cross edge once),
  /// computed distributed: every rank sums the directed boundary slots of
  /// its owned partitions, allreduced in rank order, halved.
  double cut = 0.0;
  std::int64_t vertices_moved = 0;
  /// Adjacency rows this rank installed for vertices migrated into its
  /// owned partitions.
  std::int64_t rows_migrated = 0;
};

/// Rebalance \p shard's partitioning across \p transport's ranks.  The
/// shard must be rank/num_ranks consistent with the transport, fully
/// assigned, and every rank must hold the same replicated partitioning.
/// On return shard.partitioning is the final (replica-identical)
/// assignment and shard.graph has any migrated rows folded in.
///
/// Throws pigp::CheckError when options request the refinement pass
/// (unsupported here — see the file comment); TransportError propagates
/// from the wire.
[[nodiscard]] SpmdWorkerStats spmd_worker_rebalance(net::Transport& transport,
                                                    graph::GraphShard& shard,
                                                    const IgpOptions& options);

}  // namespace pigp::core
