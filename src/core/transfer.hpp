#pragma once

/// \file transfer.hpp
/// Vertex selection for the LP-prescribed movements.
///
/// The LPs decide *how many* vertices move between each partition pair;
/// this module decides *which* ones.  Balance transfers take the vertices
/// closest to the receiving boundary (smallest layer number from Step 2),
/// preserving partition contiguity; refinement transfers take the highest
/// cut-gain candidates.

#include <cstdint>
#include <vector>

#include "core/layering.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::core {

/// Choose which vertices leave partition \p source, given the LP's
/// per-destination counts in \p move_row (length num_parts).  Selection
/// order: ascending layer (boundary first); within a layer, strongest
/// attraction to the destination (edge weight into it minus half the edge
/// weight kept at home); then vertex id.  Pure read-only — the SPMD driver
/// relies on separating selection (reads) from application (writes).
/// Returns the chosen vertices per destination partition.
[[nodiscard]] std::vector<std::vector<graph::VertexId>>
select_partition_transfers(const graph::Graph& g,
                           const graph::Partitioning& partitioning,
                           const std::vector<graph::PartId>& label,
                           const std::vector<std::int32_t>& layer,
                           const std::vector<graph::VertexId>& members,
                           graph::PartId source,
                           const std::int64_t* move_row);

/// Move moves(i, j) vertices from partition i to partition j using
/// select_partition_transfers.  Throws pigp::CheckError when a pair lacks
/// enough labeled vertices (the LP bounds guarantee this never happens with
/// a layering computed on the same partitioning).
void apply_balance_transfers(const graph::Graph& g,
                             graph::Partitioning& partitioning,
                             const LayeringResult& layering,
                             const pigp::DenseMatrix<std::int64_t>& moves);

/// Boundary-local variant: candidates come from the resumable layering's
/// labeled-vertex lists (O(labeled), not a full partition_members sweep)
/// and every move goes through \p state so the aggregates and the boundary
/// index stay exact.  Selection still reads only pre-move assignments —
/// all pairs are selected before the first write, like the batch variant.
void apply_balance_transfers(const graph::Graph& g,
                             graph::Partitioning& partitioning,
                             const BoundaryLayering& layering,
                             const pigp::DenseMatrix<std::int64_t>& moves,
                             graph::PartitionState& state);

/// One refinement candidate: vertex v (in partition i) with its cut gain
/// out(v, j) - in(v) for moving to partition j.
struct GainCandidate {
  graph::VertexId vertex = graph::kInvalidVertex;
  double gain = 0.0;
};

/// Move moves(i, j) vertices using the candidate lists produced by the
/// refinement analysis, best gain first (ties on vertex id), routed
/// through \p state so the cut is maintained incrementally in O(deg) per
/// moved vertex — the refinement loop reads the post-round cut from the
/// state instead of an O(V+E) recompute.  When \p journal is non-null,
/// every applied move is recorded as (vertex, previous partition) so the
/// caller can undo the batch in O(moved) — replay the journal in reverse
/// through state.move_vertex, then PartitionState::restore_aggregates —
/// instead of copying partitioning + state up front.
void apply_gain_transfers(
    const graph::Graph& g, graph::Partitioning& partitioning,
    const pigp::DenseMatrix<std::vector<GainCandidate>>& candidates,
    const pigp::DenseMatrix<std::int64_t>& moves,
    graph::PartitionState& state,
    std::vector<std::pair<graph::VertexId, graph::PartId>>* journal =
        nullptr);

}  // namespace pigp::core
