#include "core/assign.hpp"

#include <algorithm>

#include "core/workspace.hpp"
#include "graph/components.hpp"
#include "graph/partition_state.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace pigp::core {

graph::Partitioning extend_assignment(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, const AssignOptions& options) {
  const graph::VertexId n = g_new.num_vertices();
  PIGP_CHECK(n_old >= 0 && n_old <= n, "n_old out of range");
  PIGP_CHECK(static_cast<graph::VertexId>(old_partitioning.part.size()) ==
                 n_old,
             "old partitioning must cover exactly the old vertices");
  PIGP_CHECK(n_old > 0, "need at least one previously partitioned vertex");

  graph::Partitioning result;
  result.num_parts = old_partitioning.num_parts;
  result.part.assign(static_cast<std::size_t>(n), graph::kUnassigned);

  // Multi-source BFS with the old vertices as labeled seeds.
  std::vector<std::int32_t> seeds(static_cast<std::size_t>(n), -1);
  for (graph::VertexId v = 0; v < n_old; ++v) {
    seeds[static_cast<std::size_t>(v)] =
        old_partitioning.part[static_cast<std::size_t>(v)];
  }
  const graph::NearestSourceResult near =
      graph::nearest_source_labels(g_new, seeds, options.num_threads);

  for (graph::VertexId v = 0; v < n; ++v) {
    result.part[static_cast<std::size_t>(v)] =
        near.label[static_cast<std::size_t>(v)];
  }

  // Fallback for new vertices unreachable from any old vertex: cluster them
  // (connected components of the leftover set) and assign each cluster to
  // the partition with the least current weight.
  std::vector<graph::VertexId> orphans;
  for (graph::VertexId v = n_old; v < n; ++v) {
    if (result.part[static_cast<std::size_t>(v)] < 0) orphans.push_back(v);
  }
  if (!orphans.empty()) {
    std::vector<double> load(
        static_cast<std::size_t>(result.num_parts), 0.0);
    for (graph::VertexId v = 0; v < n; ++v) {
      const graph::PartId q = result.part[static_cast<std::size_t>(v)];
      if (q >= 0) load[static_cast<std::size_t>(q)] += g_new.vertex_weight(v);
    }

    const graph::Subgraph sub = graph::induced_subgraph(g_new, orphans);
    const graph::Components comps = graph::connected_components(sub.graph);
    const auto groups = comps.members();
    for (const auto& group : groups) {
      double cluster_weight = 0.0;
      for (const graph::VertexId local : group) {
        cluster_weight += sub.graph.vertex_weight(local);
      }
      const auto lightest = static_cast<graph::PartId>(std::distance(
          load.begin(), std::min_element(load.begin(), load.end())));
      for (const graph::VertexId local : group) {
        result.part[static_cast<std::size_t>(
            sub.to_global[static_cast<std::size_t>(local)])] = lightest;
      }
      load[static_cast<std::size_t>(lightest)] += cluster_weight;
    }
  }

  result.validate(g_new);
  return result;
}

void extend_assignment_state(const graph::Graph& g_new, graph::Partitioning& p,
                             graph::VertexId n_old,
                             graph::PartitionState& state, Workspace& ws,
                             const AssignOptions& options) {
  const graph::VertexId n = g_new.num_vertices();
  PIGP_CHECK(n_old >= 0 && n_old <= n, "n_old out of range");
  PIGP_CHECK(static_cast<graph::VertexId>(p.part.size()) == n_old,
             "partitioning must cover exactly the old vertices");
  PIGP_CHECK(n_old > 0, "need at least one previously partitioned vertex");
  // The seeded frontier is O(delta shell); the batch entry point keeps the
  // OpenMP multi-source sweep for its O(V)-seeded formulation.
  (void)options;

  if (n_old == n) return;  // pure repartition tick — nothing to place

  ws.assign_distance.ensure(static_cast<std::size_t>(n));
  ws.assign_label.ensure(static_cast<std::size_t>(n));
  ws.assign_distance.clear();  // O(1): generation bump, not a memset
  ws.assign_label.clear();
  std::vector<graph::VertexId>& frontier = ws.assign_frontier;
  std::vector<graph::VertexId>& next = ws.assign_next;
  frontier.clear();

  // Level-0 seeds: only the old vertices adjacent to the appended tail.
  // In the full multi-source formulation every old vertex is a distance-0
  // seed, but expansion can only ever enter appended vertices, and an
  // appended vertex's old neighbors are all adjacent to the tail — so this
  // seed set yields identical distances and labels.
  for (graph::VertexId v = n_old; v < n; ++v) {
    for (const graph::VertexId u : g_new.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      if (u >= n_old || ws.assign_distance.contains(ui)) continue;
      ws.assign_distance.set(ui, 0);
      ws.assign_label.set(ui, p.part[ui]);
      frontier.push_back(u);
    }
  }

  std::int32_t level = 0;
  while (!frontier.empty()) {
    // Pass 1: discover the next frontier (an order-independent set; the
    // distance stamp doubles as the claimed flag).
    next.clear();
    for (const graph::VertexId u : frontier) {
      for (const graph::VertexId v : g_new.neighbors(u)) {
        if (v < n_old) continue;  // expansion only enters the appended tail
        const auto vi = static_cast<std::size_t>(v);
        if (ws.assign_distance.contains(vi)) continue;
        ws.assign_distance.set(vi, level + 1);
        next.push_back(v);
      }
    }
    // Pass 2: label each discovered vertex from its level-`level`
    // neighbors; the min-label rule makes the outcome independent of
    // discovery order, exactly like nearest_source_labels.
    for (const graph::VertexId v : next) {
      graph::PartId best = -1;
      for (const graph::VertexId u : g_new.neighbors(v)) {
        const auto ui = static_cast<std::size_t>(u);
        if (ws.assign_distance.get_or(ui, -1) != level) continue;
        const graph::PartId lu = ws.assign_label.get(ui);
        if (best < 0 || lu < best) best = lu;
      }
      PIGP_ASSERT(best >= 0);
      ws.assign_label.set(static_cast<std::size_t>(v), best);
    }
    frontier.swap(next);
    ++level;
  }

  // Fallback for appended components containing no old vertex: cluster the
  // orphans and send each cluster to the least-loaded partition, exactly
  // like the batch entry point.  This sub-path allocates (it is rare and
  // never on the steady-state stream).
  bool any_orphan = false;
  for (graph::VertexId v = n_old; v < n && !any_orphan; ++v) {
    any_orphan = !ws.assign_label.contains(static_cast<std::size_t>(v));
  }
  if (any_orphan) {
    // Loads over everything assigned so far (old weights come from the
    // maintained state, labeled appendees are added in ascending order,
    // mirroring the batch path's ascending full scan; exact for integer
    // weights).
    std::vector<double> load = state.weights();
    std::vector<graph::VertexId> orphans;
    for (graph::VertexId v = n_old; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (ws.assign_label.contains(vi)) {
        load[static_cast<std::size_t>(ws.assign_label.get(vi))] +=
            g_new.vertex_weight(v);
      } else {
        orphans.push_back(v);
      }
    }
    const graph::Subgraph sub = graph::induced_subgraph(g_new, orphans);
    const graph::Components comps = graph::connected_components(sub.graph);
    for (const auto& group : comps.members()) {
      double cluster_weight = 0.0;
      for (const graph::VertexId local : group) {
        cluster_weight += sub.graph.vertex_weight(local);
      }
      const auto lightest = static_cast<graph::PartId>(std::distance(
          load.begin(), std::min_element(load.begin(), load.end())));
      for (const graph::VertexId local : group) {
        ws.assign_label.set(
            static_cast<std::size_t>(
                sub.to_global[static_cast<std::size_t>(local)]),
            lightest);
      }
      load[static_cast<std::size_t>(lightest)] += cluster_weight;
    }
  }

  // Placement: grow, then one ascending move_vertex pass — the exact
  // protocol of PartitionState::extend, so aggregates, boundary index and
  // bucket evolution match the copy-based path move for move.
  p.part.resize(static_cast<std::size_t>(n), graph::kUnassigned);
  state.grow_vertices(n);
  for (graph::VertexId v = n_old; v < n; ++v) {
    state.move_vertex(g_new, p, v,
                      ws.assign_label.get(static_cast<std::size_t>(v)));
  }
}

}  // namespace pigp::core
