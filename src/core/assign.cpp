#include "core/assign.hpp"

#include <algorithm>

#include "graph/components.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/check.hpp"

namespace pigp::core {

graph::Partitioning extend_assignment(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, const AssignOptions& options) {
  const graph::VertexId n = g_new.num_vertices();
  PIGP_CHECK(n_old >= 0 && n_old <= n, "n_old out of range");
  PIGP_CHECK(static_cast<graph::VertexId>(old_partitioning.part.size()) ==
                 n_old,
             "old partitioning must cover exactly the old vertices");
  PIGP_CHECK(n_old > 0, "need at least one previously partitioned vertex");

  graph::Partitioning result;
  result.num_parts = old_partitioning.num_parts;
  result.part.assign(static_cast<std::size_t>(n), graph::kUnassigned);

  // Multi-source BFS with the old vertices as labeled seeds.
  std::vector<std::int32_t> seeds(static_cast<std::size_t>(n), -1);
  for (graph::VertexId v = 0; v < n_old; ++v) {
    seeds[static_cast<std::size_t>(v)] =
        old_partitioning.part[static_cast<std::size_t>(v)];
  }
  const graph::NearestSourceResult near =
      graph::nearest_source_labels(g_new, seeds, options.num_threads);

  for (graph::VertexId v = 0; v < n; ++v) {
    result.part[static_cast<std::size_t>(v)] =
        near.label[static_cast<std::size_t>(v)];
  }

  // Fallback for new vertices unreachable from any old vertex: cluster them
  // (connected components of the leftover set) and assign each cluster to
  // the partition with the least current weight.
  std::vector<graph::VertexId> orphans;
  for (graph::VertexId v = n_old; v < n; ++v) {
    if (result.part[static_cast<std::size_t>(v)] < 0) orphans.push_back(v);
  }
  if (!orphans.empty()) {
    std::vector<double> load(
        static_cast<std::size_t>(result.num_parts), 0.0);
    for (graph::VertexId v = 0; v < n; ++v) {
      const graph::PartId q = result.part[static_cast<std::size_t>(v)];
      if (q >= 0) load[static_cast<std::size_t>(q)] += g_new.vertex_weight(v);
    }

    const graph::Subgraph sub = graph::induced_subgraph(g_new, orphans);
    const graph::Components comps = graph::connected_components(sub.graph);
    const auto groups = comps.members();
    for (const auto& group : groups) {
      double cluster_weight = 0.0;
      for (const graph::VertexId local : group) {
        cluster_weight += sub.graph.vertex_weight(local);
      }
      const auto lightest = static_cast<graph::PartId>(std::distance(
          load.begin(), std::min_element(load.begin(), load.end())));
      for (const graph::VertexId local : group) {
        result.part[static_cast<std::size_t>(
            sub.to_global[static_cast<std::size_t>(local)])] = lightest;
      }
      load[static_cast<std::size_t>(lightest)] += cluster_weight;
    }
  }

  result.validate(g_new);
  return result;
}

}  // namespace pigp::core
