#pragma once

/// \file balance.hpp
/// Step 3 of the incremental partitioner: LP-based load balancing
/// (Ou & Ranka §2.3, equations 10–13).
///
/// Given the layering counts ε_ij, solve
///     minimize   Σ l_ij                                   (10)
///     subject to 0 ≤ l_ij ≤ ε_ij                          (11)
///                Σ_k (l_qk − l_kq) = W'(q) − μ_q   ∀q     (12)
/// and move the selected vertices (boundary layers first).  When the
/// one-shot LP is infeasible — the localized refinement dumped more excess
/// into a partition than its boundary can shed — the balance condition is
/// relaxed to move only 1/α of the excess per stage (13) and the procedure
/// iterates; the paper reports 1–3 stages on its workloads.

#include <cstdint>
#include <vector>

#include "core/layering.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/program.hpp"
#include "support/dense_matrix.hpp"

namespace pigp::core {

struct Workspace;

/// Which simplex implementation to use.
enum class LpSolverKind {
  dense,    ///< the paper's dense two-phase simplex
  bounded,  ///< bounded-variable simplex (the paper's future-work variant)
};

[[nodiscard]] lp::Solution solve_lp(const lp::LinearProgram& program,
                                    LpSolverKind kind,
                                    const lp::SimplexOptions& options);

struct BalanceOptions {
  /// Upper bound C on the relaxation factor α (paper: C > α > 1).
  double alpha_max = 64.0;
  int max_stages = 12;
  /// |W(q) − target_q| ≤ tolerance counts as balanced.
  double tolerance = 0.5;
  LpSolverKind solver = LpSolverKind::dense;
  lp::SimplexOptions simplex;
  int num_threads = 1;
  /// Initial depth cap for the boundary-seeded layering (state-driven
  /// path): each stage labels only this many BFS levels past the boundary
  /// and deepens lazily — doubling the total depth — while the staged LP
  /// is infeasible at the current depth; the best-effort fallback only
  /// runs once layering is exhausted, so terminal decisions match the
  /// batch pipeline.  0 = unlimited (always grow to exhaustion, exactly
  /// the batch layering's labels and capacities).
  int max_layers = 4;
};

/// Telemetry for one balance stage.
struct BalanceStage {
  double alpha = 1.0;
  int lp_variables = 0;
  int lp_rows = 0;
  std::int64_t lp_iterations = 0;
  double vertices_moved = 0.0;
  /// Layering depth the stage decision was made at; -1 when the layering
  /// was grown to exhaustion (batch-equivalent capacities).
  int layer_depth = -1;
};

struct BalanceResult {
  bool balanced = false;
  std::vector<BalanceStage> stages;
  double final_max_deviation = 0.0;
};

/// The movement LP for one stage.  \p rhs gives each partition's net
/// outflow requirement; variables exist for ordered pairs with eps > 0.
/// \p pair_vars receives the variable index per (i, j) pair (-1 when
/// absent).  Exposed for tests and the SPMD driver.
[[nodiscard]] lp::LinearProgram build_balance_lp(
    const pigp::DenseMatrix<std::int64_t>& eps, const std::vector<double>& rhs,
    pigp::DenseMatrix<int>* pair_vars);

/// Round per-partition flow requirements excess/alpha to integers that sum
/// to zero (largest-remainder).  Exposed for tests.
[[nodiscard]] std::vector<double> staged_requirements(
    const std::vector<double>& excess, double alpha);

/// One per-stage movement decision, shared by the shared-memory and SPMD
/// drivers.  `progress` is false when nothing can move.
struct StageDecision {
  bool progress = false;
  /// True when the α ladder found an optimal LP at the given capacities
  /// (false means the capacities were insufficient — the drivers react by
  /// deepening the layering before falling back).
  bool lp_feasible = false;
  BalanceStage stats;
  pigp::DenseMatrix<std::int64_t> moves;
};

/// The α ladder (the paper's staging): smallest feasible α by doubling,
/// no fallback (lp_feasible == false when none works).  The drivers
/// interleave this with lazy layering growth — before exhaustion they
/// pass alpha_max = 1 since only an α = 1 result can be accepted there.
[[nodiscard]] StageDecision decide_stage_moves_alpha(
    const pigp::DenseMatrix<std::int64_t>& eps,
    const std::vector<double>& excess, const BalanceOptions& options);

/// The best-effort fallback: when no α is feasible — the layering
/// capacities are structurally insufficient this stage — a slack-relaxed
/// LP moves as much toward balance as the capacities allow (slack
/// penalized, movement lightly penalized).  Run it on exhausted (full)
/// capacities only, so its decisions match the batch pipeline.
[[nodiscard]] StageDecision best_effort_stage_moves(
    const pigp::DenseMatrix<std::int64_t>& eps,
    const std::vector<double>& excess, const BalanceOptions& options);

/// Run balance stages in place on \p partitioning until balanced or the
/// stage limit is hit.  Layering is recomputed each stage.  This batch
/// entry builds a PartitionState (one O(V+E) rescan) and delegates to the
/// state-driven overload below — there is exactly one balance driver.
[[nodiscard]] BalanceResult balance_load(const graph::Graph& g,
                                         graph::Partitioning& partitioning,
                                         const BalanceOptions& options = {});

/// Boundary-local balance driver: per-stage excess comes from \p state's
/// maintained weights (O(P), not an O(V) rescan), layering seeds come from
/// its boundary index, growth is depth-capped per options.max_layers with
/// lazy deepening on infeasibility, and transfers are applied through the
/// state so it ends consistent with \p partitioning.  \p state must
/// describe (g, partitioning) on entry and partitioning must be fully
/// assigned.  A non-null \p ws supplies the target/excess buffers and the
/// persistent BoundaryLayering, making an already-balanced call (and the
/// per-stage layering setup) allocation-free; decisions are identical
/// either way.
[[nodiscard]] BalanceResult balance_load(const graph::Graph& g,
                                         graph::Partitioning& partitioning,
                                         graph::PartitionState& state,
                                         const BalanceOptions& options = {},
                                         Workspace* ws = nullptr);

}  // namespace pigp::core
