#pragma once

/// \file igp.hpp
/// The Incremental Graph Partitioner (IGP / IGPR) driver — the paper's
/// primary contribution, chaining the four steps of Figure 1:
///
///   1. assign new vertices to the partition of their nearest old vertex,
///   2. layer each partition (closest-outside-partition labels, ε_ij),
///   3. balance load with the movement-minimizing LP (multi-stage α),
///   4. optionally refine the cut with the movement-maximizing LP (IGPR).
///
/// The driver accepts either a pre-extended graph (new vertices appended to
/// the old id space) or a graph::GraphDelta, in which case deletions are
/// remapped automatically.

#include <cstdint>

#include "core/assign.hpp"
#include "core/balance.hpp"
#include "core/refine.hpp"
#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace pigp::core {

struct Workspace;

/// Plain-data options for the flat driver.  Thread-count and solver
/// propagation into the nested structs lives in SessionConfig::resolve()
/// (src/api/config.hpp) — the single derivation path, guarded by
/// compile-time field-count asserts so new fields cannot be skipped.
struct IgpOptions {
  /// Run the refinement pass (IGPR) after balancing (IGP).
  bool refine = true;
  BalanceOptions balance;
  RefineOptions refinement;
  int num_threads = 1;
};

/// Wall-clock breakdown of one repartitioning (seconds).
struct IgpTimings {
  double assign = 0.0;
  double balance = 0.0;  ///< includes per-stage layering + LP + transfer
  double refine = 0.0;
  double total = 0.0;
};

struct IgpResult {
  graph::Partitioning partitioning;
  bool balanced = false;
  int stages = 0;              ///< balance stages used (paper's IGP(k))
  BalanceResult balance_result;
  RefineStats refine_stats;
  IgpTimings timings;
};

/// Incremental repartitioner.  Thread-safe for concurrent repartition calls
/// with distinct outputs (the object holds only options).
class IncrementalPartitioner {
 public:
  explicit IncrementalPartitioner(IgpOptions options = {})
      : options_(options) {}

  /// Repartition \p g_new given the partitioning of its first \p n_old
  /// vertices (ids preserved; no deletions).
  ///
  /// When \p state is non-null it must describe (g_new, old_partitioning)
  /// — appended tail unassigned — and the whole pipeline runs boundary-
  /// locally off it: layering seeds, balance weights and refinement
  /// candidates come from the maintained index instead of full rescans,
  /// and on return the state describes the returned partitioning.  With a
  /// null state an internal one is seeded with one O(V+E) rescan, so both
  /// paths make bit-identical decisions.  \p ws (only meaningful with a
  /// state) reuses a caller-owned Workspace across calls.
  [[nodiscard]] IgpResult repartition(
      const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
      graph::VertexId n_old, graph::PartitionState* state = nullptr,
      Workspace* ws = nullptr) const;

  /// The streaming hot path: run the pipeline *in place* on
  /// \p partitioning (covering [0, n_old) on entry, all of \p g_new on
  /// return) and \p state, with every reusable buffer drawn from \p ws —
  /// zero per-call O(V) allocations or copies once the workspace is warm.
  /// Decisions are bit-identical to the copying overloads (the parity
  /// suites pin this).  result.partitioning is left empty — the answer IS
  /// \p partitioning.  On exception partitioning/state are left
  /// inconsistent; the session rolls back from its own snapshot.
  [[nodiscard]] IgpResult repartition_in_place(
      const graph::Graph& g_new, graph::Partitioning& partitioning,
      graph::VertexId n_old, graph::PartitionState& state,
      Workspace& ws) const;

  /// Apply \p delta to \p g_old and repartition the result.  Handles vertex
  /// deletions via the delta's id remapping.  \p result_graph (optional)
  /// receives the updated graph.
  [[nodiscard]] IgpResult repartition_delta(
      const graph::Graph& g_old, const graph::Partitioning& old_partitioning,
      const graph::GraphDelta& delta,
      graph::Graph* result_graph = nullptr) const;

  [[nodiscard]] const IgpOptions& options() const noexcept {
    return options_;
  }

 private:
  IgpOptions options_;
};

}  // namespace pigp::core
