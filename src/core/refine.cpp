#include "core/refine.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/transfer.hpp"
#include "core/workspace.hpp"
#include "graph/partition_state.hpp"
#include "support/check.hpp"

namespace pigp::core {
namespace {

/// Candidate analysis for one round, restricted to the vertices of
/// \p boundary (every candidate is a boundary vertex by definition, so
/// scanning the maintained index instead of [0, V) yields the identical
/// candidate set).  \p boundary must be sorted ascending — bucket order
/// within each (i, j) list feeds a floating-point gain sum in the LP
/// objective, so it must match the historical full-scan order.  Results
/// land in \p candidates (cells cleared, capacity reused) with per-thread
/// tallies from \p scratch, so a warm call allocates nothing.
void collect_candidates(
    const graph::Graph& g, const graph::Partitioning& p,
    const std::vector<graph::VertexId>& boundary, bool strict,
    int num_threads,
    std::vector<Workspace::RefineThreadScratch>& scratch,
    pigp::DenseMatrix<std::vector<GainCandidate>>& candidates) {
  const auto parts = static_cast<std::size_t>(p.num_parts);
  if (candidates.rows() != parts || candidates.cols() != parts) {
    candidates = pigp::DenseMatrix<std::vector<GainCandidate>>(parts, parts);
  } else {
    for (std::size_t i = 0; i < parts; ++i) {
      for (std::size_t j = 0; j < parts; ++j) candidates(i, j).clear();
    }
  }
  scratch.resize(static_cast<std::size_t>(std::max(1, num_threads)));
  for (auto& s : scratch) s.found.clear();
  const bool parallel = num_threads > 1 && boundary.size() > 4096;

#pragma omp parallel num_threads(num_threads) if (parallel)
  {
#ifdef _OPENMP
    const int tid = parallel ? omp_get_thread_num() : 0;
#else
    const int tid = 0;
#endif
    auto& mine = scratch[static_cast<std::size_t>(tid)].found;
    auto& out = scratch[static_cast<std::size_t>(tid)].out;
    out.assign(parts, 0.0);
#pragma omp for schedule(static)
    for (std::size_t b = 0; b < boundary.size(); ++b) {
      const graph::VertexId v = boundary[b];
      const graph::PartId from = p.part[static_cast<std::size_t>(v)];
      const auto nbrs = g.neighbors(v);
      const auto weights = g.incident_edge_weights(v);
      // out(v, j) per partition and in(v).
      double in = 0.0;
      std::fill(out.begin(), out.end(), 0.0);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const graph::PartId q = p.part[static_cast<std::size_t>(nbrs[i])];
        if (q == from) {
          in += weights[i];
        } else {
          out[static_cast<std::size_t>(q)] += weights[i];
        }
      }
      // Best destination by gain, ties to the smaller partition id.
      graph::PartId best = -1;
      double best_gain = 0.0;
      for (std::size_t q = 0; q < parts; ++q) {
        if (out[q] <= 0.0) continue;
        const double gain = out[q] - in;
        if (best < 0 || gain > best_gain) {
          best = static_cast<graph::PartId>(q);
          best_gain = gain;
        }
      }
      if (best < 0) continue;
      if (strict ? best_gain > 0.0 : best_gain >= 0.0) {
        mine.emplace_back(
            static_cast<std::size_t>(from) * parts +
                static_cast<std::size_t>(best),
            GainCandidate{v, best_gain});
      }
    }
  }
  // Static scheduling hands thread t a contiguous ascending chunk, so
  // concatenating in tid order keeps each bucket ascending by vertex id —
  // the same order the historical 0..V scan produced.
  for (const auto& chunk : scratch) {
    for (const auto& [slot, cand] : chunk.found) {
      candidates(slot / parts, slot % parts).push_back(cand);
    }
  }
}

/// Sorted union of all partitions' boundary buckets, into \p boundary
/// (capacity reused).
void sorted_boundary(const graph::PartitionState& state,
                     std::vector<graph::VertexId>& boundary) {
  boundary.clear();
  for (graph::PartId q = 0; q < state.num_parts(); ++q) {
    const auto& bucket = state.boundary_vertices(q);
    boundary.insert(boundary.end(), bucket.begin(), bucket.end());
  }
  std::sort(boundary.begin(), boundary.end());
}

/// The refinement LP (eqs. 14–16) with a gain-aware objective.  The paper
/// maximizes raw movement Σ l_ij; taken literally that lets zero-gain
/// vertices (out == in, admitted by the non-strict inequality) dominate the
/// solution and churn the boundary without improving the cut.  The paper's
/// own justification for including them is that "these vertices can be
/// moved to satisfy load balance constraints" — i.e. they exist to *route
/// flow*, not to be goals in themselves.  We encode exactly that: each pair
/// gets a positive-gain variable (capacity = number of gain>0 candidates,
/// objective = their mean gain) and a zero-gain variable (capacity =
/// remaining candidates, objective = tiny ε), so the simplex moves
/// improving vertices and uses zero-gain ones only to close circulation.
/// \p cap_scale < 1 shrinks batches after a regression (batch moves can
/// interact; smaller batches interact less).
lp::LinearProgram build_refinement_lp(
    const pigp::DenseMatrix<std::vector<GainCandidate>>& candidates,
    double cap_scale, pigp::DenseMatrix<int>* pos_vars,
    pigp::DenseMatrix<int>* zero_vars) {
  const std::size_t parts = candidates.rows();
  lp::LinearProgram program(lp::Sense::maximize);
  pigp::DenseMatrix<int> vp(parts, parts, -1);
  pigp::DenseMatrix<int> vz(parts, parts, -1);
  for (std::size_t i = 0; i < parts; ++i) {
    for (std::size_t j = 0; j < parts; ++j) {
      const auto& bucket = candidates(i, j);
      if (i == j || bucket.empty()) continue;
      double positive = 0.0;
      double gain_sum = 0.0;
      for (const GainCandidate& c : bucket) {
        if (c.gain > 0.0) {
          positive += 1.0;
          gain_sum += c.gain;
        }
      }
      const double zero = static_cast<double>(bucket.size()) - positive;
      const std::string tag =
          std::to_string(i) + "_" + std::to_string(j);
      if (positive > 0.0) {
        const double cap = std::max(1.0, std::floor(positive * cap_scale));
        vp(i, j) = program.add_variable(gain_sum / positive, 0.0, cap,
                                        "p" + tag);
      }
      if (zero > 0.0) {
        const double cap = std::max(1.0, std::floor(zero * cap_scale));
        vz(i, j) = program.add_variable(1e-3, 0.0, cap, "z" + tag);
      }
    }
  }
  for (std::size_t q = 0; q < parts; ++q) {
    std::vector<std::pair<int, double>> coeffs;
    for (std::size_t k = 0; k < parts; ++k) {
      if (vp(q, k) >= 0) coeffs.emplace_back(vp(q, k), 1.0);
      if (vz(q, k) >= 0) coeffs.emplace_back(vz(q, k), 1.0);
      if (vp(k, q) >= 0) coeffs.emplace_back(vp(k, q), -1.0);
      if (vz(k, q) >= 0) coeffs.emplace_back(vz(k, q), -1.0);
    }
    if (!coeffs.empty()) {
      program.add_row(lp::RowType::equal, std::move(coeffs), 0.0,
                      "flow" + std::to_string(q));
    }
  }
  if (pos_vars != nullptr) *pos_vars = std::move(vp);
  if (zero_vars != nullptr) *zero_vars = std::move(vz);
  return program;
}

}  // namespace

RefineStats refine_partitioning(const graph::Graph& g,
                                graph::Partitioning& partitioning,
                                const RefineOptions& options) {
  // One full rescan to seed the incremental state (it also validates);
  // every round after this maintains the cut in O(deg) per moved vertex.
  graph::PartitionState state(g, partitioning);
  return refine_partitioning(g, partitioning, state, options);
}

RefineStats refine_partitioning(const graph::Graph& g,
                                graph::Partitioning& partitioning,
                                graph::PartitionState& state,
                                const RefineOptions& options, Workspace* ws) {
  RefineStats stats;
  const auto parts = static_cast<std::size_t>(partitioning.num_parts);
  double cut = state.cut_total();
  stats.cut_before = cut;
  stats.cut_after = cut;

  bool force_strict = false;
  double cap_scale = 1.0;
  // Working storage: pooled in the session workspace when given, call-local
  // otherwise — identical decisions either way.
  std::vector<std::pair<graph::VertexId, graph::PartId>> local_journal;
  std::vector<graph::VertexId> local_boundary;
  pigp::DenseMatrix<std::vector<GainCandidate>> local_candidates;
  std::vector<Workspace::RefineThreadScratch> local_scratch;
  auto& journal = ws ? ws->refine_journal : local_journal;
  auto& boundary = ws ? ws->refine_boundary : local_boundary;
  auto& candidates = ws ? ws->refine_candidates : local_candidates;
  auto& scratch = ws ? ws->refine_scratch : local_scratch;

  // The sorted boundary only changes when a round's moves are kept; a
  // reverted round restores the index exactly, so the retry reuses it.
  sorted_boundary(state, boundary);
  for (int round = 0; round < options.max_rounds; ++round) {
    const bool strict = force_strict || round >= options.strict_after_round;
    collect_candidates(g, partitioning, boundary, strict, options.num_threads,
                       scratch, candidates);
    // No candidates at all: the LP would have zero variables — skip its
    // construction entirely (same terminal decision, no model churn).
    bool any_candidate = false;
    for (std::size_t i = 0; i < parts && !any_candidate; ++i) {
      for (std::size_t j = 0; j < parts && !any_candidate; ++j) {
        any_candidate = !candidates(i, j).empty();
      }
    }
    if (!any_candidate) break;

    pigp::DenseMatrix<int> pos_vars;
    pigp::DenseMatrix<int> zero_vars;
    const lp::LinearProgram program =
        build_refinement_lp(candidates, cap_scale, &pos_vars, &zero_vars);
    if (program.num_variables() == 0) break;

    const lp::Solution solution =
        solve_lp(program, options.solver, options.simplex);
    PIGP_CHECK(solution.status == lp::SolveStatus::optimal,
               "refinement LP must be solvable (l = 0 is feasible)");
    stats.lp_iterations += solution.iterations;
    // Objective is gain-weighted; below this threshold only zero-gain
    // circulation remains.
    if (solution.objective < 0.5) break;

    pigp::DenseMatrix<std::int64_t> moves(parts, parts, 0);
    std::int64_t moved = 0;
    for (std::size_t i = 0; i < parts; ++i) {
      for (std::size_t j = 0; j < parts; ++j) {
        std::int64_t count = 0;
        if (pos_vars(i, j) >= 0) {
          count += std::llround(
              solution.x[static_cast<std::size_t>(pos_vars(i, j))]);
        }
        if (zero_vars(i, j) >= 0) {
          count += std::llround(
              solution.x[static_cast<std::size_t>(zero_vars(i, j))]);
        }
        moves(i, j) = count;
        moved += count;
      }
    }

    // Undo unit: the aggregate snapshot is O(P); the partitioning and the
    // (integer) boundary index are restored exactly by replaying the move
    // journal in reverse — no O(V) copies per round.
    const graph::PartitionState::AggregateSnapshot saved =
        state.save_aggregates();
    journal.clear();
    apply_gain_transfers(g, partitioning, candidates, moves, state, &journal);
    ++stats.rounds;

    const double new_cut = state.cut_total();
    if (new_cut > cut && options.revert_on_regression) {
      // Batch interactions hurt (usually zero-gain vertices oscillating or
      // dense candidate clusters moving together); roll back and retry in
      // strict mode first, then with progressively smaller batches.
      for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
        state.move_vertex(g, partitioning, it->first, it->second);
      }
      state.restore_aggregates(saved);  // erase any floating-point drift
      if (!strict) {
        force_strict = true;
        continue;
      }
      if (cap_scale > 0.2) {
        cap_scale *= 0.5;
        continue;
      }
      break;
    }
    stats.vertices_moved += moved;
    const double gain = cut - new_cut;
    cut = new_cut;
    stats.cut_after = cut;
    if (gain < options.min_gain) break;
    sorted_boundary(state, boundary);  // moves kept: boundary changed
  }
  return stats;
}

}  // namespace pigp::core
