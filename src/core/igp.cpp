#include "core/igp.hpp"

#include <utility>

#include "core/workspace.hpp"
#include "runtime/timer.hpp"
#include "support/check.hpp"

namespace pigp::core {

IgpResult IncrementalPartitioner::repartition(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, graph::PartitionState* state, Workspace* ws) const {
  if (state != nullptr) {
    // Maintained state handed in by the caller: copy the old assignment
    // and run the in-place pipeline on it (sessions skip even this copy by
    // calling repartition_in_place on their own partitioning directly).
    Workspace local_ws;
    graph::Partitioning working = old_partitioning;
    IgpResult result = repartition_in_place(g_new, working, n_old, *state,
                                            ws ? *ws : local_ws);
    result.partitioning = std::move(working);
    return result;
  }

  const runtime::WallTimer total_timer;
  IgpResult result;

  // Step 1: initial assignment of the new vertices.
  runtime::WallTimer timer;
  AssignOptions assign_options;
  assign_options.num_threads = options_.num_threads;
  result.partitioning =
      extend_assignment(g_new, old_partitioning, n_old, assign_options);
  graph::PartitionState local_state;
  local_state.rebuild(g_new, result.partitioning);
  result.timings.assign = timer.seconds();

  // Steps 2–3: layering + LP balancing (multi-stage, boundary-local).
  timer.reset();
  result.balance_result =
      balance_load(g_new, result.partitioning, local_state, options_.balance);
  result.balanced = result.balance_result.balanced;
  result.stages = static_cast<int>(result.balance_result.stages.size());
  result.timings.balance = timer.seconds();

  // Step 4: refinement (IGPR).
  if (options_.refine) {
    timer.reset();
    result.refine_stats = refine_partitioning(
        g_new, result.partitioning, local_state, options_.refinement);
    result.timings.refine = timer.seconds();
  }

  result.timings.total = total_timer.seconds();
  return result;
}

IgpResult IncrementalPartitioner::repartition_in_place(
    const graph::Graph& g_new, graph::Partitioning& partitioning,
    graph::VertexId n_old, graph::PartitionState& state, Workspace& ws) const {
  const runtime::WallTimer total_timer;
  IgpResult result;

  // Step 1: seeded assignment of the appended vertices, folded straight
  // into the maintained state — O(Σ deg(new) + shell), not an O(V+E)
  // multi-source sweep, and allocation-free once the workspace is warm.
  runtime::WallTimer timer;
  AssignOptions assign_options;
  assign_options.num_threads = options_.num_threads;
  extend_assignment_state(g_new, partitioning, n_old, state, ws,
                          assign_options);
  result.timings.assign = timer.seconds();

  // Steps 2–3: layering + LP balancing (multi-stage, boundary-local, with
  // the workspace's persistent layering arrays).
  timer.reset();
  result.balance_result =
      balance_load(g_new, partitioning, state, options_.balance, &ws);
  result.balanced = result.balance_result.balanced;
  result.stages = static_cast<int>(result.balance_result.stages.size());
  result.timings.balance = timer.seconds();

  // Step 4: refinement (IGPR).
  if (options_.refine) {
    timer.reset();
    result.refine_stats = refine_partitioning(g_new, partitioning, state,
                                              options_.refinement, &ws);
    result.timings.refine = timer.seconds();
  }

  result.timings.total = total_timer.seconds();
  return result;
}

IgpResult IncrementalPartitioner::repartition_delta(
    const graph::Graph& g_old, const graph::Partitioning& old_partitioning,
    const graph::GraphDelta& delta, graph::Graph* result_graph) const {
  old_partitioning.validate(g_old);
  graph::DeltaResult applied = graph::apply_delta(g_old, delta);
  const graph::Partitioning carried =
      graph::carry_partitioning(old_partitioning, applied);
  IgpResult result =
      repartition(applied.graph, carried, applied.first_new_vertex);
  if (result_graph != nullptr) *result_graph = std::move(applied.graph);
  return result;
}

}  // namespace pigp::core
