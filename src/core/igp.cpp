#include "core/igp.hpp"

#include <utility>

#include "runtime/timer.hpp"
#include "support/check.hpp"

namespace pigp::core {

IgpResult IncrementalPartitioner::repartition(
    const graph::Graph& g_new, const graph::Partitioning& old_partitioning,
    graph::VertexId n_old, graph::PartitionState* state) const {
  const runtime::WallTimer total_timer;
  IgpResult result;

  // Step 1: initial assignment of the new vertices.
  runtime::WallTimer timer;
  AssignOptions assign_options;
  assign_options.num_threads = options_.num_threads;
  graph::Partitioning placed =
      extend_assignment(g_new, old_partitioning, n_old, assign_options);
  graph::PartitionState local_state;
  if (state != nullptr) {
    // Maintained state handed in by the session: fold just the new
    // placements in — O(Σ deg(new)), not a rescan.
    result.partitioning = old_partitioning;
    state->extend(g_new, result.partitioning, n_old, placed);
  } else {
    result.partitioning = std::move(placed);
    local_state.rebuild(g_new, result.partitioning);
    state = &local_state;
  }
  result.timings.assign = timer.seconds();

  // Steps 2–3: layering + LP balancing (multi-stage, boundary-local).
  timer.reset();
  result.balance_result =
      balance_load(g_new, result.partitioning, *state, options_.balance);
  result.balanced = result.balance_result.balanced;
  result.stages = static_cast<int>(result.balance_result.stages.size());
  result.timings.balance = timer.seconds();

  // Step 4: refinement (IGPR).
  if (options_.refine) {
    timer.reset();
    result.refine_stats = refine_partitioning(
        g_new, result.partitioning, *state, options_.refinement);
    result.timings.refine = timer.seconds();
  }

  result.timings.total = total_timer.seconds();
  return result;
}

IgpResult IncrementalPartitioner::repartition_delta(
    const graph::Graph& g_old, const graph::Partitioning& old_partitioning,
    const graph::GraphDelta& delta, graph::Graph* result_graph) const {
  old_partitioning.validate(g_old);
  graph::DeltaResult applied = graph::apply_delta(g_old, delta);
  const graph::Partitioning carried =
      graph::carry_partitioning(old_partitioning, applied);
  IgpResult result =
      repartition(applied.graph, carried, applied.first_new_vertex);
  if (result_graph != nullptr) *result_graph = std::move(applied.graph);
  return result;
}

}  // namespace pigp::core
