#pragma once

/// \file refine.hpp
/// Step 4 of the incremental partitioner: LP-based cut refinement
/// (Ou & Ranka §2.4, equations 14–16).
///
/// Boundary vertices whose edges into a neighboring partition outweigh (or
/// equal) their local edges are candidates to move; the LP
///     maximize   Σ l_ij
///     subject to 0 ≤ l_ij ≤ b_ij,  Σ_k (l_qk − l_kq) = 0  ∀q
/// moves as many of them as possible while preserving load balance.  The
/// pass iterates; after a configurable number of rounds the candidate
/// condition switches from ≥ to > ("strict") so zero-gain vertices stop
/// oscillating between boundaries (exactly the paper's remedy).
///
/// One deliberate difference from the paper's prose: a vertex eligible for
/// several destinations is counted only toward its best-gain destination,
/// so a vertex can never be double-committed by the LP.  bench_ablation
/// quantifies the (negligible) difference.

#include <cstdint>
#include <vector>

#include "core/balance.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"

namespace pigp::core {

struct Workspace;

struct RefineOptions {
  int max_rounds = 8;
  /// Round index from which candidates require out(v,j) - in(v) > 0
  /// instead of >= 0.
  int strict_after_round = 2;
  /// Stop when a round improves the cut by less than this.
  double min_gain = 1.0;
  /// Undo a round that made the cut worse (batch moves can interact) and
  /// stop.
  bool revert_on_regression = true;
  LpSolverKind solver = LpSolverKind::dense;
  lp::SimplexOptions simplex;
  int num_threads = 1;
};

struct RefineStats {
  int rounds = 0;
  double cut_before = 0.0;
  double cut_after = 0.0;
  std::int64_t vertices_moved = 0;
  std::int64_t lp_iterations = 0;
};

/// Iteratively refine \p partitioning in place; returns statistics.  Load
/// balance is preserved exactly (zero-net-flow constraints).  This batch
/// entry seeds a PartitionState with one O(V+E) rescan and delegates to
/// the state-driven overload.
[[nodiscard]] RefineStats refine_partitioning(
    const graph::Graph& g, graph::Partitioning& partitioning,
    const RefineOptions& options = {});

/// Boundary-local refinement over a maintained state: candidates are
/// gathered from the state's boundary index (O(boundary) per round, never
/// a full vertex sweep), per-round cuts come from the O(deg)-per-move
/// bookkeeping, and a regressing round is undone by replaying its move
/// journal in reverse (O(moved)) instead of copying the partitioning.
/// \p state must describe (g, partitioning) on entry and is left
/// consistent with the refined partitioning.  A non-null \p ws supplies
/// the boundary/candidate/journal buffers, so a converged call (no
/// positive-gain candidates) allocates nothing; decisions are identical
/// either way.
[[nodiscard]] RefineStats refine_partitioning(
    const graph::Graph& g, graph::Partitioning& partitioning,
    graph::PartitionState& state, const RefineOptions& options = {},
    Workspace* ws = nullptr);

}  // namespace pigp::core
