#include "core/multilevel.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "runtime/timer.hpp"
#include "support/check.hpp"

namespace pigp::core {

Coarsening coarsen_heavy_edge(const graph::Graph& g) {
  const graph::VertexId n = g.num_vertices();
  std::vector<graph::VertexId> match(static_cast<std::size_t>(n),
                                     graph::kInvalidVertex);
  // Greedy heavy-edge matching in vertex order.
  for (graph::VertexId v = 0; v < n; ++v) {
    if (match[static_cast<std::size_t>(v)] != graph::kInvalidVertex) continue;
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    graph::VertexId best = graph::kInvalidVertex;
    double best_weight = -1.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != graph::kInvalidVertex) {
        continue;
      }
      if (weights[i] > best_weight ||
          (weights[i] == best_weight && u < best)) {
        best = u;
        best_weight = weights[i];
      }
    }
    if (best != graph::kInvalidVertex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  Coarsening result;
  result.fine_to_coarse.assign(static_cast<std::size_t>(n),
                               graph::kInvalidVertex);
  graph::GraphBuilder builder;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (result.fine_to_coarse[static_cast<std::size_t>(v)] !=
        graph::kInvalidVertex) {
      continue;
    }
    const graph::VertexId partner = match[static_cast<std::size_t>(v)];
    double weight = g.vertex_weight(v);
    if (partner != v) weight += g.vertex_weight(partner);
    const graph::VertexId cv = builder.add_vertex(weight);
    result.fine_to_coarse[static_cast<std::size_t>(v)] = cv;
    if (partner != v) {
      result.fine_to_coarse[static_cast<std::size_t>(partner)] = cv;
    }
  }
  // Aggregate edges (builder merges duplicates by summing weights).
  for (graph::VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    const graph::VertexId cv =
        result.fine_to_coarse[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= v) continue;  // each fine edge once
      const graph::VertexId cu =
          result.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
      if (cu != cv) builder.add_edge(cv, cu, weights[i]);
    }
  }
  result.coarse = builder.build();
  return result;
}

graph::Partitioning project_to_coarse(const Coarsening& c,
                                      const graph::Partitioning& fine) {
  graph::Partitioning coarse;
  coarse.num_parts = fine.num_parts;
  coarse.part.assign(static_cast<std::size_t>(c.coarse.num_vertices()),
                     graph::kUnassigned);
  // A coarse vertex merges at most two fine vertices; the first constituent
  // (smaller fine id) decides its partition — deterministic, and the
  // subsequent coarse balance/refinement passes correct any mismatch.
  for (std::size_t v = 0; v < c.fine_to_coarse.size(); ++v) {
    const auto cv = static_cast<std::size_t>(c.fine_to_coarse[v]);
    if (coarse.part[cv] == graph::kUnassigned) {
      coarse.part[cv] = fine.part[v];
    }
  }
  return coarse;
}

graph::Partitioning project_to_fine(const Coarsening& c,
                                    const graph::Partitioning& coarse,
                                    graph::VertexId fine_vertices) {
  PIGP_CHECK(static_cast<std::size_t>(fine_vertices) ==
                 c.fine_to_coarse.size(),
             "fine vertex count mismatch");
  graph::Partitioning fine;
  fine.num_parts = coarse.num_parts;
  fine.part.resize(static_cast<std::size_t>(fine_vertices));
  for (std::size_t v = 0; v < c.fine_to_coarse.size(); ++v) {
    fine.part[v] = coarse.part[static_cast<std::size_t>(
        c.fine_to_coarse[v])];
  }
  return fine;
}

IgpResult multilevel_repartition(const graph::Graph& g_new,
                                 const graph::Partitioning& old_partitioning,
                                 graph::VertexId n_old,
                                 const MultilevelOptions& options) {
  const runtime::WallTimer total_timer;
  IgpResult result;

  // Step 1 on the fine graph, as in the flat algorithm.
  runtime::WallTimer timer;
  AssignOptions assign_options;
  assign_options.num_threads = options.igp.num_threads;
  graph::Partitioning current =
      extend_assignment(g_new, old_partitioning, n_old, assign_options);
  result.timings.assign = timer.seconds();

  // Build the coarsening hierarchy of the new graph.
  timer.reset();
  std::vector<Coarsening> hierarchy;
  const graph::Graph* level_graph = &g_new;
  for (int level = 0; level < options.max_levels; ++level) {
    if (level_graph->num_vertices() <= options.coarsest_size) break;
    Coarsening c = coarsen_heavy_edge(*level_graph);
    // Coarsening stalls on star-like graphs; stop if progress is small.
    if (c.coarse.num_vertices() >
        level_graph->num_vertices() * 9 / 10) {
      break;
    }
    hierarchy.push_back(std::move(c));
    level_graph = &hierarchy.back().coarse;
  }

  // Project the assignment down the hierarchy.
  std::vector<graph::Partitioning> projected;
  projected.push_back(current);
  {
    const graph::Graph* g = &g_new;
    for (const Coarsening& c : hierarchy) {
      projected.push_back(project_to_coarse(c, projected.back()));
      g = &c.coarse;
      (void)g;
    }
  }

  // Balance at the coarsest level with a tolerance matching the coarse
  // vertex granularity.
  BalanceOptions coarse_balance = options.igp.balance;
  {
    const graph::Graph& coarsest =
        hierarchy.empty() ? g_new : hierarchy.back().coarse;
    double max_vw = 1.0;
    for (graph::VertexId v = 0; v < coarsest.num_vertices(); ++v) {
      max_vw = std::max(max_vw, coarsest.vertex_weight(v));
    }
    coarse_balance.tolerance =
        std::max(options.igp.balance.tolerance, max_vw);
    graph::Partitioning& coarse_part = projected.back();
    const BalanceResult coarse_result =
        balance_load(coarsest, coarse_part, coarse_balance);
    result.balance_result.stages = coarse_result.stages;
  }

  // Uncoarsen: project up, refine at every level, then exact fine balance.
  for (std::size_t level = hierarchy.size(); level-- > 0;) {
    const graph::Graph& fine_graph =
        level == 0 ? g_new : hierarchy[level - 1].coarse;
    projected[level] = project_to_fine(
        hierarchy[level], projected[level + 1],
        fine_graph.num_vertices());
    if (options.igp.refine) {
      RefineOptions per_level = options.igp.refinement;
      per_level.max_rounds = std::max(1, per_level.max_rounds / 2);
      (void)refine_partitioning(fine_graph, projected[level], per_level);
    }
  }
  current = std::move(projected.front());

  // Final exact balance + refinement on the fine graph.
  const BalanceResult fine_result =
      balance_load(g_new, current, options.igp.balance);
  result.balanced = fine_result.balanced;
  for (const BalanceStage& s : fine_result.stages) {
    result.balance_result.stages.push_back(s);
  }
  result.balance_result.balanced = fine_result.balanced;
  result.balance_result.final_max_deviation =
      fine_result.final_max_deviation;
  result.timings.balance = timer.seconds();

  if (options.igp.refine) {
    timer.reset();
    result.refine_stats =
        refine_partitioning(g_new, current, options.igp.refinement);
    result.timings.refine = timer.seconds();
  }

  result.stages = static_cast<int>(result.balance_result.stages.size());
  result.partitioning = std::move(current);
  result.timings.total = total_timer.seconds();
  return result;
}

}  // namespace pigp::core
