#include "core/workspace.hpp"

namespace pigp::core {

void Workspace::invalidate_vertex_ids() {
  layering.invalidate();
  ++remap_generation;
}

void Workspace::release_memory() {
  assign_distance.release();
  assign_label.release();
  std::vector<graph::VertexId>().swap(assign_frontier);
  std::vector<graph::VertexId>().swap(assign_next);
  std::vector<double>().swap(balance_targets);
  std::vector<double>().swap(balance_excess);
  layering.release();
  std::vector<graph::VertexId>().swap(refine_boundary);
  refine_candidates = pigp::DenseMatrix<std::vector<GainCandidate>>();
  std::vector<RefineThreadScratch>().swap(refine_scratch);
  decltype(refine_journal)().swap(refine_journal);
  std::vector<double>().swap(rollback_aggregates.weight);
  std::vector<double>().swap(rollback_aggregates.boundary_cost);
  std::vector<std::int64_t>().swap(spmd_eps_rows);
  std::vector<std::int64_t>().swap(spmd_moves_flat);
}

}  // namespace pigp::core
