#pragma once

/// \file parallel_for.hpp
/// Deterministic blocked parallel loop on top of ThreadPool.
///
/// Work is split into contiguous index blocks assigned statically, so the
/// set of indices each worker touches is a pure function of (range, threads)
/// — no scheduling nondeterminism leaks into results as long as the body is
/// data-race-free.

#include <cstdint>
#include <future>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace pigp::runtime {

/// Invoke body(i) for every i in [begin, end) using \p pool; blocks until
/// done.  The first exception thrown by any block is rethrown.
template <typename Body>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  Body&& body) {
  PIGP_CHECK(begin <= end, "empty-or-forward range required");
  const std::int64_t count = end - begin;
  if (count == 0) return;
  const auto blocks =
      static_cast<std::int64_t>(std::min<std::int64_t>(pool.size(), count));
  if (blocks <= 1) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<std::size_t>(blocks));
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t lo = begin + count * blk / blocks;
    const std::int64_t hi = begin + count * (blk + 1) / blocks;
    pending.push_back(pool.submit([lo, hi, &body]() {
      for (std::int64_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : pending) f.get();  // propagates the first exception
}

/// Map-reduce over [begin, end): combine(acc, map(i)) folded left-to-right
/// per block, blocks combined in block order — deterministic for
/// non-associative combines such as floating-point addition.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::int64_t begin,
                                std::int64_t end, T init, Map&& map,
                                Combine&& combine) {
  PIGP_CHECK(begin <= end, "empty-or-forward range required");
  const std::int64_t count = end - begin;
  if (count == 0) return init;
  const auto blocks =
      static_cast<std::int64_t>(std::min<std::int64_t>(pool.size(), count));
  if (blocks <= 1) {
    T acc = init;
    for (std::int64_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }

  std::vector<std::future<T>> pending;
  pending.reserve(static_cast<std::size_t>(blocks));
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t lo = begin + count * blk / blocks;
    const std::int64_t hi = begin + count * (blk + 1) / blocks;
    pending.push_back(pool.submit([lo, hi, &map, &combine]() {
      T acc = map(lo);
      for (std::int64_t i = lo + 1; i < hi; ++i) acc = combine(acc, map(i));
      return acc;
    }));
  }
  T acc = init;
  for (auto& f : pending) acc = combine(acc, f.get());
  return acc;
}

}  // namespace pigp::runtime
