#include "runtime/spmd.hpp"

#include <cstring>
#include <exception>
#include <thread>

namespace pigp::runtime {

// ---------------------------------------------------------------- Machine

Machine::Machine(int num_ranks) : num_ranks_(num_ranks) {
  PIGP_CHECK(num_ranks >= 1, "machine needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    auto box = std::make_unique<Mailbox>();
    box->queues.resize(static_cast<std::size_t>(num_ranks));
    mailboxes_.push_back(std::move(box));
  }
  reduce_slots_.resize(static_cast<std::size_t>(num_ranks));
  gather_slots_.resize(static_cast<std::size_t>(num_ranks));
}

void Machine::run(const std::function<void(RankContext&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks_));

  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &body, &errors]() {
      RankContext ctx(this, r, num_ranks_);
      try {
        body(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Machine::send(int from, int to, Packet packet) {
  PIGP_CHECK(to >= 0 && to < num_ranks_, "destination rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard lock(box.mutex);
    box.queues[static_cast<std::size_t>(from)].push_back(std::move(packet));
  }
  box.cv.notify_all();
}

Packet Machine::recv(int self, int from) {
  PIGP_CHECK(from >= 0 && from < num_ranks_, "source rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock lock(box.mutex);
  auto& queue = box.queues[static_cast<std::size_t>(from)];
  box.cv.wait(lock, [&queue]() { return !queue.empty(); });
  Packet packet = std::move(queue.front());
  queue.pop_front();
  return packet;
}

void Machine::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [this, generation]() {
      return barrier_generation_ != generation;
    });
  }
}

// ------------------------------------------------------------ RankContext

void RankContext::send(int to, Packet packet) {
  machine_->send(rank_, to, std::move(packet));
}

Packet RankContext::recv(int from) { return machine_->recv(rank_, from); }

void RankContext::barrier() { machine_->barrier_wait(); }

double RankContext::allreduce(
    double value, const std::function<double(double, double)>& op) {
  machine_->reduce_slots_[static_cast<std::size_t>(rank_)] = value;
  barrier();  // all slots written
  double acc = machine_->reduce_slots_[0];
  for (int r = 1; r < num_ranks_; ++r) {
    acc = op(acc, machine_->reduce_slots_[static_cast<std::size_t>(r)]);
  }
  barrier();  // all ranks done reading before slots are reused
  return acc;
}

std::vector<Packet> RankContext::allgather(Packet packet) {
  machine_->gather_slots_[static_cast<std::size_t>(rank_)] =
      std::move(packet);
  barrier();
  std::vector<Packet> all = machine_->gather_slots_;  // copy for every rank
  barrier();
  return all;
}

Packet RankContext::broadcast(int root, Packet packet) {
  PIGP_CHECK(root >= 0 && root < num_ranks_, "broadcast root out of range");
  if (rank_ == root) {
    machine_->gather_slots_[static_cast<std::size_t>(root)] =
        std::move(packet);
  }
  barrier();
  Packet received = machine_->gather_slots_[static_cast<std::size_t>(root)];
  barrier();
  return received;
}

}  // namespace pigp::runtime
