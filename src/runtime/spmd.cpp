#include "runtime/spmd.hpp"

#include <atomic>
#include <cstring>
#include <exception>
#include <thread>

namespace pigp::runtime {
namespace {

/// Internal unwind signal: a peer died and the machine aborted the run.
/// Thrown out of recv/barrier to unwind a blocked rank's stack; the run()
/// thread wrapper swallows it (the *peer's* exception is the real error).
struct MachineAborted {};

}  // namespace

// ---------------------------------------------------------------- Machine

Machine::Machine(int num_ranks) : num_ranks_(num_ranks) {
  PIGP_CHECK(num_ranks >= 1, "machine needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    auto box = std::make_unique<Mailbox>();
    box->queues.resize(static_cast<std::size_t>(num_ranks));
    mailboxes_.push_back(std::move(box));
  }
  reduce_slots_.resize(static_cast<std::size_t>(num_ranks));
  gather_slots_.resize(static_cast<std::size_t>(num_ranks));
}

void Machine::run(const std::function<void(RankContext&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks_));
  std::vector<int> arrival(static_cast<std::size_t>(num_ranks_), -1);
  std::atomic<int> arrival_counter{0};

  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back(
        [this, r, &body, &errors, &arrival, &arrival_counter]() {
          RankContext ctx(this, r, num_ranks_);
          try {
            body(ctx);
          } catch (const MachineAborted&) {
            // Unwound by a peer's failure; not an error of this rank.
          } catch (...) {
            arrival[static_cast<std::size_t>(r)] =
                arrival_counter.fetch_add(1);
            errors[static_cast<std::size_t>(r)] = std::current_exception();
            abort_all();
          }
        });
  }
  for (std::thread& t : threads) t.join();

  if (aborted_.load(std::memory_order_acquire)) {
    reset_after_abort();
    // Rethrow the FIRST failure by arrival time: later errors are usually
    // secondary (a peer observing the abort), not the root cause.
    int first = -1;
    for (int r = 0; r < num_ranks_; ++r) {
      if (!errors[static_cast<std::size_t>(r)]) continue;
      if (first < 0 || arrival[static_cast<std::size_t>(r)] <
                           arrival[static_cast<std::size_t>(first)]) {
        first = r;
      }
    }
    if (first >= 0) {
      std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
    }
  }
}

void Machine::abort_all() {
  aborted_.store(true, std::memory_order_release);
  for (const auto& box : mailboxes_) {
    // Take the lock so a peer between its predicate check and its wait
    // cannot miss the notification.
    sync::MutexLock lock(box->mutex);
    box->cv.notify_all();
  }
  {
    sync::MutexLock lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

void Machine::reset_after_abort() {
  // Only aborted runs leave residue: queued packets from dead senders, a
  // half-filled barrier count, stale collective slots.  Clean runs leave
  // the machine empty by construction, and resetting unconditionally
  // would be wasted work between back-to-back runs.
  for (const auto& box : mailboxes_) {
    sync::MutexLock lock(box->mutex);
    for (auto& queue : box->queues) queue.clear();
  }
  {
    sync::MutexLock lock(barrier_mutex_);
    barrier_arrived_ = 0;
  }
  for (double& slot : reduce_slots_) slot = 0.0;
  for (Packet& slot : gather_slots_) slot = Packet{};
  aborted_.store(false, std::memory_order_release);
}

void Machine::send(int from, int to, Packet packet) {
  PIGP_CHECK(to >= 0 && to < num_ranks_, "destination rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    sync::MutexLock lock(box.mutex);
    box.queues[static_cast<std::size_t>(from)].push_back(std::move(packet));
  }
  box.cv.notify_all();
}

Packet Machine::recv(int self, int from) {
  PIGP_CHECK(from >= 0 && from < num_ranks_, "source rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  sync::MutexLock lock(box.mutex);
  auto& queue = box.queues[static_cast<std::size_t>(from)];
  while (queue.empty() && !aborted_.load(std::memory_order_acquire)) {
    box.cv.wait(box.mutex);
  }
  if (queue.empty()) throw MachineAborted{};
  Packet packet = std::move(queue.front());
  queue.pop_front();
  return packet;
}

void Machine::barrier_wait() {
  sync::MutexLock lock(barrier_mutex_);
  if (aborted_.load(std::memory_order_acquire)) throw MachineAborted{};
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    while (barrier_generation_ == generation &&
           !aborted_.load(std::memory_order_acquire)) {
      barrier_cv_.wait(barrier_mutex_);
    }
    if (barrier_generation_ == generation) throw MachineAborted{};
  }
}

// ------------------------------------------------------------ RankContext

void RankContext::send(int to, Packet packet) {
  machine_->send(rank_, to, std::move(packet));
}

Packet RankContext::recv(int from) { return machine_->recv(rank_, from); }

void RankContext::barrier() { machine_->barrier_wait(); }

double RankContext::allreduce(
    double value, const std::function<double(double, double)>& op) {
  machine_->reduce_slots_[static_cast<std::size_t>(rank_)] = value;
  barrier();  // all slots written
  double acc = machine_->reduce_slots_[0];
  for (int r = 1; r < num_ranks_; ++r) {
    acc = op(acc, machine_->reduce_slots_[static_cast<std::size_t>(r)]);
  }
  barrier();  // all ranks done reading before slots are reused
  return acc;
}

std::vector<Packet> RankContext::allgather(Packet packet) {
  machine_->gather_slots_[static_cast<std::size_t>(rank_)] =
      std::move(packet);
  barrier();
  std::vector<Packet> all = machine_->gather_slots_;  // copy for every rank
  barrier();
  return all;
}

Packet RankContext::broadcast(int root, Packet packet) {
  PIGP_CHECK(root >= 0 && root < num_ranks_, "broadcast root out of range");
  if (rank_ == root) {
    machine_->gather_slots_[static_cast<std::size_t>(root)] =
        std::move(packet);
  }
  barrier();
  Packet received = machine_->gather_slots_[static_cast<std::size_t>(root)];
  barrier();
  return received;
}

}  // namespace pigp::runtime
