#pragma once

/// \file sync.hpp
/// Annotated synchronization primitives — the only place in the library
/// allowed to name std::mutex / std::condition_variable.
///
/// Every lock in the runtime is a pigp::sync::Mutex and every wait is a
/// pigp::sync::CondVar so that Clang's thread-safety analysis
/// (-Wthread-safety, a compile-time capability system in the Abseil
/// GUARDED_BY tradition) can prove the lock discipline instead of TSan
/// having to catch violations dynamically:
///
///   * a field annotated PIGP_GUARDED_BY(m) cannot be touched unless m is
///     held on every path to the access;
///   * a helper annotated PIGP_REQUIRES(m) cannot be called without m;
///   * MutexLock is a scoped capability, so forgetting to unlock — or
///     unlocking twice — is a compile error, not a deadlock in production.
///
/// Under GCC/MSVC all annotations expand to nothing and the wrappers are
/// zero-cost inline forwards to the std primitives, so non-Clang builds
/// are bit-identical to the pre-annotation code.  The clang CI jobs build
/// with -Wthread-safety -Werror; the project linter (ci/lint_invariants.py)
/// rejects raw std::mutex/std::condition_variable anywhere else in src/,
/// so new concurrent code cannot opt out by accident.
///
/// House rules the annotations cannot express (and the linter enforces):
/// no std::atomic<std::shared_ptr> (libstdc++ synchronizes it through a
/// spin-lock bit TSan cannot see through — use a mutex-guarded handoff as
/// api/view.hpp does), and no blocking queue/transport call while holding
/// a capability.
///
/// Analysis caveat baked into the API: Clang checks lambda bodies as
/// separate unannotated functions, so a wait *predicate* lambda touching
/// guarded state would warn.  CondVar therefore exposes plain wait /
/// wait_until and callers write the predicate loop explicitly in the
/// annotated function:
///
///   sync::MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ is GUARDED_BY(mutex_)

#include <chrono>
#include <condition_variable>
#include <mutex>

// Thread-safety attributes are a Clang extension; other compilers see
// no-ops.  (The SWIG guard mirrors Abseil: wrapper generators choke on
// attributes.)
#if defined(__clang__) && !defined(SWIG)
#define PIGP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PIGP_THREAD_ANNOTATION_(x)
#endif

/// A type whose instances are capabilities ("mutex" names the kind in
/// diagnostics).
#define PIGP_CAPABILITY(x) PIGP_THREAD_ANNOTATION_(capability(x))
/// An RAII type that acquires a capability in its constructor and releases
/// it in its destructor.
#define PIGP_SCOPED_CAPABILITY PIGP_THREAD_ANNOTATION_(scoped_lockable)
/// Field access requires the given capability to be held.
#define PIGP_GUARDED_BY(x) PIGP_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee access requires the given capability to be held.
#define PIGP_PT_GUARDED_BY(x) PIGP_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Callers must hold the listed capabilities (the "_locked helper"
/// contract).
#define PIGP_REQUIRES(...) \
  PIGP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PIGP_REQUIRES_SHARED(...) \
  PIGP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// The function acquires the listed capabilities (held on return).
#define PIGP_ACQUIRE(...) \
  PIGP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// The function releases the listed capabilities.
#define PIGP_RELEASE(...) \
  PIGP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns the given value.
#define PIGP_TRY_ACQUIRE(...) \
  PIGP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Callers must NOT hold the listed capabilities (deadlock prevention for
/// functions that take them internally).
#define PIGP_EXCLUDES(...) PIGP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// The function returns a reference to the given capability.
#define PIGP_RETURN_CAPABILITY(x) PIGP_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch — document why next to every use.
#define PIGP_NO_THREAD_SAFETY_ANALYSIS \
  PIGP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace pigp::sync {

/// Annotated std::mutex.  Prefer MutexLock over manual lock()/unlock().
class PIGP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PIGP_ACQUIRE() { m_.lock(); }
  void unlock() PIGP_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() PIGP_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped capability: acquires the mutex for exactly the enclosing scope.
class PIGP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PIGP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() PIGP_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Annotated condition variable.  wait() requires (and documents) the
/// mutex it atomically releases; there are no predicate overloads — write
/// the loop in the annotated caller (see the file comment).
///
/// Implementation note: std::condition_variable::wait needs a
/// std::unique_lock, so wait() adopts the already-held native mutex and
/// releases the adoption again on every exit path — native performance, no
/// condition_variable_any indirection.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release \p m, sleep, reacquire.  Spurious wakeups happen;
  /// callers loop on their predicate.
  void wait(Mutex& m) PIGP_REQUIRES(m) {
    std::unique_lock<std::mutex> adopted(m.m_, std::adopt_lock);
    const Reattach reattach{adopted};
    cv_.wait(adopted);
  }

  /// wait() with a deadline; returns cv_status::timeout once \p deadline
  /// has passed (the mutex is reacquired either way).
  std::cv_status wait_until(Mutex& m,
                            std::chrono::steady_clock::time_point deadline)
      PIGP_REQUIRES(m) {
    std::unique_lock<std::mutex> adopted(m.m_, std::adopt_lock);
    const Reattach reattach{adopted};
    return cv_.wait_until(adopted, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  /// Hands ownership of the adopted native mutex back before the
  /// unique_lock dies, on normal return and on unwind alike — the caller's
  /// MutexLock remains the one true owner.
  struct Reattach {
    std::unique_lock<std::mutex>& lock;
    ~Reattach() { lock.release(); }
  };

  std::condition_variable cv_;
};

}  // namespace pigp::sync
