#include "runtime/thread_pool.hpp"

#include "support/check.hpp"

namespace pigp::runtime {

ThreadPool::ThreadPool(int num_threads) {
  PIGP_CHECK(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions
  }
}

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace pigp::runtime
