#pragma once

/// \file delta_queue.hpp
/// Bounded blocking MPMC queue — the ingest buffer of pigp::AsyncSession.
///
/// Modeled on the producer/consumer shape of PARSA's streaming partitioner
/// (a reader thread fills a size-limited thread-safe queue while partition
/// workers drain it): a fixed capacity gives natural backpressure — when
/// the repartitioning pipeline falls behind, producers block in push()
/// instead of growing an unbounded backlog — and close() gives shutdown
/// *drain* semantics: producers are refused immediately, consumers keep
/// popping until the queue is empty and only then see "closed".
///
/// Mutex + two condition variables; every operation is safe from any
/// number of producer and consumer threads, and the lock discipline is
/// compile-checked: every shared field is PIGP_GUARDED_BY(mutex_) and the
/// dequeue helper is PIGP_REQUIRES(mutex_), so Clang proves no access
/// escapes the lock.  This is deliberately not a lock-free queue: items
/// are whole GraphDeltas (microseconds of work each), so queue
/// synchronization is noise — the lock-free structure in this subsystem is
/// the read side (api/view.hpp), where per-lookup cost actually matters.

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "runtime/sync.hpp"

namespace pigp::runtime {

template <typename T>
class BoundedQueue {
 public:
  /// \p capacity >= 1 items (there is no partial/overweight admission:
  /// unlike PARSA's byte-budget queue the bound is a simple item count).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue.  Returns
  /// false — without enqueuing — when the queue is (or becomes) closed.
  bool push(T item) {
    {
      sync::MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue only if there is room right now; false when full or closed
  /// (\p item is left untouched so the caller can retry or drop it).
  bool try_push(T& item) {
    {
      sync::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and dequeue it.  Returns nullopt
  /// only when the queue is closed AND drained — items enqueued before
  /// close() are always delivered.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      sync::MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
      item = pop_locked();
      if (!item) return std::nullopt;  // closed and drained
    }
    not_full_.notify_one();
    return item;
  }

  /// pop() with a deadline: additionally returns nullopt when \p timeout
  /// elapses with the queue still empty (and not closed).  Lets a consumer
  /// multiplex this queue with another completion channel.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::optional<T> item;
    {
      sync::MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) {
        if (not_empty_.wait_until(mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      item = pop_locked();
      if (!item) return std::nullopt;  // timeout, or closed and drained
    }
    not_full_.notify_one();
    return item;
  }

  /// Dequeue only if an item is available right now.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      sync::MutexLock lock(mutex_);
      item = pop_locked();
      if (!item) return std::nullopt;
    }
    not_full_.notify_one();
    return item;
  }

  /// Refuse all future pushes and wake every waiter.  Consumers drain the
  /// remaining items, then see nullopt.  Idempotent.
  void close() {
    {
      sync::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    sync::MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    sync::MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Largest size ever reached — how close the stream came to blocking.
  [[nodiscard]] std::size_t high_watermark() const {
    sync::MutexLock lock(mutex_);
    return high_watermark_;
  }

 private:
  /// Dequeue the head if there is one.  Callers notify not_full_ after
  /// releasing the lock (never while holding it — the woken producer would
  /// just collide with the still-held mutex).
  std::optional<T> pop_locked() PIGP_REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  const std::size_t capacity_;
  mutable sync::Mutex mutex_;
  sync::CondVar not_full_;
  sync::CondVar not_empty_;
  std::deque<T> items_ PIGP_GUARDED_BY(mutex_);
  std::size_t high_watermark_ PIGP_GUARDED_BY(mutex_) = 0;
  bool closed_ PIGP_GUARDED_BY(mutex_) = false;
};

}  // namespace pigp::runtime
