#pragma once

/// \file delta_queue.hpp
/// Bounded blocking MPMC queue — the ingest buffer of pigp::AsyncSession.
///
/// Modeled on the producer/consumer shape of PARSA's streaming partitioner
/// (a reader thread fills a size-limited thread-safe queue while partition
/// workers drain it): a fixed capacity gives natural backpressure — when
/// the repartitioning pipeline falls behind, producers block in push()
/// instead of growing an unbounded backlog — and close() gives shutdown
/// *drain* semantics: producers are refused immediately, consumers keep
/// popping until the queue is empty and only then see "closed".
///
/// Mutex + two condition variables; every operation is safe from any
/// number of producer and consumer threads.  This is deliberately not a
/// lock-free queue: items are whole GraphDeltas (microseconds of work
/// each), so queue synchronization is noise — the lock-free structure in
/// this subsystem is the read side (api/view.hpp), where per-lookup cost
/// actually matters.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pigp::runtime {

template <typename T>
class BoundedQueue {
 public:
  /// \p capacity >= 1 items (there is no partial/overweight admission:
  /// unlike PARSA's byte-budget queue the bound is a simple item count).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue.  Returns
  /// false — without enqueuing — when the queue is (or becomes) closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue only if there is room right now; false when full or closed
  /// (\p item is left untouched so the caller can retry or drop it).
  bool try_push(T& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and dequeue it.  Returns nullopt
  /// only when the queue is closed AND drained — items enqueued before
  /// close() are always delivered.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked(lock);
  }

  /// pop() with a deadline: additionally returns nullopt when \p timeout
  /// elapses with the queue still empty (and not closed).  Lets a consumer
  /// multiplex this queue with another completion channel.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    return pop_locked(lock);
  }

  /// Dequeue only if an item is available right now.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    return pop_locked(lock);
  }

  /// Refuse all future pushes and wake every waiter.  Consumers drain the
  /// remaining items, then see nullopt.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Largest size ever reached — how close the stream came to blocking.
  [[nodiscard]] std::size_t high_watermark() const {
    std::lock_guard lock(mutex_);
    return high_watermark_;
  }

 private:
  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace pigp::runtime
