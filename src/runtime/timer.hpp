#pragma once

/// \file timer.hpp
/// Wall-clock timing for the Time-s / Time-p columns of the paper's tables.

#include <chrono>

namespace pigp::runtime {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pigp::runtime
