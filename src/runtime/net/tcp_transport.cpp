#include "runtime/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <thread>

#include "runtime/sync.hpp"

namespace pigp::net {
namespace {

constexpr std::uint32_t kFrameMagic = 0x50494750;  // "PIGP"
constexpr std::uint8_t kFrameVersion = 1;
// A frame claiming more than this is corruption, not a real message; the
// cap keeps a flipped length byte from demanding a terabyte allocation.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 40;

[[noreturn]] void throw_errno(const std::string& what, int err) {
  // generic_category().message instead of strerror: rank threads can fail
  // concurrently, and strerror's shared buffer is not thread-safe
  // (clang-tidy concurrency-mt-unsafe).
  throw TransportError(what + ": " + std::generic_category().message(err));
}

void set_socket_timeouts(int fd, const TcpOptions& options) {
  const auto to_timeval = [](int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return tv;
  };
  const timeval rcv = to_timeval(options.recv_timeout_ms);
  const timeval snd = to_timeval(options.send_timeout_ms);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in resolve(const TcpEndpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(endpoint.host.c_str(), nullptr, &hints,
                               &result);
  if (rc != 0 || result == nullptr) {
    // glibc's gai_strerror returns pointers into a static table of
    // constant strings, which is MT-safe in practice; POSIX does not
    // guarantee it, hence the suppression.
    throw TransportError("cannot resolve host \"" + endpoint.host + "\": " +
                         ::gai_strerror(rc));  // NOLINT(concurrency-mt-unsafe)
  }
  addr.sin_addr =
      reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n =
        ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) {
      throw TransportError("send timed out");
    }
    if (err == EPIPE || err == ECONNRESET) {
      throw TransportError("peer closed the connection during send");
    }
    throw_errno("send failed", err);
  }
}

void read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      throw TransportError("peer closed the connection");
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) {
      throw TransportError("recv timed out");
    }
    throw_errno("recv failed", err);
  }
}

int bind_listener(const TcpEndpoint& endpoint, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket failed", errno);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve(endpoint);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("bind to " + endpoint.host + ":" +
                    std::to_string(endpoint.port) + " failed",
                err);
  }
  if (::listen(fd, std::max(backlog, 1)) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("listen failed", err);
  }
  return fd;
}

}  // namespace

// ------------------------------------------------------------ TcpTransport

TcpTransport::TcpTransport(int rank, std::vector<TcpEndpoint> endpoints,
                           TcpOptions options)
    : rank_(rank),
      endpoints_(std::move(endpoints)),
      options_(std::move(options)) {
  if (rank_ < 0 || rank_ >= static_cast<int>(endpoints_.size())) {
    throw TransportError("rank out of range of the endpoint list",
                         FaultClass::fatal);
  }
  chain_ = parse_filter_chain(options_.filters);
  for (const auto& filter : chain_) chain_ids_.push_back(filter->id());
  listen_fd_ = bind_listener(endpoints_[static_cast<std::size_t>(rank_)],
                             num_ranks());
  try {
    establish_mesh();
  } catch (...) {
    close();
    throw;
  }
}

TcpTransport::TcpTransport(int rank, std::vector<TcpEndpoint> endpoints,
                           int listen_fd, TcpOptions options)
    : rank_(rank),
      endpoints_(std::move(endpoints)),
      options_(std::move(options)),
      listen_fd_(listen_fd) {
  if (rank_ < 0 || rank_ >= static_cast<int>(endpoints_.size())) {
    close();
    throw TransportError("rank out of range of the endpoint list",
                         FaultClass::fatal);
  }
  try {
    chain_ = parse_filter_chain(options_.filters);
    for (const auto& filter : chain_) chain_ids_.push_back(filter->id());
    establish_mesh();
  } catch (...) {
    close();
    throw;
  }
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::establish_mesh() {
  using Clock = std::chrono::steady_clock;
  const int n = num_ranks();
  peer_fds_.assign(static_cast<std::size_t>(n), -1);

  // Actively connect to every lower rank.  A lower rank's listener may not
  // be bound yet (workers launch in any order), so retry with exponential
  // backoff inside the connect budget.  Completed connects park in the
  // peer's kernel listen backlog until it reaches its accept loop, so the
  // sequential connect-then-accept phases below cannot deadlock.
  for (int peer = 0; peer < rank_; ++peer) {
    const sockaddr_in addr =
        resolve(endpoints_[static_cast<std::size_t>(peer)]);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.connect_timeout_ms);
    int backoff_ms = std::max(1, options_.connect_backoff_ms);
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket failed", errno);
      set_socket_timeouts(fd, options_);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        // Hello byte: tell the acceptor which rank this socket is.
        const auto hello = static_cast<std::uint8_t>(rank_);
        write_all(fd, &hello, 1);
        peer_fds_[static_cast<std::size_t>(peer)] = fd;
        break;
      }
      const int err = errno;
      ::close(fd);
      if (Clock::now() >= deadline) {
        throw_errno("connect to rank " + std::to_string(peer) + " at " +
                        endpoints_[static_cast<std::size_t>(peer)].host +
                        ":" +
                        std::to_string(
                            endpoints_[static_cast<std::size_t>(peer)]
                                .port) +
                        " exhausted its retry budget",
                    err);
      }
      // Clamp the sleep to the time left in the budget: an unclamped
      // backoff (e.g. 500ms against a 10ms budget) would overshoot the
      // deadline by a whole backoff step before the check above runs.
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      std::this_thread::sleep_for(
          std::min(std::chrono::milliseconds(backoff_ms),
                   std::max(remaining, std::chrono::milliseconds(0))));
      backoff_ms = std::min(backoff_ms * 2, 500);
    }
  }

  // Accept one connection from every higher rank; the hello byte says who.
  timeval accept_timeout{};
  accept_timeout.tv_sec = options_.connect_timeout_ms / 1000;
  accept_timeout.tv_usec = (options_.connect_timeout_ms % 1000) * 1000;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVTIMEO, &accept_timeout,
                     sizeof(accept_timeout));
  for (int pending = n - 1 - rank_; pending > 0; --pending) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) {
        throw TransportError("timed out waiting for " +
                             std::to_string(pending) +
                             " higher-ranked peer(s) to connect");
      }
      throw_errno("accept failed", err);
    }
    set_socket_timeouts(fd, options_);
    std::uint8_t hello = 0;
    read_exact(fd, &hello, 1);
    const int peer = hello;
    if (peer <= rank_ || peer >= n ||
        peer_fds_[static_cast<std::size_t>(peer)] != -1) {
      ::close(fd);
      throw TransportError("unexpected hello from rank " +
                           std::to_string(peer));
    }
    peer_fds_[static_cast<std::size_t>(peer)] = fd;
  }
}

int TcpTransport::fd_for(int peer, const char* what) const {
  // All three are caller bugs, not wire trouble: the identical call can
  // only fail the identical way, so they classify fatal (no retry).
  if (peer < 0 || peer >= num_ranks()) {
    throw TransportError(std::string(what) + ": rank out of range",
                         FaultClass::fatal);
  }
  if (closed_) {
    throw TransportError(std::string(what) + " on a closed transport",
                         FaultClass::fatal);
  }
  const int fd = peer_fds_[static_cast<std::size_t>(peer)];
  if (fd < 0) {
    throw TransportError(std::string(what) + ": no connection to rank " +
                             std::to_string(peer),
                         FaultClass::fatal);
  }
  return fd;
}

void TcpTransport::send(int to, Packet packet) {
  if (to == rank_) {
    self_queue_.push_back(std::move(packet));
    return;
  }
  const int fd = fd_for(to, "send");
  std::vector<std::uint8_t> payload =
      encode_through(chain_, packet.release_bytes());

  std::vector<std::uint8_t> header;
  header.reserve(4 + 1 + 1 + chain_ids_.size() + 8);
  const auto* magic = reinterpret_cast<const std::uint8_t*>(&kFrameMagic);
  header.insert(header.end(), magic, magic + 4);
  header.push_back(kFrameVersion);
  header.push_back(static_cast<std::uint8_t>(chain_ids_.size()));
  header.insert(header.end(), chain_ids_.begin(), chain_ids_.end());
  const auto payload_len = static_cast<std::uint64_t>(payload.size());
  const auto* len = reinterpret_cast<const std::uint8_t*>(&payload_len);
  header.insert(header.end(), len, len + 8);

  write_all(fd, header.data(), header.size());
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
  bytes_sent_ += header.size() + payload.size();
}

Packet TcpTransport::recv(int from) {
  if (from == rank_) {
    if (self_queue_.empty()) {
      throw TransportError(
          "recv from self with nothing queued (single-threaded transport "
          "cannot block on itself)",
          FaultClass::fatal);
    }
    Packet packet = std::move(self_queue_.front());
    self_queue_.pop_front();
    return packet;
  }
  const int fd = fd_for(from, "recv");

  std::uint8_t fixed[6];
  read_exact(fd, fixed, sizeof(fixed));
  std::uint32_t magic = 0;
  std::memcpy(&magic, fixed, 4);
  if (magic != kFrameMagic) {
    throw TransportError("bad frame magic (stream out of sync?)");
  }
  if (fixed[4] != kFrameVersion) {
    // A peer speaking another protocol version will still speak it on the
    // next attempt — structural, not transient.
    throw TransportError("unsupported frame version " +
                             std::to_string(static_cast<int>(fixed[4])),
                         FaultClass::fatal);
  }
  std::vector<std::uint8_t> filter_ids(fixed[5]);
  if (!filter_ids.empty()) {
    read_exact(fd, filter_ids.data(), filter_ids.size());
  }
  std::uint8_t len_bytes[8];
  read_exact(fd, len_bytes, sizeof(len_bytes));
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len, len_bytes, 8);
  if (payload_len > kMaxPayloadBytes) {
    throw TransportError("frame claims implausible payload of " +
                         std::to_string(payload_len) + " bytes");
  }
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(payload_len));
  if (!payload.empty()) read_exact(fd, payload.data(), payload.size());
  bytes_received_ += sizeof(fixed) + filter_ids.size() + 8 + payload_len;
  return Packet::from_bytes(decode_through(filter_ids, std::move(payload)));
}

void TcpTransport::close() noexcept {
  closed_ = true;
  for (int& fd : peer_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

// ---------------------------------------------------------- LocalTcpGroup

LocalTcpGroup make_local_tcp_group(int num_ranks) {
  if (num_ranks < 1) {
    throw TransportError("a TCP group needs at least one rank",
                         FaultClass::fatal);
  }
  LocalTcpGroup group;
  group.endpoints.resize(static_cast<std::size_t>(num_ranks));
  group.listen_fds.resize(static_cast<std::size_t>(num_ranks), -1);
  try {
    for (int r = 0; r < num_ranks; ++r) {
      TcpEndpoint endpoint{"127.0.0.1", 0};
      const int fd = bind_listener(endpoint, num_ranks);
      sockaddr_in addr{};
      socklen_t addr_len = sizeof(addr);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                        &addr_len) != 0) {
        const int err = errno;
        ::close(fd);
        throw_errno("getsockname failed", err);
      }
      endpoint.port = ntohs(addr.sin_port);
      group.endpoints[static_cast<std::size_t>(r)] = endpoint;
      group.listen_fds[static_cast<std::size_t>(r)] = fd;
    }
  } catch (...) {
    for (const int fd : group.listen_fds) {
      if (fd >= 0) ::close(fd);
    }
    throw;
  }
  return group;
}

// -------------------------------------------------------- run_tcp_loopback

namespace {

/// Process-local sense-reversing barrier with abort: a failing rank wakes
/// and fails its peers instead of leaving them parked forever.
class LocalBarrier {
 public:
  explicit LocalBarrier(int n) : n_(n) {}

  void wait() {
    sync::MutexLock lock(mutex_);
    if (aborted_) {
      throw TransportError("peer rank failed during a collective");
    }
    const std::uint64_t generation = generation_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    while (generation_ == generation && !aborted_) cv_.wait(mutex_);
    if (generation_ == generation && aborted_) {
      throw TransportError("peer rank failed during a collective");
    }
  }

  void abort() {
    {
      sync::MutexLock lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

 private:
  sync::Mutex mutex_;
  sync::CondVar cv_;
  int n_;
  int arrived_ PIGP_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ PIGP_GUARDED_BY(mutex_) = 0;
  bool aborted_ PIGP_GUARDED_BY(mutex_) = false;
};

/// Decorator for the loopback executor: every collective additionally
/// passes a process-local barrier, giving rank threads the happens-before
/// edges runtime::Machine's shared-memory collectives provide (TCP alone
/// orders nothing between threads of one process).
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(Transport& inner, LocalBarrier& barrier)
      : inner_(inner), barrier_(barrier) {}

  [[nodiscard]] int rank() const noexcept override { return inner_.rank(); }
  [[nodiscard]] int num_ranks() const noexcept override {
    return inner_.num_ranks();
  }
  void send(int to, Packet packet) override {
    inner_.send(to, std::move(packet));
  }
  [[nodiscard]] Packet recv(int from) override { return inner_.recv(from); }

  void barrier() override {
    inner_.barrier();
    barrier_.wait();
  }
  [[nodiscard]] double allreduce(
      double value,
      const std::function<double(double, double)>& op) override {
    const double result = inner_.allreduce(value, op);
    barrier_.wait();
    return result;
  }
  [[nodiscard]] std::vector<Packet> allgather(Packet packet) override {
    std::vector<Packet> all = inner_.allgather(std::move(packet));
    barrier_.wait();
    return all;
  }
  [[nodiscard]] Packet broadcast(int root, Packet packet) override {
    Packet result = inner_.broadcast(root, std::move(packet));
    barrier_.wait();
    return result;
  }

 private:
  Transport& inner_;
  LocalBarrier& barrier_;
};

}  // namespace

void run_tcp_loopback(int num_ranks, const TcpOptions& options,
                      const std::function<void(Transport&)>& body) {
  LocalTcpGroup group = make_local_tcp_group(num_ranks);
  LocalBarrier barrier(num_ranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));
  std::vector<int> arrival(static_cast<std::size_t>(num_ranks), -1);
  std::atomic<int> arrival_counter{0};

  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r]() {
      try {
        // The transport is scoped inside the try so stack unwinding closes
        // its sockets before abort() runs — peers blocked in TCP recv see
        // an orderly peer-closed failure, then the local barrier releases
        // anyone parked there.
        TcpTransport tcp(r, group.endpoints, group.listen_fds[
                             static_cast<std::size_t>(r)],
                         options);
        LoopbackTransport transport(tcp, barrier);
        body(transport);
      } catch (...) {
        arrival[static_cast<std::size_t>(r)] =
            arrival_counter.fetch_add(1);
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        barrier.abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  int first = -1;
  for (int r = 0; r < num_ranks; ++r) {
    if (!errors[static_cast<std::size_t>(r)]) continue;
    if (first < 0 || arrival[static_cast<std::size_t>(r)] <
                         arrival[static_cast<std::size_t>(first)]) {
      first = r;
    }
  }
  if (first >= 0) {
    std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
  }
}

}  // namespace pigp::net
