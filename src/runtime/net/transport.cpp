#include "runtime/net/transport.hpp"

namespace pigp::net {

// Default collectives over point-to-point messaging, rank 0 as the hub.
// Two hub round-trips per collective keeps the message count at O(ranks)
// and — more importantly — keeps every rank's view sequenced: a rank
// cannot leave a collective before the hub has heard from everyone.

void Transport::barrier() {
  const int n = num_ranks();
  if (n == 1) return;
  if (rank() == 0) {
    for (int r = 1; r < n; ++r) (void)recv(r);
    for (int r = 1; r < n; ++r) send(r, Packet{});
  } else {
    send(0, Packet{});
    (void)recv(0);
  }
}

double Transport::allreduce(
    double value, const std::function<double(double, double)>& op) {
  const int n = num_ranks();
  if (n == 1) return value;
  if (rank() == 0) {
    // Reduce in rank order: acc = slot[0]; acc = op(acc, slot[r]) — the
    // exact order runtime::Machine uses, so results are bit-identical.
    double acc = value;
    for (int r = 1; r < n; ++r) {
      Packet p = recv(r);
      acc = op(acc, p.unpack<double>());
    }
    for (int r = 1; r < n; ++r) {
      Packet out;
      out.pack(acc);
      send(r, std::move(out));
    }
    return acc;
  }
  Packet p;
  p.pack(value);
  send(0, std::move(p));
  Packet result = recv(0);
  return result.unpack<double>();
}

std::vector<Packet> Transport::allgather(Packet packet) {
  const int n = num_ranks();
  if (n == 1) {
    std::vector<Packet> all;
    all.push_back(std::move(packet));
    return all;
  }
  if (rank() == 0) {
    std::vector<std::vector<std::uint8_t>> images(
        static_cast<std::size_t>(n));
    images[0] = packet.release_bytes();
    for (int r = 1; r < n; ++r) {
      images[static_cast<std::size_t>(r)] = recv(r).release_bytes();
    }
    // Fan the full set back out as one nested packet per rank.
    for (int r = 1; r < n; ++r) {
      Packet out;
      for (const auto& image : images) out.pack_vector(image);
      send(r, std::move(out));
    }
    std::vector<Packet> all;
    all.reserve(static_cast<std::size_t>(n));
    for (auto& image : images) {
      all.push_back(Packet::from_bytes(std::move(image)));
    }
    return all;
  }
  send(0, std::move(packet));
  Packet bundle = recv(0);
  std::vector<Packet> all;
  all.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    all.push_back(Packet::from_bytes(bundle.unpack_vector<std::uint8_t>()));
  }
  return all;
}

Packet Transport::broadcast(int root, Packet packet) {
  const int n = num_ranks();
  if (root < 0 || root >= n) {
    throw TransportError("broadcast root out of range");
  }
  if (n == 1) return packet;
  if (rank() == root) {
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      Packet copy = Packet::from_bytes(packet.bytes());
      send(r, std::move(copy));
    }
    return packet;
  }
  return recv(root);
}

}  // namespace pigp::net
