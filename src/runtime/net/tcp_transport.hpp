#pragma once

/// \file tcp_transport.hpp
/// Transport over TCP sockets — one process (or thread) per rank.
///
/// Wire frame (all integers little-endian host order):
///
///   [u32 magic 0x50494750 "PIGP"] [u8 version = 1]
///   [u8 filter_count] [filter_count * u8 filter id]
///   [u64 payload_len] [payload bytes]
///
/// The payload is the packet's tagged byte image after the sender's filter
/// chain (filters.hpp) has been applied; the header records the applied
/// filter ids so the receiver decodes with exactly the sender's chain.
/// A frame with a bad magic/version, an unknown filter id, or an
/// implausible payload length is rejected with TransportError before any
/// large allocation.
///
/// Connection mesh: rank r binds a listener at endpoints[r] (or adopts a
/// pre-bound fd, see below), then actively connects to every LOWER rank
/// and accepts one connection from every HIGHER rank.  Each active
/// connection opens with a one-byte hello carrying the connector's rank,
/// which is how the acceptor maps sockets to peers.  Active connects retry
/// with exponential backoff until TcpOptions::connect_timeout_ms is
/// exhausted, so workers may be launched in any order (the kernel's listen
/// backlog holds early connections until the peer reaches accept).
///
/// FIFO per sender is inherited from TCP's in-order delivery: each rank
/// pair shares one dedicated socket.  recv honors
/// TcpOptions::recv_timeout_ms (SO_RCVTIMEO) and surfaces expiry — and a
/// peer closing its end mid-protocol — as TransportError, so a dead worker
/// releases its peers instead of hanging them.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "runtime/net/filters.hpp"
#include "runtime/net/transport.hpp"

namespace pigp::net {

/// Socket/wire tuning for TcpTransport.
struct TcpOptions {
  /// Total budget for establishing each outgoing connection (retries with
  /// backoff inside this budget; workers may start in any order).
  int connect_timeout_ms = 10000;
  /// Initial retry backoff; doubles per attempt, capped at 500 ms.
  int connect_backoff_ms = 10;
  int send_timeout_ms = 30000;
  int recv_timeout_ms = 30000;
  /// Comma-separated wire filter chain spec ("", "delta", "delta,zlib").
  std::string filters;
};

/// Where a rank listens.
struct TcpEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// TCP-backed Transport; see the file comment for the wire protocol.
/// Collectives are the hub-at-rank-0 defaults from Transport.  Not
/// thread-safe: one rank's transport belongs to one thread.
class TcpTransport final : public Transport {
 public:
  /// Bind a listener at endpoints[rank], then establish the full mesh.
  TcpTransport(int rank, std::vector<TcpEndpoint> endpoints,
               TcpOptions options = {});

  /// Adopt a pre-bound listening socket (ephemeral-port tests and
  /// launchers that bind before forking, eliminating port races).  Takes
  /// ownership of \p listen_fd.
  TcpTransport(int rank, std::vector<TcpEndpoint> endpoints, int listen_fd,
               TcpOptions options = {});

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int num_ranks() const noexcept override {
    return static_cast<int>(endpoints_.size());
  }

  void send(int to, Packet packet) override;
  [[nodiscard]] Packet recv(int from) override;

  /// Close every socket.  Idempotent; also run by the destructor.  After
  /// close() any send/recv throws TransportError, and peers blocked in
  /// recv on this rank observe an orderly peer-closed failure.
  void close() noexcept;

  /// Bytes written to / read from sockets (filter effectiveness metrics).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }

 private:
  void establish_mesh();
  [[nodiscard]] int fd_for(int peer, const char* what) const;

  int rank_;
  std::vector<TcpEndpoint> endpoints_;
  TcpOptions options_;
  FilterChain chain_;
  std::vector<std::uint8_t> chain_ids_;
  int listen_fd_ = -1;
  std::vector<int> peer_fds_;        // per peer rank; -1 for self/closed
  std::deque<Packet> self_queue_;    // loopback for send-to-self
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  bool closed_ = false;
};

/// A set of pre-bound localhost listeners, one per rank — bind all before
/// constructing any transport so no rank can race a peer's bind.
struct LocalTcpGroup {
  std::vector<TcpEndpoint> endpoints;  // 127.0.0.1 with the bound ports
  std::vector<int> listen_fds;         // pass to the adopting ctor
};

/// Bind \p num_ranks ephemeral-port listeners on 127.0.0.1.
[[nodiscard]] LocalTcpGroup make_local_tcp_group(int num_ranks);

/// Run an SPMD body on \p num_ranks threads in THIS process, each rank
/// speaking real TCP over loopback sockets.  This is the hybrid executor
/// used by tests, the bench harness, and the session backend's "tcp"
/// transport: the full wire path (framing, filters, socket timeouts) is
/// exercised without managing worker processes.
///
/// Because the rank threads share the process address space (the in-process
/// engine mutates one shared PartitionState), each rank's transport is
/// wrapped so every collective additionally passes a process-local barrier
/// — TCP alone establishes no happens-before between threads, so this
/// mirrors the memory-synchronization semantics of runtime::Machine, whose
/// collectives all contain real barriers.  A rank that throws aborts the
/// group: its sockets close (releasing peers blocked in recv) and the
/// local barrier wakes and fails waiting peers.  The first exception by
/// arrival time is rethrown.
void run_tcp_loopback(int num_ranks, const TcpOptions& options,
                      const std::function<void(Transport&)>& body);

}  // namespace pigp::net
