#pragma once

/// \file transport.hpp
/// The pluggable SPMD transport interface.
///
/// Transport is the seam between the SPMD engine (core/spmd_igp,
/// core/spmd_worker) and whatever moves packets between ranks.  The engine
/// is written against this interface only; the two implementations are
///
///   * InProcessTransport (below): wraps one rank's RankContext of the
///     thread-backed runtime::Machine.  This is the bit-parity oracle —
///     its collectives delegate to the Machine's shared-memory versions,
///     so reduction order and packet delivery order are exactly the
///     pre-transport behavior.
///   * TcpTransport (tcp_transport.hpp): length-prefixed frames over
///     localhost/LAN sockets, one process per rank.
///
/// The base class provides the collectives as default implementations over
/// point-to-point send/recv, with rank 0 as the hub.  The reduction is
/// applied in rank order (acc = slot[0], then op(acc, slot[r]) for
/// r = 1..n-1), matching runtime::Machine exactly so non-associative
/// floating-point ops give bit-identical results on every transport.

#include <functional>
#include <vector>

#include "runtime/net/packet.hpp"
#include "runtime/spmd.hpp"

namespace pigp::net {

/// Abstract rank-to-rank message channel plus collectives; see file
/// comment.  Implementations must deliver packets FIFO per (sender,
/// receiver) pair.  All errors surface as TransportError.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int rank() const noexcept = 0;
  [[nodiscard]] virtual int num_ranks() const noexcept = 0;

  /// Point-to-point send (non-blocking; the packet is queued or written
  /// out).  Sending to self is allowed and delivered via recv(rank()).
  virtual void send(int to, Packet packet) = 0;

  /// Blocking receive of the next packet from \p from (FIFO per sender).
  [[nodiscard]] virtual Packet recv(int from) = 0;

  /// Collective barrier; all ranks must call it.
  virtual void barrier();

  /// Collective: combine one double per rank with \p op in rank order
  /// (deterministic for non-associative ops, matching runtime::Machine).
  [[nodiscard]] virtual double allreduce(
      double value, const std::function<double(double, double)>& op);

  /// Collective: every rank receives the per-rank packets in rank order.
  [[nodiscard]] virtual std::vector<Packet> allgather(Packet packet);

  /// Collective: \p root's packet is delivered to all ranks (including
  /// back to the root).
  [[nodiscard]] virtual Packet broadcast(int root, Packet packet);
};

/// Transport over one rank of the thread-backed runtime::Machine.  The
/// RankContext must outlive this wrapper (it lives on the Machine::run
/// stack, so an InProcessTransport is created inside the SPMD body).
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(runtime::RankContext& ctx) : ctx_(ctx) {}

  [[nodiscard]] int rank() const noexcept override { return ctx_.rank(); }
  [[nodiscard]] int num_ranks() const noexcept override {
    return ctx_.num_ranks();
  }

  void send(int to, Packet packet) override {
    ctx_.send(to, std::move(packet));
  }
  [[nodiscard]] Packet recv(int from) override { return ctx_.recv(from); }

  // Collectives delegate to the Machine's shared-memory implementations —
  // this is what makes InProcessTransport the bit-parity oracle rather
  // than merely an equivalent one.
  void barrier() override { ctx_.barrier(); }
  [[nodiscard]] double allreduce(
      double value,
      const std::function<double(double, double)>& op) override {
    return ctx_.allreduce(value, op);
  }
  [[nodiscard]] std::vector<Packet> allgather(Packet packet) override {
    return ctx_.allgather(std::move(packet));
  }
  [[nodiscard]] Packet broadcast(int root, Packet packet) override {
    return ctx_.broadcast(root, std::move(packet));
  }

 private:
  runtime::RankContext& ctx_;
};

}  // namespace pigp::net
