#pragma once

/// \file packet.hpp
/// The tagged SPMD wire format.
///
/// A Packet is the unit every transport moves between ranks.  Historically
/// it was an untyped byte stream (pack wrote raw bytes, unpack trusted the
/// reader to mirror the writer); that is fine between threads of one
/// process but unacceptable on a wire, where a truncated or corrupted
/// frame must produce a typed error instead of undefined behavior.  The
/// format is therefore *self-describing*: every value carries a one-byte
/// tag plus its element size, and every read is bounds- and tag-checked,
/// throwing net::TransportError on any mismatch.
///
/// Wire layout (all integers little-endian host order — both ends of a
/// connection must share endianness, which localhost/LAN clusters do):
///
///   scalar  T        : [kScalar]  [u8 sizeof(T)] [raw bytes]
///   vector<T>        : [kVector]  [u8 sizeof(T)] [u64 count] [raw bytes]
///   delta-coded vec  : [kDeltaVec][u8 sizeof(T)] [varint count]
///                      [zigzag-varint deltas...]
///
/// kDeltaVec is never produced by pack_vector — it is the on-wire rewrite
/// the DeltaVarintFilter (filters.hpp) applies to integer vectors, decoded
/// back to kVector before the packet reaches unpack_vector.  Keeping the
/// tag here (rather than private to the filter) makes the stream walkable
/// by any filter without a schema.
///
/// The self-describing format is what makes the message-filter chain
/// possible: a filter can walk a packet's bytes, find the integer vectors,
/// and rewrite them, without knowing which SPMD protocol message it is
/// looking at.

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "runtime/net/error.hpp"

namespace pigp::net {

/// Value tags of the packet wire format.
enum class WireTag : std::uint8_t {
  kScalar = 0x53,    // 'S'
  kVector = 0x56,    // 'V'
  kDeltaVec = 0x44,  // 'D'
};

// ------------------------------------------------------------------ varint
// LEB128 unsigned varints + zigzag signed mapping, shared by the delta
// filter and the frame codec.

inline void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Read one varint at \p cursor, advancing it.  Throws TransportError on
/// truncation or an overlong (> 10 byte) encoding.
inline std::uint64_t read_varint(const std::uint8_t* data, std::size_t size,
                                 std::size_t& cursor) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (cursor >= size) throw TransportError("varint truncated");
    const std::uint8_t byte = data[cursor++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  throw TransportError("varint overlong");
}

[[nodiscard]] inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ------------------------------------------------------------------ Packet

/// Typed, bounds-checked byte packet — see the file comment for the wire
/// layout.  pack/unpack must be mirrored by the two ends exactly (same
/// types in the same order); any divergence, truncation, or corruption
/// surfaces as a net::TransportError instead of undefined behavior.
class Packet {
 public:
  Packet() = default;

  /// Adopt raw wire bytes (the receive path); the read cursor starts at 0.
  [[nodiscard]] static Packet from_bytes(std::vector<std::uint8_t> bytes) {
    Packet p;
    p.data_ = std::move(bytes);
    return p;
  }

  template <typename T>
  void pack(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= 0xFF);
    data_.push_back(static_cast<std::uint8_t>(WireTag::kScalar));
    data_.push_back(static_cast<std::uint8_t>(sizeof(T)));
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    data_.insert(data_.end(), bytes, bytes + sizeof(T));
  }

  template <typename T>
  void pack_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= 0xFF);
    data_.push_back(static_cast<std::uint8_t>(WireTag::kVector));
    data_.push_back(static_cast<std::uint8_t>(sizeof(T)));
    const auto count = static_cast<std::uint64_t>(values.size());
    const auto* count_bytes = reinterpret_cast<const std::uint8_t*>(&count);
    data_.insert(data_.end(), count_bytes, count_bytes + sizeof(count));
    if (values.empty()) return;  // data() may be null for empty vectors
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
    data_.insert(data_.end(), bytes, bytes + sizeof(T) * values.size());
  }

  template <typename T>
  [[nodiscard]] T unpack() {
    static_assert(std::is_trivially_copyable_v<T>);
    expect_tag(WireTag::kScalar, sizeof(T));
    T value;
    std::memcpy(&value, data_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> unpack_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    expect_tag(WireTag::kVector, sizeof(T));
    std::uint64_t count = 0;
    need(sizeof(count), "vector count");
    std::memcpy(&count, data_.data() + cursor_, sizeof(count));
    cursor_ += sizeof(count);
    // A malformed count must fail *before* the allocation: a corrupted
    // 8-byte count can demand petabytes.
    if (count > (data_.size() - cursor_) / sizeof(T)) {
      throw TransportError("packet underrun: vector count " +
                           std::to_string(count) + " exceeds payload");
    }
    std::vector<T> values(static_cast<std::size_t>(count));
    if (count == 0) return values;  // data() may be null for empty vectors
    std::memcpy(values.data(), data_.data() + cursor_,
                sizeof(T) * static_cast<std::size_t>(count));
    cursor_ += sizeof(T) * static_cast<std::size_t>(count);
    return values;
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_.size();
  }

  /// The raw wire bytes (the send path reads, filters rewrite copies).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return data_;
  }

  /// Move the bytes out (the send path, avoiding a copy).
  [[nodiscard]] std::vector<std::uint8_t> release_bytes() noexcept {
    cursor_ = 0;
    return std::move(data_);
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (cursor_ + n > data_.size()) {
      throw TransportError(std::string("packet underrun reading ") + what);
    }
  }

  void expect_tag(WireTag tag, std::size_t elem_size) {
    need(2, "tag");
    const auto got = static_cast<WireTag>(data_[cursor_]);
    if (got != tag) {
      throw TransportError(
          "packet tag mismatch: expected " +
          std::to_string(static_cast<int>(tag)) + ", got " +
          std::to_string(static_cast<int>(got)) +
          " (reader out of sync with writer, or payload corrupted)");
    }
    const std::size_t size = data_[cursor_ + 1];
    if (size != elem_size) {
      throw TransportError("packet element size mismatch: expected " +
                           std::to_string(elem_size) + ", got " +
                           std::to_string(size));
    }
    cursor_ += 2;
    need(tag == WireTag::kScalar ? elem_size : 0, "value");
  }

  std::vector<std::uint8_t> data_;
  std::size_t cursor_ = 0;
};

}  // namespace pigp::net
