#include "runtime/net/filters.hpp"

#include <cstring>

#include "runtime/net/packet.hpp"

#ifdef PIGP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace pigp::net {
namespace {

/// Load a little-endian unsigned integer of \p width (4 or 8) bytes.
std::uint64_t load_uint(const std::uint8_t* p, std::size_t width) {
  if (width == 4) {
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    return v;
  }
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

void store_uint(std::vector<std::uint8_t>& out, std::uint64_t v,
                std::size_t width) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), bytes, bytes + width);
}

/// Sign-extend a wrapped \p width-byte difference for zigzag coding, so a
/// small negative step costs one varint byte regardless of element width.
std::int64_t signed_delta(std::uint64_t diff, std::size_t width) {
  if (width == 4) return static_cast<std::int32_t>(diff);
  return static_cast<std::int64_t>(diff);
}

class DeltaVarintFilter final : public Filter {
 public:
  [[nodiscard]] std::uint8_t id() const noexcept override { return 1; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "delta";
  }

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::vector<std::uint8_t> bytes) const override {
    std::vector<std::uint8_t> out;
    out.reserve(bytes.size());
    std::size_t cursor = 0;
    const std::size_t size = bytes.size();
    const std::uint8_t* data = bytes.data();
    while (cursor < size) {
      const auto tag = static_cast<WireTag>(data[cursor]);
      if (tag == WireTag::kScalar) {
        if (cursor + 2 > size) throw TransportError("scalar header truncated");
        const std::size_t width = data[cursor + 1];
        if (cursor + 2 + width > size) {
          throw TransportError("scalar payload truncated");
        }
        out.insert(out.end(), data + cursor, data + cursor + 2 + width);
        cursor += 2 + width;
      } else if (tag == WireTag::kVector) {
        if (cursor + 2 + 8 > size) throw TransportError("vector header truncated");
        const std::size_t width = data[cursor + 1];
        std::uint64_t count = 0;
        std::memcpy(&count, data + cursor + 2, 8);
        if (count > (size - cursor - 10) / std::max<std::size_t>(width, 1)) {
          throw TransportError("vector count exceeds payload");
        }
        const std::uint8_t* payload = data + cursor + 10;
        if (width == 4 || width == 8) {
          // Rewrite as kDeltaVec: zigzag varints of wrapped consecutive
          // differences — bijective on every bit pattern.
          out.push_back(static_cast<std::uint8_t>(WireTag::kDeltaVec));
          out.push_back(static_cast<std::uint8_t>(width));
          append_varint(out, count);
          std::uint64_t prev = 0;
          for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t cur = load_uint(payload + i * width, width);
            append_varint(out, zigzag_encode(signed_delta(cur - prev, width)));
            prev = cur;
          }
        } else {
          out.insert(out.end(), data + cursor,
                     data + cursor + 10 +
                         static_cast<std::size_t>(count) * width);
        }
        cursor += 10 + static_cast<std::size_t>(count) * width;
      } else {
        throw TransportError("unknown wire tag in delta filter");
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<std::uint8_t> decode(
      std::vector<std::uint8_t> bytes) const override {
    std::vector<std::uint8_t> out;
    out.reserve(bytes.size() * 2);
    std::size_t cursor = 0;
    const std::size_t size = bytes.size();
    const std::uint8_t* data = bytes.data();
    while (cursor < size) {
      const auto tag = static_cast<WireTag>(data[cursor]);
      if (tag == WireTag::kScalar || tag == WireTag::kVector) {
        if (cursor + 2 > size) throw TransportError("header truncated");
        const std::size_t width = data[cursor + 1];
        std::size_t len = 2 + width;
        if (tag == WireTag::kVector) {
          if (cursor + 10 > size) {
            throw TransportError("vector header truncated");
          }
          std::uint64_t count = 0;
          std::memcpy(&count, data + cursor + 2, 8);
          if (count > (size - cursor - 10) / std::max<std::size_t>(width, 1)) {
            throw TransportError("vector count exceeds payload");
          }
          len = 10 + static_cast<std::size_t>(count) * width;
        }
        if (cursor + len > size) throw TransportError("payload truncated");
        out.insert(out.end(), data + cursor, data + cursor + len);
        cursor += len;
      } else if (tag == WireTag::kDeltaVec) {
        if (cursor + 2 > size) throw TransportError("header truncated");
        const std::size_t width = data[cursor + 1];
        if (width != 4 && width != 8) {
          throw TransportError("delta vector with unsupported element size");
        }
        cursor += 2;
        const std::uint64_t count = read_varint(data, size, cursor);
        // Worst case each element needs width bytes in the output; bound
        // the allocation by the *output* the varints can legally produce.
        if (count > (1ULL << 32)) {
          throw TransportError("delta vector count implausible");
        }
        out.push_back(static_cast<std::uint8_t>(WireTag::kVector));
        out.push_back(static_cast<std::uint8_t>(width));
        store_uint(out, count, 8);
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::int64_t d = zigzag_decode(read_varint(data, size, cursor));
          prev += static_cast<std::uint64_t>(d);
          if (width == 4) prev &= 0xFFFFFFFFULL;
          store_uint(out, prev, width);
        }
      } else {
        throw TransportError("unknown wire tag in delta filter");
      }
    }
    return out;
  }
};

#ifdef PIGP_HAVE_ZLIB
class ZlibFilter final : public Filter {
 public:
  [[nodiscard]] std::uint8_t id() const noexcept override { return 2; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "zlib";
  }

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::vector<std::uint8_t> bytes) const override {
    // Prefix the original size so decode can allocate exactly once.
    std::vector<std::uint8_t> out;
    append_varint(out, bytes.size());
    uLongf bound = compressBound(static_cast<uLong>(bytes.size()));
    const std::size_t header = out.size();
    out.resize(header + bound);
    const int rc =
        compress2(out.data() + header, &bound,
                  bytes.empty() ? reinterpret_cast<const Bytef*>("")
                                : bytes.data(),
                  static_cast<uLong>(bytes.size()), Z_DEFAULT_COMPRESSION);
    if (rc != Z_OK) throw TransportError("zlib compress failed");
    out.resize(header + bound);
    return out;
  }

  [[nodiscard]] std::vector<std::uint8_t> decode(
      std::vector<std::uint8_t> bytes) const override {
    std::size_t cursor = 0;
    const std::uint64_t original =
        read_varint(bytes.data(), bytes.size(), cursor);
    if (original > (1ULL << 40)) {
      throw TransportError("zlib frame claims implausible size");
    }
    std::vector<std::uint8_t> out(static_cast<std::size_t>(original));
    uLongf out_len = static_cast<uLongf>(original);
    const int rc = uncompress(
        out.empty() ? reinterpret_cast<Bytef*>(&out_len) : out.data(),
        &out_len, bytes.data() + cursor,
        static_cast<uLong>(bytes.size() - cursor));
    if (original == 0) return {};
    if (rc != Z_OK || out_len != original) {
      throw TransportError("zlib payload corrupted");
    }
    return out;
  }
};
#endif  // PIGP_HAVE_ZLIB

const DeltaVarintFilter kDeltaFilter;
#ifdef PIGP_HAVE_ZLIB
const ZlibFilter kZlibFilter;
#endif

}  // namespace

const Filter* find_filter(std::uint8_t id) {
  if (id == kDeltaFilter.id()) return &kDeltaFilter;
#ifdef PIGP_HAVE_ZLIB
  if (id == kZlibFilter.id()) return &kZlibFilter;
#endif
  return nullptr;
}

const Filter* find_filter(std::string_view name) {
  if (name == kDeltaFilter.name()) return &kDeltaFilter;
#ifdef PIGP_HAVE_ZLIB
  if (name == kZlibFilter.name()) return &kZlibFilter;
#endif
  return nullptr;
}

FilterChain parse_filter_chain(std::string_view spec) {
  FilterChain chain;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view name = spec.substr(start, end - start);
    if (!name.empty()) {
      const Filter* filter = find_filter(name);
      if (filter == nullptr) {
        // Configuration-time, not wire-time: retrying an unknown filter
        // name cannot succeed.
        throw TransportError(
            "unknown wire filter \"" + std::string(name) +
                "\" (known: delta" +
                (zlib_filter_available() ? ", zlib)"
                                         : "; zlib unavailable in "
                                           "this build)"),
            FaultClass::fatal);
      }
      // Built-ins are static singletons; alias shared_ptr with no deleter.
      chain.push_back(std::shared_ptr<const Filter>(filter, [](auto*) {}));
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  return chain;
}

std::vector<std::uint8_t> encode_through(const FilterChain& chain,
                                         std::vector<std::uint8_t> bytes) {
  for (const auto& filter : chain) bytes = filter->encode(std::move(bytes));
  return bytes;
}

std::vector<std::uint8_t> decode_through(const std::vector<std::uint8_t>& ids,
                                         std::vector<std::uint8_t> bytes) {
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const Filter* filter = find_filter(*it);
    if (filter == nullptr) {
      throw TransportError("frame names unknown filter id " +
                           std::to_string(static_cast<int>(*it)));
    }
    bytes = filter->decode(std::move(bytes));
  }
  return bytes;
}

bool zlib_filter_available() noexcept {
#ifdef PIGP_HAVE_ZLIB
  return true;
#else
  return false;
#endif
}

}  // namespace pigp::net
