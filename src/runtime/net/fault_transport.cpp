#include "runtime/net/fault_transport.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>

#include "runtime/net/error.hpp"

namespace pigp::net {
namespace {

constexpr std::uint64_t kMaxDelayMs = 1000;  // keeps chaos tests bounded

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw TransportError(
      "bad fault spec \"" + std::string(spec) + "\": " + why,
      FaultClass::fatal);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool parse_point(std::string_view s, FaultPoint* out) {
  static constexpr FaultPoint kPoints[] = {
      FaultPoint::send,      FaultPoint::recv,      FaultPoint::barrier,
      FaultPoint::allreduce, FaultPoint::allgather, FaultPoint::broadcast,
      FaultPoint::any};
  for (const FaultPoint p : kPoints) {
    if (s == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool parse_kind(std::string_view s, FaultKind* out) {
  static constexpr FaultKind kKinds[] = {FaultKind::delay, FaultKind::drop,
                                         FaultKind::corrupt,
                                         FaultKind::disconnect,
                                         FaultKind::kill};
  for (const FaultKind k : kKinds) {
    if (s == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

/// One `rule` production; see the header grammar.
FaultRule parse_rule(std::string_view spec, std::string_view entry) {
  FaultRule rule;
  std::string_view rest = entry;

  if (rest.substr(0, 4) == "rank") {
    const std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      bad_spec(spec, "expected ':' after rank in \"" + std::string(entry) +
                         "\"");
    }
    std::uint64_t rank = 0;
    if (!parse_u64(rest.substr(4, colon - 4), &rank) || rank > 1 << 20) {
      bad_spec(spec, "bad rank in \"" + std::string(entry) + "\"");
    }
    rule.rank = static_cast<int>(rank);
    rest.remove_prefix(colon + 1);
  }

  const std::size_t at = rest.find('@');
  if (at == std::string_view::npos || !parse_point(rest.substr(0, at),
                                                   &rule.point)) {
    bad_spec(spec, "expected point@ordinal in \"" + std::string(entry) +
                       "\"");
  }
  rest.remove_prefix(at + 1);

  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos ||
      !parse_u64(rest.substr(0, colon), &rule.at_op) || rule.at_op == 0) {
    bad_spec(spec, "bad operation ordinal in \"" + std::string(entry) +
                       "\" (must be >= 1)");
  }
  rest.remove_prefix(colon + 1);

  // kind['=' param]['/' times]
  const std::size_t slash = rest.find('/');
  if (slash != std::string_view::npos) {
    std::uint64_t times = 0;
    if (!parse_u64(rest.substr(slash + 1), &times) || times > INT32_MAX) {
      bad_spec(spec, "bad fire count in \"" + std::string(entry) + "\"");
    }
    rule.times = static_cast<int>(times);
    rest = rest.substr(0, slash);
  }
  const std::size_t eq = rest.find('=');
  bool has_param = false;
  if (eq != std::string_view::npos) {
    if (!parse_u64(rest.substr(eq + 1), &rule.param)) {
      bad_spec(spec, "bad parameter in \"" + std::string(entry) + "\"");
    }
    has_param = true;
    rest = rest.substr(0, eq);
  }
  if (!parse_kind(rest, &rule.kind)) {
    bad_spec(spec, "unknown fault kind \"" + std::string(rest) +
                       "\" (want delay|drop|corrupt|disconnect|kill)");
  }

  if (rule.kind == FaultKind::delay) {
    if (!has_param || rule.param > kMaxDelayMs) {
      bad_spec(spec, "delay needs =milliseconds in [0, " +
                         std::to_string(kMaxDelayMs) + "] in \"" +
                         std::string(entry) + "\"");
    }
  } else if (has_param) {
    bad_spec(spec, "only delay takes a parameter in \"" +
                       std::string(entry) + "\"");
  }
  if (rule.kind == FaultKind::drop && rule.point != FaultPoint::send) {
    bad_spec(spec, "drop only applies to send in \"" + std::string(entry) +
                       "\"");
  }
  if (rule.kind == FaultKind::corrupt && rule.point != FaultPoint::send &&
      rule.point != FaultPoint::allgather &&
      rule.point != FaultPoint::broadcast) {
    bad_spec(spec, "corrupt needs a payload-carrying point "
                   "(send|allgather|broadcast) in \"" +
                       std::string(entry) + "\"");
  }
  return rule;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::delay: return "delay";
    case FaultKind::drop: return "drop";
    case FaultKind::corrupt: return "corrupt";
    case FaultKind::disconnect: return "disconnect";
    case FaultKind::kill: return "kill";
  }
  return "?";
}

std::string_view to_string(FaultPoint point) noexcept {
  switch (point) {
    case FaultPoint::send: return "send";
    case FaultPoint::recv: return "recv";
    case FaultPoint::barrier: return "barrier";
    case FaultPoint::allreduce: return "allreduce";
    case FaultPoint::allgather: return "allgather";
    case FaultPoint::broadcast: return "broadcast";
    case FaultPoint::any: return "any";
  }
  return "?";
}

FaultScript::FaultScript(std::vector<FaultRule> rules, std::uint64_t seed)
    : rules_(std::move(rules)), seed_(seed), fired_(rules_.size(), 0) {}

bool FaultScript::has_kind(FaultKind kind) const noexcept {
  return std::any_of(rules_.begin(), rules_.end(),
                     [kind](const FaultRule& r) { return r.kind == kind; });
}

bool FaultScript::claim(std::size_t rule_index, std::int64_t* fired_before) {
  const sync::MutexLock lock(mutex_);
  const FaultRule& rule = rules_[rule_index];
  if (rule.times != 0 && fired_[rule_index] >= rule.times) return false;
  if (fired_before != nullptr) *fired_before = fired_[rule_index];
  ++fired_[rule_index];
  return true;
}

std::int64_t FaultScript::fired(std::size_t rule_index) const {
  const sync::MutexLock lock(mutex_);
  return fired_[rule_index];
}

std::shared_ptr<FaultScript> parse_fault_script(std::string_view spec) {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 0;
  std::string_view rest = trim(spec);
  if (rest.empty()) return nullptr;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view entry = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;
    if (entry.substr(0, 5) == "seed=") {
      if (!parse_u64(entry.substr(5), &seed)) {
        bad_spec(spec, "bad seed in \"" + std::string(entry) + "\"");
      }
      continue;
    }
    rules.push_back(parse_rule(spec, entry));
  }
  if (rules.empty()) bad_spec(spec, "no rules");
  return std::make_shared<FaultScript>(std::move(rules), seed);
}

FaultInjectingTransport::FaultInjectingTransport(
    Transport& inner, std::shared_ptr<FaultScript> script)
    : inner_(inner), script_(std::move(script)) {
  if (script_ == nullptr) {
    throw TransportError("fault transport needs a non-null script",
                         FaultClass::fatal);
  }
}

void FaultInjectingTransport::throw_killed() const {
  throw TransportError(
      "fault injection: rank " + std::to_string(inner_.rank()) +
      " killed at operation " + std::to_string(killed_at_));
}

bool FaultInjectingTransport::apply(FaultPoint point, Packet* payload) {
  const std::uint64_t n_point =
      ++ops_[static_cast<std::size_t>(point)];
  const std::uint64_t n_any =
      ++ops_[static_cast<std::size_t>(FaultPoint::any)];
  if (killed_) throw_killed();

  bool dropped = false;
  const std::vector<FaultRule>& rules = script_->rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (rule.rank != -1 && rule.rank != inner_.rank()) continue;
    const std::uint64_t ordinal =
        rule.point == FaultPoint::any
            ? n_any
            : (rule.point == point ? n_point : 0);
    if (ordinal != rule.at_op) continue;
    std::int64_t fired_before = 0;
    if (!script_->claim(i, &fired_before)) continue;

    switch (rule.kind) {
      case FaultKind::delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(rule.param, kMaxDelayMs)));
        break;
      case FaultKind::drop:
        dropped = true;
        break;
      case FaultKind::corrupt:
        // Flip one structural header byte — the wire tag or the element
        // size — so the receiver's checked unpack is guaranteed to throw a
        // typed error (data bytes could be flipped undetectably; chaos
        // must never be able to smuggle in a silently-corrupt partition).
        if (payload != nullptr && payload->size_bytes() >= 2) {
          std::vector<std::uint8_t> bytes = payload->release_bytes();
          const std::size_t index = static_cast<std::size_t>(
              (script_->seed() + static_cast<std::uint64_t>(fired_before)) %
              2);
          bytes[index] ^= 0xFFU;
          *payload = Packet::from_bytes(std::move(bytes));
        }
        break;
      case FaultKind::disconnect:
        throw TransportError(
            "fault injection: rank " + std::to_string(inner_.rank()) +
            " scripted disconnect at " + std::string(to_string(point)) +
            " operation " + std::to_string(n_point));
      case FaultKind::kill:
        killed_ = true;
        killed_at_ = n_any;
        throw_killed();
    }
  }
  return dropped;
}

void FaultInjectingTransport::send(int to, Packet packet) {
  if (apply(FaultPoint::send, &packet)) return;  // scripted drop
  inner_.send(to, std::move(packet));
}

Packet FaultInjectingTransport::recv(int from) {
  (void)apply(FaultPoint::recv, nullptr);
  return inner_.recv(from);
}

void FaultInjectingTransport::barrier() {
  (void)apply(FaultPoint::barrier, nullptr);
  inner_.barrier();
}

double FaultInjectingTransport::allreduce(
    double value, const std::function<double(double, double)>& op) {
  (void)apply(FaultPoint::allreduce, nullptr);
  return inner_.allreduce(value, op);
}

std::vector<Packet> FaultInjectingTransport::allgather(Packet packet) {
  (void)apply(FaultPoint::allgather, &packet);
  return inner_.allgather(std::move(packet));
}

Packet FaultInjectingTransport::broadcast(int root, Packet packet) {
  (void)apply(FaultPoint::broadcast, &packet);
  return inner_.broadcast(root, std::move(packet));
}

}  // namespace pigp::net
