#pragma once

/// \file filters.hpp
/// Composable message filters between the SPMD driver and the wire.
///
/// A Filter transforms a packet's byte image on its way onto the wire
/// (encode) and restores it exactly on the way off (decode); a chain of
/// filters composes left-to-right on encode and right-to-left on decode.
/// The frame header records the ids of the filters that were applied, so
/// the receiving end decodes with exactly the sender's chain — the two
/// processes only have to agree that the filters *exist* (the static
/// registry below), not on a configured chain.
///
/// Contract: decode(encode(bytes)) == bytes for every byte vector.  The
/// filters are pure and stateless, so a chain can be shared by every
/// connection of a transport.  Malformed input to decode() throws
/// net::TransportError (a corrupted frame must not crash the worker).
///
/// Built-in filters:
///   * DeltaVarintFilter ("delta", id 1): walks the tagged packet stream
///     and rewrites every integer vector (element size 4 or 8) as
///     zigzag-varint-coded consecutive deltas.  Vertex-id vectors in this
///     codebase are sorted or clustered (boundary seeds, selections,
///     per-partition eps rows), so deltas are small and a multi-byte
///     element usually shrinks to one byte.  The transform is bijective on
///     arbitrary bit patterns (wrapping arithmetic), so it is safe even on
///     vectors that are not sorted — they just may not shrink.
///   * ZlibFilter ("zlib", id 2): DEFLATE over the whole byte image.
///     Registered only when the library was built with zlib available
///     (PIGP_HAVE_ZLIB); parse_filter_chain throws TransportError when a
///     spec names it on a build without zlib.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/net/error.hpp"

namespace pigp::net {

/// One byte-stream transform; see the file comment for the contract.
class Filter {
 public:
  virtual ~Filter() = default;
  /// Stable wire id recorded in the frame header (1..255; 0 is reserved).
  [[nodiscard]] virtual std::uint8_t id() const noexcept = 0;
  /// Name used in filter-chain specs ("delta", "zlib").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> encode(
      std::vector<std::uint8_t> bytes) const = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> decode(
      std::vector<std::uint8_t> bytes) const = 0;
};

/// Filters applied in order on encode, reversed on decode.
using FilterChain = std::vector<std::shared_ptr<const Filter>>;

/// Look up a built-in filter by wire id; null when unknown (the receiver
/// of a frame naming an unknown id must fail, not guess).
[[nodiscard]] const Filter* find_filter(std::uint8_t id);

/// Look up a built-in filter by spec name; null when unknown.
[[nodiscard]] const Filter* find_filter(std::string_view name);

/// Parse a comma-separated chain spec ("", "delta", "delta,zlib").
/// Throws TransportError on an unknown name (including "zlib" on a build
/// without zlib).
[[nodiscard]] FilterChain parse_filter_chain(std::string_view spec);

/// Apply every filter of \p chain in order.
[[nodiscard]] std::vector<std::uint8_t> encode_through(
    const FilterChain& chain, std::vector<std::uint8_t> bytes);

/// Invert the chain recorded in a frame header: \p ids in application
/// order, decoded in reverse.  Throws TransportError on unknown ids.
[[nodiscard]] std::vector<std::uint8_t> decode_through(
    const std::vector<std::uint8_t>& ids, std::vector<std::uint8_t> bytes);

/// True when this build carries the zlib filter.
[[nodiscard]] bool zlib_filter_available() noexcept;

}  // namespace pigp::net
