#pragma once

/// \file fault_transport.hpp
/// Deterministic fault injection for any net::Transport.
///
/// FaultInjectingTransport wraps an inner Transport and injects *scripted*
/// faults at the protocol points the SPMD engine exercises — send, recv,
/// barrier, allreduce, allgather, broadcast — so the recovery machinery
/// (retryable-vs-fatal classification, per-tick retry, AsyncSession
/// degradation) can be driven through the public API instead of hand-mocked
/// transports.  Chaos here is reproducible by construction: a FaultScript
/// is an explicit list of (rank, point, op-ordinal, kind) rules, not a
/// random process, so a failing CI run names the exact injection that
/// produced it and re-running replays it bit-for-bit.
///
/// Fault kinds:
///   * delay=MS     sleep MS milliseconds before the operation (latency,
///                  never an error; MS is capped so tests stay bounded).
///   * drop         swallow a send() — the packet never reaches the peer.
///                  Only meaningful on a transport with bounded recv
///                  (TCP timeouts); on Machine mailboxes the peer would
///                  block forever, so config validation rejects the combo.
///   * corrupt      flip a structural header byte (wire tag / element
///                  size) of the outgoing payload.  The packet format is
///                  self-describing, so the receiver's checked unpack is
///                  guaranteed to surface a typed TransportError rather
///                  than silently decoding garbage.  Composes with filter
///                  chains: filters are bijective on arbitrary bytes, so
///                  the corruption survives encode/decode untouched.
///   * disconnect   throw a retryable TransportError at the matched
///                  operation (a peer dropping its end mid-protocol).
///   * kill         throw at the matched operation and at every operation
///                  after it on this transport instance (a dying rank).
///
/// A rule fires at most `times` total across the script's lifetime
/// (default 1).  Per-run operation counters live in the transport wrapper
/// (fresh per repartition attempt), but the fire budget lives in the shared
/// FaultScript — so a one-shot fault poisons exactly one attempt and the
/// retry that follows runs clean.  That asymmetry is what makes
/// "bit-identical partition after retry" a testable outcome.
///
/// Script grammar (see parse_fault_script):
///
///   spec   := entry (';' entry)*
///   entry  := 'seed=' uint | rule
///   rule   := ['rank' int ':'] point '@' ordinal ':' kind ['=' param]
///             ['/' times]
///   point  := send|recv|barrier|allreduce|allgather|broadcast|any
///   kind   := delay|drop|corrupt|disconnect|kill
///
/// Examples: "rank1:send@3:corrupt", "any@5:delay=20",
/// "rank0:any@12:kill", "recv@2:disconnect/2",
/// "seed=7;rank0:send@1:drop".  `any` matches the rank's ordinal across
/// all points combined; the seed only varies which structural byte
/// corrupt flips (both choices are detected).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/net/packet.hpp"
#include "runtime/net/transport.hpp"
#include "runtime/sync.hpp"

namespace pigp::net {

enum class FaultKind : std::uint8_t {
  delay,
  drop,
  corrupt,
  disconnect,
  kill,
};

enum class FaultPoint : std::uint8_t {
  send,
  recv,
  barrier,
  allreduce,
  allgather,
  broadcast,
  any,  ///< matches the combined per-rank operation ordinal
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;
[[nodiscard]] std::string_view to_string(FaultPoint point) noexcept;

/// One scripted fault: fires when \p rank's \p point operation counter
/// reaches \p at_op, at most \p times total (0 = unlimited).
struct FaultRule {
  int rank = -1;  ///< -1 = every rank
  FaultPoint point = FaultPoint::any;
  std::uint64_t at_op = 1;  ///< 1-based operation ordinal
  FaultKind kind = FaultKind::delay;
  std::uint64_t param = 0;  ///< delay: milliseconds
  int times = 1;            ///< total fires across the script; 0 = unlimited
};

/// A parsed fault script: immutable rules plus the shared, thread-safe
/// fire ledger.  One FaultScript is shared by every rank's wrapper and
/// survives across repartition attempts; the per-attempt operation
/// counters live in FaultInjectingTransport.
class FaultScript {
 public:
  FaultScript() = default;
  explicit FaultScript(std::vector<FaultRule> rules, std::uint64_t seed = 0);

  [[nodiscard]] const std::vector<FaultRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// True if any rule carries \p kind (config validation uses this to
  /// reject drop over a transport without bounded recv).
  [[nodiscard]] bool has_kind(FaultKind kind) const noexcept;

  /// Atomically consume one fire of rule \p rule_index; false when the
  /// rule's budget is exhausted.  Returns the pre-claim fire count via
  /// \p fired_before (used to vary corrupt's byte choice deterministically).
  [[nodiscard]] bool claim(std::size_t rule_index,
                           std::int64_t* fired_before = nullptr)
      PIGP_EXCLUDES(mutex_);

  /// Total fires of rule \p rule_index so far (test/telemetry accessor).
  [[nodiscard]] std::int64_t fired(std::size_t rule_index) const
      PIGP_EXCLUDES(mutex_);

 private:
  std::vector<FaultRule> rules_;
  std::uint64_t seed_ = 0;
  mutable sync::Mutex mutex_;
  std::vector<std::int64_t> fired_ PIGP_GUARDED_BY(mutex_);
};

/// Parse the script grammar in the file comment.  Returns nullptr for an
/// empty/whitespace spec; throws a fatal TransportError naming the
/// offending token otherwise (SessionConfig::resolve converts that to a
/// ConfigError).  Validation: delay requires param in [0, 1000]; drop is
/// send-only; corrupt is send/allgather/broadcast-only; at_op >= 1.
[[nodiscard]] std::shared_ptr<FaultScript> parse_fault_script(
    std::string_view spec);

/// The chaos wrapper; see file comment.  Construct one per rank per
/// attempt around that rank's real transport; all wrappers share one
/// FaultScript.  Collectives delegate to the inner transport's collectives
/// (they are one scripted operation each, not re-expressed over the
/// wrapped send/recv), so wrapping never changes reduction order and a
/// script-free wrapper is bit-transparent.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport& inner,
                          std::shared_ptr<FaultScript> script);

  [[nodiscard]] int rank() const noexcept override { return inner_.rank(); }
  [[nodiscard]] int num_ranks() const noexcept override {
    return inner_.num_ranks();
  }

  void send(int to, Packet packet) override;
  [[nodiscard]] Packet recv(int from) override;
  void barrier() override;
  [[nodiscard]] double allreduce(
      double value,
      const std::function<double(double, double)>& op) override;
  [[nodiscard]] std::vector<Packet> allgather(Packet packet) override;
  [[nodiscard]] Packet broadcast(int root, Packet packet) override;

 private:
  /// Count the operation, then fire every matching claimable rule.
  /// Returns true when a drop rule swallowed the operation (send only).
  /// \p payload is the outgoing bytes for corrupt, null where there are
  /// none.  Throws TransportError for disconnect/kill.
  bool apply(FaultPoint point, Packet* payload);

  [[noreturn]] void throw_killed() const;

  Transport& inner_;
  std::shared_ptr<FaultScript> script_;
  /// Per-point operation counters, indexed by FaultPoint (any = combined).
  std::uint64_t ops_[7] = {};
  bool killed_ = false;
  std::uint64_t killed_at_ = 0;
};

}  // namespace pigp::net
