#pragma once

/// \file error.hpp
/// The transport layer's error type.
///
/// Everything that can go wrong between two ranks — truncated or malformed
/// wire payloads, connect/retry budgets exhausted, send/recv timeouts, a
/// peer closing its end mid-protocol — surfaces as one typed exception so
/// callers can dispatch on "the wire failed" without parsing messages.
/// TransportError derives from pigp::CheckError (like the whole API error
/// taxonomy, see api/errors.hpp) so pre-existing catch sites keep working;
/// api/errors.hpp re-exports it as pigp::TransportError.

#include <string>

#include "support/check.hpp"

namespace pigp::net {

/// How a TransportError should be treated by recovery machinery.
///
/// retryable faults are transient-by-nature: a timeout, a dropped or
/// corrupted frame, a peer closing its end.  A fresh attempt over fresh
/// connections may well succeed, so the SPMD backend's per-tick retry
/// loop re-runs on them.  fatal faults are structural — rank out of
/// range, operating on a closed transport, an incompatible frame version,
/// a bad fault-spec or filter name — where retrying the identical call
/// can only fail the identical way, so they bypass retry and surface
/// immediately.
enum class FaultClass {
  retryable,
  fatal,
};

/// A wire-protocol or socket failure: malformed/truncated payload bytes,
/// connect retry budget exhausted, send/recv timeout, or peer shutdown.
/// Carries a FaultClass; the single-argument form is retryable, which
/// matches every pre-existing throw site (wire trouble is transient until
/// proven structural).
class TransportError : public CheckError {
 public:
  explicit TransportError(const std::string& what,
                          FaultClass fault_class = FaultClass::retryable)
      : CheckError("transport: " + what), fault_class_(fault_class) {}

  [[nodiscard]] FaultClass fault_class() const noexcept {
    return fault_class_;
  }
  [[nodiscard]] bool retryable() const noexcept {
    return fault_class_ == FaultClass::retryable;
  }

 private:
  FaultClass fault_class_;
};

}  // namespace pigp::net
