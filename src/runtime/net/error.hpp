#pragma once

/// \file error.hpp
/// The transport layer's error type.
///
/// Everything that can go wrong between two ranks — truncated or malformed
/// wire payloads, connect/retry budgets exhausted, send/recv timeouts, a
/// peer closing its end mid-protocol — surfaces as one typed exception so
/// callers can dispatch on "the wire failed" without parsing messages.
/// TransportError derives from pigp::CheckError (like the whole API error
/// taxonomy, see api/errors.hpp) so pre-existing catch sites keep working;
/// api/errors.hpp re-exports it as pigp::TransportError.

#include <string>

#include "support/check.hpp"

namespace pigp::net {

/// A wire-protocol or socket failure: malformed/truncated payload bytes,
/// connect retry budget exhausted, send/recv timeout, or peer shutdown.
class TransportError : public CheckError {
 public:
  explicit TransportError(const std::string& what)
      : CheckError("transport: " + what) {}
};

}  // namespace pigp::net
