#pragma once

/// \file spmd.hpp
/// SPMD message-passing machine simulated with threads.
///
/// The paper evaluates on a 32-node CM-5, a distributed-memory machine
/// programmed in a message-passing style.  This Machine stands in for that
/// hardware: run() launches one thread per rank, each executing the same
/// body with its own RankContext providing send/recv, barrier, reductions,
/// gather and broadcast.  The distributed IGP driver (core/spmd_igp) is
/// written against this interface, so the communication structure of the
/// parallel algorithm is exercised even though no real network exists.

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/check.hpp"

namespace pigp::runtime {

/// Wire format: untyped byte packets plus pack/unpack helpers for trivially
/// copyable values and vectors of them.
class Packet {
 public:
  Packet() = default;

  template <typename T>
  void pack(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    data_.insert(data_.end(), bytes, bytes + sizeof(T));
  }

  template <typename T>
  void pack_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    pack(static_cast<std::uint64_t>(values.size()));
    if (values.empty()) return;  // data() may be null for empty vectors
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
    data_.insert(data_.end(), bytes, bytes + sizeof(T) * values.size());
  }

  template <typename T>
  [[nodiscard]] T unpack() {
    static_assert(std::is_trivially_copyable_v<T>);
    PIGP_CHECK(cursor_ + sizeof(T) <= data_.size(), "packet underrun");
    T value;
    std::memcpy(&value, data_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> unpack_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = static_cast<std::size_t>(unpack<std::uint64_t>());
    PIGP_CHECK(cursor_ + sizeof(T) * count <= data_.size(), "packet underrun");
    std::vector<T> values(count);
    if (count == 0) return values;  // data() may be null for empty vectors
    std::memcpy(values.data(), data_.data() + cursor_, sizeof(T) * count);
    cursor_ += sizeof(T) * count;
    return values;
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_.size();
  }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t cursor_ = 0;
};

class Machine;

/// Per-rank communication handle passed to the SPMD body.
class RankContext {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }

  /// Point-to-point send (non-blocking; the packet is queued at the target).
  void send(int to, Packet packet);

  /// Blocking receive of the next packet from \p from (FIFO per sender).
  [[nodiscard]] Packet recv(int from);

  /// Collective barrier; all ranks must call it.
  void barrier();

  /// Collective: combine one double per rank with \p op (applied in rank
  /// order, so non-associative ops are still deterministic).
  [[nodiscard]] double allreduce(
      double value, const std::function<double(double, double)>& op);

  /// Collective: every rank receives the per-rank packets in rank order.
  [[nodiscard]] std::vector<Packet> allgather(Packet packet);

  /// Collective: \p root's packet is delivered to all ranks.
  [[nodiscard]] Packet broadcast(int root, Packet packet);

 private:
  friend class Machine;
  RankContext(Machine* machine, int rank, int num_ranks)
      : machine_(machine), rank_(rank), num_ranks_(num_ranks) {}

  Machine* machine_;
  int rank_;
  int num_ranks_;
};

/// Thread-backed SPMD machine.  Construct with a rank count, then run() one
/// or more SPMD programs on it.
class Machine {
 public:
  explicit Machine(int num_ranks);

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }

  /// Execute \p body on every rank; returns when all ranks finish.  The
  /// first exception thrown by any rank is rethrown (remaining ranks are
  /// still joined, so deadlock-free bodies are required).
  void run(const std::function<void(RankContext&)>& body);

 private:
  friend class RankContext;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // queues[sender] is the FIFO of packets from that sender.
    std::vector<std::deque<Packet>> queues;
  };

  void send(int from, int to, Packet packet);
  Packet recv(int self, int from);
  void barrier_wait();

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Central barrier (sense-reversing).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Scratch for collectives; guarded by the barrier protocol.
  std::vector<double> reduce_slots_;
  std::vector<Packet> gather_slots_;
};

}  // namespace pigp::runtime
