#pragma once

/// \file spmd.hpp
/// SPMD message-passing machine simulated with threads.
///
/// The paper evaluates on a 32-node CM-5, a distributed-memory machine
/// programmed in a message-passing style.  This Machine stands in for that
/// hardware: run() launches one thread per rank, each executing the same
/// body with its own RankContext providing send/recv, barrier, reductions,
/// gather and broadcast.  The distributed IGP driver (core/spmd_igp) is
/// written against this interface, so the communication structure of the
/// parallel algorithm is exercised even though no real network exists.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/net/packet.hpp"
#include "runtime/sync.hpp"
#include "support/check.hpp"

namespace pigp::runtime {

/// The SPMD wire format now lives in runtime/net/packet.hpp as a tagged,
/// bounds-checked stream (net::Packet); the thread-backed machine and the
/// socket transports move the same type, which is what lets a filter chain
/// and a TCP wire slide under an unchanged SPMD engine.
using Packet = net::Packet;

class Machine;

/// Per-rank communication handle passed to the SPMD body.
class RankContext {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }

  /// Point-to-point send (non-blocking; the packet is queued at the target).
  void send(int to, Packet packet);

  /// Blocking receive of the next packet from \p from (FIFO per sender).
  [[nodiscard]] Packet recv(int from);

  /// Collective barrier; all ranks must call it.
  void barrier();

  /// Collective: combine one double per rank with \p op (applied in rank
  /// order, so non-associative ops are still deterministic).
  [[nodiscard]] double allreduce(
      double value, const std::function<double(double, double)>& op);

  /// Collective: every rank receives the per-rank packets in rank order.
  [[nodiscard]] std::vector<Packet> allgather(Packet packet);

  /// Collective: \p root's packet is delivered to all ranks.
  [[nodiscard]] Packet broadcast(int root, Packet packet);

 private:
  friend class Machine;
  RankContext(Machine* machine, int rank, int num_ranks)
      : machine_(machine), rank_(rank), num_ranks_(num_ranks) {}

  Machine* machine_;
  int rank_;
  int num_ranks_;
};

/// Thread-backed SPMD machine.  Construct with a rank count, then run() one
/// or more SPMD programs on it.
class Machine {
 public:
  explicit Machine(int num_ranks);

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }

  /// Execute \p body on every rank; returns when all ranks finish.  If a
  /// rank throws, the machine aborts the run: peers blocked in recv or in
  /// a collective are released (they unwind internally, not by a
  /// user-visible exception), every rank is joined, the machine's
  /// mailboxes and barrier are reset, and the first exception *by arrival
  /// time* is rethrown.  The machine remains usable for further runs.
  void run(const std::function<void(RankContext&)>& body);

 private:
  friend class RankContext;

  struct Mailbox {
    sync::Mutex mutex;
    sync::CondVar cv;
    // queues[sender] is the FIFO of packets from that sender.
    std::vector<std::deque<Packet>> queues PIGP_GUARDED_BY(mutex);
  };

  void send(int from, int to, Packet packet);
  Packet recv(int self, int from);
  void barrier_wait();
  void abort_all();
  void reset_after_abort();

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Set when a rank dies mid-run; wakes every blocked peer so run() can
  // join instead of deadlocking on a half-completed collective.
  std::atomic<bool> aborted_{false};

  // Central barrier (sense-reversing).
  sync::Mutex barrier_mutex_;
  sync::CondVar barrier_cv_;
  int barrier_arrived_ PIGP_GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_generation_ PIGP_GUARDED_BY(barrier_mutex_) = 0;

  // Scratch for collectives.  Deliberately NOT guarded by a mutex: rank r
  // writes only slot r strictly before a barrier and every rank reads
  // strictly after it, so the barrier protocol itself is the
  // happens-before edge (the annotations cannot express phase-based
  // ownership; TSan still checks it dynamically).
  std::vector<double> reduce_slots_;
  std::vector<Packet> gather_slots_;
};

}  // namespace pigp::runtime
