#pragma once

/// \file thread_pool.hpp
/// Long-lived worker pool with a blocking task queue.
///
/// The pool backs pigp::runtime::parallel_for and the SPMD Machine.  Hot
/// numeric loops inside the library (simplex pivots, BFS frontiers) use
/// OpenMP directly; the pool exists for coarse task parallelism where the
/// per-task work is large and structured (per-partition layering, rank
/// bodies).

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "runtime/sync.hpp"

namespace pigp::runtime {

/// Fixed-size pool of worker threads executing queued std::function tasks.
/// Exceptions thrown by a task are captured in the future returned by
/// submit().
class ThreadPool {
 public:
  /// Spawn \p num_threads workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueue \p fn; the future observes its result or exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      sync::MutexLock lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of hardware threads, at least 1.
  [[nodiscard]] static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  sync::Mutex mutex_;
  sync::CondVar cv_;
  std::deque<std::function<void()>> queue_ PIGP_GUARDED_BY(mutex_);
  bool stopping_ PIGP_GUARDED_BY(mutex_) = false;
};

}  // namespace pigp::runtime
