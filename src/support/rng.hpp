#pragma once

/// \file rng.hpp
/// Deterministic, seed-stable random number generation.
///
/// All stochastic pieces of the library (graph generators, mesh point clouds,
/// property tests) use SplitMix64 so that results are reproducible across
/// platforms and standard-library versions; std::mt19937 distributions are
/// not bit-stable across implementations.

#include <cstdint>

namespace pigp {

/// SplitMix64: tiny, fast, high-quality 64-bit generator (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) for bound >= 1 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal variate (Box–Muller; consumes two raw values).
  double next_gaussian() noexcept;

 private:
  std::uint64_t state_;
};

inline double SplitMix64::next_gaussian() noexcept {
  // Box–Muller on (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // std::sqrt/std::log are constexpr-unfriendly pre-C++26; plain calls.
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(kTwoPi * u2);
}

}  // namespace pigp
