#pragma once

/// \file check.hpp
/// Error-checking primitives shared by every pigp module.
///
/// PIGP_CHECK is for preconditions that depend on caller input and is always
/// active; violations throw pigp::CheckError with file/line context so callers
/// can recover or report.  PIGP_ASSERT is for internal invariants and compiles
/// away in NDEBUG builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pigp {

/// Exception thrown when a PIGP_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& message) {
  std::ostringstream os;
  os << "PIGP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace pigp

/// Verify a caller-facing precondition; throws pigp::CheckError on failure.
#define PIGP_CHECK(cond, message)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::pigp::detail::check_failed(#cond, __FILE__, __LINE__, (message)); \
    }                                                                    \
  } while (false)

/// Internal invariant check; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define PIGP_ASSERT(cond) \
  do {                    \
  } while (false)
#else
#define PIGP_ASSERT(cond) PIGP_CHECK(cond, "internal invariant")
#endif
