#pragma once

/// \file dense_matrix.hpp
/// Minimal row-major dense matrix used for simplex tableaus and the
/// partition-to-partition count matrices (epsilon / b_ij) of the paper.

#include <cstddef>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace pigp {

/// Row-major dense matrix with bounds-checked element access in debug builds.
template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    PIGP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    PIGP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<T> row(std::size_t r) {
    PIGP_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    PIGP_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace pigp
