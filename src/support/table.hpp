#pragma once

/// \file table.hpp
/// Fixed-width text table writer used by the benchmark binaries to print
/// paper-style result tables (Figure 11 / Figure 14 layouts).

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace pigp {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(to_cell(std::forward<Cells>(cells))), ...);
    PIGP_CHECK(row.size() == header_.size(), "row width mismatch");
    rows_.push_back(std::move(row));
  }

  void add_separator() { rows_.push_back({}); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(os, header_, width);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
      if (row.empty()) {
        os << std::string(total, '-') << '\n';
      } else {
        print_row(os, row, width);
      }
    }
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c] << "  ";
    }
    os << '\n';
  }

  template <typename T>
  static std::string to_cell(T&& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(value));
    } else if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << value;
      return os.str();
    } else {
      std::ostringstream os;
      os << value;
      return os.str();
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pigp
