// Connected-components labeling.

#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace pigp::graph {
namespace {

TEST(Components, SingleComponent) {
  const Graph g = grid_graph(4, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, CountsIsolatedVertices) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4);  // {0,1}, {2}, {3}, {4}
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, NumberingFollowsSmallestVertex) {
  GraphBuilder b(6);
  b.add_edge(4, 5);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const Components c = connected_components(g);
  EXPECT_EQ(c.comp[0], 0);
  EXPECT_EQ(c.comp[2], 0);
  EXPECT_EQ(c.comp[1], 1);
  EXPECT_EQ(c.comp[3], 2);
  EXPECT_EQ(c.comp[4], 3);
  EXPECT_EQ(c.comp[5], 3);
}

TEST(Components, MembersGroupsVertices) {
  GraphBuilder b(4);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  const Components c = connected_components(b.build());
  const auto groups = c.members();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<VertexId>{0, 3}));
  EXPECT_EQ(groups[1], (std::vector<VertexId>{1, 2}));
}

TEST(Components, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(connected_components(g).count, 0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, RandomConnectedGraphIsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(is_connected(random_connected_graph(200, 0.5, seed)));
  }
}

}  // namespace
}  // namespace pigp::graph
