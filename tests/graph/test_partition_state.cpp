// graph::PartitionState — the O(Δ)-maintained metrics substrate.  The
// invariant under test everywhere: any sequence of incremental updates
// leaves the state bit-identical (integer-valued weights) to a fresh
// rescan of the final configuration.

#include "graph/partition_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pigp::graph {
namespace {

/// Reference implementation tolerating kUnassigned entries: unassigned
/// vertices contribute neither weight nor edges.
struct Brute {
  std::vector<double> weight;
  std::vector<double> boundary;
  double cut = 0.0;
};

Brute brute_force(const Graph& g, const Partitioning& p) {
  Brute b;
  b.weight.assign(static_cast<std::size_t>(p.num_parts), 0.0);
  b.boundary.assign(static_cast<std::size_t>(p.num_parts), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId pv = p.part[static_cast<std::size_t>(v)];
    if (pv == kUnassigned) continue;
    b.weight[static_cast<std::size_t>(pv)] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId pu = p.part[static_cast<std::size_t>(nbrs[i])];
      if (pu == kUnassigned || pu == pv) continue;
      b.boundary[static_cast<std::size_t>(pv)] += weights[i];
      if (nbrs[i] > v) b.cut += weights[i];
    }
  }
  return b;
}

void expect_state_matches(const PartitionState& state, const Graph& g,
                          const Partitioning& p, const char* where) {
  const Brute b = brute_force(g, p);
  EXPECT_EQ(state.weights(), b.weight) << where;
  EXPECT_EQ(state.boundary_costs(), b.boundary) << where;
  EXPECT_EQ(state.cut_total(), b.cut) << where;
}

Partitioning random_partitioning(VertexId n, PartId parts, SplitMix64& rng) {
  Partitioning p;
  p.num_parts = parts;
  p.part.resize(static_cast<std::size_t>(n));
  for (auto& q : p.part) {
    q = static_cast<PartId>(rng.next_below(static_cast<std::uint64_t>(parts)));
  }
  return p;
}

TEST(PartitionState, RebuildAndSnapshotMatchComputeMetrics) {
  SplitMix64 rng(11);
  const Graph g = random_geometric_graph(300, 0.1, 3);
  const Partitioning p = random_partitioning(g.num_vertices(), 5, rng);

  const PartitionState state(g, p);
  const PartitionMetrics fresh = compute_metrics(g, p);
  EXPECT_EQ(state.snapshot().weight, fresh.weight);
  EXPECT_EQ(state.snapshot().boundary_cost, fresh.boundary_cost);
  EXPECT_EQ(state.snapshot().cut_total, fresh.cut_total);
  EXPECT_EQ(state.snapshot().imbalance, fresh.imbalance);
  EXPECT_EQ(state.snapshot().cut_max, fresh.cut_max);
  EXPECT_EQ(state.snapshot().cut_min, fresh.cut_min);
}

TEST(PartitionState, MoveRetireAndPlaceSequencesStayExact) {
  SplitMix64 rng(23);
  const Graph g = random_geometric_graph(200, 0.12, 5);
  Partitioning p = random_partitioning(g.num_vertices(), 4, rng);
  PartitionState state(g, p);

  for (int step = 0; step < 500; ++step) {
    const auto v = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));
    // Mix plain moves with retire (-> kUnassigned) and re-place cycles.
    PartId to;
    if (rng.next_below(5) == 0) {
      to = kUnassigned;
    } else {
      to = static_cast<PartId>(rng.next_below(4));
    }
    state.move_vertex(g, p, v, to);
    EXPECT_EQ(p.part[static_cast<std::size_t>(v)], to);
  }
  expect_state_matches(state, g, p, "after 500 random moves");
}

TEST(PartitionState, MoveVertexRejectsOutOfRangeDestination) {
  const Graph g = random_geometric_graph(50, 0.2, 7);
  SplitMix64 rng(3);
  Partitioning p = random_partitioning(g.num_vertices(), 3, rng);
  PartitionState state(g, p);
  EXPECT_THROW(state.move_vertex(g, p, 0, 3), CheckError);
  EXPECT_THROW(state.move_vertex(g, p, 0, -2), CheckError);
}

TEST(PartitionState, AddAndRemoveEdgeMatchRebuildOnTheModifiedGraph) {
  // Simulate an edge flip: state on g1 plus add/remove bookkeeping must
  // equal a rebuild on g2 (which has {0,3} instead of {1,2}).
  GraphBuilder b1(4);
  b1.add_edge(0, 1, 2.0);
  b1.add_edge(1, 2, 3.0);
  b1.add_edge(2, 3, 1.0);
  const Graph g1 = b1.build();
  GraphBuilder b2(4);
  b2.add_edge(0, 1, 2.0);
  b2.add_edge(2, 3, 1.0);
  b2.add_edge(0, 3, 5.0);
  const Graph g2 = b2.build();

  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};

  PartitionState state(g1, p);
  state.remove_edge(p, 1, 2, 3.0);
  state.add_edge(p, 0, 3, 5.0);

  const PartitionState fresh(g2, p);
  EXPECT_EQ(state.weights(), fresh.weights());
  EXPECT_EQ(state.boundary_costs(), fresh.boundary_costs());
  EXPECT_EQ(state.cut_total(), fresh.cut_total());

  // Edges with an unassigned endpoint are invisible on both paths.
  Partitioning q = p;
  PartitionState retired(g1, q);
  retired.move_vertex(g1, q, 1, kUnassigned);
  const double cut_before = retired.cut_total();
  retired.remove_edge(q, 1, 2, 3.0);  // endpoint retired: no-op
  EXPECT_EQ(retired.cut_total(), cut_before);
}

TEST(PartitionState, ExtendCountsEveryAppendedEdgeExactlyOnce) {
  SplitMix64 rng(31);
  const Graph base = random_geometric_graph(120, 0.15, 9);
  Partitioning p = random_partitioning(base.num_vertices(), 4, rng);
  PartitionState state(base, p);

  // Extend with a connected clump: edges old-new and new-new.
  GraphBuilder builder(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    builder.set_vertex_weight(v, base.vertex_weight(v));
    for (std::size_t i = 0; i < base.neighbors(v).size(); ++i) {
      const VertexId u = base.neighbors(v)[i];
      if (u > v) builder.add_edge(v, u, base.incident_edge_weights(v)[i]);
    }
  }
  const VertexId first_new = base.num_vertices();
  for (int k = 0; k < 10; ++k) {
    const VertexId id = builder.add_vertex(2.0);
    builder.add_edge(id, static_cast<VertexId>(rng.next_below(
                             static_cast<std::uint64_t>(first_new))),
                     3.0);
    if (k > 0) builder.add_edge(id, id - 1, 1.0);
  }
  const Graph extended = builder.build();

  Partitioning placed;
  placed.num_parts = p.num_parts;
  placed.part = p.part;
  placed.part.resize(static_cast<std::size_t>(extended.num_vertices()));
  for (VertexId v = first_new; v < extended.num_vertices(); ++v) {
    placed.part[static_cast<std::size_t>(v)] =
        static_cast<PartId>(rng.next_below(4));
  }

  state.extend(extended, p, first_new, placed);
  EXPECT_EQ(p.part, placed.part);
  const PartitionState fresh(extended, placed);
  EXPECT_EQ(state.weights(), fresh.weights());
  EXPECT_EQ(state.boundary_costs(), fresh.boundary_costs());
  EXPECT_EQ(state.cut_total(), fresh.cut_total());
}

TEST(PartitionState, TransitionMovesOnlyTheDiffAndLandsExactly) {
  SplitMix64 rng(41);
  const Graph g = random_geometric_graph(250, 0.1, 13);
  Partitioning p1 = random_partitioning(g.num_vertices(), 6, rng);
  const Partitioning p2 = random_partitioning(g.num_vertices(), 6, rng);

  PartitionState state(g, p1);
  state.transition(g, p1, p2);
  EXPECT_EQ(p1.part, p2.part);
  const PartitionState fresh(g, p2);
  EXPECT_EQ(state.weights(), fresh.weights());
  EXPECT_EQ(state.boundary_costs(), fresh.boundary_costs());
  EXPECT_EQ(state.cut_total(), fresh.cut_total());

  // A shorter current partitioning (freshly appended tail) is treated as
  // unassigned and placed by the transition.
  Partitioning head;
  head.num_parts = 6;
  head.part.assign(p2.part.begin(), p2.part.begin() + 100);
  PartitionState grown(g, p2);
  {
    // Rewind the state to the head-only view by retiring the tail.
    Partitioning scratch = p2;
    for (VertexId v = 100; v < g.num_vertices(); ++v) {
      grown.move_vertex(g, scratch, v, kUnassigned);
    }
  }
  grown.transition(g, head, p2);
  EXPECT_EQ(head.part, p2.part);
  EXPECT_EQ(grown.cut_total(), fresh.cut_total());
  EXPECT_EQ(grown.weights(), fresh.weights());
}

TEST(PartitionState, ReconcileExtensionHandlesOldOldRewiring) {
  // g_old: path 0-1-2-3 plus 1-3; the "extension" drops 1-3, reweights
  // 1-2, adds 0-2, and appends vertex 4 (invisible until placed).
  GraphBuilder old_b(4);
  old_b.add_edge(0, 1, 1.0);
  old_b.add_edge(1, 2, 2.0);
  old_b.add_edge(2, 3, 1.0);
  old_b.add_edge(1, 3, 4.0);
  const Graph g_old = old_b.build();

  GraphBuilder new_b(4);
  new_b.add_edge(0, 1, 1.0);
  new_b.add_edge(1, 2, 5.0);  // weight changed
  new_b.add_edge(2, 3, 1.0);
  new_b.add_edge(0, 2, 7.0);  // created
  const VertexId v4 = new_b.add_vertex(1.0);
  new_b.add_edge(v4, 3, 9.0);
  const Graph g_new = new_b.build();

  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};

  PartitionState state(g_old, p);
  const PartitionState::EdgeDiff diff =
      state.reconcile_extension(g_old, g_new, p, 4);
  EXPECT_EQ(diff.added, 1);    // {0,2}
  EXPECT_EQ(diff.removed, 1);  // {1,3}

  Partitioning placed = p;
  placed.part.push_back(0);
  Partitioning view = p;  // old-vertex view; vertex 4 still unassigned
  state.extend(g_new, view, 4, placed);
  const PartitionState fresh(g_new, placed);
  EXPECT_EQ(state.weights(), fresh.weights());
  EXPECT_EQ(state.boundary_costs(), fresh.boundary_costs());
  EXPECT_EQ(state.cut_total(), fresh.cut_total());
}

/// Brute-force check of the maintained boundary index: external degrees
/// and per-partition bucket contents (order-insensitive — the index makes
/// no order promise).
void expect_boundary_index_matches(const PartitionState& state,
                                   const Graph& g, const Partitioning& p,
                                   const char* where) {
  std::vector<std::vector<VertexId>> expected_buckets(
      static_cast<std::size_t>(p.num_parts));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId pv = p.part[static_cast<std::size_t>(v)];
    std::int32_t ext = 0;
    if (pv != kUnassigned) {
      for (const VertexId u : g.neighbors(v)) {
        const PartId pu = p.part[static_cast<std::size_t>(u)];
        if (pu != kUnassigned && pu != pv) ++ext;
      }
    }
    EXPECT_EQ(state.external_degree(v), ext) << where << " vertex " << v;
    EXPECT_EQ(state.is_boundary(v), ext > 0) << where << " vertex " << v;
    if (ext > 0) {
      expected_buckets[static_cast<std::size_t>(pv)].push_back(v);
    }
  }
  for (PartId q = 0; q < p.num_parts; ++q) {
    std::vector<VertexId> bucket(state.boundary_vertices(q).begin(),
                                 state.boundary_vertices(q).end());
    std::sort(bucket.begin(), bucket.end());
    EXPECT_EQ(bucket, expected_buckets[static_cast<std::size_t>(q)])
        << where << " partition " << q;
  }
}

TEST(PartitionStateBoundaryIndex, RebuildMatchesBruteForce) {
  SplitMix64 rng(51);
  const Graph g = random_geometric_graph(200, 0.12, 17);
  const Partitioning p = random_partitioning(g.num_vertices(), 5, rng);
  const PartitionState state(g, p);
  expect_boundary_index_matches(state, g, p, "rebuild");
}

TEST(PartitionStateBoundaryIndex, SurvivesRandomMoveRetirePlaceSequences) {
  SplitMix64 rng(53);
  const Graph g = random_geometric_graph(180, 0.12, 19);
  Partitioning p = random_partitioning(g.num_vertices(), 4, rng);
  PartitionState state(g, p);

  for (int step = 0; step < 600; ++step) {
    const auto v = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));
    const PartId to = rng.next_below(6) == 0
                          ? kUnassigned
                          : static_cast<PartId>(rng.next_below(4));
    state.move_vertex(g, p, v, to);
    if (step % 97 == 0) {
      expect_boundary_index_matches(state, g, p, "mid-sequence");
    }
  }
  expect_boundary_index_matches(state, g, p, "after 600 moves");
}

TEST(PartitionStateBoundaryIndex, StructuralEdgesCountWeightMergesDoNot) {
  // Path 0-1-2-3 split {0,1 | 2,3}: only the {1,2} edge is external.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 1.0);
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};
  PartitionState state(g, p);
  EXPECT_EQ(state.external_degree(1), 1);
  EXPECT_EQ(state.external_degree(0), 0);

  // A weight merge on the existing cross edge changes costs, not counts.
  state.adjust_edge_weight(p, 1, 2, 4.0);
  EXPECT_EQ(state.external_degree(1), 1);
  EXPECT_EQ(state.cut_total(), 5.0);

  // A structurally new cross edge bumps both endpoints into the boundary
  // (vertex 3's other neighbor is internal, so this is its only external
  // edge).
  state.add_edge(p, 0, 3, 2.0);
  EXPECT_EQ(state.external_degree(0), 1);
  EXPECT_EQ(state.external_degree(3), 1);
  EXPECT_TRUE(state.is_boundary(0));
  EXPECT_TRUE(state.is_boundary(3));

  // Removing it entirely takes them back out.
  state.remove_edge(p, 0, 3, 2.0);
  EXPECT_EQ(state.external_degree(0), 0);
  EXPECT_FALSE(state.is_boundary(0));
  EXPECT_EQ(state.external_degree(3), 0);
  EXPECT_FALSE(state.is_boundary(3));
  EXPECT_EQ(state.cut_total(), 5.0);
}

TEST(PartitionStateBoundaryIndex, ExtendAndTransitionKeepTheIndexExact) {
  SplitMix64 rng(57);
  const Graph g = random_geometric_graph(220, 0.11, 23);
  Partitioning p1 = random_partitioning(g.num_vertices(), 5, rng);
  const Partitioning p2 = random_partitioning(g.num_vertices(), 5, rng);
  PartitionState state(g, p1);
  state.transition(g, p1, p2);
  expect_boundary_index_matches(state, g, p1, "after transition");
}

TEST(PartitionStateBoundaryIndex, RemapRewritesIdsAfterCompaction) {
  SplitMix64 rng(59);
  const Graph g = random_geometric_graph(150, 0.14, 29);
  Partitioning p = random_partitioning(g.num_vertices(), 4, rng);
  PartitionState state(g, p);

  // Retire a handful of vertices (the session does this before the swap),
  // then rebuild the graph without them and remap the index.
  const std::vector<VertexId> removed = {3, 50, 51, 149};
  for (const VertexId v : removed) state.move_vertex(g, p, v, kUnassigned);

  std::vector<VertexId> old_to_new(
      static_cast<std::size_t>(g.num_vertices()), kInvalidVertex);
  GraphBuilder builder;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (p.part[static_cast<std::size_t>(v)] != kUnassigned) {
      old_to_new[static_cast<std::size_t>(v)] =
          builder.add_vertex(g.vertex_weight(v));
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId nv = old_to_new[static_cast<std::size_t>(v)];
    if (nv == kInvalidVertex) continue;
    for (std::size_t i = 0; i < g.neighbors(v).size(); ++i) {
      const VertexId u = g.neighbors(v)[i];
      const VertexId nu = old_to_new[static_cast<std::size_t>(u)];
      if (u > v && nu != kInvalidVertex) {
        builder.add_edge(nv, nu, g.incident_edge_weights(v)[i]);
      }
    }
  }
  const Graph compacted = builder.build();

  Partitioning carried;
  carried.num_parts = p.num_parts;
  carried.part.resize(static_cast<std::size_t>(compacted.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId nv = old_to_new[static_cast<std::size_t>(v)];
    if (nv != kInvalidVertex) {
      carried.part[static_cast<std::size_t>(nv)] =
          p.part[static_cast<std::size_t>(v)];
    }
  }

  state.remap_vertices(old_to_new, compacted.num_vertices());
  expect_boundary_index_matches(state, compacted, carried, "after remap");
  const PartitionState fresh(compacted, carried);
  EXPECT_EQ(state.weights(), fresh.weights());
  EXPECT_EQ(state.cut_total(), fresh.cut_total());
}

TEST(PartitionStateBoundaryIndex, InverseMoveReplayRestoresExactly) {
  // The refine revert protocol: journal the moves, replay in reverse,
  // restore the aggregate snapshot — everything must be bit-identical.
  SplitMix64 rng(61);
  const Graph g = random_geometric_graph(160, 0.13, 31);
  Partitioning p = random_partitioning(g.num_vertices(), 4, rng);
  PartitionState state(g, p);
  const Partitioning p_before = p;
  const PartitionState::AggregateSnapshot saved = state.save_aggregates();

  std::vector<std::pair<VertexId, PartId>> journal;
  for (int k = 0; k < 40; ++k) {
    const auto v = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));
    journal.emplace_back(v, p.part[static_cast<std::size_t>(v)]);
    state.move_vertex(g, p, v, static_cast<PartId>(rng.next_below(4)));
  }
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    state.move_vertex(g, p, it->first, it->second);
  }
  state.restore_aggregates(saved);

  EXPECT_EQ(p.part, p_before.part);
  expect_boundary_index_matches(state, g, p, "after inverse replay");
  const PartitionState fresh(g, p);
  EXPECT_EQ(state.weights(), fresh.weights());
  EXPECT_EQ(state.boundary_costs(), fresh.boundary_costs());
  EXPECT_EQ(state.cut_total(), fresh.cut_total());
}

TEST(PartitionState, ZeroTotalWeightFallsBackToImbalanceOne) {
  GraphBuilder b;
  const VertexId a = b.add_vertex(0.0);
  const VertexId c = b.add_vertex(0.0);
  b.add_edge(a, c, 1.0);
  const Graph g = b.build();

  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 1};

  const PartitionState state(g, p);
  EXPECT_EQ(state.imbalance(), 1.0);
  const PartitionMetrics m = state.snapshot();
  EXPECT_EQ(m.imbalance, 1.0);
  EXPECT_EQ(m.avg_weight, 0.0);
  // Batch and incremental definitions agree on the fallback.
  EXPECT_EQ(compute_metrics(g, p).imbalance, 1.0);
  EXPECT_EQ(m.cut_total, 1.0);
}

}  // namespace
}  // namespace pigp::graph
