// GraphDelta application: additions, deletions, remapping, error handling.

#include "graph/delta.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

Graph square() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  return b.build();
}

TEST(GraphDelta, AddVertexWithEdges) {
  GraphDelta delta;
  delta.added_vertices.push_back({1.0, {{0, 1.0}, {2, 1.0}}});
  const DeltaResult r = apply_delta(square(), delta);

  EXPECT_EQ(r.graph.num_vertices(), 5);
  EXPECT_EQ(r.graph.num_edges(), 6);
  EXPECT_EQ(r.first_new_vertex, 4);
  ASSERT_EQ(r.new_vertex_ids.size(), 1u);
  EXPECT_TRUE(r.graph.has_edge(r.new_vertex_ids[0], 0));
  EXPECT_TRUE(r.graph.has_edge(r.new_vertex_ids[0], 2));
  r.graph.validate();
}

TEST(GraphDelta, NewVerticesMayReferenceEachOther) {
  GraphDelta delta;
  delta.added_vertices.push_back({1.0, {{0, 1.0}}});
  delta.added_vertices.push_back({1.0, {{4, 1.0}}});  // edge to first new one
  const DeltaResult r = apply_delta(square(), delta);
  EXPECT_EQ(r.graph.num_vertices(), 6);
  EXPECT_TRUE(r.graph.has_edge(r.new_vertex_ids[0], r.new_vertex_ids[1]));
}

TEST(GraphDelta, ForwardReferenceRejected) {
  GraphDelta delta;
  delta.added_vertices.push_back({1.0, {{5, 1.0}}});  // references 2nd new
  delta.added_vertices.push_back({1.0, {}});
  EXPECT_THROW(apply_delta(square(), delta), CheckError);
}

TEST(GraphDelta, RemoveVertexCompactsIds) {
  GraphDelta delta;
  delta.removed_vertices.push_back(1);
  const DeltaResult r = apply_delta(square(), delta);

  EXPECT_EQ(r.graph.num_vertices(), 3);
  EXPECT_EQ(r.graph.num_edges(), 2);  // edges 0-1 and 1-2 died
  EXPECT_EQ(r.old_to_new[0], 0);
  EXPECT_EQ(r.old_to_new[1], kInvalidVertex);
  EXPECT_EQ(r.old_to_new[2], 1);
  EXPECT_EQ(r.old_to_new[3], 2);
  r.graph.validate();
}

TEST(GraphDelta, RemoveEdge) {
  GraphDelta delta;
  delta.removed_edges.push_back({0, 1});
  const DeltaResult r = apply_delta(square(), delta);
  EXPECT_EQ(r.graph.num_edges(), 3);
  EXPECT_FALSE(r.graph.has_edge(0, 1));
}

TEST(GraphDelta, RemoveMissingEdgeRejected) {
  GraphDelta delta;
  delta.removed_edges.push_back({0, 2});  // diagonal doesn't exist
  EXPECT_THROW(apply_delta(square(), delta), CheckError);
}

TEST(GraphDelta, AddedEdgeBetweenOldVertices) {
  GraphDelta delta;
  delta.added_edges.push_back({0, 2});
  const DeltaResult r = apply_delta(square(), delta);
  EXPECT_TRUE(r.graph.has_edge(0, 2));
  EXPECT_EQ(r.graph.num_edges(), 5);
}

TEST(GraphDelta, EdgeToRemovedVertexRejected) {
  GraphDelta delta;
  delta.removed_vertices.push_back(0);
  delta.added_edges.push_back({0, 2});
  EXPECT_THROW(apply_delta(square(), delta), CheckError);
}

TEST(GraphDelta, MixedAddRemove) {
  GraphDelta delta;
  delta.removed_vertices.push_back(3);
  delta.added_vertices.push_back({2.0, {{0, 1.0}, {2, 1.0}}});
  const DeltaResult r = apply_delta(square(), delta);

  EXPECT_EQ(r.graph.num_vertices(), 4);
  // Old edges 2-3, 3-0 removed; new vertex adds two.
  EXPECT_EQ(r.graph.num_edges(), 4);
  EXPECT_DOUBLE_EQ(r.graph.vertex_weight(r.new_vertex_ids[0]), 2.0);
  r.graph.validate();
}

TEST(GraphDelta, SequentialDeltasComposeLikeOneBigDelta) {
  const Graph base = grid_graph(6, 6);

  // Two-step: add vertex A attached to 0, then vertex B attached to A and 1.
  GraphDelta d1;
  d1.added_vertices.push_back({1.0, {{0, 1.0}}});
  const DeltaResult r1 = apply_delta(base, d1);
  GraphDelta d2;
  d2.added_vertices.push_back({1.0, {{r1.new_vertex_ids[0], 1.0}, {1, 1.0}}});
  const DeltaResult r2 = apply_delta(r1.graph, d2);

  // One-step: both vertices at once.
  GraphDelta combined;
  combined.added_vertices.push_back({1.0, {{0, 1.0}}});
  combined.added_vertices.push_back(
      {1.0, {{base.num_vertices(), 1.0}, {1, 1.0}}});
  const DeltaResult rc = apply_delta(base, combined);

  EXPECT_EQ(r2.graph, rc.graph);
}

TEST(GraphDelta, EmptyDeltaIsIdentity) {
  const Graph base = square();
  const DeltaResult r = apply_delta(base, GraphDelta{});
  EXPECT_EQ(r.graph, base);
  EXPECT_EQ(r.first_new_vertex, base.num_vertices());
}

TEST(GraphDelta, AppendOnlyFastPathMatchesBuilderReconstruction) {
  // The no-removals fast path merges into the old CSR instead of
  // rebuilding; the result must be indistinguishable from pushing the old
  // graph plus the delta through GraphBuilder (the general path's engine).
  const Graph base = random_geometric_graph(180, 0.12, 55);
  GraphDelta delta;
  // New vertices with weighted edges to old anchors and a new-new chain.
  delta.added_vertices.push_back({2.0, {{3, 2.0}, {77, 1.0}}});
  delta.added_vertices.push_back({1.0, {{180, 3.0}, {12, 1.0}}});
  delta.added_vertices.push_back({3.0, {{181, 1.0}}});
  // Old-old edge, duplicate listing (merges), old-new edge, and a
  // duplicate of an edge the graph already has (merges with it).
  VertexId non_neighbor = 9;
  while (base.has_edge(5, non_neighbor)) ++non_neighbor;
  delta.added_edges = {{5, non_neighbor}, {5, non_neighbor}, {40, 182}};
  delta.added_edge_weights = {2.0, 3.0, 1.0};
  const VertexId anchor_existing = base.neighbors(7).front();
  delta.added_edges.emplace_back(7, anchor_existing);
  delta.added_edge_weights.push_back(4.0);

  const DeltaResult fast = apply_delta(base, delta);
  fast.graph.validate();

  GraphBuilder builder(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    builder.set_vertex_weight(v, base.vertex_weight(v));
    for (std::size_t i = 0; i < base.neighbors(v).size(); ++i) {
      if (base.neighbors(v)[i] > v) {
        builder.add_edge(v, base.neighbors(v)[i],
                         base.incident_edge_weights(v)[i]);
      }
    }
  }
  for (const auto& add : delta.added_vertices) {
    const VertexId id = builder.add_vertex(add.weight);
    for (const auto& [endpoint, w] : add.edges) {
      builder.add_edge(id, endpoint, w);
    }
  }
  for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
    builder.add_edge(delta.added_edges[i].first, delta.added_edges[i].second,
                     delta.added_edge_weights[i]);
  }
  EXPECT_EQ(fast.graph, builder.build());
  EXPECT_EQ(fast.first_new_vertex, base.num_vertices());
  EXPECT_EQ(fast.old_to_new[42], 42);
  EXPECT_DOUBLE_EQ(fast.graph.edge_weight(5, non_neighbor),
                   5.0);  // 2 + 3 merged
  EXPECT_DOUBLE_EQ(
      fast.graph.edge_weight(7, anchor_existing),
      base.edge_weight(7, anchor_existing) + 4.0);  // merged onto existing
}

TEST(GraphDelta, AppendOnlyFastPathValidatesLikeTheGeneralPath) {
  const Graph base = square();
  {
    GraphDelta bad;  // forward reference
    bad.added_vertices.push_back({1.0, {{5, 1.0}}});
    bad.added_vertices.push_back({1.0, {}});
    EXPECT_THROW(apply_delta(base, bad), CheckError);
  }
  {
    GraphDelta bad;  // self-loop via added_edges
    bad.added_edges.push_back({2, 2});
    EXPECT_THROW(apply_delta(base, bad), CheckError);
  }
  {
    GraphDelta bad;  // out-of-range endpoint
    bad.added_edges.push_back({0, 4});
    EXPECT_THROW(apply_delta(base, bad), CheckError);
  }
  {
    GraphDelta bad;  // weights not parallel
    bad.added_edges.push_back({0, 2});
    bad.added_edge_weights = {1.0, 2.0};
    EXPECT_THROW(apply_delta(base, bad), CheckError);
  }
}

TEST(GraphDelta, DuplicateEdgeDedupIdenticalOnFastAndRebuildPaths) {
  // Regression: the append fast path and the removal-triggered rebuild
  // path must resolve duplicate added_edges identically — every listing of
  // {u, v} merges by summing, whether or not the delta also removes
  // something (which historically routed it through a different engine).
  const Graph base = grid_graph(5, 5);
  GraphDelta fast_delta;
  fast_delta.added_edges = {{0, 6}, {6, 0}, {0, 6}};  // triple-listed
  fast_delta.added_edge_weights = {1.0, 2.0, 4.0};
  const DeltaResult fast = apply_delta(base, fast_delta);
  EXPECT_DOUBLE_EQ(fast.graph.edge_weight(0, 6), 7.0);

  GraphDelta rebuild_delta = fast_delta;
  rebuild_delta.removed_vertices.push_back(24);  // forces the rebuild path
  const DeltaResult rebuilt = apply_delta(base, rebuild_delta);
  EXPECT_DOUBLE_EQ(rebuilt.graph.edge_weight(0, 6), 7.0);

  // And a duplicate of a pre-existing edge merges onto it on both paths.
  GraphDelta merge_delta;
  merge_delta.added_edges = {{0, 1}};
  merge_delta.added_edge_weights = {3.0};
  EXPECT_DOUBLE_EQ(apply_delta(base, merge_delta).graph.edge_weight(0, 1),
                   base.edge_weight(0, 1) + 3.0);
  merge_delta.removed_vertices.push_back(24);
  EXPECT_DOUBLE_EQ(apply_delta(base, merge_delta).graph.edge_weight(0, 1),
                   base.edge_weight(0, 1) + 3.0);
}

TEST(GraphDelta, NegativeEdgeWeightRejectedOnBothPaths) {
  // Regression: the rebuild path used to accept negative added-edge
  // weights that the append fast path rejected.  validate_delta is now the
  // single shared rule-set.
  const Graph base = square();
  GraphDelta bad;
  bad.added_edges = {{0, 2}};
  bad.added_edge_weights = {-1.0};
  EXPECT_THROW(apply_delta(base, bad), CheckError);  // fast path
  bad.removed_edges.push_back({0, 1});
  EXPECT_THROW(apply_delta(base, bad), CheckError);  // rebuild path
  GraphDelta bad_vertex;
  bad_vertex.added_vertices.push_back({1.0, {{0, -2.0}}});
  bad_vertex.removed_edges.push_back({0, 1});
  EXPECT_THROW(apply_delta(base, bad_vertex), CheckError);
}

TEST(GraphDelta, ValidateDeltaLeavesGraphUntouchedOnRejection) {
  const Graph base = square();
  GraphDelta bad;
  bad.removed_vertices.push_back(1);
  bad.removed_edges.push_back({0, 2});  // does not exist — rejected
  EXPECT_THROW(validate_delta(base, bad), CheckError);
  EXPECT_THROW(apply_delta(base, bad), CheckError);
  EXPECT_EQ(base, square());  // strong guarantee: nothing half-applied

  GraphDelta good;
  good.removed_vertices.push_back(1);
  good.added_edges.push_back({0, 2});
  validate_delta(base, good);  // must not throw
}

TEST(GraphDelta, ApplyDeltaRequiresCompactedGraph) {
  Graph dirty = square();
  dirty.remove_vertex(2);  // tombstone, no compaction
  GraphDelta delta;
  delta.added_edges.push_back({0, 1});
  EXPECT_THROW(apply_delta(dirty, delta), CheckError);
  std::vector<VertexId> old_to_new;
  dirty.compact(old_to_new);
  apply_delta(dirty, delta);  // compacted graph is accepted again
}

}  // namespace
}  // namespace pigp::graph
