// GraphDelta application: additions, deletions, remapping, error handling.

#include "graph/delta.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

Graph square() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  return b.build();
}

TEST(GraphDelta, AddVertexWithEdges) {
  GraphDelta delta;
  delta.added_vertices.push_back({1.0, {{0, 1.0}, {2, 1.0}}});
  const DeltaResult r = apply_delta(square(), delta);

  EXPECT_EQ(r.graph.num_vertices(), 5);
  EXPECT_EQ(r.graph.num_edges(), 6);
  EXPECT_EQ(r.first_new_vertex, 4);
  ASSERT_EQ(r.new_vertex_ids.size(), 1u);
  EXPECT_TRUE(r.graph.has_edge(r.new_vertex_ids[0], 0));
  EXPECT_TRUE(r.graph.has_edge(r.new_vertex_ids[0], 2));
  r.graph.validate();
}

TEST(GraphDelta, NewVerticesMayReferenceEachOther) {
  GraphDelta delta;
  delta.added_vertices.push_back({1.0, {{0, 1.0}}});
  delta.added_vertices.push_back({1.0, {{4, 1.0}}});  // edge to first new one
  const DeltaResult r = apply_delta(square(), delta);
  EXPECT_EQ(r.graph.num_vertices(), 6);
  EXPECT_TRUE(r.graph.has_edge(r.new_vertex_ids[0], r.new_vertex_ids[1]));
}

TEST(GraphDelta, ForwardReferenceRejected) {
  GraphDelta delta;
  delta.added_vertices.push_back({1.0, {{5, 1.0}}});  // references 2nd new
  delta.added_vertices.push_back({1.0, {}});
  EXPECT_THROW(apply_delta(square(), delta), CheckError);
}

TEST(GraphDelta, RemoveVertexCompactsIds) {
  GraphDelta delta;
  delta.removed_vertices.push_back(1);
  const DeltaResult r = apply_delta(square(), delta);

  EXPECT_EQ(r.graph.num_vertices(), 3);
  EXPECT_EQ(r.graph.num_edges(), 2);  // edges 0-1 and 1-2 died
  EXPECT_EQ(r.old_to_new[0], 0);
  EXPECT_EQ(r.old_to_new[1], kInvalidVertex);
  EXPECT_EQ(r.old_to_new[2], 1);
  EXPECT_EQ(r.old_to_new[3], 2);
  r.graph.validate();
}

TEST(GraphDelta, RemoveEdge) {
  GraphDelta delta;
  delta.removed_edges.push_back({0, 1});
  const DeltaResult r = apply_delta(square(), delta);
  EXPECT_EQ(r.graph.num_edges(), 3);
  EXPECT_FALSE(r.graph.has_edge(0, 1));
}

TEST(GraphDelta, RemoveMissingEdgeRejected) {
  GraphDelta delta;
  delta.removed_edges.push_back({0, 2});  // diagonal doesn't exist
  EXPECT_THROW(apply_delta(square(), delta), CheckError);
}

TEST(GraphDelta, AddedEdgeBetweenOldVertices) {
  GraphDelta delta;
  delta.added_edges.push_back({0, 2});
  const DeltaResult r = apply_delta(square(), delta);
  EXPECT_TRUE(r.graph.has_edge(0, 2));
  EXPECT_EQ(r.graph.num_edges(), 5);
}

TEST(GraphDelta, EdgeToRemovedVertexRejected) {
  GraphDelta delta;
  delta.removed_vertices.push_back(0);
  delta.added_edges.push_back({0, 2});
  EXPECT_THROW(apply_delta(square(), delta), CheckError);
}

TEST(GraphDelta, MixedAddRemove) {
  GraphDelta delta;
  delta.removed_vertices.push_back(3);
  delta.added_vertices.push_back({2.0, {{0, 1.0}, {2, 1.0}}});
  const DeltaResult r = apply_delta(square(), delta);

  EXPECT_EQ(r.graph.num_vertices(), 4);
  // Old edges 2-3, 3-0 removed; new vertex adds two.
  EXPECT_EQ(r.graph.num_edges(), 4);
  EXPECT_DOUBLE_EQ(r.graph.vertex_weight(r.new_vertex_ids[0]), 2.0);
  r.graph.validate();
}

TEST(GraphDelta, SequentialDeltasComposeLikeOneBigDelta) {
  const Graph base = grid_graph(6, 6);

  // Two-step: add vertex A attached to 0, then vertex B attached to A and 1.
  GraphDelta d1;
  d1.added_vertices.push_back({1.0, {{0, 1.0}}});
  const DeltaResult r1 = apply_delta(base, d1);
  GraphDelta d2;
  d2.added_vertices.push_back({1.0, {{r1.new_vertex_ids[0], 1.0}, {1, 1.0}}});
  const DeltaResult r2 = apply_delta(r1.graph, d2);

  // One-step: both vertices at once.
  GraphDelta combined;
  combined.added_vertices.push_back({1.0, {{0, 1.0}}});
  combined.added_vertices.push_back(
      {1.0, {{base.num_vertices(), 1.0}, {1, 1.0}}});
  const DeltaResult rc = apply_delta(base, combined);

  EXPECT_EQ(r2.graph, rc.graph);
}

TEST(GraphDelta, EmptyDeltaIsIdentity) {
  const Graph base = square();
  const DeltaResult r = apply_delta(base, GraphDelta{});
  EXPECT_EQ(r.graph, base);
  EXPECT_EQ(r.first_new_vertex, base.num_vertices());
}

}  // namespace
}  // namespace pigp::graph
