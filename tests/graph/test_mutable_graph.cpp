// Slotted mutable Graph: O(Δ) mutators, overflow relocation, compaction.

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

Graph square() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  return b.build();
}

TEST(MutableGraph, AddVertexAppendsLiveIsolatedId) {
  Graph g = square();
  const VertexId v = g.add_vertex(2.5);
  EXPECT_EQ(v, 4);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_TRUE(g.is_live(v));
  EXPECT_EQ(g.degree(v), 0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(v), 2.5);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 6.5);
  g.validate();
}

TEST(MutableGraph, InsertEdgeIsStructuralOnceThenMerges) {
  Graph g = square();
  EXPECT_TRUE(g.insert_edge(0, 2, 3.0));  // new diagonal
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 3.0);
  // Duplicate merges by summing, GraphBuilder-style, and is not structural.
  EXPECT_FALSE(g.insert_edge(2, 0, 1.5));
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 4.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 0), 4.5);
  g.validate();
}

TEST(MutableGraph, InsertEdgeKeepsRowsSorted) {
  Graph g(std::vector<EdgeIndex>{0, 0, 0, 0, 0}, {}, {1, 1, 1, 1}, {});
  g.insert_edge(2, 3, 1.0);
  g.insert_edge(2, 0, 1.0);
  g.insert_edge(2, 1, 1.0);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 3);
  g.validate();
}

TEST(MutableGraph, InsertEdgeRejectsBadArguments) {
  Graph g = square();
  EXPECT_THROW(g.insert_edge(0, 0, 1.0), CheckError);   // self-loop
  EXPECT_THROW(g.insert_edge(0, 9, 1.0), CheckError);   // out of range
  EXPECT_THROW(g.insert_edge(0, 1, -1.0), CheckError);  // negative weight
  g.remove_vertex(3);
  EXPECT_THROW(g.insert_edge(0, 3, 1.0), CheckError);  // dead endpoint
}

TEST(MutableGraph, RemoveEdgeReturnsWeight) {
  Graph g = square();
  EXPECT_TRUE(g.insert_edge(0, 2, 7.0));
  EXPECT_DOUBLE_EQ(g.remove_edge(2, 0), 7.0);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_THROW(g.remove_edge(0, 2), CheckError);  // already gone
  g.validate();
}

TEST(MutableGraph, RemoveThenReinsertIsStructuralAgain) {
  Graph g = square();
  g.remove_edge(0, 1);
  EXPECT_TRUE(g.insert_edge(0, 1, 2.0));  // physically removed => new again
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
  EXPECT_EQ(g, [] {
    GraphBuilder b(4);
    b.add_edge(0, 1, 2.0);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(3, 0);
    return b.build();
  }());
}

TEST(MutableGraph, RemoveVertexTombstonesAndIsolates) {
  Graph g = square();
  g.remove_vertex(1);
  EXPECT_EQ(g.num_vertices(), 4);  // id space does not shrink
  EXPECT_FALSE(g.is_live(1));
  EXPECT_EQ(g.num_dead_vertices(), 1);
  EXPECT_EQ(g.num_live_vertices(), 3);
  EXPECT_EQ(g.degree(1), 0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 3.0);
  // The back half-edges left the neighbors' rows too: nothing reaches 1.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) EXPECT_NE(u, 1);
  }
  EXPECT_EQ(g.num_edges(), 2);  // 2-3 and 3-0 survive
  EXPECT_FALSE(g.has_edge(0, 1));
  g.validate();
}

TEST(MutableGraph, OverflowRelocationPreservesRowAndTracksSlack) {
  // A CSR-built row is tight (cap == len), so the first insert relocates it
  // into the overflow arena; keep inserting well past several doublings.
  GraphBuilder b(66);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.adjacency_slack(), 0);  // tight after construction
  for (VertexId v = 2; v < 66; ++v) {
    EXPECT_TRUE(g.insert_edge(0, v, static_cast<double>(v)));
  }
  EXPECT_EQ(g.degree(0), 65);
  EXPECT_GT(g.adjacency_slack(), 0);  // garbage + capacity slack appeared
  const auto nbrs = g.neighbors(0);
  const auto ws = g.incident_edge_weights(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(nbrs[i], static_cast<VertexId>(i + 1));
    if (i > 0) EXPECT_DOUBLE_EQ(ws[i], static_cast<double>(nbrs[i]));
  }
  g.validate();
}

TEST(MutableGraph, CompactDropsDeadIdsOrderPreserving) {
  Graph g = square();
  g.insert_edge(0, 2, 5.0);
  g.remove_vertex(1);
  std::vector<VertexId> old_to_new;
  const VertexId n = g.compact(old_to_new);
  EXPECT_EQ(n, 3);
  ASSERT_EQ(old_to_new.size(), 4u);
  EXPECT_EQ(old_to_new[0], 0);
  EXPECT_EQ(old_to_new[1], kInvalidVertex);
  EXPECT_EQ(old_to_new[2], 1);
  EXPECT_EQ(old_to_new[3], 2);
  EXPECT_EQ(g.num_dead_vertices(), 0);
  EXPECT_EQ(g.adjacency_slack(), 0);  // rows rebuilt tight
  EXPECT_EQ(g.num_edges(), 3);        // 2-3, 3-0, 0-2 under new ids
  EXPECT_TRUE(g.has_edge(0, 1));      // old 0-2
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 5.0);
  g.validate();
}

TEST(MutableGraph, CompactMatchesFromScratchBuild) {
  Graph g = square();
  g.remove_vertex(0);
  g.add_vertex(1.0);  // id 4
  g.insert_edge(4, 2, 2.0);
  std::vector<VertexId> old_to_new;
  g.compact(old_to_new);
  // Survivors 1,2,3,4 -> 0,1,2,3 with edges 1-2, 2-3, 4-2.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 1, 2.0);
  EXPECT_EQ(g, b.build());
}

TEST(MutableGraph, EqualityIgnoresSlotLayout) {
  // Same semantic graph, radically different slot history.
  Graph a = square();
  Graph b = square();
  b.insert_edge(0, 2, 1.0);  // forces relocation of rows 0 and 2
  b.remove_edge(0, 2);
  EXPECT_GT(b.adjacency_slack(), 0);
  EXPECT_EQ(a, b);
  // Liveness is observable even though a dead vertex has no edges.
  Graph c = square();
  c.remove_vertex(3);
  Graph d = square();
  d.remove_edge(2, 3);
  d.remove_edge(3, 0);
  EXPECT_NE(c, d);
}

TEST(MutableGraph, ValidateCatchesCounterDrift) {
  Graph g = square();
  g.remove_vertex(2);
  g.validate();  // tombstoned state is well-formed
  std::vector<VertexId> old_to_new;
  g.compact(old_to_new);
  g.validate();
}

}  // namespace
}  // namespace pigp::graph
