// GraphBuilder: duplicate merging, validation, reuse.

#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pigp::graph {
namespace {

TEST(GraphBuilder, MergesDuplicateEdgesBySummingWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 0, 3.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 5.0);
}

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), CheckError);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoints) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), CheckError);
  EXPECT_THROW(b.add_edge(-1, 0), CheckError);
}

TEST(GraphBuilder, RejectsNegativeWeights) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), CheckError);
  EXPECT_THROW(b.add_vertex(-2.0), CheckError);
}

TEST(GraphBuilder, ReserveVerticesGrowsOnly) {
  GraphBuilder b(3);
  b.reserve_vertices(5);
  EXPECT_EQ(b.num_vertices(), 5);
  b.reserve_vertices(2);  // no shrink
  EXPECT_EQ(b.num_vertices(), 5);
}

TEST(GraphBuilder, BuildIsRepeatable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  const Graph g2 = b.build();
  EXPECT_EQ(g1, g2);
  b.add_edge(1, 2);
  EXPECT_NE(g1, b.build());
}

TEST(GraphBuilder, IsolatedVerticesSurvive) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_EQ(g.degree(3), 0);
  g.validate();
}

TEST(GraphBuilder, LargeRandomBuildValidates) {
  GraphBuilder b(500);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>((i * 7919) % 500);
    const auto v = static_cast<VertexId>((i * 104729 + 1) % 500);
    if (u != v) b.add_edge(u, v);
  }
  b.build().validate();
}

}  // namespace
}  // namespace pigp::graph
