// METIS-format serialization round-trips.

#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

TEST(MetisIo, RoundTripUnweighted) {
  const Graph g = grid_graph(4, 5);
  std::stringstream ss;
  write_metis(g, ss);
  EXPECT_EQ(read_metis(ss), g);
}

TEST(MetisIo, RoundTripVertexWeights) {
  GraphBuilder b;
  const VertexId a = b.add_vertex(3.0);
  const VertexId c = b.add_vertex(1.0);
  const VertexId d = b.add_vertex(2.0);
  b.add_edge(a, c);
  b.add_edge(c, d);
  const Graph g = b.build();

  std::stringstream ss;
  write_metis(g, ss);
  EXPECT_EQ(read_metis(ss), g);
}

TEST(MetisIo, RoundTripEdgeWeights) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 4.0);
  b.add_edge(1, 2, 2.5);
  const Graph g = b.build();

  std::stringstream ss;
  write_metis(g, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("01"), std::string::npos);  // fmt code for edge weights
  EXPECT_EQ(read_metis(ss), g);
}

TEST(MetisIo, RoundTripBothWeights) {
  GraphBuilder b;
  b.add_vertex(2.0);
  b.add_vertex(5.0);
  b.add_edge(0, 1, 7.0);
  const Graph g = b.build();
  std::stringstream ss;
  write_metis(g, ss);
  EXPECT_EQ(read_metis(ss), g);
}

TEST(MetisIo, SkipsCommentLines) {
  std::stringstream ss("% a comment\n2 1\n% another\n2\n1\n");
  const Graph g = read_metis(ss);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(MetisIo, RejectsBadEdgeCount) {
  std::stringstream ss("2 5\n2\n1\n");  // header claims 5 edges, file has 1
  EXPECT_THROW(read_metis(ss), CheckError);
}

TEST(MetisIo, RejectsTruncatedFile) {
  std::stringstream ss("3 2\n2\n");
  EXPECT_THROW(read_metis(ss), CheckError);
}

TEST(MetisIo, RejectsOutOfRangeNeighbor) {
  std::stringstream ss("2 1\n3\n1\n");
  EXPECT_THROW(read_metis(ss), CheckError);
}

TEST(MetisIo, FileRoundTrip) {
  const Graph g = random_geometric_graph(100, 0.15, 5);
  const std::string path = ::testing::TempDir() + "/pigp_io_test.graph";
  save_metis_file(g, path);
  EXPECT_EQ(load_metis_file(path), g);
}

TEST(MetisIo, MissingFileThrows) {
  EXPECT_THROW(load_metis_file("/nonexistent/definitely/missing.graph"),
               CheckError);
}

}  // namespace
}  // namespace pigp::graph
