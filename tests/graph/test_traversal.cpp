// BFS distances, nearest-source labeling (serial vs parallel determinism),
// BFS orders, pseudo-peripheral vertices.

#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace pigp::graph {
namespace {

TEST(BfsDistances, PathGraph) {
  const Graph g = path_graph(5);
  const std::vector<VertexId> sources = {0};
  const auto dist = bfs_distances(g, sources);
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(BfsDistances, MultiSourceTakesMinimum) {
  const Graph g = path_graph(7);
  const std::vector<VertexId> sources = {0, 6};
  const auto dist = bfs_distances(g, sources);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[6], 0);
  EXPECT_EQ(dist[5], 1);
}

TEST(BfsDistances, UnreachableVerticesStayMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);  // 2, 3 isolated
  const Graph g = b.build();
  const std::vector<VertexId> sources = {0};
  const auto dist = bfs_distances(g, sources);
  EXPECT_EQ(dist[2], kUnreached);
  EXPECT_EQ(dist[3], kUnreached);
}

TEST(BfsDistances, GridDistanceIsManhattanFromCorner) {
  const int n = 8;
  const Graph g = grid_graph(n, n);
  const std::vector<VertexId> sources = {0};
  const auto dist = bfs_distances(g, sources);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_EQ(dist[static_cast<std::size_t>(r * n + c)], r + c);
    }
  }
}

TEST(NearestSourceLabels, LabelsFollowNearestSource) {
  const Graph g = path_graph(10);
  std::vector<std::int32_t> seeds(10, -1);
  seeds[0] = 100;
  seeds[9] = 200;
  const auto result = nearest_source_labels(g, seeds);
  EXPECT_EQ(result.label[1], 100);
  EXPECT_EQ(result.label[8], 200);
  // Vertex 4 is distance 4 from source 0 and 5 from source 9.
  EXPECT_EQ(result.label[4], 100);
  // Equidistant vertex (none on even path of 10: v=4 is 4 vs 5) — vertex at
  // index 4/5 check tie rule below.
}

TEST(NearestSourceLabels, TieBreaksToSmallerLabel) {
  const Graph g = path_graph(9);
  std::vector<std::int32_t> seeds(9, -1);
  seeds[0] = 7;
  seeds[8] = 3;
  const auto result = nearest_source_labels(g, seeds);
  // Vertex 4 is equidistant (4 hops) from both sources; smaller label wins.
  EXPECT_EQ(result.label[4], 3);
}

TEST(NearestSourceLabels, ParallelMatchesSerial) {
  const Graph g = random_connected_graph(5000, 1.5, 42);
  std::vector<std::int32_t> seeds(5000, -1);
  for (int i = 0; i < 16; ++i) seeds[static_cast<std::size_t>(i * 311)] = i;

  const auto serial = nearest_source_labels(g, seeds, 1);
  const auto parallel = nearest_source_labels(g, seeds, 8);
  EXPECT_EQ(serial.distance, parallel.distance);
  EXPECT_EQ(serial.label, parallel.label);
}

TEST(NearestSourceLabels, NoSourcesLeavesEverythingUnreached) {
  const Graph g = path_graph(4);
  std::vector<std::int32_t> seeds(4, -1);
  const auto result = nearest_source_labels(g, seeds);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(result.distance[static_cast<std::size_t>(v)], kUnreached);
    EXPECT_EQ(result.label[static_cast<std::size_t>(v)], -1);
  }
}

TEST(BfsOrder, VisitsComponentInBreadthOrder) {
  const Graph g = path_graph(5);
  const auto order = bfs_order(g, 2);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 2);
  // Levels: {2}, {1,3}, {0,4}.
  EXPECT_TRUE((order[1] == 1 && order[2] == 3) ||
              (order[1] == 3 && order[2] == 1));
}

TEST(BfsOrder, RestrictedToComponent) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(bfs_order(g, 0).size(), 2u);
  EXPECT_EQ(bfs_order(g, 2).size(), 2u);
  EXPECT_EQ(bfs_order(g, 4).size(), 1u);
}

TEST(PseudoPeripheral, PathEndsArePeripheral) {
  const Graph g = path_graph(21);
  const VertexId v = pseudo_peripheral_vertex(g, 10);
  EXPECT_TRUE(v == 0 || v == 20);
}

TEST(PseudoPeripheral, GridCornerFound) {
  const Graph g = grid_graph(9, 9);
  const VertexId v = pseudo_peripheral_vertex(g, 40);  // center
  // Must land on one of the four corners.
  EXPECT_TRUE(v == 0 || v == 8 || v == 72 || v == 80);
}

}  // namespace
}  // namespace pigp::graph
