// CSR Graph invariants and accessors.

#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return b.build();
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  g.validate();
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_half_edges(), 6);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  g.validate();
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(4);
  b.add_edge(2, 3);
  b.add_edge(2, 0);
  b.add_edge(2, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 3);
}

TEST(Graph, WeightsRoundTrip) {
  GraphBuilder b;
  const VertexId a = b.add_vertex(2.5);
  const VertexId c = b.add_vertex(0.5);
  b.add_edge(a, c, 7.0);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(g.vertex_weight(a), 2.5);
  EXPECT_DOUBLE_EQ(g.vertex_weight(c), 0.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(a, c), 7.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(c, a), 7.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(a, a), 0.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 3.0);
  EXPECT_FALSE(g.has_unit_weights());
}

TEST(Graph, UnitWeightDetection) {
  EXPECT_TRUE(triangle().has_unit_weights());
}

TEST(Graph, ValidateRejectsAsymmetry) {
  // Hand-build a malformed CSR: edge 0->1 without 1->0.
  std::vector<EdgeIndex> xadj = {0, 1, 1};
  std::vector<VertexId> adjncy = {1};
  std::vector<double> vw = {1.0, 1.0};
  std::vector<double> ew = {1.0};
  const Graph g(std::move(xadj), std::move(adjncy), std::move(vw),
                std::move(ew));
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Graph, ValidateRejectsSelfLoop) {
  std::vector<EdgeIndex> xadj = {0, 1};
  std::vector<VertexId> adjncy = {0};
  std::vector<double> vw = {1.0};
  std::vector<double> ew = {1.0};
  const Graph g(std::move(xadj), std::move(adjncy), std::move(vw),
                std::move(ew));
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Graph, ConstructorRejectsMismatchedArrays) {
  std::vector<EdgeIndex> xadj = {0, 0};
  std::vector<VertexId> adjncy;
  std::vector<double> vw;  // should have 1 entry
  std::vector<double> ew;
  EXPECT_THROW(Graph(std::move(xadj), std::move(adjncy), std::move(vw),
                     std::move(ew)),
               CheckError);
}

TEST(Graph, EqualityComparesStructure) {
  EXPECT_EQ(triangle(), triangle());
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_NE(triangle(), b.build());
}

}  // namespace
}  // namespace pigp::graph
