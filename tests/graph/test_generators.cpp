// Structural properties of the synthetic graph families.

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

TEST(Generators, GridCounts) {
  const Graph g = grid_graph(5, 7);
  EXPECT_EQ(g.num_vertices(), 35);
  // Edges: 5*6 horizontal + 4*7 vertical.
  EXPECT_EQ(g.num_edges(), 5 * 6 + 4 * 7);
  g.validate();
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = torus_graph(5, 4);
  EXPECT_EQ(g.num_vertices(), 20);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
  g.validate();
}

TEST(Generators, PathAndCycle) {
  EXPECT_EQ(path_graph(10).num_edges(), 9);
  EXPECT_EQ(cycle_graph(10).num_edges(), 10);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = complete_graph(8);
  EXPECT_EQ(g.num_edges(), 8 * 7 / 2);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 7);
}

TEST(Generators, StarDegrees) {
  const Graph g = star_graph(9);
  EXPECT_EQ(g.degree(0), 8);
  for (VertexId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(Generators, RandomGeometricIsDeterministic) {
  const Graph a = random_geometric_graph(300, 0.08, 7);
  const Graph b = random_geometric_graph(300, 0.08, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_geometric_graph(300, 0.08, 8));
}

TEST(Generators, RandomGeometricEdgesRespectRadius) {
  std::vector<std::array<double, 2>> coords;
  const Graph g = random_geometric_graph(200, 0.1, 3, &coords);
  ASSERT_EQ(coords.size(), 200u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      const double dx = coords[static_cast<std::size_t>(v)][0] -
                        coords[static_cast<std::size_t>(u)][0];
      const double dy = coords[static_cast<std::size_t>(v)][1] -
                        coords[static_cast<std::size_t>(u)][1];
      EXPECT_LE(dx * dx + dy * dy, 0.1 * 0.1 + 1e-12);
    }
  }
  g.validate();
}

TEST(Generators, ErdosRenyiExtremes) {
  EXPECT_EQ(erdos_renyi_graph(20, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(erdos_renyi_graph(20, 1.0, 1).num_edges(), 190);
}

TEST(Generators, RandomConnectedGraphHasSpanningTree) {
  const Graph g = random_connected_graph(100, 0.0, 11);
  EXPECT_EQ(g.num_edges(), 99);  // pure tree
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, InvalidArgumentsThrow) {
  EXPECT_THROW(grid_graph(0, 3), CheckError);
  EXPECT_THROW(torus_graph(2, 5), CheckError);
  EXPECT_THROW(cycle_graph(2), CheckError);
  EXPECT_THROW(random_geometric_graph(10, 0.0, 1), CheckError);
  EXPECT_THROW(erdos_renyi_graph(10, 1.5, 1), CheckError);
}

}  // namespace
}  // namespace pigp::graph
