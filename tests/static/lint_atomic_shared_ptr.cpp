// Linter seed: std::atomic<std::shared_ptr> — the documented ViewChannel
// hazard (libstdc++ backs it with a spin-lock bit TSan cannot see
// through).  Driven via `ci/lint_invariants.py --must-find
// atomic-shared-ptr`.
#include <atomic>
#include <memory>

namespace seed {

std::atomic<std::shared_ptr<int>> cell;

}  // namespace seed
