// Negative-compile seed for the thread-safety harness: calling a
// PIGP_REQUIRES helper without holding the required mutex.  Registered with
// WILL_FAIL under `clang -fsyntax-only -Wthread-safety -Werror`.
#include "runtime/sync.hpp"

namespace {

class Counter {
 public:
  // Calls the _locked helper with mutex_ not held: must be rejected.
  void unsafe_increment() { increment_locked(); }

 private:
  void increment_locked() PIGP_REQUIRES(mutex_) { ++value_; }

  pigp::sync::Mutex mutex_;
  int value_ PIGP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.unsafe_increment();
  return 0;
}
