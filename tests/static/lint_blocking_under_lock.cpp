// Linter seed: a blocking BoundedQueue call made while holding a
// sync::MutexLock.  Driven via `ci/lint_invariants.py --must-find
// blocking-under-lock`.
#include "runtime/delta_queue.hpp"
#include "runtime/sync.hpp"

namespace seed {

struct Relay {
  pigp::sync::Mutex mutex_;
  pigp::runtime::BoundedQueue<int> queue_{8};

  void bad() {
    pigp::sync::MutexLock lock(mutex_);
    queue_.push(1);  // blocks while a capability is held
  }
};

}  // namespace seed
