// Positive control for the thread-safety harness: idiomatic use of the
// annotated primitives — MutexLock scopes, a REQUIRES helper called under
// the lock, and an explicit CondVar predicate loop (the house style; see
// runtime/sync.hpp for why predicate lambdas are banned).  Must compile
// cleanly under `clang -fsyntax-only -Wthread-safety -Werror`; if this
// fails, the negative seeds above prove nothing.
#include "runtime/sync.hpp"

namespace {

class Slot {
 public:
  void put(int value) {
    {
      pigp::sync::MutexLock lock(mutex_);
      store_locked(value);
    }
    filled_.notify_one();  // notify outside the critical section
  }

  int take() {
    pigp::sync::MutexLock lock(mutex_);
    while (!full_) {
      filled_.wait(mutex_);
    }
    full_ = false;
    return value_;
  }

 private:
  void store_locked(int value) PIGP_REQUIRES(mutex_) {
    value_ = value;
    full_ = true;
  }

  pigp::sync::Mutex mutex_;
  pigp::sync::CondVar filled_;
  int value_ PIGP_GUARDED_BY(mutex_) = 0;
  bool full_ PIGP_GUARDED_BY(mutex_) = false;
};

}  // namespace

int main() {
  Slot slot;
  slot.put(7);
  return slot.take() == 7 ? 0 : 1;
}
