// Negative-compile seed for the thread-safety harness: writing a
// PIGP_GUARDED_BY field without holding its mutex.  tests/static registers
// this translation unit with WILL_FAIL under
// `clang -fsyntax-only -Wthread-safety -Werror`; if it ever starts
// compiling, the annotation gate has rotted.
#include "runtime/sync.hpp"

namespace {

class Counter {
 public:
  // Touches value_ with mutex_ not held: -Wthread-safety must reject this.
  void increment() { ++value_; }

 private:
  pigp::sync::Mutex mutex_;
  int value_ PIGP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return 0;
}
