// Linter seed: raw std::mutex / std::lock_guard outside runtime/sync.hpp.
// tests/static runs `ci/lint_invariants.py --must-find raw-sync` on this
// file; the same file also drives the suppression-path test (see
// suppress_raw_sync.txt).
#include <mutex>

namespace seed {

std::mutex raw_mutex;

inline void touch() { const std::lock_guard<std::mutex> lock(raw_mutex); }

}  // namespace seed
