// Linter seed: an explicit allocation inside a function carrying the
// `// pigp:steady-state` contract comment.  Driven via
// `ci/lint_invariants.py --must-find steady-state-alloc`.
#include <memory>

namespace seed {

// pigp:steady-state
inline std::unique_ptr<int> make_box() { return std::make_unique<int>(42); }

}  // namespace seed
