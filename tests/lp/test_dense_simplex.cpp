// Unit tests for the dense two-phase simplex: textbook problems with known
// optima, status detection, bounds, degenerate and redundant systems.

#include "lp/dense_simplex.hpp"

#include <gtest/gtest.h>

#include "lp/program.hpp"

namespace pigp::lp {
namespace {

constexpr double kTol = 1e-7;

TEST(DenseSimplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => opt 36 at (2, 6).
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(3.0);
  const int y = lp.add_variable(5.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}}, 4.0);
  lp.add_row(RowType::less_equal, {{y, 2.0}}, 12.0);
  lp.add_row(RowType::less_equal, {{x, 3.0}, {y, 2.0}}, 18.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 6.0, kTol);
}

TEST(DenseSimplex, TextbookMinimizationWithGe) {
  // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90
  // classic diet problem => opt 0.66 at (3, 2).
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(0.12);
  const int y = lp.add_variable(0.15);
  lp.add_row(RowType::greater_equal, {{x, 60.0}, {y, 60.0}}, 300.0);
  lp.add_row(RowType::greater_equal, {{x, 12.0}, {y, 6.0}}, 36.0);
  lp.add_row(RowType::greater_equal, {{x, 10.0}, {y, 30.0}}, 90.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 0.66, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 3.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, kTol);
}

TEST(DenseSimplex, EqualityConstraints) {
  // min x + 2y + 3z s.t. x + y + z = 10, x - y = 2  => x,y from z = 0:
  // x = 6, y = 4, z = 0 -> obj 14.
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(2.0);
  const int z = lp.add_variable(3.0);
  lp.add_row(RowType::equal, {{x, 1.0}, {y, 1.0}, {z, 1.0}}, 10.0);
  lp.add_row(RowType::equal, {{x, 1.0}, {y, -1.0}}, 2.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 14.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 6.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 4.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(z)], 0.0, kTol);
}

TEST(DenseSimplex, DetectsInfeasible) {
  // x >= 5 and x <= 3 cannot hold together.
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(1.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, 5.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}}, 3.0);

  EXPECT_EQ(DenseSimplex().solve(lp).status, SolveStatus::infeasible);
}

TEST(DenseSimplex, DetectsUnbounded) {
  // max x with only x >= 1.
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(1.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, 1.0);

  EXPECT_EQ(DenseSimplex().solve(lp).status, SolveStatus::unbounded);
}

TEST(DenseSimplex, HonorsVariableBounds) {
  // max x + y with 1 <= x <= 2, 0 <= y <= 0.5 and x + y <= 10 (slack).
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(1.0, 1.0, 2.0);
  const int y = lp.add_variable(1.0, 0.0, 0.5);
  lp.add_row(RowType::less_equal, {{x, 1.0}, {y, 1.0}}, 10.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 2.5, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 0.5, kTol);
}

TEST(DenseSimplex, FreeVariable) {
  // min |shape|: x free, minimize x subject to x >= -7 expressed as a row.
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(1.0, -kInfinity, kInfinity);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, -7.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, -7.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], -7.0, kTol);
}

TEST(DenseSimplex, NegativeLowerBound) {
  // min x + y, x in [-5, -1], y in [2, inf), x + y >= 0.
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(1.0, -5.0, -1.0);
  const int y = lp.add_variable(1.0, 2.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}, {y, 1.0}}, 0.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 0.0, kTol);
  EXPECT_TRUE(lp.is_feasible(s.x));
}

TEST(DenseSimplex, RedundantEqualityRows) {
  // The balance LP of the paper always contains one redundant equality
  // (the per-partition excesses sum to zero); the solver must cope.
  LinearProgram lp(Sense::minimize);
  const int a = lp.add_variable(1.0);
  const int b = lp.add_variable(1.0);
  lp.add_row(RowType::equal, {{a, 1.0}, {b, -1.0}}, 3.0);
  lp.add_row(RowType::equal, {{a, -1.0}, {b, 1.0}}, -3.0);  // negation of row 0

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
}

TEST(DenseSimplex, DegenerateCycleProne) {
  // Beale's classic cycling example; must terminate via the Bland fallback.
  LinearProgram lp(Sense::minimize);
  const int x1 = lp.add_variable(-0.75);
  const int x2 = lp.add_variable(150.0);
  const int x3 = lp.add_variable(-0.02);
  const int x4 = lp.add_variable(6.0);
  lp.add_row(RowType::less_equal,
             {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, 0.0);
  lp.add_row(RowType::less_equal,
             {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, 0.0);
  lp.add_row(RowType::less_equal, {{x3, 1.0}}, 1.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, -0.05, kTol);
}

TEST(DenseSimplex, BlandOnlyModeSolves) {
  SimplexOptions opt;
  opt.always_bland = true;
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(2.0);
  const int y = lp.add_variable(3.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}, {y, 1.0}}, 4.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}, {y, 3.0}}, 6.0);

  const Solution s = DenseSimplex(opt).solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);  // (3, 1)
}

TEST(DenseSimplex, FixedVariable) {
  // A variable fixed by equal bounds participates as a constant.
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(1.0, 2.0, 2.0);
  const int y = lp.add_variable(1.0, 0.0, kInfinity);
  lp.add_row(RowType::less_equal, {{x, 1.0}, {y, 1.0}}, 5.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 3.0, kTol);
}

TEST(DenseSimplex, EmptyObjectiveFindsFeasiblePoint) {
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(0.0);
  lp.add_row(RowType::equal, {{x, 2.0}}, 8.0);

  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 4.0, kTol);
}

TEST(DenseSimplex, ParallelPivotMatchesSerial) {
  LinearProgram lp(Sense::maximize);
  // A moderately sized random-ish LP built deterministically.
  std::vector<int> vars;
  for (int j = 0; j < 40; ++j) {
    vars.push_back(lp.add_variable(1.0 + 0.1 * j, 0.0, 5.0 + j % 7));
  }
  for (int i = 0; i < 30; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < 40; ++j) {
      const double c = ((i * 37 + j * 17) % 11) - 3.0;
      if (c != 0.0) coeffs.emplace_back(vars[static_cast<std::size_t>(j)], c);
    }
    lp.add_row(RowType::less_equal, coeffs, 50.0 + i);
  }

  SimplexOptions serial;
  SimplexOptions parallel;
  parallel.num_threads = 4;
  const Solution a = DenseSimplex(serial).solve(lp);
  const Solution b = DenseSimplex(parallel).solve(lp);
  ASSERT_EQ(a.status, SolveStatus::optimal);
  ASSERT_EQ(b.status, SolveStatus::optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
}

}  // namespace
}  // namespace pigp::lp
