// Canonical-form conversion tests: shifted / mirrored / split substitutions,
// row rewriting, bounds-as-rows mode, and recover() round-trips.

#include "lp/standard_form.hpp"

#include <gtest/gtest.h>

#include "lp/program.hpp"
#include "support/check.hpp"

namespace pigp::lp::detail {
namespace {

TEST(StandardForm, NonNegativeVariablePassesThrough) {
  LinearProgram lp;
  const int x = lp.add_variable(3.0);
  lp.add_row(RowType::less_equal, {{x, 2.0}}, 8.0);

  const StandardForm sf = make_standard_form(lp, /*bounds_as_rows=*/false);
  ASSERT_EQ(sf.num_columns(), 1);
  EXPECT_EQ(sf.columns[0].kind, ColumnOrigin::Kind::shifted);
  EXPECT_DOUBLE_EQ(sf.columns[0].shift, 0.0);
  EXPECT_DOUBLE_EQ(sf.cost[0], 3.0);
  EXPECT_EQ(sf.upper[0], kInfinity);
  ASSERT_EQ(sf.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(sf.rows[0].rhs, 8.0);
  EXPECT_FALSE(sf.negated_objective);
}

TEST(StandardForm, ShiftedVariableAdjustsRhsAndBound) {
  // 2 <= x <= 7 becomes 0 <= y <= 5 with x = 2 + y; row rhs shifts by -2a.
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 2.0, 7.0);
  lp.add_row(RowType::equal, {{x, 2.0}}, 10.0);

  const StandardForm sf = make_standard_form(lp, false);
  ASSERT_EQ(sf.num_columns(), 1);
  EXPECT_DOUBLE_EQ(sf.columns[0].shift, 2.0);
  EXPECT_DOUBLE_EQ(sf.upper[0], 5.0);
  EXPECT_DOUBLE_EQ(sf.rows[0].rhs, 6.0);

  // y = 3 maps back to x = 5, which satisfies the original row exactly.
  const std::vector<double> x_back = sf.recover({3.0});
  ASSERT_EQ(x_back.size(), 1u);
  EXPECT_DOUBLE_EQ(x_back[0], 5.0);
  EXPECT_TRUE(lp.is_feasible(x_back));
}

TEST(StandardForm, MirroredVariableFlipsCostAndCoefficients) {
  // x <= 4 with no lower bound becomes x = 4 - y, y >= 0.
  LinearProgram lp;
  const int x = lp.add_variable(2.0, -kInfinity, 4.0);
  lp.add_row(RowType::less_equal, {{x, 3.0}}, 9.0);

  const StandardForm sf = make_standard_form(lp, false);
  ASSERT_EQ(sf.num_columns(), 1);
  EXPECT_EQ(sf.columns[0].kind, ColumnOrigin::Kind::mirrored);
  EXPECT_DOUBLE_EQ(sf.columns[0].shift, 4.0);
  EXPECT_DOUBLE_EQ(sf.cost[0], -2.0);
  ASSERT_EQ(sf.rows[0].coeffs.size(), 1u);
  EXPECT_DOUBLE_EQ(sf.rows[0].coeffs[0].second, -3.0);
  EXPECT_DOUBLE_EQ(sf.rows[0].rhs, 9.0 - 3.0 * 4.0);

  EXPECT_DOUBLE_EQ(sf.recover({1.0})[0], 3.0);
}

TEST(StandardForm, FreeVariableSplitsIntoPairedColumns) {
  LinearProgram lp;
  const int x = lp.add_variable(5.0, -kInfinity, kInfinity);
  lp.add_row(RowType::equal, {{x, 1.0}}, -2.0);

  const StandardForm sf = make_standard_form(lp, false);
  ASSERT_EQ(sf.num_columns(), 2);
  EXPECT_EQ(sf.columns[0].kind, ColumnOrigin::Kind::split_pos);
  EXPECT_EQ(sf.columns[1].kind, ColumnOrigin::Kind::split_neg);
  EXPECT_EQ(sf.columns[0].partner, 1);
  EXPECT_EQ(sf.columns[1].partner, 0);
  EXPECT_DOUBLE_EQ(sf.cost[0], 5.0);
  EXPECT_DOUBLE_EQ(sf.cost[1], -5.0);
  // Row picks up both columns with opposite signs.
  ASSERT_EQ(sf.rows[0].coeffs.size(), 2u);
  EXPECT_DOUBLE_EQ(sf.rows[0].coeffs[0].second, 1.0);
  EXPECT_DOUBLE_EQ(sf.rows[0].coeffs[1].second, -1.0);

  // y_pos = 1, y_neg = 3 recovers x = -2: original row holds.
  const std::vector<double> x_back = sf.recover({1.0, 3.0});
  EXPECT_DOUBLE_EQ(x_back[0], -2.0);
  EXPECT_TRUE(lp.is_feasible(x_back));
}

TEST(StandardForm, MaximizeNegatesObjective) {
  LinearProgram lp(Sense::maximize);
  lp.add_variable(4.0);

  const StandardForm sf = make_standard_form(lp, false);
  EXPECT_TRUE(sf.negated_objective);
  EXPECT_DOUBLE_EQ(sf.cost[0], -4.0);
}

TEST(StandardForm, BoundsAsRowsEmitsExplicitUpperRows) {
  LinearProgram lp;
  lp.add_variable(1.0, 0.0, 6.0);
  lp.add_variable(1.0);  // unbounded: no extra row
  lp.add_row(RowType::equal, {{0, 1.0}, {1, 1.0}}, 4.0);

  const StandardForm sf = make_standard_form(lp, /*bounds_as_rows=*/true);
  ASSERT_EQ(sf.rows.size(), 2u);
  EXPECT_EQ(sf.rows[1].type, RowType::less_equal);
  ASSERT_EQ(sf.rows[1].coeffs.size(), 1u);
  EXPECT_EQ(sf.rows[1].coeffs[0].first, 0);
  EXPECT_DOUBLE_EQ(sf.rows[1].rhs, 6.0);
  // The column bound moves onto the row.
  EXPECT_EQ(sf.upper[0], kInfinity);
  EXPECT_EQ(sf.upper[1], kInfinity);
}

TEST(StandardForm, DuplicateCoefficientsMergePerColumn) {
  // The same variable twice in a row must collapse to one canonical entry.
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_row(RowType::equal, {{x, 1.0}, {x, 2.5}}, 7.0);

  const StandardForm sf = make_standard_form(lp, false);
  ASSERT_EQ(sf.rows[0].coeffs.size(), 1u);
  EXPECT_DOUBLE_EQ(sf.rows[0].coeffs[0].second, 3.5);
}

TEST(StandardForm, MixedVariablesRoundTrip) {
  // One of each substitution kind in a single row; a canonical point maps
  // back to a feasible original point.
  LinearProgram lp;
  const int a = lp.add_variable(1.0, 1.0, 3.0);              // shifted
  const int b = lp.add_variable(1.0, -kInfinity, 2.0);       // mirrored
  const int c = lp.add_variable(1.0, -kInfinity, kInfinity); // split
  lp.add_row(RowType::less_equal, {{a, 1.0}, {b, 1.0}, {c, 1.0}}, 10.0);

  const StandardForm sf = make_standard_form(lp, false);
  ASSERT_EQ(sf.num_columns(), 4);
  EXPECT_EQ(sf.num_original_vars, 3);

  const std::vector<double> x = sf.recover({1.0, 0.5, 2.0, 0.25});
  EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(a)], 2.0);   // 1 + 1
  EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(b)], 1.5);   // 2 - 0.5
  EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(c)], 1.75);  // 2 - 0.25
  EXPECT_TRUE(lp.is_feasible(x));
}

TEST(StandardForm, RecoverRejectsSizeMismatch) {
  LinearProgram lp;
  lp.add_variable(1.0);
  const StandardForm sf = make_standard_form(lp, false);
  EXPECT_THROW((void)sf.recover({1.0, 2.0}), CheckError);
}

}  // namespace
}  // namespace pigp::lp::detail
