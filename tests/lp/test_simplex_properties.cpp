// Property-based cross-validation of the two simplex implementations on
// randomized LP families (parameterized over seeds):
//
//  * dense and bounded solvers agree on status and optimal objective;
//  * the optimum is never worse than any random feasible point we can find;
//  * network-flow LPs (the family the incremental partitioner emits) get
//    integral basic solutions (total unimodularity).

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "lp/bounded_simplex.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/program.hpp"
#include "support/rng.hpp"

namespace pigp::lp {
namespace {

/// Build a random LP with a known feasible box point so feasibility is
/// guaranteed; objective and rows are random.
LinearProgram random_feasible_lp(std::uint64_t seed, int num_vars,
                                 int num_rows,
                                 std::vector<double>* witness_out) {
  SplitMix64 rng(seed);
  LinearProgram lp(rng.next_double() < 0.5 ? Sense::minimize
                                           : Sense::maximize);
  std::vector<double> witness;
  for (int j = 0; j < num_vars; ++j) {
    const double upper = 1.0 + rng.next_in(0.0, 9.0);
    lp.add_variable(rng.next_in(-5.0, 5.0), 0.0, upper);
    witness.push_back(rng.next_in(0.0, upper));
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    double lhs_at_witness = 0.0;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.next_double() < 0.5) continue;
      const double c = rng.next_in(-3.0, 3.0);
      coeffs.emplace_back(j, c);
      lhs_at_witness += c * witness[static_cast<std::size_t>(j)];
    }
    if (coeffs.empty()) continue;
    // Choose rhs so the witness satisfies the row with slack.
    if (rng.next_double() < 0.5) {
      lp.add_row(RowType::less_equal, coeffs,
                 lhs_at_witness + rng.next_in(0.0, 4.0));
    } else {
      lp.add_row(RowType::greater_equal, coeffs,
                 lhs_at_witness - rng.next_in(0.0, 4.0));
    }
  }
  if (witness_out != nullptr) *witness_out = std::move(witness);
  return lp;
}

class SimplexAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexAgreement, DenseAndBoundedAgree) {
  std::vector<double> witness;
  const LinearProgram lp =
      random_feasible_lp(GetParam(), 8 + GetParam() % 7,
                         5 + static_cast<int>(GetParam() % 5), &witness);

  const Solution dense = DenseSimplex().solve(lp);
  const Solution bounded = BoundedSimplex().solve(lp);

  // Bounded variables and a feasible witness => never infeasible, and all
  // variables are boxed => never unbounded.
  ASSERT_EQ(dense.status, SolveStatus::optimal);
  ASSERT_EQ(bounded.status, SolveStatus::optimal);
  EXPECT_NEAR(dense.objective, bounded.objective, 1e-6);
  EXPECT_TRUE(lp.is_feasible(dense.x));
  EXPECT_TRUE(lp.is_feasible(bounded.x));
}

TEST_P(SimplexAgreement, OptimumDominatesRandomFeasiblePoints) {
  std::vector<double> witness;
  const LinearProgram lp = random_feasible_lp(GetParam() * 7919 + 13, 6, 4,
                                              &witness);
  const Solution s = DenseSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);

  // The witness is feasible by construction; scaled copies often are too.
  SplitMix64 rng(GetParam() ^ 0xDEADBEEF);
  std::vector<std::vector<double>> candidates = {witness};
  for (int k = 0; k < 32; ++k) {
    std::vector<double> c = witness;
    for (double& v : c) v *= rng.next_double();
    candidates.push_back(std::move(c));
  }
  for (const auto& c : candidates) {
    if (!lp.is_feasible(c)) continue;
    const double value = lp.objective_value(c);
    if (lp.sense() == Sense::minimize) {
      EXPECT_LE(s.objective, value + 1e-6);
    } else {
      EXPECT_GE(s.objective, value - 1e-6);
    }
  }
}

/// Random balanced transshipment LP in the exact shape of the paper's
/// balance program: variables l_ij with capacities, equality net-flow rows.
TEST_P(SimplexAgreement, NetworkFlowSolutionsAreIntegral) {
  SplitMix64 rng(GetParam() * 104729 + 7);
  const int parts = 3 + static_cast<int>(rng.next_below(5));

  // Random integer excesses summing to zero.
  std::vector<double> excess(static_cast<std::size_t>(parts), 0.0);
  for (int q = 0; q + 1 < parts; ++q) {
    excess[static_cast<std::size_t>(q)] =
        static_cast<double>(rng.next_below(9)) - 4.0;
  }
  double sum = 0.0;
  for (int q = 0; q + 1 < parts; ++q) sum += excess[static_cast<std::size_t>(q)];
  excess[static_cast<std::size_t>(parts - 1)] = -sum;

  LinearProgram lp(Sense::minimize);
  std::vector<std::vector<int>> var(
      static_cast<std::size_t>(parts),
      std::vector<int>(static_cast<std::size_t>(parts), -1));
  for (int i = 0; i < parts; ++i) {
    for (int j = 0; j < parts; ++j) {
      if (i == j) continue;
      const double cap = 4.0 + static_cast<double>(rng.next_below(10));
      var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          lp.add_variable(1.0, 0.0, cap);
    }
  }
  for (int q = 0; q < parts; ++q) {
    std::vector<std::pair<int, double>> coeffs;
    for (int k = 0; k < parts; ++k) {
      if (k == q) continue;
      coeffs.emplace_back(
          var[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)], 1.0);
      coeffs.emplace_back(
          var[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)], -1.0);
    }
    lp.add_row(RowType::equal, coeffs, excess[static_cast<std::size_t>(q)]);
  }

  for (const bool use_bounded : {false, true}) {
    const Solution s = use_bounded ? BoundedSimplex().solve(lp)
                                   : DenseSimplex().solve(lp);
    ASSERT_EQ(s.status, SolveStatus::optimal) << "bounded=" << use_bounded;
    for (double v : s.x) {
      EXPECT_NEAR(v, std::round(v), 1e-6) << "bounded=" << use_bounded;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexAgreement,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace pigp::lp
