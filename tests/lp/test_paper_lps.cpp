// The exact linear programs printed in the paper:
//
//  * Figure 5 — the load-balancing LP for the worked example of Figure 2(b)
//    with its simplex solution l03 = 8, l12 = 1 (objective 9).
//  * Figure 8 — the refinement LP for the partition of Figure 6 with the
//    paper's solution moving 8 vertices (objective 8).
//
// These are golden tests: both solvers must reach the paper's optimal
// objective, and the paper's printed solution must be feasible with that
// objective value (the vertex itself need not be unique).

#include <gtest/gtest.h>

#include <cmath>

#include "lp/bounded_simplex.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/program.hpp"

namespace pigp::lp {
namespace {

constexpr double kTol = 1e-7;

/// Variable order used throughout: l01 l02 l03 l10 l12 l20 l21 l23 l30 l32.
struct Fig5Lp {
  LinearProgram lp{Sense::minimize};
  int l01, l02, l03, l10, l12, l20, l21, l23, l30, l32;

  Fig5Lp() {
    const auto add = [this](const char* name, double ub) {
      return lp.add_variable(1.0, 0.0, ub, name);
    };
    // Constraints in (11): epsilon capacities from Figure 4(b)'s layering.
    l01 = add("l01", 9.0);
    l02 = add("l02", 7.0);
    l03 = add("l03", 12.0);
    l10 = add("l10", 10.0);
    l12 = add("l12", 11.0);
    l20 = add("l20", 3.0);
    l21 = add("l21", 7.0);
    l23 = add("l23", 9.0);
    l30 = add("l30", 7.0);
    l32 = add("l32", 5.0);
    // Constraints in (12): per-partition net outflow equals excess load.
    lp.add_row(RowType::equal,
               {{l01, 1.0}, {l02, 1.0}, {l03, 1.0},
                {l10, -1.0}, {l20, -1.0}, {l30, -1.0}},
               8.0, "balance0");
    lp.add_row(RowType::equal,
               {{l10, 1.0}, {l12, 1.0}, {l01, -1.0}, {l21, -1.0}}, 1.0,
               "balance1");
    lp.add_row(RowType::equal,
               {{l20, 1.0}, {l21, 1.0}, {l23, 1.0},
                {l02, -1.0}, {l12, -1.0}, {l32, -1.0}},
               -1.0, "balance2");
    lp.add_row(RowType::equal,
               {{l30, 1.0}, {l32, 1.0}, {l03, -1.0}, {l23, -1.0}}, -8.0,
               "balance3");
  }
};

TEST(PaperLps, Figure5DenseSimplexMatchesPaperObjective) {
  Fig5Lp fig;
  const Solution s = DenseSimplex().solve(fig.lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  // Paper's solution: l03 = 8, l12 = 1, everything else zero => objective 9.
  EXPECT_NEAR(s.objective, 9.0, kTol);
  EXPECT_TRUE(fig.lp.is_feasible(s.x));
}

TEST(PaperLps, Figure5BoundedSimplexMatchesPaperObjective) {
  Fig5Lp fig;
  const Solution s = BoundedSimplex().solve(fig.lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);
  EXPECT_TRUE(fig.lp.is_feasible(s.x));
}

TEST(PaperLps, Figure5PaperSolutionIsFeasibleAndOptimal) {
  Fig5Lp fig;
  std::vector<double> paper(10, 0.0);
  paper[static_cast<std::size_t>(fig.l03)] = 8.0;
  paper[static_cast<std::size_t>(fig.l12)] = 1.0;
  EXPECT_TRUE(fig.lp.is_feasible(paper));
  EXPECT_NEAR(fig.lp.objective_value(paper), 9.0, kTol);
}

TEST(PaperLps, Figure5SolutionIsIntegral) {
  // The constraint matrix is a network-flow incidence matrix (totally
  // unimodular), so a basic optimal solution must be integral.
  Fig5Lp fig;
  const Solution s = DenseSimplex().solve(fig.lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  for (double v : s.x) {
    EXPECT_NEAR(v, std::round(v), 1e-6);
  }
}

/// Figure 8: refinement LP.  maximize sum(l_ij) with b_ij capacities and
/// zero net flow per partition.
struct Fig8Lp {
  LinearProgram lp{Sense::maximize};
  int l01, l02, l03, l10, l12, l20, l21, l23, l30, l32;

  Fig8Lp() {
    const auto add = [this](const char* name, double ub) {
      return lp.add_variable(1.0, 0.0, ub, name);
    };
    // Constraint (15): b_ij counts from Figure 7(b).
    l01 = add("l01", 1.0);
    l02 = add("l02", 1.0);
    l03 = add("l03", 1.0);
    l10 = add("l10", 2.0);
    l12 = add("l12", 1.0);
    l20 = add("l20", 0.0);
    l21 = add("l21", 1.0);
    l23 = add("l23", 1.0);
    l30 = add("l30", 2.0);
    l32 = add("l32", 1.0);
    // Constraint (16): zero net outflow per partition.
    lp.add_row(RowType::equal,
               {{l01, 1.0}, {l02, 1.0}, {l03, 1.0},
                {l10, -1.0}, {l20, -1.0}, {l30, -1.0}},
               0.0, "flow0");
    lp.add_row(RowType::equal,
               {{l10, 1.0}, {l12, 1.0}, {l01, -1.0}, {l21, -1.0}}, 0.0,
               "flow1");
    lp.add_row(RowType::equal,
               {{l20, 1.0}, {l21, 1.0}, {l23, 1.0},
                {l02, -1.0}, {l12, -1.0}, {l32, -1.0}},
               0.0, "flow2");
    lp.add_row(RowType::equal,
               {{l30, 1.0}, {l32, 1.0}, {l03, -1.0}, {l23, -1.0}}, 0.0,
               "flow3");
  }
};

// NOTE on Figure 8: the paper's printed solution (l02=l03=l10=l12=l21=l23=
// l30=l32=1, objective 8) violates the paper's own second flow row:
// l10 + l12 - l01 - l21 = 1 + 1 - 0 - 1 = 1 != 0.  The true optimum of the
// LP as printed is 9, reached e.g. by the cycle decomposition
// {0->1->0, 0->2->3->0, 0->3->0 (second unit of l30), 1->2->1}.  Both our
// solvers independently find 9; we golden-test the printed LP's true
// optimum and pin down the paper's typo explicitly.

TEST(PaperLps, Figure8DenseSimplexFindsTrueOptimum) {
  Fig8Lp fig;
  const Solution s = DenseSimplex().solve(fig.lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);
  EXPECT_TRUE(fig.lp.is_feasible(s.x));
}

TEST(PaperLps, Figure8BoundedSimplexFindsTrueOptimum) {
  Fig8Lp fig;
  const Solution s = BoundedSimplex().solve(fig.lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);
  EXPECT_TRUE(fig.lp.is_feasible(s.x));
}

TEST(PaperLps, Figure8PaperPrintedSolutionViolatesItsOwnFlowRow) {
  Fig8Lp fig;
  // Paper: l01=0, l02=1, l03=1, l10=1, l12=1, l20=0, l21=1, l23=1, l30=1,
  // l32=1 — documented paper typo: infeasible for the printed rows.
  std::vector<double> paper(10, 0.0);
  paper[static_cast<std::size_t>(fig.l02)] = 1.0;
  paper[static_cast<std::size_t>(fig.l03)] = 1.0;
  paper[static_cast<std::size_t>(fig.l10)] = 1.0;
  paper[static_cast<std::size_t>(fig.l12)] = 1.0;
  paper[static_cast<std::size_t>(fig.l21)] = 1.0;
  paper[static_cast<std::size_t>(fig.l23)] = 1.0;
  paper[static_cast<std::size_t>(fig.l30)] = 1.0;
  paper[static_cast<std::size_t>(fig.l32)] = 1.0;
  EXPECT_FALSE(fig.lp.is_feasible(paper));
  // A 9-unit circulation that is feasible, certifying optimum >= 9:
  std::vector<double> nine(10, 0.0);
  nine[static_cast<std::size_t>(fig.l01)] = 1.0;
  nine[static_cast<std::size_t>(fig.l10)] = 1.0;
  nine[static_cast<std::size_t>(fig.l02)] = 1.0;
  nine[static_cast<std::size_t>(fig.l23)] = 1.0;
  nine[static_cast<std::size_t>(fig.l30)] = 2.0;
  nine[static_cast<std::size_t>(fig.l03)] = 1.0;
  nine[static_cast<std::size_t>(fig.l12)] = 1.0;
  nine[static_cast<std::size_t>(fig.l21)] = 1.0;
  EXPECT_TRUE(fig.lp.is_feasible(nine));
  EXPECT_NEAR(fig.lp.objective_value(nine), 9.0, kTol);
}

TEST(PaperLps, Figure5SizesMatchSection3Accounting) {
  // Section 3 reports the LP cost model: variables v and constraints c for
  // the load-balancing formulation.  For the worked example, v = 10
  // movement variables and c = 4 balance rows (+ bounds).  Sanity-check
  // the model dimensions our builder produces.
  Fig5Lp fig;
  EXPECT_EQ(fig.lp.num_variables(), 10);
  EXPECT_EQ(fig.lp.num_rows(), 4);
}

}  // namespace
}  // namespace pigp::lp
