// Unit tests for the bounded-variable simplex, mirroring the dense-solver
// suite plus cases that specifically exercise bound flips and flipped-column
// bookkeeping.

#include "lp/bounded_simplex.hpp"

#include <gtest/gtest.h>

#include "lp/program.hpp"

namespace pigp::lp {
namespace {

constexpr double kTol = 1e-7;

TEST(BoundedSimplex, TextbookMaximization) {
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(3.0);
  const int y = lp.add_variable(5.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}}, 4.0);
  lp.add_row(RowType::less_equal, {{y, 2.0}}, 12.0);
  lp.add_row(RowType::less_equal, {{x, 3.0}, {y, 2.0}}, 18.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
}

TEST(BoundedSimplex, PureBoundProblemNeedsNoRows) {
  // max 2a + b with a <= 3, b <= 4 given purely as variable bounds.
  LinearProgram lp(Sense::maximize);
  const int a = lp.add_variable(2.0, 0.0, 3.0);
  const int b = lp.add_variable(1.0, 0.0, 4.0);
  // One slack-ish row so the tableau is non-empty.
  lp.add_row(RowType::less_equal, {{a, 1.0}, {b, 1.0}}, 100.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 10.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(a)], 3.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(b)], 4.0, kTol);
}

TEST(BoundedSimplex, BasicVariableLeavesAtUpperBound) {
  // Force a pivot where the limiting basic variable hits its *upper* bound:
  // max x subject to y = x (equality), y <= 2, x <= 10.
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(1.0, 0.0, 10.0);
  const int y = lp.add_variable(0.0, 0.0, 2.0);
  lp.add_row(RowType::equal, {{x, 1.0}, {y, -1.0}}, 0.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(BoundedSimplex, DetectsInfeasible) {
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(1.0, 0.0, 3.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, 5.0);
  EXPECT_EQ(BoundedSimplex().solve(lp).status, SolveStatus::infeasible);
}

TEST(BoundedSimplex, DetectsUnbounded) {
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(1.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, 1.0);
  EXPECT_EQ(BoundedSimplex().solve(lp).status, SolveStatus::unbounded);
}

TEST(BoundedSimplex, MinimizationWithGeRows) {
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(0.12);
  const int y = lp.add_variable(0.15);
  lp.add_row(RowType::greater_equal, {{x, 60.0}, {y, 60.0}}, 300.0);
  lp.add_row(RowType::greater_equal, {{x, 12.0}, {y, 6.0}}, 36.0);
  lp.add_row(RowType::greater_equal, {{x, 10.0}, {y, 30.0}}, 90.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, 0.66, kTol);
}

TEST(BoundedSimplex, FreeVariable) {
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(1.0, -kInfinity, kInfinity);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, -7.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.objective, -7.0, kTol);
}

TEST(BoundedSimplex, FixedVariablesAreRespected) {
  LinearProgram lp(Sense::maximize);
  const int x = lp.add_variable(5.0, 0.0, 0.0);  // fixed at zero
  const int y = lp.add_variable(1.0, 0.0, 2.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}, {y, 1.0}}, 10.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 0.0, kTol);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(BoundedSimplex, MirroredVariable) {
  // Variable with only an upper bound: x <= 4, minimize -x  => x = 4.
  LinearProgram lp(Sense::minimize);
  const int x = lp.add_variable(-1.0, -kInfinity, 4.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, -100.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 4.0, kTol);
}

TEST(BoundedSimplex, ManyBoundFlips) {
  // Knapsack-relaxation shape: all variables end at bounds.
  LinearProgram lp(Sense::maximize);
  std::vector<int> vars;
  for (int j = 0; j < 12; ++j) {
    vars.push_back(lp.add_variable(1.0 + j, 0.0, 1.0));
  }
  std::vector<std::pair<int, double>> coeffs;
  for (int v : vars) coeffs.emplace_back(v, 1.0);
  lp.add_row(RowType::less_equal, coeffs, 6.0);

  const Solution s = BoundedSimplex().solve(lp);
  ASSERT_EQ(s.status, SolveStatus::optimal);
  // Greedy: take the 6 largest objective coefficients (7..12).
  EXPECT_NEAR(s.objective, 12 + 11 + 10 + 9 + 8 + 7, kTol);
}

}  // namespace
}  // namespace pigp::lp
