// Model-layer tests: construction rules, feasibility and objective helpers.

#include "lp/program.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pigp::lp {
namespace {

TEST(LinearProgram, AddVariableReturnsDenseIndices) {
  LinearProgram lp;
  EXPECT_EQ(lp.add_variable(1.0), 0);
  EXPECT_EQ(lp.add_variable(2.0), 1);
  EXPECT_EQ(lp.num_variables(), 2);
}

TEST(LinearProgram, RejectsInvertedBounds) {
  LinearProgram lp;
  EXPECT_THROW(lp.add_variable(1.0, 2.0, 1.0), CheckError);
}

TEST(LinearProgram, RejectsUnknownVariableInRow) {
  LinearProgram lp;
  lp.add_variable(1.0);
  EXPECT_THROW(lp.add_row(RowType::equal, {{5, 1.0}}, 0.0), CheckError);
}

TEST(LinearProgram, ObjectiveValue) {
  LinearProgram lp;
  lp.add_variable(2.0);
  lp.add_variable(-1.0);
  EXPECT_DOUBLE_EQ(lp.objective_value({3.0, 4.0}), 2.0);
}

TEST(LinearProgram, FeasibilityChecksBoundsAndRows) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 0.0, 10.0);
  lp.add_row(RowType::less_equal, {{x, 1.0}}, 5.0);
  lp.add_row(RowType::greater_equal, {{x, 1.0}}, 2.0);

  EXPECT_TRUE(lp.is_feasible({3.0}));
  EXPECT_FALSE(lp.is_feasible({6.0}));   // violates <=
  EXPECT_FALSE(lp.is_feasible({1.0}));   // violates >=
  EXPECT_FALSE(lp.is_feasible({-1.0}));  // violates lower bound
}

TEST(LinearProgram, EqualityFeasibilityUsesTolerance) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_row(RowType::equal, {{x, 1.0}}, 1.0);
  EXPECT_TRUE(lp.is_feasible({1.0 + 1e-9}));
  EXPECT_FALSE(lp.is_feasible({1.1}));
}

TEST(LinearProgram, DuplicateCoefficientsAccumulate) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_row(RowType::equal, {{x, 1.0}, {x, 2.0}}, 6.0);
  EXPECT_TRUE(lp.is_feasible({2.0}));  // 3x = 6
}

TEST(LinearProgram, DebugStringMentionsNames) {
  LinearProgram lp(Sense::maximize);
  lp.add_variable(1.0, 0.0, 5.0, "flow");
  lp.add_row(RowType::less_equal, {{0, 2.0}}, 3.0, "cap");
  const std::string dump = lp.debug_string();
  EXPECT_NE(dump.find("maximize"), std::string::npos);
  EXPECT_NE(dump.find("flow"), std::string::npos);
  EXPECT_NE(dump.find("cap"), std::string::npos);
}

}  // namespace
}  // namespace pigp::lp
