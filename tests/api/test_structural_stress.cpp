// Adversarial structural-delta churn through the public Session API.
//
// One deterministic script drives interleaved vertex/edge adds and
// removals — including hub deletion, duplicate edge listings, and
// remove-then-re-add replace semantics — through two sessions at once:
//
//   * an *eager*-compaction session, whose graph must stay bit-identical
//     to a from-scratch apply_delta chain (the rebuild-path oracle) after
//     every single step;
//   * a *deferred*-compaction session fed the same script translated into
//     its stable id space, whose graph must equal the oracle after a
//     compaction (the mapping is order-preserving on both paths).
//
// At the end both sessions repartition head-to-head against fresh
// sessions adopting their exact graph + partitioning — a maintained
// incremental state that has survived the whole churn must make
// bit-identical decisions to a from-scratch rebuild.  A final pair of
// tests exercises the O(Δ) undo journal: a fault-injected SPMD tick must
// roll every survivor back to its entry assignment, in both compaction
// modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "api/errors.hpp"
#include "api/session.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexId;

/// Deterministic 64-bit PRNG (SplitMix64) so every run replays the same
/// adversarial script.
struct SplitMix64 {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

SessionConfig churn_config(GraphCompaction mode) {
  SessionConfig c;
  c.num_parts = 4;
  c.backend = "igpr";
  c.batch_policy = BatchPolicy::vertex_count;
  c.batch_vertex_limit = 10;  // several real rebalance ticks mid-stream
  c.graph_compaction = mode;
  // Deferred track: never auto-compact (dead can't exceed the whole id
  // space), so the test controls compaction points explicitly.
  c.compaction_slack = 1.0;
  return c;
}

TEST(StructuralStress, ChurnMatchesRebuildOracleEveryStep) {
  const Graph base = graph::random_geometric_graph(240, 0.11, 97);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, 4);

  Session eager(churn_config(GraphCompaction::eager), base, initial);
  Session deferred(churn_config(GraphCompaction::deferred), base, initial);
  Graph oracle = base;  // from-scratch apply_delta chain, eager id space

  // Eager ids are always [0, alive); a deferred live vertex keeps its id
  // until a compaction, tracked here as eager id -> deferred id.
  std::vector<VertexId> def_ids(static_cast<std::size_t>(base.num_vertices()));
  std::iota(def_ids.begin(), def_ids.end(), 0);
  VertexId def_n = base.num_vertices();  // deferred id-space size (incl dead)

  SplitMix64 rng{0xabcdef12345ULL};
  for (int step = 0; step < 28; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    const VertexId n_old = eager.graph().num_vertices();
    GraphDelta delta;  // eager id space
    std::set<VertexId> removed_this;

    // Vertex removals, hub deletion every 7th step.
    if (n_old > 60) {
      if (step % 7 == 3) {
        VertexId hub = 0;
        for (VertexId v = 1; v < n_old; ++v) {
          if (eager.graph().degree(v) > eager.graph().degree(hub)) hub = v;
        }
        removed_this.insert(hub);
      }
      const int nr = static_cast<int>(rng.below(3));
      for (int i = 0; i < nr; ++i) {
        removed_this.insert(static_cast<VertexId>(rng.below(
            static_cast<std::uint64_t>(n_old))));
      }
      delta.removed_vertices.assign(removed_this.begin(), removed_this.end());
    }
    const auto is_removed = [&removed_this](VertexId v) {
      return removed_this.count(v) != 0;
    };
    const auto pick_survivor = [&] {
      VertexId v;
      do {
        v = static_cast<VertexId>(
            rng.below(static_cast<std::uint64_t>(n_old)));
      } while (is_removed(v));
      return v;
    };

    // Edge removals (deduplicated canonical picks off live rows); one of
    // them is immediately re-added below with a new weight — the
    // remove-then-re-add replace semantics.
    std::set<std::pair<VertexId, VertexId>> cut;
    for (int i = 0; i < 4; ++i) {
      const VertexId u = pick_survivor();
      const auto nbrs = eager.graph().neighbors(u);
      if (nbrs.empty()) continue;
      const VertexId v = nbrs[rng.below(nbrs.size())];
      if (is_removed(v)) continue;
      cut.insert(graph::canonical_edge(u, v));
    }
    delta.removed_edges.assign(cut.begin(), cut.end());

    // Vertex additions anchored on survivors (weight 1: integer arithmetic
    // keeps every maintained aggregate exact, so parity checks are ==).
    const int na = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < na; ++i) {
      graph::VertexAddition add;
      add.weight = 1.0;
      std::set<VertexId> anchors;
      const int fanout = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < fanout; ++k) anchors.insert(pick_survivor());
      for (const VertexId a : anchors) add.edges.emplace_back(a, 1.0);
      delta.added_vertices.push_back(std::move(add));
    }

    // Edge additions: a random survivor pair (merge if already adjacent),
    // the same pair listed twice (duplicate-in-delta merge), and the first
    // cut edge re-added with weight 2 (physically removed => structural).
    const VertexId eu = pick_survivor();
    VertexId ev = pick_survivor();
    while (ev == eu) ev = pick_survivor();
    delta.added_edges = {{eu, ev}, {ev, eu}};
    delta.added_edge_weights = {1.0, 1.0};
    if (!delta.removed_edges.empty()) {
      delta.added_edges.push_back(delta.removed_edges.front());
      delta.added_edge_weights.push_back(2.0);
    }

    // Translate into the deferred session's stable id space.
    GraphDelta def_delta;
    const auto def_id = [&](VertexId v) {
      return v < n_old ? def_ids[static_cast<std::size_t>(v)]
                       : def_n + (v - n_old);
    };
    for (const VertexId v : delta.removed_vertices) {
      def_delta.removed_vertices.push_back(def_ids[v]);
    }
    for (const auto& [u, v] : delta.removed_edges) {
      def_delta.removed_edges.emplace_back(def_ids[u], def_ids[v]);
    }
    for (const auto& add : delta.added_vertices) {
      graph::VertexAddition def_add;
      def_add.weight = add.weight;
      for (const auto& [a, w] : add.edges) {
        def_add.edges.emplace_back(def_id(a), w);
      }
      def_delta.added_vertices.push_back(std::move(def_add));
    }
    for (const auto& [u, v] : delta.added_edges) {
      def_delta.added_edges.emplace_back(def_id(u), def_id(v));
    }
    def_delta.added_edge_weights = delta.added_edge_weights;

    const SessionReport eager_report = eager.apply(delta);
    const SessionReport def_report = deferred.apply(def_delta);
    const graph::DeltaResult oracle_step = graph::apply_delta(oracle, delta);
    oracle = oracle_step.graph;

    // Tentpole contract: the in-place mutable stream is indistinguishable
    // from the from-scratch rebuild, after every single step.
    EXPECT_EQ(eager.graph(), oracle);
    EXPECT_EQ(eager_report.compacted, delta.has_removals());
    EXPECT_FALSE(def_report.compacted);  // slack 1.0 never self-triggers

    // Deferred bookkeeping: drop removed mappings, append the new tail.
    for (auto it = delta.removed_vertices.rbegin();
         it != delta.removed_vertices.rend(); ++it) {
      def_ids.erase(def_ids.begin() + *it);
    }
    for (int i = 0; i < na; ++i) def_ids.push_back(def_n + i);
    def_n += na;

    // Mid-stream explicit compaction of the deferred track.
    if (step == 13) {
      const std::vector<VertexId>& map = deferred.compact();
      EXPECT_EQ(static_cast<VertexId>(map.size()), def_n);
      def_n = deferred.graph().num_vertices();
      std::iota(def_ids.begin(), def_ids.end(), 0);
      EXPECT_EQ(def_n, static_cast<VertexId>(def_ids.size()));
    }

    // The deferred graph, compacted on a copy, is the same graph — the
    // order-preserving mapping composes across steps.
    if (step % 5 == 4 || step == 27) {
      Graph def_copy = deferred.graph();
      std::vector<VertexId> map;
      def_copy.compact(map);
      EXPECT_EQ(def_copy, oracle);
      for (std::size_t i = 0; i < def_ids.size(); ++i) {
        EXPECT_EQ(map[static_cast<std::size_t>(def_ids[i])],
                  static_cast<VertexId>(i));
      }
    }

    // Both partitionings stay well-formed under churn: every live vertex
    // assigned, every dead id unassigned (validate enforces both).
    eager.partitioning().validate(eager.graph());
    deferred.partitioning().validate(deferred.graph());
    eager.graph().validate();
    deferred.graph().validate();
  }

  // Head-to-head finale: the state maintained through 28 churn steps must
  // make bit-identical rebalance decisions to a from-scratch rebuild.
  {
    Session fresh(churn_config(GraphCompaction::eager), eager.graph(),
                  eager.partitioning());
    (void)fresh.repartition();
    (void)eager.repartition();
    EXPECT_EQ(eager.partitioning().part, fresh.partitioning().part);
  }
  {
    (void)deferred.compact();
    Session fresh(churn_config(GraphCompaction::deferred), deferred.graph(),
                  deferred.partitioning());
    (void)fresh.repartition();
    (void)deferred.repartition();
    EXPECT_EQ(deferred.partitioning().part, fresh.partitioning().part);
  }
}

TEST(StructuralStress, DeferredSlackThresholdTriggersCompaction) {
  const Graph base = graph::random_geometric_graph(200, 0.12, 11);
  SessionConfig config = churn_config(GraphCompaction::deferred);
  config.compaction_slack = 0.2;
  Session session(config, base,
                  spectral::recursive_spectral_bisection(base, 4));

  bool compacted = false;
  for (VertexId v = 0; v < 80 && !compacted; ++v) {
    GraphDelta delta;
    delta.removed_vertices.push_back(v);  // ids stay stable until the trip
    compacted = session.apply(delta).compacted;
  }
  EXPECT_TRUE(compacted) << "20% dead must trip the deferred threshold";
  EXPECT_EQ(session.graph().num_dead_vertices(), 0);
  EXPECT_EQ(session.graph().adjacency_slack(), 0);
  session.partitioning().validate(session.graph());
}

/// Rollback drill: a structural delta whose rebalance tick dies on the
/// wire must leave every survivor at its entry assignment (the O(Δ) undo
/// journal), with the appended tail placed and the error latched sticky.
void rollback_after_backend_fault(GraphCompaction mode) {
  const Graph base = graph::random_geometric_graph(300, 0.1, 23);
  Partitioning initial = spectral::recursive_spectral_bisection(base, 4);
  // Skew so the tick has real balancing work (and reaches the transport).
  VertexId moved = 0;
  for (VertexId v = 0; v < base.num_vertices() && moved < 40; ++v) {
    if (initial.part[static_cast<std::size_t>(v)] == 3) {
      initial.part[static_cast<std::size_t>(v)] = 2;
      ++moved;
    }
  }

  SessionConfig config;
  config.num_parts = 4;
  config.backend = "spmd";
  config.spmd_ranks = 2;
  config.spmd_fault_spec = "allgather@1:disconnect";
  config.rebalance_retry_limit = 0;  // no retry: the fault must surface
  config.graph_compaction = mode;
  config.compaction_slack = 1.0;
  Session session(config, base, initial);

  const Partitioning before = session.partitioning();
  const VertexId removed = 17;
  GraphDelta delta;
  delta.removed_vertices.push_back(removed);
  graph::VertexAddition add;
  add.edges.emplace_back(40, 1.0);
  add.edges.emplace_back(41, 1.0);
  delta.added_vertices.push_back(add);
  delta.added_vertices.push_back(add);

  EXPECT_THROW((void)session.apply(delta), TransportError);
  EXPECT_TRUE(session.transport_failed());

  const Partitioning& after = session.partitioning();
  after.validate(session.graph());
  if (mode == GraphCompaction::eager) {
    // Survivors were renumbered by the eager compaction, then rolled back.
    ASSERT_EQ(after.part.size(), before.part.size() - 1 + 2);
    for (VertexId v = 0; v < base.num_vertices(); ++v) {
      if (v == removed) continue;
      const VertexId nv = v < removed ? v : v - 1;
      EXPECT_EQ(after.part[static_cast<std::size_t>(nv)],
                before.part[static_cast<std::size_t>(v)]);
    }
  } else {
    // Ids are stable: the dead id reads unassigned, everyone else is
    // exactly where the tick found them.
    ASSERT_EQ(after.part.size(), before.part.size() + 2);
    EXPECT_EQ(after.part[static_cast<std::size_t>(removed)],
              graph::kUnassigned);
    for (VertexId v = 0; v < base.num_vertices(); ++v) {
      if (v == removed) continue;
      EXPECT_EQ(after.part[static_cast<std::size_t>(v)],
                before.part[static_cast<std::size_t>(v)]);
    }
  }
  // The appended tail was still placed (assignment is local, no wire).
  for (std::size_t i = before.part.size() - (mode == GraphCompaction::eager);
       i < after.part.size(); ++i) {
    EXPECT_GE(after.part[i], 0);
  }

  // Sticky latch, then explicit recovery: the one-shot fault is spent, so
  // the revived session rebalances clean off the rolled-back state.
  EXPECT_THROW((void)session.apply(GraphDelta{}), TransportError);
  session.clear_error();
  (void)session.repartition();
  EXPECT_FALSE(session.transport_failed());
  session.partitioning().validate(session.graph());
}

TEST(StructuralStress, FaultedTickRollsBackEagerStream) {
  rollback_after_backend_fault(GraphCompaction::eager);
}

TEST(StructuralStress, FaultedTickRollsBackDeferredStream) {
  rollback_after_backend_fault(GraphCompaction::deferred);
}

}  // namespace
}  // namespace pigp
