// Backend parity: the flat, SPMD, and multilevel backends consume the same
// delta stream through identical Session configurations and must agree —
// exactly for flat vs SPMD (the message-passing driver is bit-identical to
// the shared-memory pipeline by construction), and up to quality bounds for
// the multilevel V-cycle (same balance guarantee, comparable cut).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/session.hpp"
#include "graph/generators.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexAddition;

constexpr graph::PartId kParts = 8;

/// Localized insertion burst near \p anchor plus a couple of deletions far
/// from it — the §1.1 adaptation pattern.
GraphDelta stream_delta(graph::VertexId n, int step) {
  GraphDelta delta;
  const graph::VertexId anchor = (13 * step + 2) % (n / 3);
  for (int i = 0; i < 10; ++i) {
    VertexAddition add;
    add.edges.emplace_back(anchor + (i % 3), 1.0);
    if (i > 0) add.edges.emplace_back(n + i - 1, 1.0);
    delta.added_vertices.push_back(add);
  }
  const auto far = static_cast<graph::VertexId>(n - 1 - 2 * step);
  delta.removed_vertices = {far};
  return delta;
}

struct StreamOutcome {
  Partitioning partitioning;
  Graph graph;
  bool all_balanced = true;
  double final_cut = 0.0;
};

StreamOutcome run_stream(const std::string& backend, const Graph& base,
                         const Partitioning& initial, int steps) {
  SessionConfig config;
  config.num_parts = kParts;
  config.backend = backend;
  config.spmd_ranks = 3;  // uneven rank/partition split on purpose
  Session session(config, base, initial);
  StreamOutcome out;
  for (int step = 0; step < steps; ++step) {
    const SessionReport report =
        session.apply(stream_delta(session.graph().num_vertices(), step));
    out.all_balanced = out.all_balanced && report.balanced;
  }
  out.partitioning = session.partitioning();
  out.graph = session.graph();
  out.final_cut = session.metrics().cut_total;
  return out;
}

TEST(BackendParity, FlatSpmdAndMultilevelAgreeOnTheSameStream) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(700, {}, 31);
  const Graph& base = seq.graphs[0];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, kParts);
  constexpr int kSteps = 3;

  const StreamOutcome flat = run_stream("igpr", base, initial, kSteps);
  const StreamOutcome spmd = run_stream("spmd", base, initial, kSteps);
  const StreamOutcome multilevel =
      run_stream("multilevel", base, initial, kSteps);

  // All three see the same evolved graph.
  ASSERT_EQ(flat.graph, spmd.graph);
  ASSERT_EQ(flat.graph, multilevel.graph);

  // Every backend must deliver balanced partitions on every step.
  EXPECT_TRUE(flat.all_balanced);
  EXPECT_TRUE(spmd.all_balanced);
  EXPECT_TRUE(multilevel.all_balanced);
  EXPECT_TRUE(graph::is_balanced(flat.graph, flat.partitioning));
  EXPECT_TRUE(graph::is_balanced(spmd.graph, spmd.partitioning));
  EXPECT_TRUE(graph::is_balanced(multilevel.graph, multilevel.partitioning));

  // The SPMD engine reproduces the shared-memory pipeline bit-for-bit.
  EXPECT_EQ(flat.partitioning.part, spmd.partitioning.part);

  // The multilevel V-cycle takes its own path; require sane quality: a
  // valid partitioning with a cut in the same ballpark as the flat driver.
  multilevel.partitioning.validate(multilevel.graph);
  EXPECT_GT(multilevel.final_cut, 0.0);
  EXPECT_LE(multilevel.final_cut, 3.0 * flat.final_cut);
}

TEST(BackendParity, IgpAndIgprBackendsDifferOnlyInRefinement) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(600, {}, 37);
  const Graph& base = seq.graphs[0];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, kParts);

  const StreamOutcome igp = run_stream("igp", base, initial, 2);
  const StreamOutcome igpr = run_stream("igpr", base, initial, 2);

  ASSERT_EQ(igp.graph, igpr.graph);
  EXPECT_TRUE(graph::is_balanced(igp.graph, igp.partitioning));
  EXPECT_TRUE(graph::is_balanced(igpr.graph, igpr.partitioning));
  // Refinement never worsens the cut.
  EXPECT_LE(igpr.final_cut, igp.final_cut);
}

TEST(BackendParity, ScratchBackendRepartitionsIndependentlyOfHistory) {
  const Graph g = graph::random_geometric_graph(500, 0.08, 41);
  const Partitioning initial = spectral::recursive_graph_bisection(g, kParts);

  SessionConfig config;
  config.num_parts = kParts;
  config.backend = "scratch";
  config.scratch_method = "rgb";
  Session session(config, g, initial);

  const SessionReport report =
      session.apply(stream_delta(g.num_vertices(), 0));
  EXPECT_TRUE(report.repartitioned);
  session.partitioning().validate(session.graph());
  EXPECT_TRUE(graph::is_balanced(session.graph(), session.partitioning()));

  // A fresh from-scratch partition of the same graph is identical — the
  // scratch backend carries no incremental state.
  const Partitioning fresh =
      spectral::recursive_graph_bisection(session.graph(), kParts);
  EXPECT_EQ(session.partitioning().part, fresh.part);
}

}  // namespace
}  // namespace pigp
