// AsyncSession failure domains: what happens when the rebalance tick's
// backend dies.  Under fail_fast the first TransportError latches sticky
// (submit/flush rethrow, clear_error() revives); under degrade the tick is
// re-run on the local fallback backend so readers keep receiving fresh
// epochs while the remote group is down.  Either way the ledger identity
//
//   rebalances_started == committed + discarded + failures
//
// holds, fallback commits are a subset of committed, and the health()
// ledger (consecutive failures, fallback count, last error, latched flag)
// tracks the recovery-side view of the same events.

#include "api/async_session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "api/backend.hpp"
#include "api/errors.hpp"
#include "graph/generators.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexAddition;

/// Remaining scripted failures of the "flaky" backend; a huge value means
/// "always fail".  Reset by each test before constructing its session.
std::atomic<std::int64_t> g_failures_left{0};

/// Delegates to a real igpr backend, but throws a retryable TransportError
/// while the shared failure budget lasts.  Registered once as "flaky".
class FlakyBackend final : public Backend {
 public:
  explicit FlakyBackend(std::unique_ptr<Backend> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flaky";
  }

  [[nodiscard]] BackendResult repartition(
      const Graph& g_new, const Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    maybe_throw();
    return inner_->repartition(g_new, old_partitioning, n_old);
  }

  [[nodiscard]] BackendResult repartition(
      const Graph& g_new, Partitioning& partitioning, graph::VertexId n_old,
      graph::PartitionState& state, core::Workspace& ws) override {
    maybe_throw();
    return inner_->repartition(g_new, partitioning, n_old, state, ws);
  }

 private:
  static void maybe_throw() {
    if (g_failures_left.fetch_sub(1, std::memory_order_relaxed) > 0) {
      throw TransportError("flaky backend: scripted tick failure");
    }
  }

  std::unique_ptr<Backend> inner_;
};

void register_flaky_backend() {
  static const bool once = [] {
    BackendRegistry::global().add("flaky", [](const ResolvedConfig& config) {
      return std::make_unique<FlakyBackend>(
          BackendRegistry::global().create("igpr", config));
    });
    return true;
  }();
  (void)once;
}

GraphDelta append_delta(graph::VertexId current_vertices, int step) {
  GraphDelta delta;
  VertexAddition add;
  add.edges.emplace_back(
      static_cast<graph::VertexId>((step * 37 + 11) % current_vertices), 1.0);
  delta.added_vertices.push_back(add);
  return delta;
}

struct Fixture {
  Fixture()
      : g(graph::random_geometric_graph(300, 0.1, 7)),
        initial(spectral::recursive_graph_bisection(g, 4)) {
    register_flaky_backend();
    // Skew the partition so the first rebalance tick has real balancing
    // work: an already-balanced spmd tick performs zero transport
    // operations and a scripted wire fault would never fire.
    graph::VertexId moved = 0;
    const graph::VertexId quota = g.num_vertices() / 8;
    for (graph::VertexId v = 0; v < g.num_vertices() && moved < quota; ++v) {
      if (initial.part[v] == 3) {
        initial.part[v] = 2;
        ++moved;
      }
    }
  }

  [[nodiscard]] SessionConfig config(FailurePolicy policy) const {
    SessionConfig c;
    c.num_parts = 4;
    c.backend = "flaky";
    c.failure_policy = policy;
    c.fallback_backend = "igpr";
    return c;
  }

  Graph g;
  Partitioning initial;
};

void expect_ledger_identity(const AsyncStats& stats) {
  EXPECT_EQ(stats.rebalances_started,
            stats.rebalances_committed + stats.commits_discarded +
                stats.rebalance_failures);
  EXPECT_LE(stats.rebalance_fallbacks, stats.rebalances_committed)
      << "fallback commits are a subset of committed ticks";
}

TEST(AsyncFailure, FailFastLatchesStickyAndClearErrorRevives) {
  const Fixture fx;
  g_failures_left = 1;  // exactly the first tick dies
  AsyncSession session(fx.config(FailurePolicy::fail_fast), fx.g,
                       fx.initial);
  graph::VertexId vertices = fx.g.num_vertices();
  session.submit(append_delta(vertices, 0));
  ++vertices;
  EXPECT_THROW(session.flush(), TransportError);

  AsyncHealth health = session.health();
  EXPECT_TRUE(health.error_latched);
  EXPECT_FALSE(health.degraded);  // fail_fast never degrades
  EXPECT_GE(health.consecutive_failures, 1);
  EXPECT_GE(health.rebalance_failures, 1);
  EXPECT_NE(health.last_error.find("flaky backend"), std::string::npos);

  // Sticky: both entry points rethrow until the caller clears.
  EXPECT_THROW(session.submit(append_delta(vertices, 1)), TransportError);
  EXPECT_THROW(session.flush(), TransportError);

  // The failure budget is spent, so the revived session works — and the
  // health ledger keeps the history while resetting the "now" bits.
  session.clear_error();
  session.submit(append_delta(vertices, 2));
  ++vertices;
  session.flush();
  EXPECT_EQ(session.view()->num_vertices(), vertices);

  health = session.health();
  EXPECT_FALSE(health.error_latched);
  EXPECT_EQ(health.consecutive_failures, 0);  // reset by primary success
  EXPECT_FALSE(health.degraded);
  EXPECT_FALSE(health.last_error.empty());  // history, not state

  const AsyncStats stats = session.stats();
  expect_ledger_identity(stats);
  EXPECT_GE(stats.rebalance_failures, 1);
  EXPECT_EQ(stats.rebalance_fallbacks, 0);
  session.close();
}

TEST(AsyncFailure, DegradeKeepsPublishingFreshEpochs) {
  const Fixture fx;
  g_failures_left = 1'000'000;  // the primary never recovers
  AsyncSession session(fx.config(FailurePolicy::degrade), fx.g, fx.initial);
  const std::uint64_t first_epoch = session.epoch();

  graph::VertexId vertices = fx.g.num_vertices();
  for (int step = 0; step < 5; ++step) {
    session.submit(append_delta(vertices, step));
    ++vertices;
  }
  session.flush();  // never throws: every tick lands via the fallback

  EXPECT_GT(session.epoch(), first_epoch);
  EXPECT_EQ(session.view()->num_vertices(), vertices);

  const AsyncHealth health = session.health();
  EXPECT_FALSE(health.error_latched);
  EXPECT_TRUE(health.degraded);  // the most recent tick needed the fallback
  EXPECT_GE(health.consecutive_failures, 1);  // fallback does not reset it
  EXPECT_NE(health.last_error.find("flaky backend"), std::string::npos);

  const AsyncStats stats = session.stats();
  expect_ledger_identity(stats);
  EXPECT_GE(stats.rebalance_fallbacks, 1);
  EXPECT_EQ(stats.rebalance_fallbacks, stats.rebalances_committed)
      << "the primary never succeeded: every commit came from the fallback";
  EXPECT_EQ(stats.rebalance_failures, 0)
      << "a tick that lands via the fallback is not a lost tick";
  EXPECT_EQ(health.fallbacks_committed, stats.rebalance_fallbacks);
  session.close();
}

TEST(AsyncFailure, DegradeRecoversWhenThePrimaryHeals) {
  const Fixture fx;
  g_failures_left = 1;  // first tick degrades, later ticks are primary
  AsyncSession session(fx.config(FailurePolicy::degrade), fx.g, fx.initial);

  graph::VertexId vertices = fx.g.num_vertices();
  session.submit(append_delta(vertices, 0));
  ++vertices;
  session.flush();  // guarantees the degraded tick completed
  session.submit(append_delta(vertices, 1));
  ++vertices;
  session.flush();  // at least one clean primary tick after it

  const AsyncHealth health = session.health();
  EXPECT_FALSE(health.error_latched);
  EXPECT_FALSE(health.degraded);  // most recent tick was primary
  EXPECT_EQ(health.consecutive_failures, 0);
  EXPECT_GE(health.fallbacks_committed, 1);

  const AsyncStats stats = session.stats();
  expect_ledger_identity(stats);
  EXPECT_GE(stats.rebalance_fallbacks, 1);
  EXPECT_GT(stats.rebalances_committed, stats.rebalance_fallbacks);
  session.close();
}

TEST(AsyncFailure, DegradeLatchesOnlyWhenTheFallbackFailsToo) {
  const Fixture fx;
  g_failures_left = 1'000'000;
  SessionConfig config = fx.config(FailurePolicy::degrade);
  config.fallback_backend = "flaky";  // fallback shares the failure budget
  AsyncSession session(config, fx.g, fx.initial);

  session.submit(append_delta(fx.g.num_vertices(), 0));
  EXPECT_THROW(session.flush(), TransportError);

  const AsyncHealth health = session.health();
  EXPECT_TRUE(health.error_latched);
  EXPECT_FALSE(health.degraded);  // nothing was published for that tick
  EXPECT_GE(health.rebalance_failures, 1);

  const AsyncStats stats = session.stats();
  expect_ledger_identity(stats);
  EXPECT_EQ(stats.rebalance_fallbacks, 0);
  EXPECT_GE(stats.rebalance_failures, 1);
  session.close();
}

TEST(AsyncFailure, SpmdChaosTickDegradesThenPrimaryResumes) {
  // End-to-end: the real spmd backend dies on a scripted one-shot wire
  // fault, the tick lands via the local igpr fallback, and once the
  // budget is spent later ticks come from the primary again — readers
  // never see a gap.
  const Fixture fx;
  SessionConfig config;
  config.num_parts = 4;
  config.backend = "spmd";
  config.spmd_ranks = 2;
  config.spmd_transport = "in_process";
  config.spmd_fault_spec = "allgather@1:disconnect";
  config.rebalance_retry_limit = 0;  // surface the fault to the policy
  config.failure_policy = FailurePolicy::degrade;
  config.fallback_backend = "igpr";
  AsyncSession session(config, fx.g, fx.initial);

  graph::VertexId vertices = fx.g.num_vertices();
  session.submit(append_delta(vertices, 0));
  ++vertices;
  session.flush();
  session.submit(append_delta(vertices, 1));
  ++vertices;
  session.flush();

  EXPECT_EQ(session.view()->num_vertices(), vertices);
  const AsyncHealth health = session.health();
  EXPECT_FALSE(health.error_latched);
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.consecutive_failures, 0);
  EXPECT_GE(health.fallbacks_committed, 1);

  const AsyncStats stats = session.stats();
  expect_ledger_identity(stats);
  EXPECT_GE(stats.rebalance_fallbacks, 1);
  EXPECT_GT(stats.rebalances_committed, stats.rebalance_fallbacks);
  session.close();
}

}  // namespace
}  // namespace pigp
