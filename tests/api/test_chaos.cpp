// The chaos matrix: full SPMD repartitions driven through the public
// Session API with scripted faults (SessionConfig.spmd_fault_spec) at every
// protocol point the engine exercises — allgather, broadcast, barrier,
// allreduce, and the combined `any` ordinal — over both transports.  The
// contract under chaos has exactly two acceptable outcomes:
//
//   1. retry enabled: the per-tick retry absorbs the (one-shot) fault and
//      the final partition is bit-identical to a fault-free run;
//   2. retry disabled or budget-exceeded: a typed TransportError surfaces,
//      the session latches sticky-failed with its own state rolled back,
//      and clear_error() revives it — after which a repartition produces
//      the fault-free partition again.
//
// Never a hang (every faulted run aborts its rank group promptly), never a
// silently corrupt partition (scripted corruption flips structural header
// bytes, which the checked unpack is guaranteed to reject).
//
// send/recv/allreduce-point faults are exercised at the transport layer in
// tests/runtime/test_fault_transport.cpp: the in-process engine speaks
// only allgather/broadcast/barrier (allreduce lives in the sharded
// multi-process worker), so other rules never match through this API path.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "api/errors.hpp"
#include "api/session.hpp"
#include "graph/delta.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexAddition;

constexpr int kParts = 4;
constexpr int kRanks = 2;

struct Fixture {
  Fixture()
      : seq(mesh::make_small_mesh_sequence(300, {}, 7)),
        base(seq.graphs[0]),
        initial(spectral::recursive_spectral_bisection(base, kParts)) {
    // Skew the partition so every repartition has real balancing work —
    // an already-balanced partition exits before any transport operation
    // and no fault would ever fire.  Move half of part 3 into part 2.
    graph::VertexId moved = 0;
    const graph::VertexId quota = base.num_vertices() / (2 * kParts);
    for (graph::VertexId v = 0;
         v < base.num_vertices() && moved < quota; ++v) {
      if (initial.part[v] == 3) {
        initial.part[v] = 2;
        ++moved;
      }
    }
  }

  [[nodiscard]] SessionConfig config(const std::string& transport,
                                     const std::string& fault_spec,
                                     int retry_limit) const {
    SessionConfig c;
    c.num_parts = kParts;
    c.backend = "spmd";
    c.spmd_ranks = kRanks;
    c.spmd_transport = transport;
    c.spmd_fault_spec = fault_spec;
    c.spmd_timeout_ms = 5000;  // bounds any faulted TCP wait
    c.rebalance_retry_limit = retry_limit;
    c.rebalance_retry_backoff_ms = 1;
    c.rebalance_retry_deadline_ms = 20000;
    return c;
  }

  mesh::MeshSequence seq;
  const Graph& base;
  Partitioning initial;
};

/// The fault-free reference partition: one forced repartition.
const Partitioning& reference(const Fixture& fx) {
  static const Partitioning result = [&fx] {
    Session session(fx.config("in_process", "", 0), fx.base, fx.initial);
    (void)session.repartition();
    return session.partitioning();
  }();
  return result;
}

struct ChaosCase {
  const char* transport;
  const char* filters;  // wire filter chain for tcp runs
  const char* spec;
};

// Every protocol point of the SPMD engine, on both transports.  Rules are
// one-shot (the default), so the retry path gets a clean second attempt.
// broadcast corruption is scoped to rank 0 because the engine always
// broadcasts from root 0 — a non-root's corrupted contribution is never
// delivered.  Unscoped rules have a single shared fire budget: whichever
// rank claims it first injects, and either way the group aborts typed.
const ChaosCase kCases[] = {
    {"in_process", "", "allgather@1:corrupt"},
    {"in_process", "", "rank1:allgather@2:corrupt"},
    {"in_process", "", "rank0:broadcast@1:corrupt"},
    {"in_process", "", "barrier@1:disconnect"},
    {"in_process", "", "rank1:broadcast@1:disconnect"},
    {"in_process", "", "rank0:any@2:kill"},
    {"in_process", "", "rank1:any@4:kill"},
    {"tcp", "", "allgather@1:corrupt"},
    {"tcp", "delta", "rank0:allgather@1:corrupt"},
    {"tcp", "", "rank1:broadcast@1:disconnect"},
    {"tcp", "", "rank1:any@3:kill"},
};

TEST(Chaos, RetryAbsorbsEveryInjectionPoint) {
  const Fixture fx;
  for (const ChaosCase& cc : kCases) {
    SCOPED_TRACE(std::string(cc.transport) + " / " + cc.spec);
    SessionConfig config = fx.config(cc.transport, cc.spec, 3);
    config.spmd_wire_filters = cc.filters;
    Session session(config, fx.base, fx.initial);
    (void)session.repartition();  // fault fires, retry runs clean
    EXPECT_FALSE(session.transport_failed());
    EXPECT_EQ(session.partitioning().part, reference(fx).part)
        << "retried partition must be bit-identical to a fault-free run";
  }
}

TEST(Chaos, NoRetrySurfacesTypedErrorAndClearErrorRevives) {
  const Fixture fx;
  for (const ChaosCase& cc : kCases) {
    SCOPED_TRACE(std::string(cc.transport) + " / " + cc.spec);
    SessionConfig config = fx.config(cc.transport, cc.spec, 0);
    config.spmd_wire_filters = cc.filters;
    Session session(config, fx.base, fx.initial);

    EXPECT_THROW((void)session.repartition(), TransportError);
    EXPECT_TRUE(session.transport_failed());

    // Sticky: mutations rethrow; reads stay usable; state rolled back.
    GraphDelta delta;
    VertexAddition add;
    add.edges.emplace_back(0, 1.0);
    add.edges.emplace_back(1, 1.0);
    delta.added_vertices.push_back(add);
    EXPECT_THROW((void)session.apply(delta), TransportError);
    EXPECT_EQ(session.partitioning().part, fx.initial.part)
        << "failed run must roll back to the entry partitioning";

    // Explicit recovery: the one-shot budget was spent on the failed run,
    // so the revived session repartitions clean — and lands on exactly
    // the fault-free partition.
    session.clear_error();
    EXPECT_FALSE(session.transport_failed());
    (void)session.repartition();
    EXPECT_EQ(session.partitioning().part, reference(fx).part);
  }
}

TEST(Chaos, BenignDelayIsTransparent) {
  const Fixture fx;
  Session session(fx.config("in_process", "any@3:delay=5", 0), fx.base,
                  fx.initial);
  (void)session.repartition();
  EXPECT_FALSE(session.transport_failed());
  EXPECT_EQ(session.partitioning().part, reference(fx).part);
}

TEST(Chaos, UnlimitedFaultExhaustsRetryBudgetTyped) {
  // times=0 re-fires on every attempt: retries must give up (attempt
  // budget) instead of looping, and the error must stay typed.
  const Fixture fx;
  Session session(
      fx.config("in_process", "allgather@1:disconnect/0", 2), fx.base,
      fx.initial);
  EXPECT_THROW((void)session.repartition(), TransportError);
  EXPECT_TRUE(session.transport_failed());
  // clear_error() is not absolution for a still-broken transport: the
  // next attempt fails again (typed), it does not hang or corrupt.
  session.clear_error();
  EXPECT_THROW((void)session.repartition(), TransportError);
  EXPECT_EQ(session.partitioning().part, fx.initial.part);
}

TEST(Chaos, RetryDeadlineBoundsTotalWait) {
  // A tiny deadline with a huge attempt budget must give up promptly —
  // the deadline, not the attempt count, is the binding constraint.
  const Fixture fx;
  SessionConfig config =
      fx.config("in_process", "allgather@1:disconnect/0", 1000000);
  config.rebalance_retry_backoff_ms = 20;
  config.rebalance_retry_deadline_ms = 100;
  Session session(config, fx.base, fx.initial);
  const auto started = std::chrono::steady_clock::now();
  EXPECT_THROW((void)session.repartition(), TransportError);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30)
      << "deadline must bound the retry loop";
}

TEST(Chaos, FaultSpecSpentAcrossSeparateRepartitions) {
  // The fire budget lives in the backend's script, parsed once per
  // session: a one-shot fault consumed by tick 1 (via retry) never
  // re-fires on later ticks.
  const Fixture fx;
  Session session(fx.config("in_process", "barrier@1:disconnect", 3),
                  fx.base, fx.initial);
  (void)session.repartition();  // absorbs the fault
  (void)session.repartition();  // clean
  (void)session.repartition();  // clean
  EXPECT_FALSE(session.transport_failed());
  EXPECT_EQ(session.counters().repartitions, 3);
}

}  // namespace
}  // namespace pigp
