// Steady-state memory discipline: once a Session's Workspace is warm, a
// repartition tick (an empty delta under every_delta, or a forced
// repartition()) performs ZERO heap allocations — pinning the tentpole
// property of the workspace subsystem with an operator-new counting hook
// instead of relying on bench numbers.
//
// The workload is quiescent by construction: equal-size cliques joined in
// a ring by single bridge edges.  The partitioning is perfectly balanced
// (balance early-returns before any layering or LP) and every boundary
// vertex has strictly negative gain (7 internal edges vs 1 external), so
// refinement collects zero candidates and never builds an LP — the phases
// that are *documented* to allocate (LP model construction and solves)
// are legitimately idle, and everything else must come from the pooled
// workspace buffers.
//
// Under ASan/UBSan the allocator is interposed and the accounting below
// would measure the sanitizer runtime, not the library — the tests skip
// themselves there (the smoke label still runs them in every other CI
// configuration, Debug included).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "api/session.hpp"
#include "graph/builder.hpp"
#include "support/check.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define PIGP_ALLOC_COUNTING_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#define PIGP_ALLOC_COUNTING_DISABLED 1
#endif
#endif

namespace {

std::atomic<long long> g_new_calls{0};

[[nodiscard]] long long allocation_count() {
  return g_new_calls.load(std::memory_order_relaxed);
}

}  // namespace

#ifndef PIGP_ALLOC_COUNTING_DISABLED
// Global operator new/delete replacement: count every allocation, forward
// to malloc/free.  The full set (array, nothrow, sized, aligned) is
// replaced so no variant silently falls back to a different allocator.
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // PIGP_ALLOC_COUNTING_DISABLED

namespace pigp {
namespace {

constexpr graph::PartId kParts = 4;
constexpr int kCliqueSize = 8;

/// kParts cliques of kCliqueSize vertices, joined in a ring by one bridge
/// edge each: balanced, and every boundary vertex has strictly more
/// internal than external edge weight.
graph::Graph clique_ring() {
  graph::GraphBuilder builder(kParts * kCliqueSize);
  for (int c = 0; c < kParts; ++c) {
    const graph::VertexId base = c * kCliqueSize;
    for (int i = 0; i < kCliqueSize; ++i) {
      for (int j = i + 1; j < kCliqueSize; ++j) {
        builder.add_edge(base + i, base + j, 1.0);
      }
    }
  }
  for (int c = 0; c < kParts; ++c) {
    const graph::VertexId from = c * kCliqueSize;
    const graph::VertexId to =
        ((c + 1) % kParts) * kCliqueSize + 1;
    builder.add_edge(from, to, 1.0);
  }
  return builder.build();
}

graph::Partitioning clique_partitioning() {
  graph::Partitioning p;
  p.num_parts = kParts;
  p.part.resize(static_cast<std::size_t>(kParts * kCliqueSize));
  for (std::size_t v = 0; v < p.part.size(); ++v) {
    p.part[v] = static_cast<graph::PartId>(v / kCliqueSize);
  }
  return p;
}

Session make_quiescent_session() {
  SessionConfig config;
  config.num_parts = kParts;
  config.backend = "igpr";
  config.num_threads = 1;
  config.batch_policy = BatchPolicy::every_delta;
  return Session(config, clique_ring(), clique_partitioning());
}

TEST(SessionAlloc, SteadyStateApplyPerformsZeroHeapAllocations) {
#ifdef PIGP_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocator interposed by a sanitizer";
#else
  Session session = make_quiescent_session();
  const graph::GraphDelta empty;

  // Warm-up: the first ticks size every workspace buffer.
  for (int i = 0; i < 3; ++i) {
    const SessionReport warm = session.apply(empty);
    ASSERT_TRUE(warm.repartitioned);
    ASSERT_TRUE(warm.balanced);
  }

  for (int i = 0; i < 5; ++i) {
    const long long before = allocation_count();
    const SessionReport report = session.apply(empty);
    const long long allocated = allocation_count() - before;
    EXPECT_EQ(allocated, 0) << "steady-state apply #" << i
                            << " touched the heap";
    EXPECT_TRUE(report.repartitioned);
    EXPECT_TRUE(report.balanced);
    EXPECT_DOUBLE_EQ(report.metrics.imbalance, 1.0);
  }

  // trim_memory() hands the pools back; the next tick re-warms them and
  // the one after is allocation-free again.
  session.trim_memory();
  (void)session.apply(empty);  // re-warm
  const long long before = allocation_count();
  (void)session.apply(empty);
  EXPECT_EQ(allocation_count() - before, 0)
      << "apply after trim_memory + re-warm touched the heap";
#endif
}

TEST(SessionAlloc, SteadyStateForcedRepartitionPerformsZeroHeapAllocations) {
#ifdef PIGP_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocator interposed by a sanitizer";
#else
  Session session = make_quiescent_session();
  for (int i = 0; i < 3; ++i) (void)session.repartition();  // warm-up

  for (int i = 0; i < 5; ++i) {
    const long long before = allocation_count();
    const SessionReport report = session.repartition();
    const long long allocated = allocation_count() - before;
    EXPECT_EQ(allocated, 0) << "steady-state repartition #" << i
                            << " touched the heap";
    EXPECT_TRUE(report.repartitioned);
  }
#endif
}

TEST(SessionAlloc, QuiescentWorkloadStillExercisesTheFullPipeline) {
  // Companion sanity check (runs everywhere, sanitizers included): the
  // quiescent stream really goes through the backend and stays healthy,
  // so the zero-allocation assertions above are measuring a live
  // repartition path, not a short-circuit.
  Session session = make_quiescent_session();
  const graph::GraphDelta empty;
  for (int i = 0; i < 3; ++i) {
    const SessionReport report = session.apply(empty);
    EXPECT_TRUE(report.repartitioned);
    EXPECT_TRUE(report.balanced);
  }
  EXPECT_EQ(session.counters().repartitions, 3);
  EXPECT_EQ(session.counters().deltas_applied, 3);
  EXPECT_DOUBLE_EQ(session.metrics().cut_total, kParts);  // the bridges
  session.partitioning().validate(session.graph());
#ifdef PIGP_ALLOC_COUNTING_DISABLED
  (void)allocation_count();
#endif
}

}  // namespace
}  // namespace pigp
