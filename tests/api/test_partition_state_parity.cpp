// Randomized parity: a Session driven through mixed insert/delete/extend
// delta streams must keep its incrementally maintained PartitionState
// bit-identical to a fresh graph::compute_metrics after EVERY step — and
// the fixed SessionCounters semantics must match brute-force edge/vertex
// accounting against the actual graphs.  All weights are integer-valued so
// the floating-point bookkeeping is exact and the comparison can be ==.
//
// This file is registered under the ctest `smoke` label so CI exercises it
// on every build configuration, including ASan+UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "spectral/partitioners.hpp"
#include "support/rng.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::GraphDelta;
using graph::PartitionMetrics;
using graph::Partitioning;
using graph::VertexAddition;
using graph::VertexId;

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

/// Canonical edges of \p g between vertices with id < limit.
EdgeSet edge_set(const Graph& g, VertexId limit) {
  EdgeSet edges;
  for (VertexId v = 0; v < std::min(limit, g.num_vertices()); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v && u < limit) edges.emplace(v, u);
    }
  }
  return edges;
}

/// The parity assertion: the session's O(P) metrics snapshot must equal a
/// fresh full rescan, field for field, bit for bit.
void expect_metrics_parity(const Session& session, const char* where,
                           int step) {
  const PartitionMetrics inc = session.metrics();
  const PartitionMetrics full =
      graph::compute_metrics(session.graph(), session.partitioning());
  EXPECT_EQ(inc.weight, full.weight) << where << " step " << step;
  EXPECT_EQ(inc.boundary_cost, full.boundary_cost)
      << where << " step " << step;
  EXPECT_EQ(inc.cut_total, full.cut_total) << where << " step " << step;
  EXPECT_EQ(inc.cut_max, full.cut_max) << where << " step " << step;
  EXPECT_EQ(inc.cut_min, full.cut_min) << where << " step " << step;
  EXPECT_EQ(inc.max_weight, full.max_weight) << where << " step " << step;
  EXPECT_EQ(inc.min_weight, full.min_weight) << where << " step " << step;
  EXPECT_EQ(inc.avg_weight, full.avg_weight) << where << " step " << step;
  EXPECT_EQ(inc.imbalance, full.imbalance) << where << " step " << step;
}

/// A delta mixing vertex additions (integer weights, edges to survivors
/// and chained new-new edges), explicit edge additions (old-old, old-new,
/// duplicates allowed so weight-merging is exercised), vertex removals
/// (with duplicate V2 entries) and explicit edge removals (sometimes
/// incident to removed vertices, sometimes listed twice).
GraphDelta random_delta(const Graph& g, SplitMix64& rng, bool removals) {
  const VertexId n = g.num_vertices();
  GraphDelta delta;

  std::set<VertexId> removed;
  if (removals && n > 60) {
    const int count = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < count; ++i) {
      removed.insert(static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    delta.removed_vertices.assign(removed.begin(), removed.end());
    if (rng.next_below(3) == 0) {
      delta.removed_vertices.push_back(delta.removed_vertices.front());
    }
  }
  const auto survives = [&](VertexId v) { return removed.count(v) == 0; };
  const auto random_survivor = [&] {
    for (;;) {
      const auto v = static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (survives(v)) return v;
    }
  };

  const int edge_removals =
      removals ? static_cast<int>(rng.next_below(3)) : 0;
  for (int i = 0; i < edge_removals; ++i) {
    const auto v = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) continue;
    const VertexId u = nbrs[rng.next_below(nbrs.size())];
    delta.removed_edges.emplace_back(v, u);
    if (rng.next_below(4) == 0) delta.removed_edges.emplace_back(u, v);
  }

  const int additions = 2 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < additions; ++i) {
    VertexAddition add;
    add.weight = 1.0 + static_cast<double>(rng.next_below(3));
    add.edges.emplace_back(random_survivor(),
                           1.0 + static_cast<double>(rng.next_below(2)));
    if (i > 0) add.edges.emplace_back(n + i - 1, 1.0);
    delta.added_vertices.push_back(std::move(add));
  }

  const int edge_additions = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < edge_additions; ++i) {
    const VertexId a = random_survivor();
    VertexId b = random_survivor();
    if (a == b) {
      b = static_cast<VertexId>(
          n + static_cast<VertexId>(rng.next_below(
                  static_cast<std::uint64_t>(additions))));
      if (a == b) continue;
    }
    delta.added_edges.emplace_back(a, b);
    delta.added_edge_weights.push_back(
        1.0 + static_cast<double>(rng.next_below(4)));
  }
  return delta;
}

/// Brute-force: distinct old edges that applying \p delta must remove
/// (implicitly via removed vertices or explicitly), straight off the
/// old graph's edge list.
std::int64_t expected_edges_removed(const Graph& before,
                                    const GraphDelta& delta) {
  const std::set<VertexId> removed(delta.removed_vertices.begin(),
                                   delta.removed_vertices.end());
  EdgeSet removed_edges;
  for (const auto& [u, v] : delta.removed_edges) {
    removed_edges.emplace(std::min(u, v), std::max(u, v));
  }
  std::int64_t count = 0;
  for (VertexId v = 0; v < before.num_vertices(); ++v) {
    for (const VertexId u : before.neighbors(v)) {
      if (u <= v) continue;
      if (removed.count(v) != 0 || removed.count(u) != 0 ||
          removed_edges.count({v, u}) != 0) {
        ++count;
      }
    }
  }
  return count;
}

/// An extension of \p g (for apply_extended): appends a connected clump of
/// new vertices and rewires the old-old structure — drops one existing
/// edge, adds one new edge, changes one weight — exercising the
/// reconcile_extension diff walk.
Graph random_extension(const Graph& g, SplitMix64& rng) {
  const VertexId n = g.num_vertices();
  const auto pick = [&] {
    return static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
  };
  std::pair<VertexId, VertexId> dropped{-1, -1};
  {
    const VertexId v = pick();
    const auto nbrs = g.neighbors(v);
    if (!nbrs.empty()) {
      const VertexId u = nbrs[rng.next_below(nbrs.size())];
      dropped = {std::min(u, v), std::max(u, v)};
    }
  }
  std::pair<VertexId, VertexId> reweighted{-1, -1};
  {
    const VertexId v = pick();
    const auto nbrs = g.neighbors(v);
    if (!nbrs.empty()) {
      const VertexId u = nbrs[rng.next_below(nbrs.size())];
      reweighted = {std::min(u, v), std::max(u, v)};
    }
  }

  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    builder.set_vertex_weight(v, g.vertex_weight(v));
    const auto nbrs = g.neighbors(v);
    const auto weights = g.incident_edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u <= v) continue;
      if (std::make_pair(v, u) == dropped) continue;
      const double extra =
          std::make_pair(v, u) == reweighted && dropped != reweighted ? 2.0
                                                                      : 0.0;
      builder.add_edge(v, u, weights[i] + extra);
    }
  }
  // One created old-old edge (if the pair is free).
  const VertexId a = pick();
  const VertexId b = pick();
  if (a != b && !g.has_edge(a, b) &&
      std::make_pair(std::min(a, b), std::max(a, b)) != dropped) {
    builder.add_edge(a, b, 3.0);
  }
  const int clump = 3 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < clump; ++i) {
    const VertexId id = builder.add_vertex(
        1.0 + static_cast<double>(rng.next_below(2)));
    builder.add_edge(id, pick(), 1.0);
    if (i > 0) builder.add_edge(id, id - 1, 1.0);
  }
  return builder.build();
}

SessionConfig make_config(BatchPolicy policy) {
  SessionConfig config;
  config.num_parts = 6;
  config.backend = "igpr";
  config.batch_policy = policy;
  config.batch_vertex_limit = 25;
  config.batch_imbalance_limit = 1.1;
  return config;
}

/// Drives one session through `steps` mixed operations, asserting metric
/// parity and exact counter accounting after every single call.
void drive_and_check(BatchPolicy policy, std::uint64_t seed, int steps) {
  const Graph base = graph::random_geometric_graph(350, 0.09, 77);
  const Partitioning initial = spectral::recursive_graph_bisection(base, 6);
  Session session(make_config(policy), base, initial);
  expect_metrics_parity(session, "construction", -1);

  SplitMix64 rng(seed);
  SessionCounters last = session.counters();
  for (int step = 0; step < steps; ++step) {
    const Graph before = session.graph();

    if (step % 5 == 4) {
      const Graph extended = random_extension(before, rng);
      const EdgeSet old_oo = edge_set(before, before.num_vertices());
      const EdgeSet new_oo = edge_set(extended, before.num_vertices());
      std::int64_t removed = 0;
      for (const auto& e : old_oo) removed += new_oo.count(e) == 0 ? 1 : 0;
      (void)session.apply_extended(extended, before.num_vertices());
      expect_metrics_parity(session, "apply_extended", step);

      const SessionCounters& c = session.counters();
      EXPECT_EQ(c.edges_removed - last.edges_removed, removed) << step;
      EXPECT_EQ(c.edges_added - last.edges_added,
                extended.num_edges() - (before.num_edges() - removed))
          << step;
      EXPECT_EQ(c.vertices_added - last.vertices_added,
                extended.num_vertices() - before.num_vertices())
          << step;
    } else {
      const GraphDelta delta = random_delta(before, rng, step % 2 == 1);
      const std::int64_t removed = expected_edges_removed(before, delta);
      const std::set<VertexId> removed_vertices(
          delta.removed_vertices.begin(), delta.removed_vertices.end());
      (void)session.apply(delta);
      expect_metrics_parity(session, "apply", step);

      const SessionCounters& c = session.counters();
      EXPECT_EQ(c.vertices_removed - last.vertices_removed,
                static_cast<std::int64_t>(removed_vertices.size()))
          << step;
      EXPECT_EQ(c.vertices_added - last.vertices_added,
                static_cast<std::int64_t>(delta.added_vertices.size()))
          << step;
      EXPECT_EQ(c.edges_removed - last.edges_removed, removed) << step;
      EXPECT_EQ(c.edges_added - last.edges_added,
                session.graph().num_edges() -
                    (before.num_edges() - removed))
          << step;
    }
    last = session.counters();

    if (step % 7 == 3) {
      (void)session.repartition();
      expect_metrics_parity(session, "repartition", step);
    }
  }
}

TEST(PartitionStateParity, EveryDeltaStreamBitMatchesFullRecompute) {
  drive_and_check(BatchPolicy::every_delta, 1001, 15);
}

TEST(PartitionStateParity, VertexCountBatchedStreamBitMatches) {
  drive_and_check(BatchPolicy::vertex_count, 2002, 20);
}

TEST(PartitionStateParity, ImbalanceBatchedStreamBitMatches) {
  drive_and_check(BatchPolicy::imbalance, 3003, 20);
}

TEST(PartitionStateParity, ScratchBackendStreamBitMatches) {
  // The scratch backend replaces the whole partitioning every trigger —
  // the worst case for the state transition path.
  const Graph base = graph::random_geometric_graph(250, 0.11, 5);
  SessionConfig config;
  config.num_parts = 4;
  config.backend = "scratch";
  config.scratch_method = "rgb";
  Session session(config, base);
  expect_metrics_parity(session, "construction", -1);

  SplitMix64 rng(4004);
  for (int step = 0; step < 6; ++step) {
    (void)session.apply(random_delta(session.graph(), rng, step % 2 == 1));
    expect_metrics_parity(session, "scratch apply", step);
  }
}

}  // namespace
}  // namespace pigp
