// pigp::Session — the stateful delta-stream API.  The core guarantees:
// a session streaming deltas (insertions *and* deletions) under the
// every_delta policy is bit-identical to hand-chaining the flat driver's
// repartition_delta; the backend registry round-trips all built-in names;
// invalid configs are rejected with clear errors; and the batch policies
// trigger exactly at their thresholds.

#include "api/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <type_traits>

#include "api/errors.hpp"
#include "core/igp.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"
#include "support/check.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexAddition;

/// A delta mixing vertex insertions, vertex deletions, and edge changes,
/// anchored at \p seed-dependent positions of a graph with \p n vertices.
GraphDelta mixed_delta(graph::VertexId n, int step) {
  GraphDelta delta;
  const graph::VertexId a = (7 * step + 1) % (n / 2);
  const graph::VertexId b = n / 2 + (11 * step + 3) % (n / 2);
  for (int i = 0; i < 6 + step; ++i) {
    VertexAddition add;
    add.edges.emplace_back((a + i) % n, 1.0);
    if (i > 0) add.edges.emplace_back(n + i - 1, 1.0);  // chain the new ones
    delta.added_vertices.push_back(add);
  }
  delta.removed_vertices = {b, static_cast<graph::VertexId>((b + 5) % n)};
  if (delta.removed_vertices[0] == delta.removed_vertices[1]) {
    delta.removed_vertices.pop_back();
  }
  return delta;
}

SessionConfig basic_config(graph::PartId parts, const std::string& backend) {
  SessionConfig config;
  config.num_parts = parts;
  config.backend = backend;
  return config;
}

TEST(Session, DeltaStreamMatchesOneShotRepartitionDelta) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(500, {}, 7);
  const Graph& base = seq.graphs[0];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, 8);

  Session session(basic_config(8, "igpr"), base, initial);

  // Reference: hand-chained flat driver, the pre-redesign protocol.
  const core::IncrementalPartitioner driver;
  Graph ref_graph = base;
  Partitioning ref_part = initial;

  for (int step = 0; step < 3; ++step) {
    const GraphDelta delta = mixed_delta(ref_graph.num_vertices(), step);

    Graph next;
    const core::IgpResult ref =
        driver.repartition_delta(ref_graph, ref_part, delta, &next);
    ref_graph = std::move(next);
    ref_part = ref.partitioning;

    const SessionReport report = session.apply(delta);
    EXPECT_TRUE(report.repartitioned);
    ASSERT_EQ(session.graph(), ref_graph) << "step " << step;
    EXPECT_EQ(session.partitioning().part, ref_part.part)
        << "step " << step;
  }
  EXPECT_EQ(session.counters().deltas_applied, 3);
  EXPECT_EQ(session.counters().repartitions, 3);
}

TEST(Session, ApplyExtendedMatchesCoreRepartition) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(600, {60}, 3);
  const Graph& before = seq.graphs[0];
  const Graph& after = seq.graphs[1];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(before, 8);

  const core::IgpResult ref = core::IncrementalPartitioner().repartition(
      after, initial, before.num_vertices());

  Session session(basic_config(8, "igpr"), before, initial);
  const SessionReport report =
      session.apply_extended(after, before.num_vertices());

  EXPECT_TRUE(report.repartitioned);
  EXPECT_EQ(report.balanced, ref.balanced);
  EXPECT_EQ(report.stages, ref.stages);
  EXPECT_EQ(session.partitioning().part, ref.partitioning.part);
  EXPECT_DOUBLE_EQ(
      report.metrics.cut_total,
      graph::compute_metrics(after, ref.partitioning).cut_total);
}

TEST(Session, BackendRegistryRoundTripsAllBuiltinNames) {
  const ResolvedConfig resolved = basic_config(4, "igpr").resolve();
  for (const std::string name :
       {"igp", "igpr", "multilevel", "spmd", "scratch"}) {
    ASSERT_TRUE(BackendRegistry::global().contains(name)) << name;
    const std::unique_ptr<Backend> backend =
        BackendRegistry::global().create(name, resolved);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(backend->incremental(), name != "scratch") << name;
  }
  // The listing includes all five names.
  const std::vector<std::string> names = BackendRegistry::global().names();
  for (const char* expected :
       {"igp", "igpr", "multilevel", "spmd", "scratch"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Session, UnknownBackendRejectedWithKnownNamesListed) {
  const Graph g = graph::random_geometric_graph(200, 0.12, 5);
  try {
    Session session(basic_config(4, "no-such-backend"), g);
    FAIL() << "expected UnknownBackendError";
  } catch (const UnknownBackendError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos) << what;
    EXPECT_NE(what.find("igpr"), std::string::npos) << what;
    // The names ride along programmatically, not just in the message.
    const std::vector<std::string>& known = e.known_backends();
    EXPECT_NE(std::find(known.begin(), known.end(), "igpr"), known.end());
  }
  // The taxonomy keeps pre-existing catch sites working: every typed error
  // is a pigp::Error and a pigp::CheckError.
  EXPECT_THROW((Session{basic_config(4, "no-such-backend"), g}), Error);
  EXPECT_THROW((Session{basic_config(4, "no-such-backend"), g}), CheckError);
}

TEST(Session, MoveOperationsAreDeleted) {
  // Regression for an audit finding: the warm workspace's boundary
  // layering holds pointers into the session's graph/partitioning, so a
  // moved Session would leave them dangling unless an internal re-bind
  // happens to run first.  The operations are deleted outright; factory
  // returns still compile through guaranteed copy elision
  // (test_session_alloc.cpp's make_quiescent_session is the living proof).
  static_assert(!std::is_move_constructible_v<Session>);
  static_assert(!std::is_move_assignable_v<Session>);
  static_assert(!std::is_copy_constructible_v<Session>);
  static_assert(!std::is_copy_assignable_v<Session>);
}

TEST(Session, SummaryMatchesFullMetrics) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 37);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);
  Session session(basic_config(4, "igpr"), g, initial);
  (void)session.apply(mixed_delta(g.num_vertices(), 0));

  const graph::PartitionSummary summary = session.summary();
  const graph::PartitionMetrics metrics = session.metrics();
  EXPECT_DOUBLE_EQ(summary.cut_total, metrics.cut_total);
  EXPECT_DOUBLE_EQ(summary.imbalance, metrics.imbalance);
  EXPECT_DOUBLE_EQ(summary.max_weight, metrics.max_weight);
  EXPECT_DOUBLE_EQ(summary.min_weight, metrics.min_weight);
}

TEST(Session, AdoptRebalanceFoldsAnExternalResultIn) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 41);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  SessionConfig config = basic_config(4, "igpr");
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = 1000;  // never self-triggers
  Session session(config, g, initial);

  // Compute the rebalance out of band, exactly like the async layer does.
  Session oracle(basic_config(4, "igpr"), g, initial);
  (void)oracle.repartition();

  session.adopt_rebalance(oracle.partitioning());
  EXPECT_EQ(session.partitioning().part, oracle.partitioning().part);
  EXPECT_EQ(session.counters().repartitions, 1);
  EXPECT_EQ(session.pending_updates(), 0);
  // The maintained state absorbed every move: summaries agree without any
  // rescan having happened.
  EXPECT_DOUBLE_EQ(session.summary().cut_total, oracle.summary().cut_total);
  session.partitioning().validate(session.graph());

  // Incompatible adoptions are typed DeltaErrors.
  Partitioning wrong_parts = spectral::recursive_graph_bisection(g, 8);
  EXPECT_THROW(session.adopt_rebalance(wrong_parts), DeltaError);

  // A shorter (prefix) partitioning is fine — vertices past its end keep
  // their placement; a longer one is rejected.
  Partitioning longer = session.partitioning();
  longer.part.push_back(0);
  EXPECT_THROW(session.adopt_rebalance(longer), DeltaError);
}

TEST(Session, InvalidConfigRejectedWithClearError) {
  const Graph g = graph::random_geometric_graph(200, 0.12, 5);

  // num_parts unset.
  try {
    Session session(SessionConfig{}, g);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("num_parts"), std::string::npos);
  }

  // Bad scratch method.
  SessionConfig bad_method = basic_config(4, "scratch");
  bad_method.scratch_method = "metis";
  EXPECT_THROW((Session{bad_method, g}), CheckError);

  // Bad thread count.
  SessionConfig bad_threads = basic_config(4, "igpr");
  bad_threads.num_threads = 0;
  EXPECT_THROW((Session{bad_threads, g}), CheckError);

  // Bad batch limit.
  SessionConfig bad_limit = basic_config(4, "igpr");
  bad_limit.batch_vertex_limit = 0;
  EXPECT_THROW((Session{bad_limit, g}), CheckError);

  // Adopting a partitioning with the wrong part count.
  Partitioning p = spectral::recursive_graph_bisection(g, 8);
  EXPECT_THROW((Session{basic_config(4, "igpr"), g, p}), CheckError);
}

TEST(Session, VertexCountBatchPolicyTriggersExactlyAtThreshold) {
  const Graph g = graph::random_geometric_graph(400, 0.09, 11);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  SessionConfig config = basic_config(4, "igpr");
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = 3;
  Session session(config, g, initial);

  const auto one_vertex_delta = [](const Graph& current) {
    GraphDelta delta;
    VertexAddition add;
    add.edges.emplace_back(current.num_vertices() / 2, 1.0);
    delta.added_vertices.push_back(add);
    return delta;
  };

  const SessionReport r1 = session.apply(one_vertex_delta(session.graph()));
  EXPECT_FALSE(r1.repartitioned);
  EXPECT_EQ(r1.pending_updates, 1);
  const SessionReport r2 = session.apply(one_vertex_delta(session.graph()));
  EXPECT_FALSE(r2.repartitioned);
  EXPECT_EQ(r2.pending_updates, 2);
  const SessionReport r3 = session.apply(one_vertex_delta(session.graph()));
  EXPECT_TRUE(r3.repartitioned);  // 3 pending vertices == limit
  EXPECT_EQ(r3.pending_updates, 0);

  // Removals count toward the threshold too.
  GraphDelta removal;
  removal.removed_vertices = {0, 1, 2};
  const SessionReport r4 = session.apply(removal);
  EXPECT_TRUE(r4.repartitioned);
  EXPECT_EQ(session.counters().vertices_removed, 3);
}

TEST(Session, ImbalanceBatchPolicyTriggersWhenThresholdCrossed) {
  const Graph g = graph::random_geometric_graph(400, 0.09, 13);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 2);

  SessionConfig config = basic_config(2, "igpr");
  config.batch_policy = BatchPolicy::imbalance;
  config.batch_imbalance_limit = 1.15;
  Session session(config, g, initial);

  // Anchor in partition 0; enough new vertices to push max/avg past 1.15:
  // with 200 per side, +70 on one side gives 270 / 235 ≈ 1.149, +80 gives
  // 280 / 240 ≈ 1.167.
  graph::VertexId anchor = 0;
  while (initial.part[static_cast<std::size_t>(anchor)] != 0) ++anchor;

  const auto burst_delta = [&](int count) {
    GraphDelta delta;
    const graph::VertexId n = session.graph().num_vertices();
    for (int i = 0; i < count; ++i) {
      VertexAddition add;
      add.edges.emplace_back(anchor, 1.0);
      if (i > 0) add.edges.emplace_back(n + i - 1, 1.0);
      delta.added_vertices.push_back(add);
    }
    return delta;
  };

  const SessionReport small = session.apply(burst_delta(20));
  EXPECT_FALSE(small.repartitioned) << "imbalance " << small.metrics.imbalance;
  EXPECT_EQ(small.pending_updates, 1);

  const SessionReport big = session.apply(burst_delta(70));
  EXPECT_TRUE(big.repartitioned);
  EXPECT_TRUE(big.balanced);
  EXPECT_LE(big.metrics.imbalance, 1.15);
}

TEST(Session, ForcedRepartitionFlushesPendingUpdates) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 17);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  SessionConfig config = basic_config(4, "igpr");
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = 1000;  // never trips on its own
  Session session(config, g, initial);

  GraphDelta delta;
  for (int i = 0; i < 5; ++i) {
    VertexAddition add;
    add.edges.emplace_back(i * 7, 1.0);
    delta.added_vertices.push_back(add);
  }
  const SessionReport deferred = session.apply(delta);
  EXPECT_FALSE(deferred.repartitioned);
  EXPECT_EQ(session.pending_updates(), 1);

  const SessionReport forced = session.repartition();
  EXPECT_TRUE(forced.repartitioned);
  EXPECT_EQ(session.pending_updates(), 0);
  EXPECT_TRUE(forced.balanced);
  EXPECT_TRUE(graph::is_balanced(session.graph(), session.partitioning()));
}

TEST(Session, ScratchConstructorPartitionsFromScratch) {
  const Graph g = graph::random_geometric_graph(500, 0.08, 19);
  for (const std::string method : {"rsb", "rgb", "rsb+kl"}) {
    SessionConfig config = basic_config(4, "igpr");
    config.scratch_method = method;
    const Session session(config, g);
    session.partitioning().validate(g);
    EXPECT_TRUE(graph::is_balanced(g, session.partitioning())) << method;
  }
}

TEST(Session, CountersIncludeImplicitEdgeRemovals) {
  // A 5-cycle with a chord: removing vertex 0 implicitly drops its three
  // incident edges; an explicit removal drops one more; a duplicate entry
  // in E2 must not double-count.
  graph::GraphBuilder builder(5);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(1, 2, 1.0);
  builder.add_edge(2, 3, 1.0);
  builder.add_edge(3, 4, 1.0);
  builder.add_edge(4, 0, 1.0);
  builder.add_edge(0, 2, 1.0);  // chord
  const Graph g = builder.build();
  Partitioning initial;
  initial.num_parts = 2;
  initial.part = {0, 0, 0, 1, 1};
  Session session(basic_config(2, "igpr"), g, initial);

  GraphDelta delta;
  delta.removed_vertices = {0};
  delta.removed_edges = {{2, 3}, {3, 2}};  // duplicate listing
  VertexAddition add;  // keep both sides non-empty for the backend
  add.edges.emplace_back(1, 1.0);
  delta.added_vertices.push_back(add);
  (void)session.apply(delta);

  const SessionCounters& c = session.counters();
  EXPECT_EQ(c.vertices_removed, 1);
  // {0,1}, {4,0}, {0,2} via the removed vertex + {2,3} explicitly.
  EXPECT_EQ(c.edges_removed, 4);
  // The added vertex brought one edge.
  EXPECT_EQ(c.edges_added, 1);
  EXPECT_EQ(session.graph().num_edges(), 3);  // 6 - 4 + 1
}

TEST(Session, CountersIncludeNewVertexAndMergedEdgeAdditions) {
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(2, 3, 1.0);
  builder.add_edge(1, 2, 1.0);
  const Graph g = builder.build();
  Partitioning initial;
  initial.num_parts = 2;
  initial.part = {0, 0, 1, 1};
  Session session(basic_config(2, "igpr"), g, initial);

  GraphDelta delta;
  VertexAddition add;
  add.weight = 2.0;
  add.edges.emplace_back(0, 1.0);
  add.edges.emplace_back(3, 1.0);
  delta.added_vertices.push_back(add);
  delta.added_edges = {{0, 3}, {0, 1}};  // one new edge + one weight merge
  delta.added_edge_weights = {1.0, 4.0};
  (void)session.apply(delta);

  const SessionCounters& c = session.counters();
  // Two attachment edges + {0,3}; the {0,1} merge adds no edge, exactly
  // like the graph's own edge count.
  EXPECT_EQ(c.edges_added, 3);
  EXPECT_EQ(c.edges_removed, 0);
  EXPECT_EQ(session.graph().num_edges(), 6);
  EXPECT_EQ(session.graph().edge_weight(0, 1), 5.0);  // merged
}

TEST(Session, CountersIncludeExtensionEdges) {
  const Graph g = graph::random_geometric_graph(120, 0.15, 29);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);
  Session session(basic_config(4, "igpr"), g, initial);

  // Extend with 3 vertices: 3 attachment edges + 2 chain edges.
  graph::GraphBuilder builder(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    builder.set_vertex_weight(v, g.vertex_weight(v));
    for (std::size_t i = 0; i < g.neighbors(v).size(); ++i) {
      const graph::VertexId u = g.neighbors(v)[i];
      if (u > v) builder.add_edge(v, u, g.incident_edge_weights(v)[i]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    const graph::VertexId id = builder.add_vertex();
    builder.add_edge(id, static_cast<graph::VertexId>(i * 17), 1.0);
    if (i > 0) builder.add_edge(id, id - 1, 1.0);
  }
  (void)session.apply_extended(builder.build(), g.num_vertices());

  const SessionCounters& c = session.counters();
  EXPECT_EQ(c.extensions_applied, 1);
  EXPECT_EQ(c.vertices_added, 3);
  EXPECT_EQ(c.edges_added, 5);  // regression: used to stay 0
  EXPECT_EQ(c.edges_removed, 0);
}

TEST(Session, EmptyDeltaIsAPureRepartitionTick) {
  // An empty delta skips the graph rebuild entirely but still runs the
  // backend under every_delta — the steady-state "nudge" the allocation
  // smoke test measures.  It must count as a delta, leave the graph
  // untouched, and land on exactly the state a forced repartition reaches.
  const Graph g = graph::random_geometric_graph(300, 0.1, 31);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  Session session(basic_config(4, "igpr"), g, initial);
  Session reference(basic_config(4, "igpr"), g, initial);

  const SessionReport tick = session.apply(GraphDelta{});
  const SessionReport forced = reference.repartition();

  EXPECT_TRUE(tick.repartitioned);
  EXPECT_EQ(session.graph(), g);
  EXPECT_EQ(session.partitioning().part, reference.partitioning().part);
  EXPECT_DOUBLE_EQ(tick.metrics.cut_total, forced.metrics.cut_total);
  EXPECT_EQ(session.counters().deltas_applied, 1);
  EXPECT_EQ(session.counters().vertices_added, 0);
  EXPECT_EQ(session.counters().edges_added, 0);
  EXPECT_EQ(session.counters().repartitions, 1);

  // Deferred policies batch the tick like any other delta.
  SessionConfig deferred = basic_config(4, "igpr");
  deferred.batch_policy = BatchPolicy::vertex_count;
  deferred.batch_vertex_limit = 100;
  Session batched(deferred, g, initial);
  const SessionReport pending = batched.apply(GraphDelta{});
  EXPECT_FALSE(pending.repartitioned);
  EXPECT_EQ(pending.pending_updates, 1);
}

TEST(Session, CountersAccumulateAcrossTheStream) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 23);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);
  Session session(basic_config(4, "igpr"), g, initial);

  int added = 0;
  for (int step = 0; step < 3; ++step) {
    const GraphDelta delta = mixed_delta(session.graph().num_vertices(), step);
    added += static_cast<int>(delta.added_vertices.size());
    (void)session.apply(delta);
  }
  const SessionCounters& counters = session.counters();
  EXPECT_EQ(counters.deltas_applied, 3);
  EXPECT_EQ(counters.vertices_added, added);
  EXPECT_GT(counters.vertices_removed, 0);
  EXPECT_EQ(counters.repartitions, 3);  // every_delta policy
  EXPECT_GE(counters.balance_stages, 0);
  EXPECT_GE(counters.repartition_seconds, 0.0);
}

}  // namespace
}  // namespace pigp
