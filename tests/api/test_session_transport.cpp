// Transport failures crossing the Session boundary: a TransportError from
// the backend (here a TCP recv timeout over real loopback sockets) must
// surface typed, poison the session (sticky failure: later mutations
// rethrow without running the backend), and the SPMD backend over TCP must
// stay bit-identical to its in-process twin through the public API.

#include "api/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string_view>

#include "api/backend.hpp"
#include "api/errors.hpp"
#include "mesh/paper_meshes.hpp"
#include "runtime/net/tcp_transport.hpp"
#include "spectral/partitioners.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexAddition;

std::atomic<int> g_fault_runs{0};

/// A backend whose every run dies in a real TCP recv timeout: two loopback
/// ranks both wait for a message nobody sends.
class NetFaultBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "net-fault";
  }

  [[nodiscard]] BackendResult repartition(
      const Graph& g_new, const Partitioning& old_partitioning,
      graph::VertexId n_old) override {
    (void)g_new;
    (void)old_partitioning;
    (void)n_old;
    ++g_fault_runs;
    net::TcpOptions options;
    options.recv_timeout_ms = 100;
    net::run_tcp_loopback(2, options, [](net::Transport& t) {
      (void)t.recv(1 - t.rank());  // nobody sends: both ranks time out
    });
    return {};  // unreachable
  }
};

GraphDelta one_vertex_delta() {
  GraphDelta delta;
  VertexAddition add;
  add.edges.emplace_back(0, 1.0);
  add.edges.emplace_back(1, 1.0);
  delta.added_vertices.push_back(add);
  return delta;
}

TEST(SessionTransport, RecvTimeoutIsStickyAndTyped) {
  BackendRegistry::global().add("net-fault", [](const ResolvedConfig&) {
    return std::make_unique<NetFaultBackend>();
  });
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(200, {}, 5);
  const Graph& base = seq.graphs[0];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, 4);
  SessionConfig config;
  config.num_parts = 4;
  config.backend = "net-fault";
  Session session(config, base, initial);
  ASSERT_FALSE(session.transport_failed());

  g_fault_runs = 0;
  EXPECT_THROW((void)session.apply(one_vertex_delta()), TransportError);
  EXPECT_TRUE(session.transport_failed());
  EXPECT_EQ(g_fault_runs.load(), 1);

  // Sticky: every further mutating call rethrows the original error
  // without touching the backend — the session may be out of sync with
  // its distributed peers, so silently continuing would corrupt them.
  EXPECT_THROW((void)session.apply(one_vertex_delta()), TransportError);
  EXPECT_THROW((void)session.repartition(), TransportError);
  EXPECT_EQ(g_fault_runs.load(), 1);

  // Read-only accessors stay usable for post-mortem inspection.
  EXPECT_EQ(session.partitioning().num_parts, 4);
  (void)session.metrics();
}

TEST(SessionTransport, OrdinaryBackendErrorsAreNotSticky) {
  // A non-transport failure (unassignable vertex, infeasible LP, ...)
  // rolls back and leaves the session usable; only TransportError poisons.
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(200, {}, 6);
  const Graph& base = seq.graphs[0];
  SessionConfig config;
  config.num_parts = 4;
  config.backend = "igpr";
  Session session(config, base,
                  spectral::recursive_spectral_bisection(base, 4));
  GraphDelta bogus;
  bogus.removed_vertices = {base.num_vertices() + 1000};  // out of range
  EXPECT_ANY_THROW((void)session.apply(bogus));
  EXPECT_FALSE(session.transport_failed());
  (void)session.apply(one_vertex_delta());  // still alive
}

TEST(SessionTransport, SpmdOverTcpMatchesInProcessThroughTheApi) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(400, {}, 11);
  const Graph& base = seq.graphs[0];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, 6);

  const auto run = [&](const std::string& transport,
                       const std::string& filters) {
    SessionConfig config;
    config.num_parts = 6;
    config.backend = "spmd";
    config.spmd_ranks = 2;
    config.spmd_transport = transport;
    config.spmd_wire_filters = filters;
    Session session(config, base, initial);
    for (int step = 0; step < 2; ++step) {
      (void)session.apply(one_vertex_delta());
    }
    return session.partitioning();
  };

  const Partitioning expected = run("in_process", "");
  EXPECT_EQ(expected.part, run("tcp", "").part);
  EXPECT_EQ(expected.part, run("tcp", "delta").part);
}

}  // namespace
}  // namespace pigp
