// pigp::AsyncSession — concurrent ingest/serve.  The guarantees under
// test: every published PartitionView is a committed, internally
// consistent snapshot (readers can never observe a torn assignment or an
// epoch moving backwards), flush() is a real barrier leaving the view
// fully rebalanced, removals never corrupt a racing rebalance (stale
// commits are discarded), errors surface on submit()/flush(), and
// shutdown drains cleanly.  The reader/writer stress test is the
// ThreadSanitizer centerpiece: CI runs this whole binary under TSan.

#include "api/async_session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/errors.hpp"
#include "graph/generators.hpp"
#include "spectral/partitioners.hpp"
#include "support/check.hpp"

namespace pigp {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::Partitioning;
using graph::VertexAddition;

SessionConfig async_config(graph::PartId parts) {
  SessionConfig config;
  config.num_parts = parts;
  config.backend = "igpr";
  return config;
}

/// Append-only delta: \p count new unit-weight vertices chained together,
/// the first anchored at a \p step-dependent existing vertex.
GraphDelta append_delta(graph::VertexId current_vertices, int count,
                        int step) {
  GraphDelta delta;
  const graph::VertexId anchor =
      static_cast<graph::VertexId>((step * 37 + 11) % current_vertices);
  for (int i = 0; i < count; ++i) {
    VertexAddition add;
    add.edges.emplace_back(anchor, 1.0);
    if (i > 0) add.edges.emplace_back(current_vertices + i - 1, 1.0);
    delta.added_vertices.push_back(add);
  }
  return delta;
}

/// All vertex weights in these tests are 1.0, so a view is internally
/// consistent iff the per-part counts recomputed from its assignment array
/// reproduce the summary captured with it.  A torn snapshot (assignment
/// and summary from different commits) fails this with overwhelming
/// probability; a corrupt assignment fails the range check outright.
bool view_is_consistent(const PartitionView& view) {
  std::vector<double> weight(static_cast<std::size_t>(view.num_parts()),
                             0.0);
  for (const graph::PartId q : view.assignment()) {
    if (q < 0 || q >= view.num_parts()) return false;  // torn / corrupt
    weight[static_cast<std::size_t>(q)] += 1.0;
  }
  double max_weight = 0.0;
  double total = 0.0;
  for (const double w : weight) {
    max_weight = std::max(max_weight, w);
    total += w;
  }
  return max_weight == view.summary().max_weight &&
         total == static_cast<double>(view.num_vertices());
}

TEST(AsyncSession, AbsorbsAStreamAndPublishesCommittedViews) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 7);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  AsyncSession session(async_config(4), g, initial);
  const std::shared_ptr<const PartitionView> first = session.view();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->epoch(), 1u);  // published before any delta
  EXPECT_EQ(first->num_vertices(), g.num_vertices());
  EXPECT_TRUE(view_is_consistent(*first));

  graph::VertexId vertices = g.num_vertices();
  for (int step = 0; step < 8; ++step) {
    session.submit(append_delta(vertices, 3, step));
    vertices += 3;
  }
  session.flush();

  const std::shared_ptr<const PartitionView> final_view = session.view();
  EXPECT_EQ(final_view->num_vertices(), vertices);
  EXPECT_TRUE(view_is_consistent(*final_view));
  EXPECT_GT(final_view->epoch(), first->epoch());
  // The first view stayed valid and untouched the whole time.
  EXPECT_EQ(first->epoch(), 1u);
  EXPECT_EQ(first->num_vertices(), g.num_vertices());

  const AsyncStats stats = session.stats();
  EXPECT_EQ(stats.deltas_submitted, 8);
  EXPECT_EQ(stats.deltas_absorbed, 8);
  EXPECT_EQ(stats.deltas_rejected, 0);
  EXPECT_GE(stats.rebalances_committed, 1);  // every_delta policy
  EXPECT_EQ(stats.rebalances_started, stats.rebalances_committed +
                                          stats.commits_discarded +
                                          stats.rebalance_failures);
  session.close();
}

TEST(AsyncSession, WriterWithConcurrentReadersStaysConsistent) {
  // The TSan stress test: one producer streams deltas while reader
  // threads hammer part_of through the epoch-polling pattern from
  // view.hpp.  Readers record violations instead of EXPECTing off-thread;
  // the main thread asserts at the end.
  constexpr int kReaders = 4;
  constexpr int kDeltas = 48;
  const Graph g = graph::random_geometric_graph(400, 0.09, 11);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  SessionConfig config = async_config(4);
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = 8;
  AsyncSession session(config, g, initial);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> lookups{0};
  std::atomic<int> epoch_regressions{0};
  std::atomic<int> inconsistent_views{0};
  std::atomic<int> torn_lookups{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::shared_ptr<const PartitionView> view = session.view();
      std::uint64_t seen = view->epoch();
      std::uint64_t consistency_checks = 0;
      graph::VertexId probe = static_cast<graph::VertexId>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        if (session.epoch() != seen) {
          view = session.view();
          if (view->epoch() < seen) epoch_regressions.fetch_add(1);
          seen = view->epoch();
          // Full-view consistency on every refresh: assignment array and
          // summary must come from the same committed snapshot.
          if (!view_is_consistent(*view)) inconsistent_views.fetch_add(1);
          ++consistency_checks;
        }
        // Wait-free lookups between refreshes: plain loads off the
        // immutable snapshot.
        for (int i = 0; i < 64; ++i) {
          probe = (probe + 13) % view->num_vertices();
          const graph::PartId q = view->part_of(probe);
          if (q < 0 || q >= view->num_parts()) torn_lookups.fetch_add(1);
        }
        lookups.fetch_add(64, std::memory_order_relaxed);
      }
      (void)consistency_checks;
    });
  }

  graph::VertexId vertices = g.num_vertices();
  for (int step = 0; step < kDeltas; ++step) {
    session.submit(append_delta(vertices, 2, step));
    vertices += 2;
  }
  session.flush();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(epoch_regressions.load(), 0);
  EXPECT_EQ(inconsistent_views.load(), 0);
  EXPECT_EQ(torn_lookups.load(), 0);
  EXPECT_GT(lookups.load(), 0);

  const AsyncStats stats = session.stats();
  EXPECT_EQ(stats.deltas_absorbed, kDeltas);
  EXPECT_GE(stats.rebalances_committed, 1);
  EXPECT_EQ(session.view()->num_vertices(), vertices);
  EXPECT_TRUE(view_is_consistent(*session.view()));
  session.close();
}

TEST(AsyncSession, FlushIsABarrierThatForcesARebalance) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 13);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  SessionConfig config = async_config(4);
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = 100000;  // never trips on its own
  AsyncSession session(config, g, initial);

  graph::VertexId vertices = g.num_vertices();
  for (int step = 0; step < 5; ++step) {
    session.submit(append_delta(vertices, 2, step));
    vertices += 2;
  }
  session.flush();

  const AsyncStats stats = session.stats();
  EXPECT_EQ(stats.deltas_absorbed, 5);
  // The policy never triggered — the rebalance is flush's forced round.
  EXPECT_GE(stats.rebalances_committed, 1);
  EXPECT_EQ(session.view()->num_vertices(), vertices);
  EXPECT_TRUE(view_is_consistent(*session.view()));

  // A flush with nothing pending is a cheap no-op round.
  const std::uint64_t epoch_before = session.epoch();
  session.flush();
  EXPECT_EQ(session.epoch(), epoch_before);
  EXPECT_EQ(session.stats().rebalances_committed,
            stats.rebalances_committed);
  session.close();
}

TEST(AsyncSession, RemovalsNeverCorruptTheView) {
  // Removal deltas remap vertex ids; a rebalance snapshotted before one
  // must be discarded, never adopted.  The race is timing-dependent, so
  // this asserts the invariant (every view stays consistent, the stats
  // ledger balances) rather than a specific discard count.
  const Graph g = graph::random_geometric_graph(300, 0.1, 17);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  AsyncSession session(async_config(4), g, initial);  // every_delta
  graph::VertexId vertices = g.num_vertices();
  for (int step = 0; step < 12; ++step) {
    session.submit(append_delta(vertices, 3, step));
    vertices += 3;
    GraphDelta removal;
    removal.removed_vertices = {
        static_cast<graph::VertexId>((step * 53 + 29) % vertices)};
    session.submit(removal);
    vertices -= 1;
  }
  session.flush();

  const std::shared_ptr<const PartitionView> view = session.view();
  EXPECT_EQ(view->num_vertices(), vertices);
  EXPECT_TRUE(view_is_consistent(*view));
  const AsyncStats stats = session.stats();
  EXPECT_EQ(stats.deltas_absorbed, 24);
  EXPECT_EQ(stats.rebalances_started, stats.rebalances_committed +
                                          stats.commits_discarded +
                                          stats.rebalance_failures);
  EXPECT_EQ(stats.rebalance_failures, 0);
  session.close();
}

TEST(AsyncSession, InvalidDeltaSurfacesOnFlushAndSubmit) {
  const Graph g = graph::random_geometric_graph(200, 0.12, 19);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);
  AsyncSession session(async_config(4), g, initial);

  GraphDelta bad;
  bad.removed_vertices = {100000};  // out of range: rejected pre-mutation
  session.submit(std::move(bad));
  EXPECT_THROW(session.flush(), CheckError);
  EXPECT_EQ(session.stats().deltas_rejected, 1);
  // The error is sticky: subsequent submits rethrow it too.
  EXPECT_THROW(session.submit(append_delta(g.num_vertices(), 1, 0)),
               CheckError);
  // The live session was never touched by the rejected delta.
  EXPECT_EQ(session.view()->num_vertices(), g.num_vertices());
  EXPECT_TRUE(view_is_consistent(*session.view()));
  session.close();
}

TEST(AsyncSession, CloseDrainsAndIsIdempotent) {
  const Graph g = graph::random_geometric_graph(200, 0.12, 23);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);

  auto session = std::make_unique<AsyncSession>(async_config(4), g, initial);
  graph::VertexId vertices = g.num_vertices();
  for (int step = 0; step < 6; ++step) {
    session->submit(append_delta(vertices, 2, step));
    vertices += 2;
  }
  session->close();  // drains everything submitted before it
  EXPECT_EQ(session->stats().deltas_absorbed, 6);
  EXPECT_EQ(session->view()->num_vertices(), vertices);
  session->close();  // idempotent

  EXPECT_THROW(session->submit(append_delta(vertices, 1, 0)), DeltaError);
  EXPECT_THROW(session->flush(), DeltaError);
  // Views survive the session: a reader holding one is unaffected.
  const std::shared_ptr<const PartitionView> view = session->view();
  session.reset();  // destructor after explicit close is a no-op
  EXPECT_EQ(view->num_vertices(), vertices);
  EXPECT_TRUE(view_is_consistent(*view));
}

TEST(AsyncSession, ScratchConstructorPartitionsThenServes) {
  const Graph g = graph::random_geometric_graph(300, 0.1, 29);
  AsyncSession session(async_config(4), g);
  EXPECT_EQ(session.view()->num_vertices(), g.num_vertices());
  EXPECT_TRUE(view_is_consistent(*session.view()));
  session.submit(append_delta(g.num_vertices(), 2, 0));
  session.flush();
  EXPECT_EQ(session.view()->num_vertices(), g.num_vertices() + 2);
  session.close();
}

TEST(AsyncSession, InvalidConfigRejectedBeforeAnyThreadStarts) {
  const Graph g = graph::random_geometric_graph(100, 0.15, 31);
  SessionConfig bad = async_config(4);
  bad.async_queue_capacity = 0;
  EXPECT_THROW((AsyncSession{bad, g}), ConfigError);
  EXPECT_THROW((AsyncSession{async_config(0), g}), ConfigError);
  SessionConfig unknown = async_config(4);
  unknown.backend = "no-such-backend";
  EXPECT_THROW((AsyncSession{unknown, g}), UnknownBackendError);
}

TEST(AsyncSession, BackpressureBlocksInsteadOfDropping) {
  // A capacity-1 queue forces the producer to block on every push while
  // the ingest thread catches up — nothing may be lost.
  const Graph g = graph::random_geometric_graph(200, 0.12, 37);
  const Partitioning initial = spectral::recursive_graph_bisection(g, 4);
  SessionConfig config = async_config(4);
  config.async_queue_capacity = 1;
  AsyncSession session(config, g, initial);

  graph::VertexId vertices = g.num_vertices();
  for (int step = 0; step < 16; ++step) {
    session.submit(append_delta(vertices, 1, step));
    vertices += 1;
  }
  session.flush();
  EXPECT_EQ(session.stats().deltas_absorbed, 16);
  EXPECT_EQ(session.view()->num_vertices(), vertices);
  EXPECT_LE(session.stats().queue_high_watermark, 1u);
  session.close();
}

}  // namespace
}  // namespace pigp
