// SessionConfig::resolve() — the single derivation path from the
// declarative config to every nested core option struct.  Compile-time
// field-count asserts live in src/api/config.cpp; these tests pin the
// runtime behaviour: every num_threads and solver field receives the
// configured value (the bug class the old IgpOptions::set_threads /
// set_solver helpers were prone to), knobs land where they should, and
// invalid values are rejected naming the offending field.

#include "api/config.hpp"

#include <gtest/gtest.h>

#include <string>

#include "api/errors.hpp"
#include "support/check.hpp"

namespace pigp {
namespace {

SessionConfig valid_config() {
  SessionConfig config;
  config.num_parts = 8;
  return config;
}

TEST(SessionConfigResolve, PropagatesThreadCountIntoEveryNestedStruct) {
  SessionConfig config = valid_config();
  config.num_threads = 7;
  const ResolvedConfig resolved = config.resolve();

  // Every num_threads field in the option tree.  When a new nested struct
  // appears, the static_asserts in config.cpp force resolve() to be
  // updated, and its thread field belongs in this list.
  EXPECT_EQ(resolved.assign.num_threads, 7);
  EXPECT_EQ(resolved.igp.num_threads, 7);
  EXPECT_EQ(resolved.igp.balance.num_threads, 7);
  EXPECT_EQ(resolved.igp.balance.simplex.num_threads, 7);
  EXPECT_EQ(resolved.igp.refinement.num_threads, 7);
  EXPECT_EQ(resolved.igp.refinement.simplex.num_threads, 7);
  EXPECT_EQ(resolved.multilevel.igp.num_threads, 7);
  EXPECT_EQ(resolved.multilevel.igp.balance.num_threads, 7);
  EXPECT_EQ(resolved.multilevel.igp.balance.simplex.num_threads, 7);
  EXPECT_EQ(resolved.multilevel.igp.refinement.num_threads, 7);
  EXPECT_EQ(resolved.multilevel.igp.refinement.simplex.num_threads, 7);
}

TEST(SessionConfigResolve, PropagatesSolverIntoEveryLpConsumer) {
  SessionConfig config = valid_config();
  config.solver = core::LpSolverKind::bounded;
  const ResolvedConfig resolved = config.resolve();

  EXPECT_EQ(resolved.igp.balance.solver, core::LpSolverKind::bounded);
  EXPECT_EQ(resolved.igp.refinement.solver, core::LpSolverKind::bounded);
  EXPECT_EQ(resolved.multilevel.igp.balance.solver,
            core::LpSolverKind::bounded);
  EXPECT_EQ(resolved.multilevel.igp.refinement.solver,
            core::LpSolverKind::bounded);
}

TEST(SessionConfigResolve, PropagatesBalanceRefineAndMultilevelKnobs) {
  SessionConfig config = valid_config();
  config.alpha_max = 16.0;
  config.max_balance_stages = 5;
  config.balance_tolerance = 0.25;
  config.max_refine_rounds = 3;
  config.refine_strict_after_round = 1;
  config.multilevel_coarsest_size = 123;
  config.multilevel_max_levels = 4;
  const ResolvedConfig resolved = config.resolve();

  EXPECT_DOUBLE_EQ(resolved.igp.balance.alpha_max, 16.0);
  EXPECT_EQ(resolved.igp.balance.max_stages, 5);
  EXPECT_DOUBLE_EQ(resolved.igp.balance.tolerance, 0.25);
  EXPECT_EQ(resolved.igp.refinement.max_rounds, 3);
  EXPECT_EQ(resolved.igp.refinement.strict_after_round, 1);
  EXPECT_EQ(resolved.multilevel.coarsest_size, 123);
  EXPECT_EQ(resolved.multilevel.max_levels, 4);
  // The multilevel per-level passes inherit the same knobs.
  EXPECT_DOUBLE_EQ(resolved.multilevel.igp.balance.alpha_max, 16.0);
  EXPECT_EQ(resolved.multilevel.igp.refinement.max_rounds, 3);
}

TEST(SessionConfigResolve, KeepsAValidatedCopyOfTheSessionFields) {
  SessionConfig config = valid_config();
  config.backend = "multilevel";
  config.batch_policy = BatchPolicy::vertex_count;
  config.batch_vertex_limit = 42;
  config.spmd_ranks = 6;
  const ResolvedConfig resolved = config.resolve();

  EXPECT_EQ(resolved.session.backend, "multilevel");
  EXPECT_EQ(resolved.session.batch_policy, BatchPolicy::vertex_count);
  EXPECT_EQ(resolved.session.batch_vertex_limit, 42);
  EXPECT_EQ(resolved.session.spmd_ranks, 6);
}

TEST(SessionConfigResolve, RejectsEachInvalidFieldNamingIt) {
  // Rejections are typed ConfigErrors (which still derive from CheckError,
  // so pre-taxonomy catch sites keep working) naming the offending field.
  const auto expect_rejection = [](SessionConfig config,
                                   const std::string& field) {
    try {
      (void)config.resolve();
      FAIL() << "expected ConfigError for " << field;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "error should name " << field << ": " << e.what();
    }
  };

  expect_rejection(SessionConfig{}, "num_parts");

  SessionConfig bad = valid_config();
  bad.num_threads = 0;
  expect_rejection(bad, "num_threads");

  bad = valid_config();
  bad.alpha_max = 0.5;
  expect_rejection(bad, "alpha_max");

  bad = valid_config();
  bad.max_balance_stages = 0;
  expect_rejection(bad, "max_balance_stages");

  bad = valid_config();
  bad.balance_tolerance = 0.0;
  expect_rejection(bad, "balance_tolerance");

  bad = valid_config();
  bad.max_refine_rounds = -1;
  expect_rejection(bad, "max_refine_rounds");

  bad = valid_config();
  bad.spmd_ranks = 0;
  expect_rejection(bad, "spmd_ranks");

  bad = valid_config();
  bad.scratch_method = "random";
  expect_rejection(bad, "scratch_method");

  bad = valid_config();
  bad.batch_imbalance_limit = 0.9;
  expect_rejection(bad, "batch_imbalance_limit");

  bad = valid_config();
  bad.batch_vertex_limit = -5;
  expect_rejection(bad, "batch_vertex_limit");

  bad = valid_config();
  bad.backend = "";
  expect_rejection(bad, "backend");

  bad = valid_config();
  bad.async_queue_capacity = 0;
  expect_rejection(bad, "async_queue_capacity");

  bad = valid_config();
  bad.spmd_transport = "carrier-pigeon";
  expect_rejection(bad, "spmd_transport");

  bad = valid_config();
  bad.spmd_wire_filters = "nonsense";
  expect_rejection(bad, "spmd_wire_filters");

  bad = valid_config();
  bad.spmd_timeout_ms = 0;
  expect_rejection(bad, "spmd_timeout_ms");
}

TEST(SessionConfigResolve, KeepsTheTransportFields) {
  SessionConfig config = valid_config();
  config.spmd_transport = "tcp";
  config.spmd_wire_filters = "delta";
  config.spmd_timeout_ms = 5000;
  const ResolvedConfig resolved = config.resolve();
  EXPECT_EQ(resolved.session.spmd_transport, "tcp");
  EXPECT_EQ(resolved.session.spmd_wire_filters, "delta");
  EXPECT_EQ(resolved.session.spmd_timeout_ms, 5000);
}

TEST(SessionConfigResolve, KeepsTheAsyncQueueCapacity) {
  SessionConfig config = valid_config();
  config.async_queue_capacity = 17;
  EXPECT_EQ(config.resolve().session.async_queue_capacity, 17);
}

}  // namespace
}  // namespace pigp
