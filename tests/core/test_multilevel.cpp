// Multilevel incremental partitioning (the paper's §3 future-work
// extension): coarsening invariants, projection round-trips, and V-cycle
// quality/balance.

#include "core/multilevel.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::Partitioning;
using graph::VertexId;

TEST(Coarsening, ConservesTotalVertexWeight) {
  const Graph g = graph::random_geometric_graph(600, 0.06, 5);
  const Coarsening c = coarsen_heavy_edge(g);
  EXPECT_DOUBLE_EQ(c.coarse.total_vertex_weight(), g.total_vertex_weight());
  c.coarse.validate();
}

TEST(Coarsening, RoughlyHalvesTheGraph) {
  const Graph g = graph::grid_graph(30, 30);
  const Coarsening c = coarsen_heavy_edge(g);
  // Grids match almost perfectly: close to n/2 coarse vertices.
  EXPECT_LE(c.coarse.num_vertices(), g.num_vertices() * 6 / 10);
  EXPECT_GE(c.coarse.num_vertices(), g.num_vertices() * 4 / 10);
}

TEST(Coarsening, MapIsSurjectiveAndInRange) {
  const Graph g = graph::random_connected_graph(300, 1.0, 9);
  const Coarsening c = coarsen_heavy_edge(g);
  std::vector<bool> hit(static_cast<std::size_t>(c.coarse.num_vertices()),
                        false);
  for (const VertexId cv : c.fine_to_coarse) {
    ASSERT_GE(cv, 0);
    ASSERT_LT(cv, c.coarse.num_vertices());
    hit[static_cast<std::size_t>(cv)] = true;
  }
  for (const bool h : hit) EXPECT_TRUE(h);
}

TEST(Coarsening, EdgeWeightsAggregate) {
  // Path 0-1-2-3: matching pairs (0,1) and (2,3); the coarse graph is a
  // single edge carrying the weight of edge 1-2.
  const Graph g = graph::path_graph(4);
  const Coarsening c = coarsen_heavy_edge(g);
  EXPECT_EQ(c.coarse.num_vertices(), 2);
  EXPECT_EQ(c.coarse.num_edges(), 1);
  EXPECT_DOUBLE_EQ(c.coarse.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c.coarse.vertex_weight(0), 2.0);
}

TEST(Coarsening, CutIsPreservedUnderProjection) {
  // The cut of a projected coarse partitioning equals the fine cut of its
  // refinement-free expansion.
  const Graph g = graph::grid_graph(12, 12);
  const Coarsening c = coarsen_heavy_edge(g);
  Partitioning coarse;
  coarse.num_parts = 2;
  coarse.part.resize(static_cast<std::size_t>(c.coarse.num_vertices()));
  for (VertexId v = 0; v < c.coarse.num_vertices(); ++v) {
    coarse.part[static_cast<std::size_t>(v)] = v % 2;
  }
  const Partitioning fine =
      project_to_fine(c, coarse, g.num_vertices());
  EXPECT_DOUBLE_EQ(graph::compute_metrics(g, fine).cut_total,
                   graph::compute_metrics(c.coarse, coarse).cut_total);
}

TEST(ProjectToCoarse, RoundTripsWhenPairsAgree) {
  const Graph g = graph::grid_graph(8, 8);
  const Coarsening c = coarsen_heavy_edge(g);
  Partitioning coarse;
  coarse.num_parts = 4;
  coarse.part.resize(static_cast<std::size_t>(c.coarse.num_vertices()));
  for (VertexId v = 0; v < c.coarse.num_vertices(); ++v) {
    coarse.part[static_cast<std::size_t>(v)] = v % 4;
  }
  const Partitioning fine = project_to_fine(c, coarse, g.num_vertices());
  const Partitioning back = project_to_coarse(c, fine);
  EXPECT_EQ(back.part, coarse.part);
}

TEST(MultilevelIgp, BalancesAndMatchesFlatQuality) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(2500, {200}, 21);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 16);

  MultilevelOptions ml;
  ml.coarsest_size = 500;
  const IgpResult multilevel = multilevel_repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices(), ml);
  EXPECT_TRUE(multilevel.balanced);
  EXPECT_TRUE(graph::is_balanced(seq.graphs[1], multilevel.partitioning,
                                 1.0));

  const IncrementalPartitioner flat;
  const IgpResult flat_result = flat.repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());
  const double ml_cut =
      graph::compute_metrics(seq.graphs[1], multilevel.partitioning)
          .cut_total;
  const double flat_cut =
      graph::compute_metrics(seq.graphs[1], flat_result.partitioning)
          .cut_total;
  // The multilevel variant must stay in the same quality regime.
  EXPECT_LE(ml_cut, 1.3 * flat_cut);
}

TEST(MultilevelIgp, SmallGraphSkipsCoarsening) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(300, {30}, 33);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 4);
  MultilevelOptions ml;
  ml.coarsest_size = 2000;  // graph is already below the threshold
  const IgpResult result = multilevel_repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices(), ml);
  EXPECT_TRUE(result.balanced);
}

TEST(MultilevelIgp, Deterministic) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(1200, {100}, 41);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);
  MultilevelOptions ml;
  ml.coarsest_size = 300;
  const IgpResult a = multilevel_repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices(), ml);
  const IgpResult b = multilevel_repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices(), ml);
  EXPECT_EQ(a.partitioning.part, b.partitioning.part);
}

}  // namespace
}  // namespace pigp::core
