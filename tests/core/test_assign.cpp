// Step 1: initial assignment of new vertices (§2.1).

#include "core/assign.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/workspace.hpp"
#include "graph/builder.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/partition_state.hpp"
#include "support/check.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Partitioning;
using graph::VertexId;

TEST(ExtendAssignment, OldVerticesKeepTheirPartitions) {
  const Graph g = graph::path_graph(6);
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 0, 1, 1, 1};
  const Partitioning p = extend_assignment(g, old_p, 6);
  EXPECT_EQ(p.part, old_p.part);
}

TEST(ExtendAssignment, NewVertexJoinsNearestOldPartition) {
  // Path 0-1-2-3 partitioned {0,0 | 1,1}; append 4 attached to 3.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 1, 1};
  const Partitioning p = extend_assignment(g, old_p, 4);
  EXPECT_EQ(p.part[4], 1);
}

TEST(ExtendAssignment, ChainOfNewVerticesPropagates) {
  // New vertices 3 - 4 - 5 hang off old vertex 2 (partition 1): all new
  // vertices are closest to partition 1.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 1};
  const Partitioning p = extend_assignment(g, old_p, 3);
  EXPECT_EQ(p.part[3], 1);
  EXPECT_EQ(p.part[4], 1);
  EXPECT_EQ(p.part[5], 1);
}

TEST(ExtendAssignment, EquidistantTieGoesToSmallerPartition) {
  // New vertex 2 adjacent to old 0 (part 1) and old 1 (part 0): both at
  // distance 1; deterministic rule picks the smaller partition id.
  GraphBuilder b(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {1, 0};
  const Partitioning p = extend_assignment(g, old_p, 2);
  EXPECT_EQ(p.part[2], 0);
}

TEST(ExtendAssignment, DisconnectedClusterGoesToLightestPartition) {
  // Old: 0 (part 0), 1 (part 1), 2 (part 1).  New: isolated pair {3,4}.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);  // disconnected from the old graph
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 1, 1};
  const Partitioning p = extend_assignment(g, old_p, 3);
  // Partition 0 has weight 1 vs partition 1's 2: the cluster goes to 0.
  EXPECT_EQ(p.part[3], 0);
  EXPECT_EQ(p.part[4], 0);
}

TEST(ExtendAssignment, MultipleClustersBalanceGreedily) {
  GraphBuilder b(6);
  b.add_edge(0, 1);   // old, parts 0 and 1
  b.add_edge(2, 3);   // new cluster A
  b.add_edge(4, 5);   // new cluster B
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 1};
  const Partitioning p = extend_assignment(g, old_p, 2);
  // Each partition should receive one cluster.
  EXPECT_NE(p.part[2], p.part[4]);
  EXPECT_EQ(p.part[2], p.part[3]);
  EXPECT_EQ(p.part[4], p.part[5]);
}

TEST(ExtendAssignment, ParallelMatchesSerial) {
  const Graph base = graph::random_geometric_graph(2000, 0.04, 3);
  // Treat the first 1500 vertices as old with a striped partitioning.
  graph::GraphBuilder b(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 8;
  for (VertexId v = 0; v < 1500; ++v) {
    old_p.part.push_back(v % 8);
  }
  AssignOptions serial;
  AssignOptions parallel;
  parallel.num_threads = 8;
  const Partitioning a = extend_assignment(g, old_p, 1500, serial);
  const Partitioning c = extend_assignment(g, old_p, 1500, parallel);
  EXPECT_EQ(a.part, c.part);
}

/// The seeded in-place path must place every appended vertex exactly like
/// the batch multi-source sweep, and leave the maintained state equal to a
/// fresh rebuild — across graph shapes, old/new splits, and a reused
/// workspace (the hot configuration: one Workspace across many calls).
TEST(ExtendAssignmentState, MatchesBatchAssignmentOnRandomGraphs) {
  Workspace ws;  // deliberately shared across all cases: reuse is the point
  for (const int seed : {3, 11, 29, 57}) {
    for (const int n_old_permille : {500, 900, 990}) {
      const Graph g = graph::random_geometric_graph(
          600, 0.06, static_cast<std::uint64_t>(seed));
      const auto n = g.num_vertices();
      const auto n_old =
          static_cast<VertexId>(static_cast<std::int64_t>(n) *
                                n_old_permille / 1000);
      Partitioning old_p;
      old_p.num_parts = 8;
      for (VertexId v = 0; v < n_old; ++v) {
        old_p.part.push_back((v * 7 + seed) % 8);
      }

      const Partitioning expected = extend_assignment(g, old_p, n_old);

      // Build the mid-update state shape Session::apply hands the backend
      // (old prefix assigned, appended tail unassigned): rebuild over the
      // full assignment, then retire the tail one vertex at a time.
      graph::PartitionState tail_state(g, expected);
      Partitioning working = expected;
      for (VertexId v = n - 1; v >= n_old; --v) {
        tail_state.move_vertex(g, working, v, graph::kUnassigned);
      }
      working.part.resize(static_cast<std::size_t>(n_old));
      working.num_parts = old_p.num_parts;

      extend_assignment_state(g, working, n_old, tail_state, ws);

      EXPECT_EQ(working.part, expected.part)
          << "seed " << seed << " n_old " << n_old;
      // The state must equal a fresh rebuild over the final assignment.
      const graph::PartitionState fresh(g, expected);
      EXPECT_EQ(tail_state.weights(), fresh.weights());
      EXPECT_DOUBLE_EQ(tail_state.cut_total(), fresh.cut_total());
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_EQ(tail_state.external_degree(v), fresh.external_degree(v))
            << "vertex " << v;
      }
    }
  }
}

TEST(ExtendAssignmentState, OrphanClustersMatchBatchFallback) {
  // Old: a triangle split 2/1; appended: a chain reaching it plus an
  // isolated pair (the orphan cluster the BFS can never reach).
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);  // chain into the appended tail
  b.add_edge(3, 4);
  b.add_edge(5, 6);  // orphan component
  b.add_edge(6, 7);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 1};

  const Partitioning expected = extend_assignment(g, old_p, 3);

  graph::PartitionState state(g, expected);
  Partitioning working = expected;
  for (VertexId v = 7; v >= 3; --v) {
    state.move_vertex(g, working, v, graph::kUnassigned);
  }
  working.part.resize(3);
  Workspace ws;
  extend_assignment_state(g, working, 3, state, ws);
  EXPECT_EQ(working.part, expected.part);
}

TEST(ExtendAssignmentState, NoAppendedTailIsANoOp) {
  const Graph g = graph::path_graph(6);
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 0, 1, 1, 1};
  graph::PartitionState state(g, p);
  const auto weights_before = state.weights();
  Workspace ws;
  extend_assignment_state(g, p, 6, state, ws);
  EXPECT_EQ(p.part, (std::vector<graph::PartId>{0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(state.weights(), weights_before);
}

TEST(ExtendAssignment, RejectsEmptyOldSet) {
  const Graph g = graph::path_graph(3);
  Partitioning old_p;
  old_p.num_parts = 2;
  EXPECT_THROW(extend_assignment(g, old_p, 0), CheckError);
}

TEST(ExtendAssignment, RejectsMismatchedSizes) {
  const Graph g = graph::path_graph(5);
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 1};  // claims 2 old vertices
  EXPECT_THROW(extend_assignment(g, old_p, 3), CheckError);
}

}  // namespace
}  // namespace pigp::core
