// Step 1: initial assignment of new vertices (§2.1).

#include "core/assign.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Partitioning;
using graph::VertexId;

TEST(ExtendAssignment, OldVerticesKeepTheirPartitions) {
  const Graph g = graph::path_graph(6);
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 0, 1, 1, 1};
  const Partitioning p = extend_assignment(g, old_p, 6);
  EXPECT_EQ(p.part, old_p.part);
}

TEST(ExtendAssignment, NewVertexJoinsNearestOldPartition) {
  // Path 0-1-2-3 partitioned {0,0 | 1,1}; append 4 attached to 3.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 1, 1};
  const Partitioning p = extend_assignment(g, old_p, 4);
  EXPECT_EQ(p.part[4], 1);
}

TEST(ExtendAssignment, ChainOfNewVerticesPropagates) {
  // New vertices 3 - 4 - 5 hang off old vertex 2 (partition 1): all new
  // vertices are closest to partition 1.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 1};
  const Partitioning p = extend_assignment(g, old_p, 3);
  EXPECT_EQ(p.part[3], 1);
  EXPECT_EQ(p.part[4], 1);
  EXPECT_EQ(p.part[5], 1);
}

TEST(ExtendAssignment, EquidistantTieGoesToSmallerPartition) {
  // New vertex 2 adjacent to old 0 (part 1) and old 1 (part 0): both at
  // distance 1; deterministic rule picks the smaller partition id.
  GraphBuilder b(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {1, 0};
  const Partitioning p = extend_assignment(g, old_p, 2);
  EXPECT_EQ(p.part[2], 0);
}

TEST(ExtendAssignment, DisconnectedClusterGoesToLightestPartition) {
  // Old: 0 (part 0), 1 (part 1), 2 (part 1).  New: isolated pair {3,4}.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);  // disconnected from the old graph
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 1, 1};
  const Partitioning p = extend_assignment(g, old_p, 3);
  // Partition 0 has weight 1 vs partition 1's 2: the cluster goes to 0.
  EXPECT_EQ(p.part[3], 0);
  EXPECT_EQ(p.part[4], 0);
}

TEST(ExtendAssignment, MultipleClustersBalanceGreedily) {
  GraphBuilder b(6);
  b.add_edge(0, 1);   // old, parts 0 and 1
  b.add_edge(2, 3);   // new cluster A
  b.add_edge(4, 5);   // new cluster B
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 1};
  const Partitioning p = extend_assignment(g, old_p, 2);
  // Each partition should receive one cluster.
  EXPECT_NE(p.part[2], p.part[4]);
  EXPECT_EQ(p.part[2], p.part[3]);
  EXPECT_EQ(p.part[4], p.part[5]);
}

TEST(ExtendAssignment, ParallelMatchesSerial) {
  const Graph base = graph::random_geometric_graph(2000, 0.04, 3);
  // Treat the first 1500 vertices as old with a striped partitioning.
  graph::GraphBuilder b(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const Graph g = b.build();
  Partitioning old_p;
  old_p.num_parts = 8;
  for (VertexId v = 0; v < 1500; ++v) {
    old_p.part.push_back(v % 8);
  }
  AssignOptions serial;
  AssignOptions parallel;
  parallel.num_threads = 8;
  const Partitioning a = extend_assignment(g, old_p, 1500, serial);
  const Partitioning c = extend_assignment(g, old_p, 1500, parallel);
  EXPECT_EQ(a.part, c.part);
}

TEST(ExtendAssignment, RejectsEmptyOldSet) {
  const Graph g = graph::path_graph(3);
  Partitioning old_p;
  old_p.num_parts = 2;
  EXPECT_THROW(extend_assignment(g, old_p, 0), CheckError);
}

TEST(ExtendAssignment, RejectsMismatchedSizes) {
  const Graph g = graph::path_graph(5);
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 1};  // claims 2 old vertices
  EXPECT_THROW(extend_assignment(g, old_p, 3), CheckError);
}

}  // namespace
}  // namespace pigp::core
