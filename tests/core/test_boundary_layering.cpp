// Boundary-seeded layering parity: layer_partitions_from (seeded from the
// maintained PartitionState boundary index) grown to exhaustion must be
// bit-identical — labels, layers, eps — to the batch layer_partitions
// oracle, across mixed insert/delete/extend streams that exercise every
// index-maintenance path (move/retire/place, structural edge add/remove,
// weight merges, id remaps, extensions).  Depth-capped growth must be a
// monotone prefix of the same answer.
//
// Registered under the ctest `smoke` label so CI runs it on every build
// configuration, including ASan+UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/balance.hpp"
#include "core/layering.hpp"
#include "graph/builder.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "spectral/partitioners.hpp"
#include "support/rng.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::GraphDelta;
using graph::PartId;
using graph::Partitioning;
using graph::PartitionState;
using graph::VertexAddition;
using graph::VertexId;

void expect_layering_parity(const Graph& g, const Partitioning& p,
                            const PartitionState& state, const char* where,
                            int step) {
  const LayeringResult batch = layer_partitions(g, p);
  const LayeringResult boundary = layer_partitions_from(g, p, state);
  EXPECT_EQ(boundary.label, batch.label) << where << " step " << step;
  EXPECT_EQ(boundary.layer, batch.layer) << where << " step " << step;
  EXPECT_EQ(boundary.eps, batch.eps) << where << " step " << step;
}

/// Depth-capped growth: after each grow the labeled set is a prefix of the
/// batch answer (labels of labeled vertices match, eps entrywise ≤), and
/// at exhaustion everything is equal.
void expect_capped_growth_converges(const Graph& g, const Partitioning& p,
                                    const PartitionState& state) {
  const LayeringResult batch = layer_partitions(g, p);
  BoundaryLayering layering(g, p);
  layering.reseed(state);
  int guard = 0;
  while (!layering.exhausted()) {
    ASSERT_LT(guard++, 1 << 16);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (layering.layer()[vi] >= 0) {
        EXPECT_EQ(layering.label()[vi], batch.label[vi]) << v;
        EXPECT_EQ(layering.layer()[vi], batch.layer[vi]) << v;
      }
    }
    for (std::size_t i = 0; i < batch.eps.rows(); ++i) {
      for (std::size_t j = 0; j < batch.eps.cols(); ++j) {
        EXPECT_LE(layering.eps()(i, j), batch.eps(i, j));
      }
    }
    layering.grow(1);
  }
  EXPECT_EQ(layering.label(), batch.label);
  EXPECT_EQ(layering.layer(), batch.layer);
  EXPECT_EQ(layering.eps(), batch.eps);
}

/// Replays the session's state bookkeeping for one delta: retire removed
/// vertices, account removed/added old-old edges (structural vs merge),
/// remap ids, and fold in the new-vertex placements.
struct StreamHarness {
  Graph g;
  Partitioning p;
  PartitionState state;
  SplitMix64 rng;

  StreamHarness(Graph graph, Partitioning part, std::uint64_t seed)
      : g(std::move(graph)), p(std::move(part)), state(g, p), rng(seed) {}

  void apply(const GraphDelta& delta) {
    const VertexId n_old = g.num_vertices();
    graph::DeltaResult applied = graph::apply_delta(g, delta);

    for (const VertexId v : delta.removed_vertices) {
      if (p.part[static_cast<std::size_t>(v)] != graph::kUnassigned) {
        state.move_vertex(g, p, v, graph::kUnassigned);
      }
    }
    std::vector<std::pair<VertexId, VertexId>> removed_edges;
    for (const auto& [u, v] : delta.removed_edges) {
      removed_edges.push_back(graph::canonical_edge(u, v));
    }
    std::sort(removed_edges.begin(), removed_edges.end());
    removed_edges.erase(
        std::unique(removed_edges.begin(), removed_edges.end()),
        removed_edges.end());
    for (const auto& [u, v] : removed_edges) {
      if (p.part[static_cast<std::size_t>(u)] == graph::kUnassigned ||
          p.part[static_cast<std::size_t>(v)] == graph::kUnassigned) {
        continue;
      }
      state.remove_edge(p, u, v, g.edge_weight(u, v));
    }
    std::vector<std::pair<VertexId, VertexId>> created;
    for (std::size_t i = 0; i < delta.added_edges.size(); ++i) {
      const auto [u, v] = delta.added_edges[i];
      if (u >= n_old || v >= n_old) continue;
      const double w = delta.added_edge_weights.empty()
                           ? 1.0
                           : delta.added_edge_weights[i];
      const auto canon = graph::canonical_edge(u, v);
      const bool structural =
          (std::binary_search(removed_edges.begin(), removed_edges.end(),
                              canon) ||
           !g.has_edge(u, v)) &&
          std::find(created.begin(), created.end(), canon) == created.end();
      if (structural) {
        created.push_back(canon);
        state.add_edge(p, u, v, w);
      } else {
        state.adjust_edge_weight(p, u, v, w);
      }
    }

    g = std::move(applied.graph);
    if (delta.has_removals()) {
      Partitioning carried;
      carried.num_parts = p.num_parts;
      carried.part.assign(
          static_cast<std::size_t>(applied.first_new_vertex),
          graph::kUnassigned);
      for (std::size_t v = 0; v < applied.old_to_new.size(); ++v) {
        if (applied.old_to_new[v] != graph::kInvalidVertex) {
          carried.part[static_cast<std::size_t>(applied.old_to_new[v])] =
              p.part[v];
        }
      }
      p = std::move(carried);
      state.remap_vertices(applied.old_to_new, g.num_vertices());
    }

    // Place the appended vertices somewhere deterministic-but-random.
    Partitioning placed;
    placed.num_parts = p.num_parts;
    placed.part = p.part;
    placed.part.resize(static_cast<std::size_t>(g.num_vertices()),
                       graph::kUnassigned);
    for (VertexId v = applied.first_new_vertex; v < g.num_vertices(); ++v) {
      placed.part[static_cast<std::size_t>(v)] = static_cast<PartId>(
          rng.next_below(static_cast<std::uint64_t>(p.num_parts)));
    }
    state.extend(g, p, applied.first_new_vertex, placed);
  }
};

GraphDelta random_delta(const Graph& g, SplitMix64& rng, bool removals) {
  const VertexId n = g.num_vertices();
  GraphDelta delta;

  std::set<VertexId> removed;
  if (removals && n > 80) {
    const int count = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < count; ++i) {
      removed.insert(static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    delta.removed_vertices.assign(removed.begin(), removed.end());
  }
  const auto survives = [&](VertexId v) { return removed.count(v) == 0; };
  const auto random_survivor = [&] {
    for (;;) {
      const auto v = static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (survives(v)) return v;
    }
  };

  if (removals) {
    for (int i = 0; i < 2; ++i) {
      const VertexId v = random_survivor();
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) continue;
      const VertexId u = nbrs[rng.next_below(nbrs.size())];
      delta.removed_edges.emplace_back(v, u);
    }
  }

  const int additions = 2 + static_cast<int>(rng.next_below(5));
  for (int i = 0; i < additions; ++i) {
    VertexAddition add;
    add.edges.emplace_back(random_survivor(), 1.0);
    if (i > 0) add.edges.emplace_back(n + i - 1, 1.0);
    delta.added_vertices.push_back(std::move(add));
  }
  for (int i = 0; i < 2; ++i) {
    const VertexId a = random_survivor();
    const VertexId b = random_survivor();
    if (a == b) continue;
    delta.added_edges.emplace_back(a, b);
    delta.added_edge_weights.push_back(
        1.0 + static_cast<double>(rng.next_below(3)));
  }
  return delta;
}

TEST(BoundaryLayeringParity, MixedStreamStaysBitIdenticalToBatch) {
  const Graph base = graph::random_geometric_graph(400, 0.08, 71);
  const Partitioning initial =
      spectral::recursive_graph_bisection(base, 6);
  StreamHarness harness(base, initial, 9001);
  expect_layering_parity(harness.g, harness.p, harness.state, "initial", -1);

  SplitMix64 delta_rng(9002);
  for (int step = 0; step < 14; ++step) {
    harness.apply(random_delta(harness.g, delta_rng, step % 2 == 1));
    expect_layering_parity(harness.g, harness.p, harness.state, "stream",
                           step);
  }
}

TEST(BoundaryLayeringParity, CappedGrowthIsAPrefixAndConverges) {
  const Graph base = graph::random_geometric_graph(350, 0.09, 73);
  const Partitioning initial =
      spectral::recursive_graph_bisection(base, 5);
  StreamHarness harness(base, initial, 9003);
  SplitMix64 delta_rng(9004);
  for (int step = 0; step < 4; ++step) {
    harness.apply(random_delta(harness.g, delta_rng, step == 2));
  }
  expect_capped_growth_converges(harness.g, harness.p, harness.state);
}

TEST(BoundaryLayeringParity, ReseedReusesArraysAcrossStages) {
  // One BoundaryLayering object reseeded repeatedly (the per-stage path in
  // balance_load) must keep producing the batch answer as the partitioning
  // changes under it.
  const Graph g = graph::random_geometric_graph(300, 0.1, 79);
  Partitioning p = spectral::recursive_graph_bisection(g, 4);
  PartitionState state(g, p);
  BoundaryLayering layering(g, p);
  SplitMix64 rng(9005);

  for (int stage = 0; stage < 5; ++stage) {
    layering.reseed(state);
    layering.grow(-1);
    const LayeringResult batch = layer_partitions(g, p);
    EXPECT_EQ(layering.label(), batch.label) << stage;
    EXPECT_EQ(layering.layer(), batch.layer) << stage;
    EXPECT_EQ(layering.eps(), batch.eps) << stage;
    // Mutate between stages like balance transfers do.
    for (int k = 0; k < 25; ++k) {
      const auto v = static_cast<VertexId>(rng.next_below(
          static_cast<std::uint64_t>(g.num_vertices())));
      state.move_vertex(g, p, v, static_cast<PartId>(rng.next_below(4)));
    }
  }
}

TEST(BoundaryLayeringParity, PersistentBindReusesAcrossGrowthAndRemap) {
  // The workspace configuration: ONE BoundaryLayering living across a
  // whole stream, rebound per repartition.  Appended vertices exercise the
  // amortized-growth path; removal deltas remap ids and must go through
  // invalidate() + the full-reset bind.  Every step must still equal the
  // batch layering bit for bit.
  const Graph base = graph::random_geometric_graph(350, 0.09, 91);
  const Partitioning initial =
      spectral::recursive_graph_bisection(base, 6);
  StreamHarness harness(base, initial, 9101);
  BoundaryLayering persistent;  // lives across all steps, like a Workspace
  SplitMix64 delta_rng(9102);
  for (int step = 0; step < 10; ++step) {
    const bool removals = step % 3 == 2;
    harness.apply(random_delta(harness.g, delta_rng, removals));
    if (removals) persistent.invalidate();
    persistent.bind(harness.g, harness.p);
    persistent.reseed(harness.state);
    persistent.grow(-1);
    const LayeringResult batch = layer_partitions(harness.g, harness.p);
    EXPECT_EQ(persistent.label(), batch.label) << step;
    EXPECT_EQ(persistent.layer(), batch.layer) << step;
    EXPECT_EQ(persistent.eps(), batch.eps) << step;
  }
}

TEST(BoundaryLayeringParity, BindRevivesAfterTakeResult) {
  // take_result() moves the arrays out; bind() must detect that (even
  // when graph size and part count are unchanged — the moved-from eps
  // keeps its shape) and full-reset, after which the object produces the
  // batch answer again.
  const Graph g = graph::random_geometric_graph(250, 0.11, 97);
  const Partitioning p = spectral::recursive_graph_bisection(g, 4);
  const PartitionState state(g, p);
  BoundaryLayering layering(g, p);
  layering.reseed(state);
  layering.grow(-1);
  const LayeringResult taken = layering.take_result();

  layering.bind(g, p);  // same n, same parts — must still full-reset
  layering.reseed(state);
  layering.grow(-1);
  EXPECT_EQ(layering.label(), taken.label);
  EXPECT_EQ(layering.layer(), taken.layer);
  EXPECT_EQ(layering.eps(), taken.eps);
}

TEST(BoundaryLayeringParity, ThreadedMatchesSerial) {
  const Graph g = graph::random_geometric_graph(500, 0.07, 83);
  const Partitioning p = spectral::recursive_graph_bisection(g, 8);
  const PartitionState state(g, p);
  const LayeringResult serial = layer_partitions_from(g, p, state, 1);
  const LayeringResult threaded = layer_partitions_from(g, p, state, 8);
  EXPECT_EQ(serial.label, threaded.label);
  EXPECT_EQ(serial.layer, threaded.layer);
  EXPECT_EQ(serial.eps, threaded.eps);
}

TEST(BoundaryLayeringParity, StateDrivenBalanceMatchesBatchBalance) {
  // With unlimited depth the state-driven balance driver must reproduce
  // the batch driver bit for bit; with the default cap it must still land
  // balanced with the same α (capped stages accept α = 1 early and only
  // settle for α > 1 on batch-equivalent capacities).
  const Graph g = graph::random_geometric_graph(400, 0.08, 89);
  Partitioning skewed = spectral::recursive_graph_bisection(g, 4);
  {
    int moved = 0;
    for (VertexId v = 0; v < g.num_vertices() && moved < 60; ++v) {
      if (skewed.part[static_cast<std::size_t>(v)] == 1) {
        skewed.part[static_cast<std::size_t>(v)] = 0;
        ++moved;
      }
    }
  }

  BalanceOptions unlimited;
  unlimited.max_layers = 0;
  Partitioning batch_p = skewed;
  const BalanceResult batch = balance_load(g, batch_p, unlimited);

  Partitioning state_p = skewed;
  PartitionState state(g, state_p);
  const BalanceResult incremental =
      balance_load(g, state_p, state, unlimited);
  EXPECT_EQ(batch_p.part, state_p.part);
  EXPECT_EQ(batch.balanced, incremental.balanced);
  EXPECT_EQ(batch.stages.size(), incremental.stages.size());

  Partitioning capped_p = skewed;
  const BalanceResult capped = balance_load(g, capped_p, {});
  EXPECT_TRUE(capped.balanced);
  ASSERT_FALSE(capped.stages.empty());
  ASSERT_FALSE(batch.stages.empty());
  EXPECT_EQ(capped.stages[0].alpha, batch.stages[0].alpha);
}

}  // namespace
}  // namespace pigp::core
