// Full IGP/IGPR pipeline: the end-to-end behaviour the paper's evaluation
// relies on — balance after incremental change, cut quality comparable to
// spectral-from-scratch, determinism, chained refinement sequences.

#include "core/igp.hpp"

#include <gtest/gtest.h>

#include "api/config.hpp"
#include "graph/partition.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"

namespace pigp::core {
namespace {

using graph::compute_metrics;
using graph::Graph;
using graph::Partitioning;

TEST(Igp, RepartitionsAfterLocalizedRefinement) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(600, {60}, 3);
  const Graph& before = seq.graphs[0];
  const Graph& after = seq.graphs[1];

  const Partitioning initial =
      spectral::recursive_spectral_bisection(before, 8);
  ASSERT_TRUE(graph::is_balanced(before, initial, 1.0));

  IncrementalPartitioner igp;
  const IgpResult result =
      igp.repartition(after, initial, before.num_vertices());

  EXPECT_TRUE(result.balanced);
  EXPECT_TRUE(graph::is_balanced(after, result.partitioning, 1.0));
  EXPECT_GE(result.stages, 1);
}

TEST(Igp, QualityComparableToSpectralFromScratch) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(800, {80}, 17);
  const Graph& before = seq.graphs[0];
  const Graph& after = seq.graphs[1];

  const Partitioning initial =
      spectral::recursive_spectral_bisection(before, 8);
  IncrementalPartitioner igpr;  // refinement on
  const IgpResult incremental =
      igpr.repartition(after, initial, before.num_vertices());

  const Partitioning scratch =
      spectral::recursive_spectral_bisection(after, 8);

  const double cut_incremental =
      compute_metrics(after, incremental.partitioning).cut_total;
  const double cut_scratch = compute_metrics(after, scratch).cut_total;
  // Paper: "quality ... close to that achieved by applying recursive
  // spectral bisection from scratch" — allow a generous 35% band.
  EXPECT_LE(cut_incremental, 1.35 * cut_scratch);
}

TEST(Igp, RefinementImprovesOverPlainIgp) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(700, {90}, 29);
  const Graph& before = seq.graphs[0];
  const Graph& after = seq.graphs[1];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(before, 8);

  IgpOptions plain;
  plain.refine = false;
  IgpOptions refined;
  refined.refine = true;

  const IgpResult igp = IncrementalPartitioner(plain).repartition(
      after, initial, before.num_vertices());
  const IgpResult igpr = IncrementalPartitioner(refined).repartition(
      after, initial, before.num_vertices());

  const double cut_igp = compute_metrics(after, igp.partitioning).cut_total;
  const double cut_igpr =
      compute_metrics(after, igpr.partitioning).cut_total;
  EXPECT_LE(cut_igpr, cut_igp);  // IGPR never loses to IGP
  // Both remain balanced.
  EXPECT_TRUE(graph::is_balanced(after, igp.partitioning, 1.0));
  EXPECT_TRUE(graph::is_balanced(after, igpr.partitioning, 1.0));
}

TEST(Igp, ChainedIncrementsStayBalancedAndClose) {
  // Multiple refinement steps, each repartitioned from the previous IGP
  // output — the exact protocol of Figure 11.
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(600, {30, 30, 40}, 41);
  Partitioning current =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);

  IncrementalPartitioner igp;
  for (std::size_t step = 0; step + 1 < seq.graphs.size(); ++step) {
    const IgpResult result = igp.repartition(
        seq.graphs[step + 1], current, seq.graphs[step].num_vertices());
    EXPECT_TRUE(result.balanced) << "step " << step;
    current = result.partitioning;

    const Partitioning scratch =
        spectral::recursive_spectral_bisection(seq.graphs[step + 1], 8);
    const double ratio =
        compute_metrics(seq.graphs[step + 1], current).cut_total /
        compute_metrics(seq.graphs[step + 1], scratch).cut_total;
    EXPECT_LE(ratio, 1.5) << "step " << step;
  }
}

TEST(Igp, DeterministicAcrossRuns) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(500, {50}, 53);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);
  IncrementalPartitioner igp;
  const IgpResult a =
      igp.repartition(seq.graphs[1], initial, seq.graphs[0].num_vertices());
  const IgpResult b =
      igp.repartition(seq.graphs[1], initial, seq.graphs[0].num_vertices());
  EXPECT_EQ(a.partitioning.part, b.partitioning.part);
}

TEST(Igp, ThreadedMatchesSerial) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(900, {100}, 59);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 16);

  IgpOptions serial;
  SessionConfig threaded_config;
  threaded_config.num_parts = 16;
  threaded_config.num_threads = 8;
  const IgpOptions threaded = threaded_config.resolve().igp;
  const IgpResult a = IncrementalPartitioner(serial).repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());
  const IgpResult b = IncrementalPartitioner(threaded).repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());
  EXPECT_EQ(a.partitioning.part, b.partitioning.part);
}

TEST(Igp, DenseAndBoundedSolversAgreeOnBalance) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(500, {70}, 61);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);

  SessionConfig dense_config;
  dense_config.num_parts = 8;
  dense_config.solver = LpSolverKind::dense;
  const IgpOptions dense = dense_config.resolve().igp;
  SessionConfig bounded_config;
  bounded_config.num_parts = 8;
  bounded_config.solver = LpSolverKind::bounded;
  const IgpOptions bounded = bounded_config.resolve().igp;
  const IgpResult a = IncrementalPartitioner(dense).repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());
  const IgpResult b = IncrementalPartitioner(bounded).repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());
  EXPECT_TRUE(a.balanced);
  EXPECT_TRUE(b.balanced);
  EXPECT_TRUE(graph::is_balanced(seq.graphs[1], a.partitioning, 1.0));
  EXPECT_TRUE(graph::is_balanced(seq.graphs[1], b.partitioning, 1.0));
}

TEST(Igp, DeltaPathHandlesVertexDeletions) {
  // Build a small graph, delete a few vertices and add new ones through a
  // delta; the carried partitioning must survive the id remap.
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(300, {}, 67);
  const Graph& base = seq.graphs[0];
  const Partitioning initial =
      spectral::recursive_spectral_bisection(base, 4);

  graph::GraphDelta delta;
  delta.removed_vertices = {5, 77, 130};
  graph::VertexAddition add;
  add.weight = 1.0;
  // Attach to surviving vertices.
  add.edges = {{10, 1.0}, {11, 1.0}};
  delta.added_vertices.push_back(add);

  IncrementalPartitioner igp;
  Graph updated;
  const IgpResult result =
      igp.repartition_delta(base, initial, delta, &updated);
  EXPECT_EQ(updated.num_vertices(), base.num_vertices() - 3 + 1);
  EXPECT_TRUE(graph::is_balanced(updated, result.partitioning, 1.0));
}

TEST(Igp, TimingsArePopulated) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(400, {40}, 71);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 4);
  IncrementalPartitioner igp;
  const IgpResult result =
      igp.repartition(seq.graphs[1], initial, seq.graphs[0].num_vertices());
  EXPECT_GT(result.timings.total, 0.0);
  EXPECT_GE(result.timings.total,
            result.timings.assign + result.timings.balance);
}

TEST(Igp, SevereLocalizedInsertionUsesMultipleStages) {
  // Mirror Figure 14(e): a huge localized insertion relative to partition
  // size forces alpha staging (IGP(k), k > 1).
  const mesh::MeshFamily family = mesh::make_small_mesh_family(
      800, {260}, 73);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(family.base, 16);

  IncrementalPartitioner igp;
  Graph updated;
  const IgpResult result =
      igp.repartition_delta(family.base, initial, family.deltas[0], &updated);
  EXPECT_TRUE(result.balanced);
  EXPECT_GE(result.stages, 2) << "expected multi-stage balancing";
}

}  // namespace
}  // namespace pigp::core
