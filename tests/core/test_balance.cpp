// Step 3: LP load balancing with multi-stage alpha relaxation (§2.3).

#include "core/balance.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::Partitioning;
using graph::VertexId;

TEST(StagedRequirements, AlphaOneIsIdentityForIntegers) {
  const std::vector<double> excess = {8.0, 1.0, -1.0, -8.0};
  const auto rhs = staged_requirements(excess, 1.0);
  EXPECT_EQ(rhs, excess);
}

TEST(StagedRequirements, SumsToZeroAfterRounding) {
  const std::vector<double> excess = {7.0, 2.0, -3.0, -6.0};
  for (const double alpha : {2.0, 3.0, 4.0, 8.0}) {
    const auto rhs = staged_requirements(excess, alpha);
    EXPECT_DOUBLE_EQ(std::accumulate(rhs.begin(), rhs.end(), 0.0), 0.0)
        << "alpha " << alpha;
    for (std::size_t q = 0; q < rhs.size(); ++q) {
      EXPECT_NEAR(rhs[q], excess[q] / alpha, 1.0) << "alpha " << alpha;
    }
  }
}

TEST(StagedRequirements, AlphaShrinksRequirements) {
  const std::vector<double> excess = {16.0, 0.0, -16.0};
  const auto rhs = staged_requirements(excess, 4.0);
  EXPECT_DOUBLE_EQ(rhs[0], 4.0);
  EXPECT_DOUBLE_EQ(rhs[2], -4.0);
}

TEST(BuildBalanceLp, OnlyPositiveEpsPairsGetVariables) {
  pigp::DenseMatrix<std::int64_t> eps(3, 3, 0);
  eps(0, 1) = 5;
  eps(1, 0) = 2;
  eps(1, 2) = 3;
  pigp::DenseMatrix<int> vars;
  const lp::LinearProgram program =
      build_balance_lp(eps, {2.0, -1.0, -1.0}, &vars);
  EXPECT_EQ(program.num_variables(), 3);
  EXPECT_EQ(program.num_rows(), 3);
  EXPECT_GE(vars(0, 1), 0);
  EXPECT_GE(vars(1, 0), 0);
  EXPECT_GE(vars(1, 2), 0);
  EXPECT_EQ(vars(0, 2), -1);
  EXPECT_EQ(vars(2, 0), -1);
}

/// Build a path with a deliberately skewed partitioning.
Partitioning skewed_path_partitioning(int n, int split, int parts) {
  Partitioning p;
  p.num_parts = parts;
  p.part.assign(static_cast<std::size_t>(n), 0);
  for (int v = split; v < n; ++v) {
    p.part[static_cast<std::size_t>(v)] =
        static_cast<graph::PartId>(1 + (v - split) % (parts - 1));
  }
  return p;
}

TEST(BalanceLoad, RebalancesSkewedPath) {
  const Graph g = graph::path_graph(40);
  // Partition 0 holds 28 of 40 vertices; 2 partitions total.
  Partitioning p = skewed_path_partitioning(40, 28, 2);

  BalanceOptions opt;
  const BalanceResult r = balance_load(g, p, opt);
  EXPECT_TRUE(r.balanced);
  EXPECT_TRUE(graph::is_balanced(g, p, 0.5));
  // A path rebalance should touch only the 8 vertices that must cross.
  ASSERT_FALSE(r.stages.empty());
  EXPECT_DOUBLE_EQ(r.stages[0].vertices_moved, 8.0);
}

TEST(BalanceLoad, AlreadyBalancedIsANoop) {
  const Graph g = graph::path_graph(20);
  Partitioning p;
  p.num_parts = 2;
  p.part.assign(20, 0);
  for (int v = 10; v < 20; ++v) p.part[static_cast<std::size_t>(v)] = 1;
  const Partitioning before = p;

  const BalanceResult r = balance_load(g, p);
  EXPECT_TRUE(r.balanced);
  EXPECT_TRUE(r.stages.empty());
  EXPECT_EQ(p.part, before.part);
}

TEST(BalanceLoad, GridFourPartitions) {
  const Graph g = graph::grid_graph(8, 8);
  // Column-striped partitioning with uneven stripes: 4 | 1 | 1 | 2 columns.
  Partitioning p;
  p.num_parts = 4;
  p.part.resize(64);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const int q = c < 4 ? 0 : (c < 5 ? 1 : (c < 6 ? 2 : 3));
      p.part[static_cast<std::size_t>(r * 8 + c)] =
          static_cast<graph::PartId>(q);
    }
  }
  const BalanceResult r = balance_load(g, p);
  EXPECT_TRUE(r.balanced);
  EXPECT_TRUE(graph::is_balanced(g, p, 0.5));
}

TEST(BalanceLoad, SevereImbalanceNeedsMultipleStages) {
  // A long path where one partition holds almost everything; the boundary
  // can only shed a few vertices per stage, forcing alpha staging.
  const int n = 120;
  const Graph g = graph::path_graph(n);
  Partitioning p;
  p.num_parts = 6;
  p.part.assign(static_cast<std::size_t>(n), 0);
  // Partitions 1..5 hold two vertices each at the far end.
  for (int q = 1; q <= 5; ++q) {
    p.part[static_cast<std::size_t>(n - 2 * q)] =
        static_cast<graph::PartId>(q);
    p.part[static_cast<std::size_t>(n - 2 * q + 1)] =
        static_cast<graph::PartId>(q);
  }
  BalanceOptions opt;
  // Every inter-partition frontier of a path is one vertex wide, so each
  // stage can only push a few vertices along the chain — the worst case
  // for staging (26 stages in practice).
  opt.max_stages = 40;
  const BalanceResult r = balance_load(g, p, opt);
  EXPECT_TRUE(r.balanced);
  EXPECT_GT(static_cast<int>(r.stages.size()), 1);  // one shot impossible
  EXPECT_TRUE(graph::is_balanced(g, p, 0.5));
}

TEST(BalanceLoad, StageCountGrowsWithImbalance) {
  // Mirrors Figure 14's IGP(1)/IGP(2)/IGP(3): larger localized insertions
  // need more stages.
  const Graph g = graph::grid_graph(12, 12);
  std::vector<int> stages_used;
  for (const int stripe : {6, 3, 1}) {
    // Partition 0 gets `stripe` columns of 12, remaining 3 partitions split
    // the rest; small stripe for part 0 => heavier imbalance elsewhere.
    Partitioning p;
    p.num_parts = 4;
    p.part.resize(144);
    for (int r = 0; r < 12; ++r) {
      for (int c = 0; c < 12; ++c) {
        graph::PartId q = 0;
        if (c >= stripe) q = static_cast<graph::PartId>(1 + (c - stripe) % 3);
        p.part[static_cast<std::size_t>(r * 12 + c)] = q;
      }
    }
    BalanceOptions opt;
    opt.max_stages = 30;
    const BalanceResult r = balance_load(g, p, opt);
    EXPECT_TRUE(r.balanced) << "stripe " << stripe;
    stages_used.push_back(static_cast<int>(r.stages.size()));
  }
  EXPECT_LE(stages_used[0], stages_used[2]);
}

TEST(BalanceLoad, BoundedSolverGivesSameBalance) {
  const Graph g = graph::random_geometric_graph(400, 0.08, 61);
  Partitioning a;
  a.num_parts = 4;
  a.part.resize(400);
  for (VertexId v = 0; v < 400; ++v) {
    a.part[static_cast<std::size_t>(v)] = v < 250 ? 0 : (v % 3 + 1);
  }
  Partitioning b = a;

  BalanceOptions dense;
  dense.solver = LpSolverKind::dense;
  BalanceOptions bounded;
  bounded.solver = LpSolverKind::bounded;
  const BalanceResult ra = balance_load(g, a, dense);
  const BalanceResult rb = balance_load(g, b, bounded);
  EXPECT_EQ(ra.balanced, rb.balanced);
  EXPECT_TRUE(graph::is_balanced(g, a, 0.5));
  EXPECT_TRUE(graph::is_balanced(g, b, 0.5));
}

TEST(BalanceLoad, VerticesMovePreferentiallyFromBoundary) {
  // Path {0..27 | 28..39}: the 8 vertices that change side must be exactly
  // 20..27 (the ones nearest the boundary).
  const Graph g = graph::path_graph(40);
  Partitioning p;
  p.num_parts = 2;
  p.part.assign(40, 0);
  for (int v = 28; v < 40; ++v) p.part[static_cast<std::size_t>(v)] = 1;
  (void)balance_load(g, p);
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(p.part[static_cast<std::size_t>(v)], 0) << v;
  }
  for (int v = 20; v < 40; ++v) {
    EXPECT_EQ(p.part[static_cast<std::size_t>(v)], 1) << v;
  }
}

}  // namespace
}  // namespace pigp::core
