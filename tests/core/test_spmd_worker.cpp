// The fully distributed sharded worker (core/spmd_worker): bit-parity with
// the replicated in-process SPMD engine, shard loader identity, residency
// invariants, and the memory claim (adjacency sharded across ranks).

#include "core/spmd_worker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "core/spmd_igp.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "mesh/paper_meshes.hpp"
#include "support/check.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::GraphShard;
using graph::Partitioning;

IgpOptions rebalance_options() {
  IgpOptions options;
  options.refine = false;  // the sharded worker is balance-only
  return options;
}

/// Run the sharded worker on every rank of \p executor against fresh
/// shards of (g, initial); returns rank 0's final partitioning and stats
/// (asserting every rank's replica agrees).
std::pair<Partitioning, SpmdWorkerStats> run_worker(
    SpmdExecutor& executor, const Graph& g, const Partitioning& initial,
    const IgpOptions& options) {
  const int ranks = executor.num_ranks();
  std::vector<GraphShard> shards;
  shards.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    shards.push_back(graph::make_shard(g, initial, r, ranks));
  }
  std::vector<SpmdWorkerStats> stats(static_cast<std::size_t>(ranks));
  executor.run([&](net::Transport& t) {
    stats[static_cast<std::size_t>(t.rank())] = spmd_worker_rebalance(
        t, shards[static_cast<std::size_t>(t.rank())], options);
  });
  for (int r = 1; r < ranks; ++r) {
    EXPECT_EQ(shards[0].partitioning.part,
              shards[static_cast<std::size_t>(r)].partitioning.part)
        << "replica divergence on rank " << r;
    EXPECT_EQ(stats[0].stages, stats[static_cast<std::size_t>(r)].stages);
    EXPECT_EQ(stats[0].cut, stats[static_cast<std::size_t>(r)].cut);
  }
  return {shards[0].partitioning, stats[0]};
}

TEST(Shard, LoaderMatchesInMemoryCut) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(400, {}, 3);
  const Graph& g = seq.graphs[0];
  const Partitioning p =
      graph::contiguous_partitioning(g.num_vertices(), 6, 0.5);
  std::stringstream metis;
  graph::write_metis(g, metis);
  for (int r = 0; r < 2; ++r) {
    metis.clear();
    metis.seekg(0);
    const GraphShard streamed = graph::load_shard(metis, p, r, 2);
    const GraphShard cut = graph::make_shard(g, p, r, 2);
    // Byte-identical shards: same residency, same CSR, same counters.
    EXPECT_EQ(streamed.resident, cut.resident);
    EXPECT_EQ(streamed.owned_parts, cut.owned_parts);
    EXPECT_EQ(streamed.resident_half_edges, cut.resident_half_edges);
    EXPECT_EQ(streamed.halo_half_edges, cut.halo_half_edges);
    EXPECT_EQ(streamed.total_half_edges, cut.total_half_edges);
    ASSERT_EQ(streamed.graph.num_vertices(), cut.graph.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto a = streamed.graph.neighbors(v);
      const auto b = cut.graph.neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "row mismatch at vertex " << v;
    }
    streamed.graph.validate();  // halo filtering preserved symmetry
  }
}

TEST(Shard, AdjacencyIsActuallySharded) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(800, {}, 9);
  const Graph& g = seq.graphs[0];
  const Partitioning p =
      graph::contiguous_partitioning(g.num_vertices(), 8, 0.0);
  const int ranks = 4;
  for (int r = 0; r < ranks; ++r) {
    const GraphShard shard = graph::make_shard(g, p, r, ranks);
    // Each rank's resident adjacency is a strict fraction of the whole —
    // the O(E/ranks + boundary) claim, with generous slack for the
    // boundary term on a small mesh.
    EXPECT_LT(shard.resident_half_edges + shard.halo_half_edges,
              shard.total_half_edges * 3 / 4)
        << "rank " << r << " holds most of the graph";
    // Residency invariant: every owned-partition member has its full row.
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (shard.owns(p.part[static_cast<std::size_t>(v)])) {
        EXPECT_TRUE(shard.resident[static_cast<std::size_t>(v)] != 0);
      }
    }
  }
}

TEST(Shard, ContiguousPartitioningTilesAndSkews) {
  const Partitioning even = graph::contiguous_partitioning(100, 7, 0.0);
  const Partitioning skewed = graph::contiguous_partitioning(100, 7, 1.0);
  for (const Partitioning& p : {even, skewed}) {
    EXPECT_EQ(p.part.size(), 100u);
    // Contiguous and non-decreasing, every partition non-empty.
    std::vector<int> counts(7, 0);
    for (std::size_t v = 0; v < p.part.size(); ++v) {
      if (v > 0) EXPECT_GE(p.part[v], p.part[v - 1]);
      ++counts[static_cast<std::size_t>(p.part[v])];
    }
    for (int c : counts) EXPECT_GE(c, 1);
  }
  // skew > 0 makes later ranges bigger: real imbalance for the demo.
  std::vector<int> skew_counts(7, 0);
  for (const graph::PartId q : skewed.part) {
    ++skew_counts[static_cast<std::size_t>(q)];
  }
  EXPECT_GT(skew_counts[6], skew_counts[0]);
}

struct WorkerCase {
  int ranks;
  int parts;
};

class WorkerParity : public ::testing::TestWithParam<WorkerCase> {};

TEST_P(WorkerParity, MatchesReplicatedEngineBitForBit) {
  const WorkerCase param = GetParam();
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(
      600, {}, 31 + static_cast<std::uint64_t>(param.ranks));
  const Graph& g = seq.graphs[0];
  const Partitioning initial = graph::contiguous_partitioning(
      g.num_vertices(), param.parts, 0.8);  // skewed: real work to do
  const IgpOptions options = rebalance_options();

  // Oracle: the replicated in-process engine on the full graph.  n_old =
  // |V| makes step 1 a no-op, so both sides run the same pure rebalance.
  MachineExecutor oracle_executor(param.ranks);
  const IgpResult expected = spmd_repartition(
      oracle_executor, g, initial, g.num_vertices(), options);

  MachineExecutor worker_executor(param.ranks);
  const auto [actual, stats] =
      run_worker(worker_executor, g, initial, options);

  EXPECT_EQ(expected.partitioning.part, actual.part);
  EXPECT_EQ(expected.balanced, stats.balanced);
  EXPECT_EQ(expected.stages, stats.stages);

  // The distributed cut must equal the full-graph metric of the result.
  const auto metrics = graph::compute_metrics(g, actual);
  EXPECT_NEAR(stats.cut, metrics.cut_total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, WorkerParity,
                         ::testing::Values(WorkerCase{1, 6}, WorkerCase{2, 6},
                                           WorkerCase{2, 8}, WorkerCase{3, 7},
                                           WorkerCase{4, 8}));

TEST(SpmdWorker, TcpLoopbackMatchesInProcess) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(500, {}, 23);
  const Graph& g = seq.graphs[0];
  const Partitioning initial =
      graph::contiguous_partitioning(g.num_vertices(), 8, 0.8);
  const IgpOptions options = rebalance_options();

  MachineExecutor in_process(3);
  const auto [expected, expected_stats] =
      run_worker(in_process, g, initial, options);

  for (const char* filters : {"", "delta"}) {
    net::TcpOptions tcp;
    tcp.filters = filters;
    TcpLoopbackExecutor executor(3, tcp);
    const auto [actual, stats] = run_worker(executor, g, initial, options);
    EXPECT_EQ(expected.part, actual.part) << "filters=\"" << filters << "\"";
    EXPECT_EQ(expected_stats.stages, stats.stages);
    EXPECT_EQ(expected_stats.cut, stats.cut);
  }
}

TEST(SpmdWorker, MigratedRowsKeepResidencyInvariant) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(600, {}, 41);
  const Graph& g = seq.graphs[0];
  const Partitioning initial =
      graph::contiguous_partitioning(g.num_vertices(), 8, 1.0);
  const int ranks = 4;
  std::vector<GraphShard> shards;
  for (int r = 0; r < ranks; ++r) {
    shards.push_back(graph::make_shard(g, initial, r, ranks));
  }
  MachineExecutor executor(ranks);
  std::vector<SpmdWorkerStats> stats(ranks);
  executor.run([&](net::Transport& t) {
    stats[static_cast<std::size_t>(t.rank())] = spmd_worker_rebalance(
        t, shards[static_cast<std::size_t>(t.rank())], rebalance_options());
  });
  // A heavily skewed start forces cross-rank moves, so rows migrated.
  std::int64_t moved_rows = 0;
  for (const auto& s : stats) moved_rows += s.rows_migrated;
  EXPECT_GT(stats[0].vertices_moved, 0);
  EXPECT_GT(moved_rows, 0);
  for (int r = 0; r < ranks; ++r) {
    const GraphShard& shard = shards[static_cast<std::size_t>(r)];
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const graph::PartId q =
          shard.partitioning.part[static_cast<std::size_t>(v)];
      if (!shard.owns(q)) continue;
      ASSERT_NE(shard.resident[static_cast<std::size_t>(v)], 0)
          << "rank " << r << " owns vertex " << v << " without its row";
      // The (possibly migrated) row must equal the vertex's true full row.
      const auto got = shard.graph.neighbors(v);
      const auto want = g.neighbors(v);
      ASSERT_TRUE(
          std::equal(got.begin(), got.end(), want.begin(), want.end()))
          << "migrated row mismatch for vertex " << v;
    }
  }
}

TEST(SpmdWorker, RefusesRefinement) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(200, {}, 1);
  const Graph& g = seq.graphs[0];
  const Partitioning initial =
      graph::contiguous_partitioning(g.num_vertices(), 4, 0.5);
  GraphShard shard = graph::make_shard(g, initial, 0, 1);
  IgpOptions options;
  options.refine = true;
  MachineExecutor executor(1);
  executor.run([&](net::Transport& t) {
    EXPECT_THROW((void)spmd_worker_rebalance(t, shard, options), CheckError);
  });
}

}  // namespace
}  // namespace pigp::core
