// Step 4: LP refinement (§2.4) — cut never increases, balance is preserved.

#include "core/refine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "support/rng.hpp"

namespace pigp::core {
namespace {

using graph::compute_metrics;
using graph::Graph;
using graph::Partitioning;
using graph::VertexId;

/// A jagged two-block split of a grid: balanced but with a ragged border
/// that refinement should straighten.
Partitioning jagged_grid_partitioning(int side) {
  Partitioning p;
  p.num_parts = 2;
  p.part.resize(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      // Zig-zag boundary around the vertical midline.
      const int boundary = side / 2 + ((r % 2 == 0) ? 1 : -1);
      p.part[static_cast<std::size_t>(r * side + c)] = c < boundary ? 0 : 1;
    }
  }
  return p;
}

TEST(Refine, StraightensJaggedGridBoundary) {
  const int side = 10;
  const Graph g = graph::grid_graph(side, side);
  Partitioning p = jagged_grid_partitioning(side);
  const double before = compute_metrics(g, p).cut_total;

  const RefineStats stats = refine_partitioning(g, p);
  const double after = compute_metrics(g, p).cut_total;
  EXPECT_LE(after, before);
  EXPECT_GT(stats.rounds, 0);
  EXPECT_DOUBLE_EQ(stats.cut_before, before);
  EXPECT_DOUBLE_EQ(stats.cut_after, after);
}

TEST(Refine, PreservesLoadBalanceExactly) {
  const int side = 12;
  const Graph g = graph::grid_graph(side, side);
  Partitioning p = jagged_grid_partitioning(side);
  const auto before = compute_metrics(g, p);
  (void)refine_partitioning(g, p);
  const auto after = compute_metrics(g, p);
  // Zero-net-flow constraints: weights unchanged partition by partition.
  EXPECT_EQ(before.weight, after.weight);
}

TEST(Refine, OptimalPartitionIsAFixedPoint) {
  const Graph g = graph::grid_graph(8, 8);
  Partitioning p;
  p.num_parts = 2;
  p.part.resize(64);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      p.part[static_cast<std::size_t>(r * 8 + c)] = c < 4 ? 0 : 1;
    }
  }
  const Partitioning before = p;
  const RefineStats stats = refine_partitioning(g, p);
  EXPECT_EQ(compute_metrics(g, p).cut_total, 8.0);
  EXPECT_LE(stats.vertices_moved, 16);  // zero-gain swaps allowed, no harm
  EXPECT_EQ(compute_metrics(g, before).cut_total,
            compute_metrics(g, p).cut_total);
}

class RefineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefineProperty, NeverWorsensCutAndKeepsWeights) {
  const Graph g = graph::random_geometric_graph(
      500, 0.07, GetParam() * 7 + 1);
  // Random balanced 4-way partitioning (striped by shuffled index).
  pigp::SplitMix64 rng(GetParam());
  std::vector<VertexId> order(500);
  for (int v = 0; v < 500; ++v) order[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  Partitioning p;
  p.num_parts = 4;
  p.part.resize(500);
  for (std::size_t i = 0; i < order.size(); ++i) {
    p.part[static_cast<std::size_t>(order[i])] =
        static_cast<graph::PartId>(i % 4);
  }

  const auto before = compute_metrics(g, p);
  const RefineStats stats = refine_partitioning(g, p);
  const auto after = compute_metrics(g, p);

  EXPECT_LE(after.cut_total, before.cut_total);
  EXPECT_EQ(before.weight, after.weight);
  EXPECT_LE(stats.cut_after, stats.cut_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Refine, RandomPartitioningImprovesDramatically) {
  // A random assignment of a mesh-like graph has a terrible cut; LP
  // refinement should recover a large fraction.
  const Graph g = graph::random_geometric_graph(400, 0.08, 99);
  Partitioning p;
  p.num_parts = 2;
  p.part.resize(400);
  pigp::SplitMix64 rng(5);
  int count0 = 0;
  for (int v = 0; v < 400; ++v) {
    const bool zero = (count0 < 200) && (rng.next_double() < 0.5 ||
                                         400 - v <= 200 - count0);
    p.part[static_cast<std::size_t>(v)] = zero ? 0 : 1;
    if (zero) ++count0;
  }
  const double before = compute_metrics(g, p).cut_total;
  RefineOptions opt;
  opt.max_rounds = 20;
  (void)refine_partitioning(g, p, opt);
  const double after = compute_metrics(g, p).cut_total;
  EXPECT_LT(after, 0.8 * before);
}

TEST(Refine, RespectsMaxRounds) {
  const Graph g = graph::grid_graph(10, 10);
  Partitioning p = jagged_grid_partitioning(10);
  RefineOptions opt;
  opt.max_rounds = 1;
  const RefineStats stats = refine_partitioning(g, p, opt);
  EXPECT_LE(stats.rounds, 1);
}

TEST(Refine, SinglePartitionIsNoop) {
  const Graph g = graph::grid_graph(4, 4);
  Partitioning p;
  p.num_parts = 1;
  p.part.assign(16, 0);
  const RefineStats stats = refine_partitioning(g, p);
  EXPECT_EQ(stats.rounds, 0);
  EXPECT_EQ(stats.vertices_moved, 0);
}

TEST(Refine, ParallelCandidateCollectionMatchesSerial) {
  const Graph g = graph::random_geometric_graph(5000, 0.025, 111);
  Partitioning base;
  base.num_parts = 8;
  base.part.resize(5000);
  for (int v = 0; v < 5000; ++v) {
    base.part[static_cast<std::size_t>(v)] = v % 8;
  }
  Partitioning a = base;
  Partitioning b = base;
  RefineOptions serial;
  RefineOptions parallel;
  parallel.num_threads = 8;
  (void)refine_partitioning(g, a, serial);
  (void)refine_partitioning(g, b, parallel);
  EXPECT_EQ(a.part, b.part);
}

}  // namespace
}  // namespace pigp::core
