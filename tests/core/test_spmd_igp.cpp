// SPMD (message-passing) driver vs shared-memory driver equivalence.

#include "core/spmd_igp.hpp"

#include <gtest/gtest.h>

#include "core/igp.hpp"
#include "graph/partition.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::Partitioning;

struct SpmdCase {
  int ranks;
  int parts;
};

class SpmdEquivalence : public ::testing::TestWithParam<SpmdCase> {};

TEST_P(SpmdEquivalence, MatchesSharedMemoryDriver) {
  const SpmdCase param = GetParam();
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(
      600, {80}, 91 + static_cast<std::uint64_t>(param.ranks));
  const Partitioning initial = spectral::recursive_spectral_bisection(
      seq.graphs[0], param.parts);

  IncrementalPartitioner serial;
  const IgpResult expected = serial.repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());

  runtime::Machine machine(param.ranks);
  const IgpResult actual = spmd_repartition(
      machine, seq.graphs[1], initial, seq.graphs[0].num_vertices());

  EXPECT_EQ(expected.partitioning.part, actual.partitioning.part);
  EXPECT_EQ(expected.balanced, actual.balanced);
  EXPECT_EQ(expected.stages, actual.stages);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SpmdEquivalence,
                         ::testing::Values(SpmdCase{1, 8}, SpmdCase{2, 8},
                                           SpmdCase{4, 8}, SpmdCase{8, 8},
                                           SpmdCase{3, 7}, SpmdCase{8, 16}));

TEST(SpmdIgp, WithoutRefinement) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(500, {60}, 5);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);

  IgpOptions options;
  options.refine = false;
  IncrementalPartitioner serial(options);
  const IgpResult expected = serial.repartition(
      seq.graphs[1], initial, seq.graphs[0].num_vertices());

  runtime::Machine machine(4);
  const IgpResult actual =
      spmd_repartition(machine, seq.graphs[1], initial,
                       seq.graphs[0].num_vertices(), options);
  EXPECT_EQ(expected.partitioning.part, actual.partitioning.part);
}

TEST(SpmdIgp, MachineIsReusable) {
  const mesh::MeshSequence seq =
      mesh::make_small_mesh_sequence(500, {40, 40}, 7);
  Partitioning current =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);

  runtime::Machine machine(4);
  for (std::size_t step = 0; step + 1 < seq.graphs.size(); ++step) {
    const IgpResult result =
        spmd_repartition(machine, seq.graphs[step + 1], current,
                         seq.graphs[step].num_vertices());
    EXPECT_TRUE(graph::is_balanced(seq.graphs[step + 1],
                                   result.partitioning, 1.0))
        << "step " << step;
    current = result.partitioning;
  }
}

}  // namespace
}  // namespace pigp::core
