// Edge cases and failure injection for the full pipeline: weighted graphs,
// graphs that cannot be balanced, degenerate deltas, partition file I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "core/igp.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "mesh/paper_meshes.hpp"
#include "spectral/partitioners.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::Partitioning;
using graph::VertexId;

TEST(IgpEdgeCases, EmptyDeltaIsCheapAndStable) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(300, {}, 3);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 4);
  IncrementalPartitioner igp;
  const IgpResult result = igp.repartition(
      seq.graphs[0], initial, seq.graphs[0].num_vertices());
  EXPECT_TRUE(result.balanced);
  EXPECT_EQ(result.stages, 0);  // already balanced: no LP stage
}

TEST(IgpEdgeCases, WeightedVerticesBalanceByWeight) {
  // Mesh-like graph with vertex weights in {1, 2}: balance must hold in
  // *weight*, not in counts.
  const Graph base = graph::random_geometric_graph(500, 0.07, 7);
  graph::GraphBuilder b;
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    b.add_vertex(v % 3 == 0 ? 2.0 : 1.0);
  }
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const Graph g = b.build();
  const Partitioning initial = spectral::recursive_spectral_bisection(g, 4);

  // Perturb: move a block of vertices to partition 0 to unbalance.
  Partitioning skewed = initial;
  int moved = 0;
  for (VertexId v = 0; v < g.num_vertices() && moved < 60; ++v) {
    if (skewed.part[static_cast<std::size_t>(v)] == 1) {
      skewed.part[static_cast<std::size_t>(v)] = 0;
      ++moved;
    }
  }

  BalanceOptions opt;
  opt.max_stages = 30;
  Partitioning p = skewed;
  const BalanceResult r = balance_load(g, p, opt);
  EXPECT_TRUE(r.balanced);
  const auto m = graph::compute_metrics(g, p);
  const auto targets =
      graph::balance_targets(g.total_vertex_weight(), 4);
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(m.weight[static_cast<std::size_t>(q)],
                targets[static_cast<std::size_t>(q)], 2.0);
  }
}

TEST(IgpEdgeCases, UnbalanceableGraphReportsHonestly) {
  // A star graph: the center is in partition 0; partition 1 holds a single
  // leaf.  Balance needs leaves to move, which is possible — but with 2
  // vertices and 2 partitions of a disconnected pair nothing can move.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 0, 0};  // everything in partition 0; partition 1 empty
  // No vertex has a cross edge => layering yields no capacity at all.
  BalanceOptions opt;
  const BalanceResult r = balance_load(g, p, opt);
  EXPECT_FALSE(r.balanced);
  EXPECT_GT(r.final_max_deviation, 0.0);
}

TEST(IgpEdgeCases, TwoPartitionsMinimalGraph) {
  const Graph g = graph::path_graph(4);
  Partitioning old_p;
  old_p.num_parts = 2;
  old_p.part = {0, 0, 1};
  // One new vertex appended at the end of the path.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  IncrementalPartitioner igp;
  const IgpResult result = igp.repartition(g, old_p, 3);
  EXPECT_TRUE(result.balanced);
  EXPECT_TRUE(graph::is_balanced(g, result.partitioning, 0.5));
}

TEST(IgpEdgeCases, ManyPartitionsFewVertices) {
  const Graph g = graph::grid_graph(4, 4);
  const Partitioning initial =
      spectral::recursive_spectral_bisection(g, 8);
  IncrementalPartitioner igp;
  const IgpResult result = igp.repartition(g, initial, g.num_vertices());
  EXPECT_TRUE(result.balanced);
}

TEST(PartitionIo, RoundTrip) {
  Partitioning p;
  p.num_parts = 5;
  p.part = {0, 3, 4, 1, 2, 0, 4};
  std::stringstream ss;
  graph::write_partition(p, ss);
  const Partitioning q = graph::read_partition(ss);
  EXPECT_EQ(q.part, p.part);
  EXPECT_EQ(q.num_parts, 5);
}

TEST(PartitionIo, FileRoundTrip) {
  const Graph g = graph::grid_graph(6, 6);
  const Partitioning p = spectral::recursive_graph_bisection(g, 4);
  const std::string path = ::testing::TempDir() + "/pigp_part_test.part";
  graph::save_partition_file(p, path);
  const Partitioning q = graph::load_partition_file(path);
  EXPECT_EQ(q.part, p.part);
}

TEST(PartitionIo, EmptyFileThrows) {
  std::stringstream ss("");
  EXPECT_THROW((void)graph::read_partition(ss), CheckError);
}

TEST(PartitionIo, NegativeIdThrows) {
  std::stringstream ss("0\n-1\n2\n");
  EXPECT_THROW((void)graph::read_partition(ss), CheckError);
}

class IgpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IgpSeedSweep, PipelineInvariantsHoldAcrossWorkloads) {
  const std::uint64_t seed = GetParam();
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(
      400 + static_cast<int>(seed % 5) * 100,
      {30 + static_cast<int>(seed % 3) * 20}, seed * 13 + 1);
  const Partitioning initial = spectral::recursive_spectral_bisection(
      seq.graphs[0], 4 + static_cast<graph::PartId>(seed % 3) * 4);

  IncrementalPartitioner igp;
  const IgpResult result =
      igp.repartition(seq.graphs[1], initial, seq.graphs[0].num_vertices());

  // Invariants: every vertex assigned, balance within one unit, refinement
  // never worsened the post-balance cut.
  result.partitioning.validate(seq.graphs[1]);
  EXPECT_TRUE(result.balanced) << "seed " << seed;
  EXPECT_TRUE(graph::is_balanced(seq.graphs[1], result.partitioning, 1.0))
      << "seed " << seed;
  EXPECT_LE(result.refine_stats.cut_after,
            result.refine_stats.cut_before + 1e-9)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IgpSeedSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace pigp::core
