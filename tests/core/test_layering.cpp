// Step 2: the layering algorithm of Figure 3 (§2.2).

#include "core/layering.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace pigp::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::Partitioning;
using graph::VertexId;

TEST(Layering, ZeroWeightBoundaryEdgesLeaveVerticesUnlabeled) {
  // Vertices {0,1} in partition 0, {2} in partition 1; the only cross edge
  // {0,2} has weight zero.  Vertex 0 is structurally boundary but carries
  // no label (all-zero tally), and vertex 1 — reachable only through the
  // unlabeled vertex 0 — must also stay unlabeled instead of reading a
  // tally slot at index -1 (regression: heap overflow under ASan).
  GraphBuilder b(3);
  b.add_edge(0, 2, 0.0);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1};

  const LayeringResult r = layer_partitions(g, p);
  EXPECT_EQ(r.label[0], -1);
  EXPECT_EQ(r.layer[0], 0);  // structurally boundary
  EXPECT_EQ(r.label[1], -1);
  EXPECT_EQ(r.label[2], -1);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(r.eps(i, j), 0);
    }
  }

  // The boundary-seeded path agrees bit for bit.
  const graph::PartitionState state(g, p);
  const LayeringResult boundary = layer_partitions_from(g, p, state);
  EXPECT_EQ(boundary.label, r.label);
  EXPECT_EQ(boundary.layer, r.layer);
  EXPECT_EQ(boundary.eps, r.eps);
}

TEST(Layering, TwoBlockPathLabelsTowardTheOtherSide) {
  // Path 0-1-2-3-4-5 split {0,1,2 | 3,4,5}: every vertex's closest outside
  // partition is the other one; layers count distance to the boundary.
  const Graph g = graph::path_graph(6);
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 0, 1, 1, 1};
  const LayeringResult r = layer_partitions(g, p);

  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(r.label[static_cast<std::size_t>(v)], 1) << v;
  }
  for (int v = 3; v < 6; ++v) {
    EXPECT_EQ(r.label[static_cast<std::size_t>(v)], 0) << v;
  }
  EXPECT_EQ(r.layer[2], 0);  // boundary
  EXPECT_EQ(r.layer[1], 1);
  EXPECT_EQ(r.layer[0], 2);
  EXPECT_EQ(r.layer[3], 0);
  EXPECT_EQ(r.layer[5], 2);

  EXPECT_EQ(r.eps(0, 1), 3);
  EXPECT_EQ(r.eps(1, 0), 3);
  EXPECT_EQ(r.eps(0, 0), 0);
}

TEST(Layering, BoundaryTagFollowsMajorityEdgeCount) {
  // Vertex 0 (part 0) has two edges into part 2 and one into part 1: its
  // label must be 2.
  GraphBuilder b(4);
  b.add_edge(0, 1);  // part 1
  b.add_edge(0, 2);  // part 2
  b.add_edge(0, 3);  // part 2
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 3;
  p.part = {0, 1, 2, 2};
  const LayeringResult r = layer_partitions(g, p);
  EXPECT_EQ(r.label[0], 2);
  EXPECT_EQ(r.eps(0, 2), 1);
  EXPECT_EQ(r.eps(0, 1), 0);
}

TEST(Layering, MajorityTieBreaksToSmallerPartition) {
  GraphBuilder b(3);
  b.add_edge(0, 1);  // part 2
  b.add_edge(0, 2);  // part 1
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 3;
  p.part = {0, 2, 1};
  const LayeringResult r = layer_partitions(g, p);
  EXPECT_EQ(r.label[0], 1);  // tie between 1 and 2 -> smaller id
}

TEST(Layering, EdgeWeightsDriveTheMajority) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 5.0);  // heavy edge into part 2
  b.add_edge(0, 2, 1.0);  // light edge into part 1
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 3;
  p.part = {0, 2, 1};
  const LayeringResult r = layer_partitions(g, p);
  EXPECT_EQ(r.label[0], 2);
}

TEST(Layering, InnerLayersInheritFromPreviousLayer) {
  // Grid strip: part 0 is a 3x3 block neighboring part 1 on the right.
  // Column x=2 is layer 0, x=1 layer 1, x=0 layer 2, all labeled 1.
  const Graph g = graph::grid_graph(3, 6);
  Partitioning p;
  p.num_parts = 2;
  p.part.assign(18, 0);
  for (int r = 0; r < 3; ++r) {
    for (int c = 3; c < 6; ++c) {
      p.part[static_cast<std::size_t>(r * 6 + c)] = 1;
    }
  }
  const LayeringResult res = layer_partitions(g, p);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(res.layer[static_cast<std::size_t>(r * 6 + 2)], 0);
    EXPECT_EQ(res.layer[static_cast<std::size_t>(r * 6 + 1)], 1);
    EXPECT_EQ(res.layer[static_cast<std::size_t>(r * 6 + 0)], 2);
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(res.label[static_cast<std::size_t>(r * 6 + c)], 1);
    }
  }
  EXPECT_EQ(res.eps(0, 1), 9);
  EXPECT_EQ(res.eps(1, 0), 9);
}

TEST(Layering, EpsRowSumsEqualPartitionSizesWhenConnected) {
  const Graph g = graph::random_geometric_graph(800, 0.06, 41);
  Partitioning p;
  p.num_parts = 8;
  p.part.resize(800);
  for (VertexId v = 0; v < 800; ++v) {
    p.part[static_cast<std::size_t>(v)] = v % 8;
  }
  const LayeringResult r = layer_partitions(g, p);
  // Every labeled vertex contributes to exactly one eps entry.
  std::vector<std::int64_t> labeled(8, 0);
  for (VertexId v = 0; v < 800; ++v) {
    if (r.label[static_cast<std::size_t>(v)] >= 0) {
      ++labeled[static_cast<std::size_t>(p.part[static_cast<std::size_t>(v)])];
    }
  }
  for (int q = 0; q < 8; ++q) {
    std::int64_t row_sum = 0;
    for (int j = 0; j < 8; ++j) {
      row_sum += r.eps(static_cast<std::size_t>(q), static_cast<std::size_t>(j));
    }
    EXPECT_EQ(row_sum, labeled[static_cast<std::size_t>(q)]);
  }
}

TEST(Layering, InteriorOnlyPartitionStaysUnlabeled) {
  // Two disconnected edges in different partitions: no cross edges at all,
  // so nothing can be labeled.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};
  const LayeringResult r = layer_partitions(g, p);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(r.label[static_cast<std::size_t>(v)], -1);
    EXPECT_EQ(r.layer[static_cast<std::size_t>(v)], -1);
  }
  EXPECT_EQ(r.eps(0, 1), 0);
}

TEST(Layering, ParallelMatchesSerial) {
  const Graph g = graph::random_geometric_graph(1500, 0.05, 29);
  Partitioning p;
  p.num_parts = 16;
  p.part.resize(1500);
  for (VertexId v = 0; v < 1500; ++v) {
    p.part[static_cast<std::size_t>(v)] = v % 16;
  }
  const LayeringResult serial = layer_partitions(g, p, 1);
  const LayeringResult parallel = layer_partitions(g, p, 8);
  EXPECT_EQ(serial.label, parallel.label);
  EXPECT_EQ(serial.layer, parallel.layer);
  EXPECT_EQ(serial.eps, parallel.eps);
}

TEST(Layering, MatchesPaperFigure4Shape) {
  // Reproduce the microscopic structure of Figure 4(a): a partition whose
  // vertices peel layer by layer toward the closest neighbor partitions.
  const Graph g = graph::grid_graph(6, 6);
  Partitioning p;
  p.num_parts = 4;
  p.part.resize(36);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 6; ++c) {
      p.part[static_cast<std::size_t>(r * 6 + c)] =
          (r < 3 ? 0 : 2) + (c < 3 ? 0 : 1);
    }
  }
  const LayeringResult res = layer_partitions(g, p);
  // Corner vertex of each quadrant block touching the two neighbors has
  // layer 0; the far corner has the deepest layer (2 within a 3x3 block).
  EXPECT_EQ(res.layer[0], 2);   // (0,0): farthest from other partitions
  EXPECT_EQ(res.layer[14], 0);  // (2,2): touches both neighbors
  // All vertices are labeled (grid is connected).
  for (int v = 0; v < 36; ++v) {
    EXPECT_GE(res.label[static_cast<std::size_t>(v)], 0);
  }
}

}  // namespace
}  // namespace pigp::core
