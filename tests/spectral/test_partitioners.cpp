// RSB / RCB / RGB partitioners: balance, cut quality on graphs with known
// optimal structure, determinism, odd partition counts, disconnected input.

#include "spectral/partitioners.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"

namespace pigp::spectral {
namespace {

using graph::compute_metrics;
using graph::Graph;
using graph::Partitioning;

TEST(Rsb, BisectsPathAtTheMiddle) {
  const Graph g = graph::path_graph(20);
  const Partitioning p = recursive_spectral_bisection(g, 2);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.cut_total, 1.0);  // optimal single-edge cut
  EXPECT_DOUBLE_EQ(m.max_weight, 10.0);
}

TEST(Rsb, GridFourWayIsNearOptimal) {
  const int side = 12;
  const Graph g = graph::grid_graph(side, side);
  const Partitioning p = recursive_spectral_bisection(g, 4);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.max_weight, 36.0);
  EXPECT_DOUBLE_EQ(m.min_weight, 36.0);
  // Optimal quadrant cut is 2 * side = 24; allow modest slack.
  EXPECT_LE(m.cut_total, 1.5 * 2 * side);
}

TEST(Rsb, ThirtyTwoPartsOnMeshLikeGraph) {
  const Graph g = graph::random_geometric_graph(1200, 0.045, 11);
  // Geometric graphs can have isolated vertices; partitioners must cope.
  const Partitioning p = recursive_spectral_bisection(g, 32);
  const auto m = compute_metrics(g, p);
  EXPECT_EQ(p.num_parts, 32);
  EXPECT_LE(m.max_weight - m.min_weight, 1.0);  // unit weights: off by <= 1
}

TEST(Rsb, OddPartitionCount) {
  const Graph g = graph::grid_graph(9, 10);
  const Partitioning p = recursive_spectral_bisection(g, 5);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.max_weight, 18.0);
  EXPECT_DOUBLE_EQ(m.min_weight, 18.0);
}

TEST(Rsb, SinglePartition) {
  const Graph g = graph::path_graph(7);
  const Partitioning p = recursive_spectral_bisection(g, 1);
  for (auto q : p.part) EXPECT_EQ(q, 0);
}

TEST(Rsb, HandlesDisconnectedGraph) {
  graph::GraphBuilder b(0);
  // Two separate 8-vertex paths.
  for (int c = 0; c < 2; ++c) {
    const auto base = b.num_vertices();
    for (int i = 0; i < 8; ++i) b.add_vertex();
    for (int i = 0; i + 1 < 8; ++i) {
      b.add_edge(base + i, base + i + 1);
    }
  }
  const Graph g = b.build();
  const Partitioning p = recursive_spectral_bisection(g, 2);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.max_weight, 8.0);
  // The two components are the optimal sides: zero cut.
  EXPECT_DOUBLE_EQ(m.cut_total, 0.0);
}

TEST(Rsb, DeterministicAcrossRuns) {
  const Graph g = graph::random_geometric_graph(600, 0.06, 23);
  const Partitioning a = recursive_spectral_bisection(g, 8);
  const Partitioning b = recursive_spectral_bisection(g, 8);
  EXPECT_EQ(a.part, b.part);
}

TEST(Rsb, RespectsVertexWeights) {
  // Path of 4 with weights 3,1,1,3: balanced 2-cut must split 4|4.
  graph::GraphBuilder b;
  b.add_vertex(3.0);
  b.add_vertex(1.0);
  b.add_vertex(1.0);
  b.add_vertex(3.0);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const Partitioning p = recursive_spectral_bisection(g, 2);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.max_weight, 4.0);
  EXPECT_DOUBLE_EQ(m.min_weight, 4.0);
}

TEST(Rcb, GridQuadrants) {
  std::vector<std::array<double, 2>> coords;
  const int side = 10;
  graph::GraphBuilder b(side * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      coords.push_back({static_cast<double>(c), static_cast<double>(r)});
      if (c + 1 < side) b.add_edge(r * side + c, r * side + c + 1);
      if (r + 1 < side) b.add_edge(r * side + c, (r + 1) * side + c);
    }
  }
  const Graph g = b.build();
  const Partitioning p = recursive_coordinate_bisection(g, 4, coords);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.max_weight, 25.0);
  EXPECT_DOUBLE_EQ(m.cut_total, 2.0 * side);  // exact quadrant cut
}

TEST(Rcb, RejectsWrongCoordinateCount) {
  const Graph g = graph::path_graph(5);
  std::vector<std::array<double, 2>> coords(3);
  EXPECT_THROW(recursive_coordinate_bisection(g, 2, coords), CheckError);
}

TEST(Rgb, PathIsCutOnce) {
  const Graph g = graph::path_graph(30);
  const Partitioning p = recursive_graph_bisection(g, 2);
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.cut_total, 1.0);
  EXPECT_DOUBLE_EQ(m.max_weight, 15.0);
}

TEST(Rgb, BalancedOnRandomConnected) {
  const Graph g = graph::random_connected_graph(500, 1.0, 31);
  const Partitioning p = recursive_graph_bisection(g, 8);
  const auto m = compute_metrics(g, p);
  EXPECT_LE(m.max_weight - m.min_weight, 1.0);
}

TEST(Partitioners, MorePartsThanVerticesRejected) {
  const Graph g = graph::path_graph(3);
  EXPECT_THROW(recursive_spectral_bisection(g, 5), CheckError);
}

TEST(Partitioners, RsbBeatsRgbOnGeometricCut) {
  // Spectral should be at least as good as BFS bisection on mesh-like
  // graphs (this is precisely why the paper uses RSB as its baseline).
  const Graph g = graph::random_geometric_graph(900, 0.05, 77);
  const auto rsb = compute_metrics(g, recursive_spectral_bisection(g, 8));
  const auto rgb = compute_metrics(g, recursive_graph_bisection(g, 8));
  EXPECT_LE(rsb.cut_total, rgb.cut_total * 1.10);
}

}  // namespace
}  // namespace pigp::spectral
