// Symmetric tridiagonal QL eigensolver vs closed-form spectra.

#include "spectral/tridiagonal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"

namespace pigp::spectral {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Tridiagonal, OneByOne) {
  const auto eig = tridiagonal_eigen({5.0}, {});
  ASSERT_EQ(eig.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], 5.0);
  EXPECT_DOUBLE_EQ(std::abs(eig.eigenvectors[0][0]), 1.0);
}

TEST(Tridiagonal, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  const auto eig = tridiagonal_eigen({2.0, 2.0}, {1.0});
  ASSERT_EQ(eig.eigenvalues.size(), 2u);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(Tridiagonal, ToeplitzSpectrum) {
  // diag a, offdiag b: eigenvalues a + 2b cos(j*pi/(k+1)), j = 1..k.
  const int k = 12;
  const double a = 4.0;
  const double b = -1.5;
  std::vector<double> diag(k, a);
  std::vector<double> off(k - 1, b);
  const auto eig = tridiagonal_eigen(diag, off);

  std::vector<double> expected;
  for (int j = 1; j <= k; ++j) {
    expected.push_back(a + 2.0 * b * std::cos(j * kPi / (k + 1)));
  }
  std::sort(expected.begin(), expected.end());
  for (int j = 0; j < k; ++j) {
    EXPECT_NEAR(eig.eigenvalues[static_cast<std::size_t>(j)],
                expected[static_cast<std::size_t>(j)], 1e-9);
  }
}

TEST(Tridiagonal, EigenvectorsSatisfyDefinition) {
  const std::vector<double> diag = {3.0, 1.0, 4.0, 1.0, 5.0};
  const std::vector<double> off = {0.5, -2.0, 0.0, 1.5};
  const auto eig = tridiagonal_eigen(diag, off);

  for (std::size_t p = 0; p < diag.size(); ++p) {
    const auto& v = eig.eigenvectors[p];
    const double lambda = eig.eigenvalues[p];
    for (std::size_t i = 0; i < diag.size(); ++i) {
      double tv = diag[i] * v[i];
      if (i > 0) tv += off[i - 1] * v[i - 1];
      if (i + 1 < diag.size()) tv += off[i] * v[i + 1];
      EXPECT_NEAR(tv, lambda * v[i], 1e-9);
    }
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(Tridiagonal, ZeroOffdiagGivesDiagonal) {
  const auto eig = tridiagonal_eigen({3.0, -1.0, 2.0}, {0.0, 0.0});
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(Tridiagonal, RejectsSizeMismatch) {
  EXPECT_THROW(tridiagonal_eigen({1.0, 2.0}, {}), CheckError);
  EXPECT_THROW(tridiagonal_eigen({}, {}), CheckError);
}

TEST(Tridiagonal, LargeMatrixConverges) {
  const int k = 400;
  std::vector<double> diag(k, 2.0);
  std::vector<double> off(k - 1, -1.0);
  const auto eig = tridiagonal_eigen(diag, off);
  // Smallest eigenvalue of the discrete Laplacian stencil.
  EXPECT_NEAR(eig.eigenvalues[0],
              2.0 - 2.0 * std::cos(kPi / (k + 1)), 1e-9);
}

}  // namespace
}  // namespace pigp::spectral
