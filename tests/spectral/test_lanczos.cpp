// Fiedler vector/value: analytic graphs, Laplacian apply, convergence.

#include "spectral/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace pigp::spectral {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(LaplacianApply, MatchesHandComputation) {
  // Path 0-1-2 with unit weights: L = [[1,-1,0],[-1,2,-1],[0,-1,1]].
  const graph::Graph g = graph::path_graph(3);
  std::vector<double> y;
  laplacian_apply(g, {1.0, 0.0, -1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(LaplacianApply, ConstantVectorInKernel) {
  const graph::Graph g = graph::random_connected_graph(50, 1.0, 3);
  std::vector<double> y;
  laplacian_apply(g, std::vector<double>(50, 2.5), y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(LaplacianApply, RespectsEdgeWeights) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 3.0);
  std::vector<double> y;
  laplacian_apply(b.build(), {1.0, 0.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
}

TEST(Fiedler, PathGraphAnalyticValue) {
  // Path P_n: λ₂ = 2 - 2 cos(pi / n).
  const int n = 24;
  const auto r = fiedler_vector(graph::path_graph(n));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 2.0 - 2.0 * std::cos(kPi / n), 1e-6);
}

TEST(Fiedler, PathVectorIsMonotone) {
  const int n = 17;
  const auto r = fiedler_vector(graph::path_graph(n));
  ASSERT_EQ(r.vector.size(), static_cast<std::size_t>(n));
  // The Fiedler vector of a path is cos((i + 1/2) pi / n), monotone.
  const double direction = r.vector[1] - r.vector[0];
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_GT((r.vector[static_cast<std::size_t>(i + 1)] -
               r.vector[static_cast<std::size_t>(i)]) *
                  direction,
              0.0);
  }
}

TEST(Fiedler, CompleteGraphValue) {
  // K_n has λ₂ = n.
  const int n = 9;
  const auto r = fiedler_vector(graph::complete_graph(n));
  EXPECT_NEAR(r.value, static_cast<double>(n), 1e-6);
}

TEST(Fiedler, CycleGraphValue) {
  // C_n: λ₂ = 2 - 2 cos(2 pi / n).
  const int n = 20;
  const auto r = fiedler_vector(graph::cycle_graph(n));
  EXPECT_NEAR(r.value, 2.0 - 2.0 * std::cos(2.0 * kPi / n), 1e-6);
}

TEST(Fiedler, StarGraphValue) {
  // Star K_{1,n-1}: λ₂ = 1.
  const auto r = fiedler_vector(graph::star_graph(12));
  EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(Fiedler, GridGraphValue) {
  // Grid m x m: λ₂ = 2 - 2 cos(pi / m).
  const int m = 10;
  const auto r = fiedler_vector(graph::grid_graph(m, m));
  EXPECT_NEAR(r.value, 2.0 - 2.0 * std::cos(kPi / m), 1e-6);
}

TEST(Fiedler, VectorIsUnitAndMeanFree) {
  const auto r = fiedler_vector(graph::random_connected_graph(200, 1.0, 9));
  double sum = 0.0;
  double norm2 = 0.0;
  for (double v : r.vector) {
    sum += v;
    norm2 += v * v;
  }
  EXPECT_NEAR(sum, 0.0, 1e-8);
  EXPECT_NEAR(norm2, 1.0, 1e-8);
}

TEST(Fiedler, ResidualIsSmall) {
  const graph::Graph g = graph::random_connected_graph(300, 1.5, 17);
  const auto r = fiedler_vector(g);
  ASSERT_TRUE(r.converged);
  std::vector<double> lx;
  laplacian_apply(g, r.vector, lx);
  double res2 = 0.0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    const double d = lx[i] - r.value * r.vector[i];
    res2 += d * d;
  }
  EXPECT_LT(std::sqrt(res2), 1e-4);
}

TEST(Fiedler, TwoVertexExact) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 2.0);
  const auto r = fiedler_vector(b.build());
  EXPECT_DOUBLE_EQ(r.value, 4.0);
  EXPECT_NEAR(r.vector[0], -r.vector[1], 1e-12);
}

TEST(Fiedler, SingleVertex) {
  graph::GraphBuilder b(1);
  const auto r = fiedler_vector(b.build());
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Fiedler, DisconnectedGraphRejected) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_THROW(fiedler_vector(b.build()), CheckError);
}

TEST(Fiedler, DeterministicAcrossCalls) {
  const graph::Graph g = graph::random_connected_graph(150, 1.2, 5);
  const auto a = fiedler_vector(g);
  const auto b = fiedler_vector(g);
  EXPECT_EQ(a.vector, b.vector);
  EXPECT_EQ(a.value, b.value);
}

}  // namespace
}  // namespace pigp::spectral
