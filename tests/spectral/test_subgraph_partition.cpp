// Subgraph extraction and partition metrics (graph-module additions used by
// the partitioners; tested here alongside their main consumer).

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/subgraph.hpp"
#include "support/check.hpp"

namespace pigp::graph {
namespace {

TEST(Subgraph, ExtractsInducedEdges) {
  const Graph g = grid_graph(3, 3);
  // Take the left 3x2 block: vertices 0,1,3,4,6,7.
  const std::vector<VertexId> sel = {0, 1, 3, 4, 6, 7};
  const Subgraph s = induced_subgraph(g, sel);
  EXPECT_EQ(s.graph.num_vertices(), 6);
  EXPECT_EQ(s.graph.num_edges(), 7);  // 3x2 grid
  EXPECT_EQ(s.to_global, sel);
  s.graph.validate();
}

TEST(Subgraph, PreservesWeights) {
  GraphBuilder b;
  b.add_vertex(2.0);
  b.add_vertex(3.0);
  b.add_vertex(4.0);
  b.add_edge(0, 1, 5.0);
  b.add_edge(1, 2, 6.0);
  const Graph g = b.build();
  const std::vector<VertexId> sel = {1, 2};
  const Subgraph s = induced_subgraph(g, sel);
  EXPECT_DOUBLE_EQ(s.graph.vertex_weight(0), 3.0);
  EXPECT_DOUBLE_EQ(s.graph.edge_weight(0, 1), 6.0);
}

TEST(Subgraph, RejectsDuplicates) {
  const Graph g = path_graph(4);
  const std::vector<VertexId> sel = {1, 1};
  EXPECT_THROW(induced_subgraph(g, sel), CheckError);
}

TEST(PartitionMetrics, HandComputedExample) {
  // Path 0-1-2-3 split as {0,1 | 2,3}: one cut edge.
  const Graph g = path_graph(4);
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.cut_total, 1.0);
  EXPECT_DOUBLE_EQ(m.cut_max, 1.0);
  EXPECT_DOUBLE_EQ(m.cut_min, 1.0);
  EXPECT_DOUBLE_EQ(m.max_weight, 2.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
}

TEST(PartitionMetrics, WeightedEdgesCountOnce) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.5);
  b.add_edge(1, 2, 4.0);
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 3;
  p.part = {0, 1, 2};
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.cut_total, 6.5);
  EXPECT_DOUBLE_EQ(m.cut_max, 6.5);   // partition 1 touches both cut edges
  EXPECT_DOUBLE_EQ(m.cut_min, 2.5);
}

TEST(PartitionMetrics, ValidationCatchesBadLabels) {
  const Graph g = path_graph(3);
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 1, 2};  // 2 is out of range
  EXPECT_THROW(compute_metrics(g, p), CheckError);
  p.part = {0, 1};  // size mismatch
  EXPECT_THROW(compute_metrics(g, p), CheckError);
}

TEST(BalanceTargets, LargestRemainderSumsExactly) {
  const auto t = balance_targets(10.0, 3);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0] + t[1] + t[2], 10.0);
  for (double x : t) EXPECT_TRUE(x == 3.0 || x == 4.0);
}

TEST(BalanceTargets, ExactDivision) {
  const auto t = balance_targets(32.0, 32);
  for (double x : t) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(IsBalanced, DetectsImbalance) {
  const Graph g = path_graph(4);
  Partitioning balanced;
  balanced.num_parts = 2;
  balanced.part = {0, 0, 1, 1};
  EXPECT_TRUE(is_balanced(g, balanced, 0.5));

  Partitioning skewed;
  skewed.num_parts = 2;
  skewed.part = {0, 0, 0, 1};
  EXPECT_FALSE(is_balanced(g, skewed, 0.5));
}

}  // namespace
}  // namespace pigp::graph
